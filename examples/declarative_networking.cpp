// Declarative networking end to end: distribute a graph over a simulated
// asynchronous 3-node cluster, run the coordination-free broadcast strategy
// for the (monotone) transitive-closure query under several fair schedules,
// and confirm every run yields the same, correct answer — the CALM promise.

#include <cstdio>
#include <memory>

#include "queries/graph_queries.h"
#include "transducer/coordination.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

using namespace calm;             // NOLINT — example brevity
using namespace calm::transducer; // NOLINT

int main() {
  auto tc = queries::MakeTransitiveClosure();
  auto node_program = MakeBroadcastTransducer(tc.get());

  Network nodes{Value::FromInt(100), Value::FromInt(101), Value::FromInt(102)};
  HashPolicy policy(nodes);
  Instance input = workload::RandomGraph(10, 0.2, /*seed=*/42);
  Instance expected = tc->Eval(input).value();

  std::printf("input: %zu edges over %zu vertices; expected closure: %zu pairs\n",
              input.size(), input.ActiveDomain().size(), expected.size());

  // Show the initial distribution.
  TransducerNetwork network(nodes, node_program.get(), &policy,
                            ModelOptions::Original());
  if (!network.Initialize(input).ok()) return 1;
  for (Value n : nodes) {
    std::printf("  node %s holds %zu local edges\n",
                ValueToString(n).c_str(), network.local_input(n).size());
  }

  // Run under round-robin and several random fair schedules.
  std::printf("\n%-14s %-12s %-10s %-10s %-8s\n", "schedule", "transitions",
              "sent", "delivered", "correct");
  for (int run = 0; run < 4; ++run) {
    TransducerNetwork net(nodes, node_program.get(), &policy,
                          ModelOptions::Original());
    if (!net.Initialize(input).ok()) return 1;
    RunOptions ro;
    std::string label;
    if (run == 0) {
      ro.scheduler = RunOptions::SchedulerKind::kRoundRobin;
      label = "round-robin";
    } else {
      ro.scheduler = RunOptions::SchedulerKind::kRandom;
      ro.seed = 1000 + run;
      label = "random#" + std::to_string(run);
    }
    Result<RunResult> r = RunToQuiescence(net, ro);
    if (!r.ok()) {
      std::printf("run failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %-12zu %-10zu %-10zu %-8s\n", label.c_str(),
                r->stats.transitions, r->stats.messages_sent,
                r->stats.messages_delivered,
                r->output == expected ? "yes" : "NO");
  }

  // Coordination-freeness witness (Definition 3): under the ideal all-to-one
  // policy, one node computes the answer with heartbeats alone.
  Result<bool> hb = HeartbeatPrefixComputes(*node_program,
                                            ModelOptions::Original(), nodes,
                                            nodes[0], input, expected);
  std::printf("\nheartbeat-only prefix on the ideal distribution computes the "
              "query: %s\n",
              hb.ok() && hb.value() ? "yes" : "NO");
  return 0;
}
