// Win-move, the paper's flagship non-monotone query: evaluate it centrally
// under the well-founded semantics, then coordination-free on a domain-
// guided 2-node network with the domain-request strategy (Theorem 4.4 /
// Zinn et al.'s "win-move is coordination-free (sometimes)").

#include <cstdio>
#include <memory>

#include "datalog/parser.h"
#include "datalog/wellfounded.h"
#include "queries/graph_queries.h"
#include "queries/paper_programs.h"
#include "transducer/coordination.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"

using namespace calm;             // NOLINT — example brevity
using namespace calm::transducer; // NOLINT

namespace {
Value V(uint64_t i) { return Value::FromInt(i); }
}  // namespace

int main() {
  // A little game graph: a chain 0->1->2, a drawn 2-cycle {3,4}, and a
  // cycle with an escape (5 <-> 6, 6 -> 7-sink).
  Instance game{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)}),
                Fact("Move", {V(3), V(4)}), Fact("Move", {V(4), V(3)}),
                Fact("Move", {V(5), V(6)}), Fact("Move", {V(6), V(5)}),
                Fact("Move", {V(6), V(7)})};

  // 1. Central evaluation under the well-founded semantics.
  datalog::Program win = datalog::ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  Result<datalog::WellFoundedModel> model =
      datalog::EvaluateWellFounded(win, game);
  if (!model.ok()) return 1;
  std::printf("well-founded model of win-move:\n");
  std::printf("  won positions:   %s\n",
              model->definitely.Restrict(Schema({{"Win", 1}})).ToString().c_str());
  std::printf("  drawn positions: %s\n", model->Undefined().ToString().c_str());

  // 2. Distributed, coordination-free evaluation: the domain-request
  // strategy over a domain-guided hash distribution.
  auto query = queries::MakeWinMove();
  auto node_program = MakeDomainRequestTransducer(query.get());
  Network nodes{V(100), V(101)};
  HashDomainGuidedPolicy policy(nodes);
  Instance expected = query->Eval(game).value();

  TransducerNetwork network(nodes, node_program.get(), &policy,
                            ModelOptions::PolicyAware());
  if (!network.Initialize(game).ok()) return 1;
  std::printf("\ndomain-guided distribution:\n");
  for (Value n : nodes) {
    std::printf("  node %s holds %zu Move facts (with replication)\n",
                ValueToString(n).c_str(), network.local_input(n).size());
  }
  Result<RunResult> r = RunToQuiescence(network);
  if (!r.ok()) {
    std::printf("run failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("distributed output: %s  (%s; %zu transitions, %zu messages)\n",
              r->output.ToString().c_str(),
              r->output == expected ? "correct" : "WRONG",
              r->stats.transitions, r->stats.messages_sent);

  // 3. The coordination-freeness witness of Definition 3.
  Result<bool> hb =
      HeartbeatPrefixComputes(*node_program, ModelOptions::PolicyAware(),
                              nodes, nodes[0], game, expected);
  std::printf("heartbeat-only prefix on the ideal domain assignment: %s\n",
              hb.ok() && hb.value() ? "computes the query" : "FAILED");

  // 4. Contrast: win-move is NOT domain-distinct-monotone, so no absence-
  // style strategy can compute it for arbitrary policies. Adding a move out
  // of a won position's successor flips the answer:
  Instance small{Fact("Move", {V(0), V(1)})};
  Instance extension{Fact("Move", {V(1), V(9)})};  // domain distinct
  std::printf("\nnon-monotonicity witness: Q(%s) = %s but Q(I u %s) = %s\n",
              small.ToString().c_str(), query->Eval(small).value().ToString().c_str(),
              extension.ToString().c_str(),
              query->Eval(Instance::Union(small, extension)).value().ToString().c_str());
  return 0;
}
