// hierarchy_explorer: computes the bounded monotonicity ladders of
// Section 3.1 for the paper's witness queries and prints Figure 1 as
// tables — which rung of M^i / M^i_distinct / M^i_disjoint each query
// occupies, with the counterexample that knocks it off.

#include <cstdio>
#include <memory>
#include <vector>

#include "monotonicity/ladder.h"
#include "queries/graph_queries.h"

using calm::Query;
using calm::monotonicity::ComputeLadder;
using calm::monotonicity::ExhaustiveOptions;
using calm::monotonicity::Ladder;
using calm::monotonicity::LadderRow;

int main() {
  struct Case {
    std::unique_ptr<Query> q;
    size_t fresh_values;
    size_t domain_size;
  };
  std::vector<Case> cases;
  cases.push_back({calm::queries::MakeTransitiveClosure(), 2, 2});
  cases.push_back({calm::queries::MakeComplementTransitiveClosure(), 1, 2});
  cases.push_back({calm::queries::MakeCliqueQuery(3), 1, 3});
  cases.push_back({calm::queries::MakeStarQuery(2), 3, 2});
  cases.push_back({calm::queries::MakeStarQuery(3), 4, 2});
  cases.push_back({calm::queries::MakeWinMove(), 2, 2});

  for (const Case& c : cases) {
    ExhaustiveOptions o;
    o.domain_size = c.domain_size;
    o.max_facts_i = 3;
    o.fresh_values = c.fresh_values;
    calm::Result<Ladder> ladder = ComputeLadder(*c.q, 3, o);
    if (!ladder.ok()) {
      std::printf("%s: %s\n", c.q->name().c_str(),
                  ladder.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n%s", c.q->name().c_str(), ladder->ToString().c_str());
    for (const LadderRow& row : ladder->rows) {
      if (!row.in_distinct && row.distinct_witness.has_value() &&
          (row.i == 1 || ladder->rows[row.i - 2].in_distinct)) {
        std::printf("  leaves M^%zu_distinct: %s\n", row.i,
                    row.distinct_witness->ToString().c_str());
      }
      if (!row.in_disjoint && row.disjoint_witness.has_value() &&
          (row.i == 1 || ladder->rows[row.i - 2].in_disjoint)) {
        std::printf("  leaves M^%zu_disjoint: %s\n", row.i,
                    row.disjoint_witness->ToString().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: 'yes' at every rung within the searched space is the\n"
      "paper's membership claim; the first 'no' rung pins the query's\n"
      "position on Figure 1's bounded ladders (Theorem 3.1).\n");
  return 0;
}
