// Quickstart: parse a Datalog¬ program, classify its fragment, evaluate it,
// and empirically place the query in the monotonicity hierarchy of the
// paper's Figure 1.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "datalog/program.h"
#include "monotonicity/checker.h"
#include "workload/graph_gen.h"

using calm::Instance;
using calm::datalog::DatalogQuery;
using calm::monotonicity::Counterexample;
using calm::monotonicity::ExhaustiveOptions;
using calm::monotonicity::FindViolation;
using calm::monotonicity::MonotonicityClass;
using calm::monotonicity::MonotonicityClassName;

int main() {
  // The complement-of-transitive-closure query Q_TC from the paper: a
  // 2-stratum semicon-Datalog¬ program.
  DatalogQuery query = DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y).\n"
      "T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y).\n",
      "Q_TC");

  std::printf("program:\n%s\n",
              calm::datalog::ProgramToString(query.program()).c_str());
  std::printf("fragment: %s\n", query.fragment().FragmentName().c_str());

  // Evaluate on a small graph: a path 0 -> 1 -> 2 -> 3.
  Instance input = calm::workload::Path(4);
  calm::Result<Instance> output = query.Eval(input);
  if (!output.ok()) {
    std::printf("evaluation failed: %s\n", output.status().ToString().c_str());
    return 1;
  }
  std::printf("input:  %s\n", input.ToString().c_str());
  std::printf("output: %s\n", output->ToString().c_str());

  // Place the query in the monotonicity hierarchy (bounded evidence).
  ExhaustiveOptions opts;
  opts.domain_size = 2;
  opts.max_facts_i = 2;
  opts.fresh_values = 1;
  opts.max_facts_j = 2;
  for (MonotonicityClass cls :
       {MonotonicityClass::kMonotone, MonotonicityClass::kDomainDistinct,
        MonotonicityClass::kDomainDisjoint}) {
    calm::Result<std::optional<Counterexample>> found =
        FindViolation(query, cls, opts);
    if (!found.ok()) {
      std::printf("check failed: %s\n", found.status().ToString().c_str());
      return 1;
    }
    if (found->has_value()) {
      std::printf("NOT in %-10s  counterexample: %s\n",
                  MonotonicityClassName(cls), found->value().ToString().c_str());
    } else {
      std::printf("in     %-10s  (no violation in the bounded search space)\n",
                  MonotonicityClassName(cls));
    }
  }
  std::printf(
      "\n=> Q_TC sits in Mdisjoint \\ Mdistinct: by the paper's Theorem 4.4 it\n"
      "   is computable coordination-free under domain-guided distribution,\n"
      "   but not under arbitrary policies (Theorem 4.3).\n");
  return 0;
}
