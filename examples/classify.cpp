// classify: a command-line fragment & monotonicity classifier for Datalog¬
// programs — the paper's Figure 2 as a tool.
//
// Usage: classify [file]       (reads the program from `file` or stdin)
//
// Prints the syntactic fragment (Datalog / Datalog(!=) / SP-Datalog /
// con-Datalog¬ / semicon-Datalog¬ / stratified Datalog¬), the monotonicity
// class guaranteed by the paper's results, and — when the program is
// stratifiable — empirical bounded monotonicity checks with
// counterexamples.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "datalog/parser.h"
#include "datalog/program.h"
#include "monotonicity/checker.h"

using calm::datalog::DatalogQuery;
using calm::datalog::FragmentInfo;
using calm::monotonicity::Counterexample;
using calm::monotonicity::ExhaustiveOptions;
using calm::monotonicity::FindViolation;
using calm::monotonicity::MonotonicityClass;
using calm::monotonicity::MonotonicityClassName;

namespace {

// The class guaranteed by Figure 2 for each fragment.
const char* GuaranteedClass(const FragmentInfo& f) {
  if (!f.stratifiable) return "(none - not stratifiable)";
  if (f.positive && !f.uses_inequalities) return "H (hence M)";
  if (f.positive) return "M";
  if (f.semi_positive) return "Mdistinct (= E)";
  if (f.semi_connected) return "Mdisjoint";
  return "(none guaranteed)";
}

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    text = ss.str();
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }
  if (text.empty()) {
    // Demo program when run without input: the paper's Example 5.1 P1.
    text =
        "T(x) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.\n"
        "O(x) :- Adom(x), !T(x).\n";
    std::printf("(no input; using the paper's Example 5.1 P1 as a demo)\n\n");
  }

  calm::Result<calm::datalog::Program> parsed = calm::datalog::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  calm::Result<DatalogQuery> query =
      DatalogQuery::Create(parsed.value(), "input-program");
  if (!query.ok()) {
    std::fprintf(stderr, "invalid program: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  const FragmentInfo& f = query->fragment();
  std::printf("fragment:            %s\n", f.FragmentName().c_str());
  std::printf("  stratifiable:      %s\n", f.stratifiable ? "yes" : "no");
  std::printf("  semi-positive:     %s\n", f.semi_positive ? "yes" : "no");
  std::printf("  rules connected:   %s\n",
              f.all_rules_connected ? "all" : "not all");
  std::printf("  semi-connected:    %s\n", f.semi_connected ? "yes" : "no");
  std::printf("guaranteed class:    %s\n", GuaranteedClass(f));
  std::printf(
      "coordination-free:   %s\n\n",
      f.positive || f.semi_positive
          ? "yes - policy-aware model (Theorem 4.3)"
          : (f.semi_connected ? "yes - domain-guided model (Theorem 4.4)"
                              : "not implied by the paper's fragments"));

  std::printf("empirical bounded checks (exhaustive over tiny instances):\n");
  ExhaustiveOptions opts;
  opts.domain_size = 2;
  opts.max_facts_i = 2;
  opts.fresh_values = 2;
  opts.max_facts_j = 2;
  for (MonotonicityClass cls :
       {MonotonicityClass::kMonotone, MonotonicityClass::kDomainDistinct,
        MonotonicityClass::kDomainDisjoint}) {
    calm::Result<std::optional<Counterexample>> found =
        FindViolation(*query, cls, opts);
    if (!found.ok()) {
      std::printf("  %-10s check failed: %s\n", MonotonicityClassName(cls),
                  found.status().ToString().c_str());
      continue;
    }
    if (found->has_value()) {
      std::printf("  %-10s VIOLATED: %s\n", MonotonicityClassName(cls),
                  found->value().ToString().c_str());
    } else {
      std::printf("  %-10s no violation found\n", MonotonicityClassName(cls));
    }
  }
  return 0;
}
