# Empty compiler generated dependencies file for ladder_test.
# This may be replaced when dependencies are built.
