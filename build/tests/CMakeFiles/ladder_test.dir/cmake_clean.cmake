file(REMOVE_RECURSE
  "CMakeFiles/ladder_test.dir/ladder_test.cc.o"
  "CMakeFiles/ladder_test.dir/ladder_test.cc.o.d"
  "ladder_test"
  "ladder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
