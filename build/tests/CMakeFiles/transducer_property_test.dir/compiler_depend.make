# Empty compiler generated dependencies file for transducer_property_test.
# This may be replaced when dependencies are built.
