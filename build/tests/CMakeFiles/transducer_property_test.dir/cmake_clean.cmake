file(REMOVE_RECURSE
  "CMakeFiles/transducer_property_test.dir/transducer_property_test.cc.o"
  "CMakeFiles/transducer_property_test.dir/transducer_property_test.cc.o.d"
  "transducer_property_test"
  "transducer_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transducer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
