file(REMOVE_RECURSE
  "CMakeFiles/datalog_transducer_test.dir/datalog_transducer_test.cc.o"
  "CMakeFiles/datalog_transducer_test.dir/datalog_transducer_test.cc.o.d"
  "datalog_transducer_test"
  "datalog_transducer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_transducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
