# Empty dependencies file for datalog_transducer_test.
# This may be replaced when dependencies are built.
