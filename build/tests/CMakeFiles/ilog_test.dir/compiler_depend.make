# Empty compiler generated dependencies file for ilog_test.
# This may be replaced when dependencies are built.
