file(REMOVE_RECURSE
  "CMakeFiles/ilog_test.dir/ilog_test.cc.o"
  "CMakeFiles/ilog_test.dir/ilog_test.cc.o.d"
  "ilog_test"
  "ilog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
