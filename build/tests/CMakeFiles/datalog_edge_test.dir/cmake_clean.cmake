file(REMOVE_RECURSE
  "CMakeFiles/datalog_edge_test.dir/datalog_edge_test.cc.o"
  "CMakeFiles/datalog_edge_test.dir/datalog_edge_test.cc.o.d"
  "datalog_edge_test"
  "datalog_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
