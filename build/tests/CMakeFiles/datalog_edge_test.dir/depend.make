# Empty dependencies file for datalog_edge_test.
# This may be replaced when dependencies are built.
