# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datalog_test "/root/repo/build/tests/datalog_test")
set_tests_properties(datalog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(monotonicity_test "/root/repo/build/tests/monotonicity_test")
set_tests_properties(monotonicity_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(queries_test "/root/repo/build/tests/queries_test")
set_tests_properties(queries_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(transducer_test "/root/repo/build/tests/transducer_test")
set_tests_properties(transducer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datalog_transducer_test "/root/repo/build/tests/datalog_transducer_test")
set_tests_properties(datalog_transducer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ilog_test "/root/repo/build/tests/ilog_test")
set_tests_properties(ilog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(transducer_property_test "/root/repo/build/tests/transducer_property_test")
set_tests_properties(transducer_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ladder_test "/root/repo/build/tests/ladder_test")
set_tests_properties(ladder_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;calm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datalog_edge_test "/root/repo/build/tests/datalog_edge_test")
set_tests_properties(datalog_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;calm_test;/root/repo/tests/CMakeLists.txt;0;")
