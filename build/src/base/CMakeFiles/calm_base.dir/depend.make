# Empty dependencies file for calm_base.
# This may be replaced when dependencies are built.
