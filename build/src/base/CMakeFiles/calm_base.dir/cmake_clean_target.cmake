file(REMOVE_RECURSE
  "libcalm_base.a"
)
