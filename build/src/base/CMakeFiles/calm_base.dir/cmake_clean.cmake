file(REMOVE_RECURSE
  "CMakeFiles/calm_base.dir/components.cc.o"
  "CMakeFiles/calm_base.dir/components.cc.o.d"
  "CMakeFiles/calm_base.dir/enumerator.cc.o"
  "CMakeFiles/calm_base.dir/enumerator.cc.o.d"
  "CMakeFiles/calm_base.dir/fact.cc.o"
  "CMakeFiles/calm_base.dir/fact.cc.o.d"
  "CMakeFiles/calm_base.dir/homomorphism.cc.o"
  "CMakeFiles/calm_base.dir/homomorphism.cc.o.d"
  "CMakeFiles/calm_base.dir/instance.cc.o"
  "CMakeFiles/calm_base.dir/instance.cc.o.d"
  "CMakeFiles/calm_base.dir/query.cc.o"
  "CMakeFiles/calm_base.dir/query.cc.o.d"
  "CMakeFiles/calm_base.dir/schema.cc.o"
  "CMakeFiles/calm_base.dir/schema.cc.o.d"
  "CMakeFiles/calm_base.dir/status.cc.o"
  "CMakeFiles/calm_base.dir/status.cc.o.d"
  "CMakeFiles/calm_base.dir/value.cc.o"
  "CMakeFiles/calm_base.dir/value.cc.o.d"
  "libcalm_base.a"
  "libcalm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
