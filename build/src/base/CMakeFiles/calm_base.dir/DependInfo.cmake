
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/components.cc" "src/base/CMakeFiles/calm_base.dir/components.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/components.cc.o.d"
  "/root/repo/src/base/enumerator.cc" "src/base/CMakeFiles/calm_base.dir/enumerator.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/enumerator.cc.o.d"
  "/root/repo/src/base/fact.cc" "src/base/CMakeFiles/calm_base.dir/fact.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/fact.cc.o.d"
  "/root/repo/src/base/homomorphism.cc" "src/base/CMakeFiles/calm_base.dir/homomorphism.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/homomorphism.cc.o.d"
  "/root/repo/src/base/instance.cc" "src/base/CMakeFiles/calm_base.dir/instance.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/instance.cc.o.d"
  "/root/repo/src/base/query.cc" "src/base/CMakeFiles/calm_base.dir/query.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/query.cc.o.d"
  "/root/repo/src/base/schema.cc" "src/base/CMakeFiles/calm_base.dir/schema.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/schema.cc.o.d"
  "/root/repo/src/base/status.cc" "src/base/CMakeFiles/calm_base.dir/status.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/status.cc.o.d"
  "/root/repo/src/base/value.cc" "src/base/CMakeFiles/calm_base.dir/value.cc.o" "gcc" "src/base/CMakeFiles/calm_base.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
