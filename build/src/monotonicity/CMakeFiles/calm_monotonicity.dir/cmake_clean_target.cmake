file(REMOVE_RECURSE
  "libcalm_monotonicity.a"
)
