# Empty compiler generated dependencies file for calm_monotonicity.
# This may be replaced when dependencies are built.
