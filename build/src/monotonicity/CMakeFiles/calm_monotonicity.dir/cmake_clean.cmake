file(REMOVE_RECURSE
  "CMakeFiles/calm_monotonicity.dir/checker.cc.o"
  "CMakeFiles/calm_monotonicity.dir/checker.cc.o.d"
  "CMakeFiles/calm_monotonicity.dir/components_property.cc.o"
  "CMakeFiles/calm_monotonicity.dir/components_property.cc.o.d"
  "CMakeFiles/calm_monotonicity.dir/ladder.cc.o"
  "CMakeFiles/calm_monotonicity.dir/ladder.cc.o.d"
  "CMakeFiles/calm_monotonicity.dir/preservation.cc.o"
  "CMakeFiles/calm_monotonicity.dir/preservation.cc.o.d"
  "libcalm_monotonicity.a"
  "libcalm_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calm_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
