
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monotonicity/checker.cc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/checker.cc.o" "gcc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/checker.cc.o.d"
  "/root/repo/src/monotonicity/components_property.cc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/components_property.cc.o" "gcc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/components_property.cc.o.d"
  "/root/repo/src/monotonicity/ladder.cc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/ladder.cc.o" "gcc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/ladder.cc.o.d"
  "/root/repo/src/monotonicity/preservation.cc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/preservation.cc.o" "gcc" "src/monotonicity/CMakeFiles/calm_monotonicity.dir/preservation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/calm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/calm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
