file(REMOVE_RECURSE
  "libcalm_net.a"
)
