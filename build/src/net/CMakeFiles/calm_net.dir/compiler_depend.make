# Empty compiler generated dependencies file for calm_net.
# This may be replaced when dependencies are built.
