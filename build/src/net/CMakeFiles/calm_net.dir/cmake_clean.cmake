file(REMOVE_RECURSE
  "CMakeFiles/calm_net.dir/message_buffer.cc.o"
  "CMakeFiles/calm_net.dir/message_buffer.cc.o.d"
  "CMakeFiles/calm_net.dir/scheduler.cc.o"
  "CMakeFiles/calm_net.dir/scheduler.cc.o.d"
  "libcalm_net.a"
  "libcalm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
