# Empty compiler generated dependencies file for calm_queries.
# This may be replaced when dependencies are built.
