file(REMOVE_RECURSE
  "CMakeFiles/calm_queries.dir/graph_queries.cc.o"
  "CMakeFiles/calm_queries.dir/graph_queries.cc.o.d"
  "CMakeFiles/calm_queries.dir/paper_programs.cc.o"
  "CMakeFiles/calm_queries.dir/paper_programs.cc.o.d"
  "libcalm_queries.a"
  "libcalm_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calm_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
