file(REMOVE_RECURSE
  "libcalm_queries.a"
)
