file(REMOVE_RECURSE
  "libcalm_datalog.a"
)
