file(REMOVE_RECURSE
  "CMakeFiles/calm_datalog.dir/analysis.cc.o"
  "CMakeFiles/calm_datalog.dir/analysis.cc.o.d"
  "CMakeFiles/calm_datalog.dir/ast.cc.o"
  "CMakeFiles/calm_datalog.dir/ast.cc.o.d"
  "CMakeFiles/calm_datalog.dir/evaluator.cc.o"
  "CMakeFiles/calm_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/calm_datalog.dir/fragment.cc.o"
  "CMakeFiles/calm_datalog.dir/fragment.cc.o.d"
  "CMakeFiles/calm_datalog.dir/ilog.cc.o"
  "CMakeFiles/calm_datalog.dir/ilog.cc.o.d"
  "CMakeFiles/calm_datalog.dir/parser.cc.o"
  "CMakeFiles/calm_datalog.dir/parser.cc.o.d"
  "CMakeFiles/calm_datalog.dir/program.cc.o"
  "CMakeFiles/calm_datalog.dir/program.cc.o.d"
  "CMakeFiles/calm_datalog.dir/stratifier.cc.o"
  "CMakeFiles/calm_datalog.dir/stratifier.cc.o.d"
  "CMakeFiles/calm_datalog.dir/wellfounded.cc.o"
  "CMakeFiles/calm_datalog.dir/wellfounded.cc.o.d"
  "libcalm_datalog.a"
  "libcalm_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calm_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
