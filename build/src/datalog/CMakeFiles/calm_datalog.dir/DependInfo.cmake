
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/analysis.cc" "src/datalog/CMakeFiles/calm_datalog.dir/analysis.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/analysis.cc.o.d"
  "/root/repo/src/datalog/ast.cc" "src/datalog/CMakeFiles/calm_datalog.dir/ast.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/ast.cc.o.d"
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/calm_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/fragment.cc" "src/datalog/CMakeFiles/calm_datalog.dir/fragment.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/fragment.cc.o.d"
  "/root/repo/src/datalog/ilog.cc" "src/datalog/CMakeFiles/calm_datalog.dir/ilog.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/ilog.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/calm_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/datalog/CMakeFiles/calm_datalog.dir/program.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/program.cc.o.d"
  "/root/repo/src/datalog/stratifier.cc" "src/datalog/CMakeFiles/calm_datalog.dir/stratifier.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/stratifier.cc.o.d"
  "/root/repo/src/datalog/wellfounded.cc" "src/datalog/CMakeFiles/calm_datalog.dir/wellfounded.cc.o" "gcc" "src/datalog/CMakeFiles/calm_datalog.dir/wellfounded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/calm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
