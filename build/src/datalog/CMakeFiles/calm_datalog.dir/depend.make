# Empty dependencies file for calm_datalog.
# This may be replaced when dependencies are built.
