file(REMOVE_RECURSE
  "libcalm_workload.a"
)
