file(REMOVE_RECURSE
  "CMakeFiles/calm_workload.dir/graph_gen.cc.o"
  "CMakeFiles/calm_workload.dir/graph_gen.cc.o.d"
  "CMakeFiles/calm_workload.dir/instance_gen.cc.o"
  "CMakeFiles/calm_workload.dir/instance_gen.cc.o.d"
  "libcalm_workload.a"
  "libcalm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
