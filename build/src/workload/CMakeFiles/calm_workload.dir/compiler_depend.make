# Empty compiler generated dependencies file for calm_workload.
# This may be replaced when dependencies are built.
