file(REMOVE_RECURSE
  "CMakeFiles/calm_transducer.dir/compiler.cc.o"
  "CMakeFiles/calm_transducer.dir/compiler.cc.o.d"
  "CMakeFiles/calm_transducer.dir/coordination.cc.o"
  "CMakeFiles/calm_transducer.dir/coordination.cc.o.d"
  "CMakeFiles/calm_transducer.dir/datalog_transducer.cc.o"
  "CMakeFiles/calm_transducer.dir/datalog_transducer.cc.o.d"
  "CMakeFiles/calm_transducer.dir/network.cc.o"
  "CMakeFiles/calm_transducer.dir/network.cc.o.d"
  "CMakeFiles/calm_transducer.dir/policy.cc.o"
  "CMakeFiles/calm_transducer.dir/policy.cc.o.d"
  "CMakeFiles/calm_transducer.dir/runner.cc.o"
  "CMakeFiles/calm_transducer.dir/runner.cc.o.d"
  "CMakeFiles/calm_transducer.dir/schema.cc.o"
  "CMakeFiles/calm_transducer.dir/schema.cc.o.d"
  "CMakeFiles/calm_transducer.dir/strategies.cc.o"
  "CMakeFiles/calm_transducer.dir/strategies.cc.o.d"
  "libcalm_transducer.a"
  "libcalm_transducer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calm_transducer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
