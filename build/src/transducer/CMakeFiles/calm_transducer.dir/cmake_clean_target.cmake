file(REMOVE_RECURSE
  "libcalm_transducer.a"
)
