
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transducer/compiler.cc" "src/transducer/CMakeFiles/calm_transducer.dir/compiler.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/compiler.cc.o.d"
  "/root/repo/src/transducer/coordination.cc" "src/transducer/CMakeFiles/calm_transducer.dir/coordination.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/coordination.cc.o.d"
  "/root/repo/src/transducer/datalog_transducer.cc" "src/transducer/CMakeFiles/calm_transducer.dir/datalog_transducer.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/datalog_transducer.cc.o.d"
  "/root/repo/src/transducer/network.cc" "src/transducer/CMakeFiles/calm_transducer.dir/network.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/network.cc.o.d"
  "/root/repo/src/transducer/policy.cc" "src/transducer/CMakeFiles/calm_transducer.dir/policy.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/policy.cc.o.d"
  "/root/repo/src/transducer/runner.cc" "src/transducer/CMakeFiles/calm_transducer.dir/runner.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/runner.cc.o.d"
  "/root/repo/src/transducer/schema.cc" "src/transducer/CMakeFiles/calm_transducer.dir/schema.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/schema.cc.o.d"
  "/root/repo/src/transducer/strategies.cc" "src/transducer/CMakeFiles/calm_transducer.dir/strategies.cc.o" "gcc" "src/transducer/CMakeFiles/calm_transducer.dir/strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/calm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/calm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/calm_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
