# Empty compiler generated dependencies file for calm_transducer.
# This may be replaced when dependencies are built.
