# Empty dependencies file for classify.
# This may be replaced when dependencies are built.
