file(REMOVE_RECURSE
  "CMakeFiles/classify.dir/classify.cpp.o"
  "CMakeFiles/classify.dir/classify.cpp.o.d"
  "classify"
  "classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
