# Empty dependencies file for winmove.
# This may be replaced when dependencies are built.
