file(REMOVE_RECURSE
  "CMakeFiles/winmove.dir/winmove.cpp.o"
  "CMakeFiles/winmove.dir/winmove.cpp.o.d"
  "winmove"
  "winmove.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winmove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
