# Empty dependencies file for bench_thm43_f1.
# This may be replaced when dependencies are built.
