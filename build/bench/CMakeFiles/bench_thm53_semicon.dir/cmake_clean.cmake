file(REMOVE_RECURSE
  "CMakeFiles/bench_thm53_semicon.dir/bench_thm53_semicon.cc.o"
  "CMakeFiles/bench_thm53_semicon.dir/bench_thm53_semicon.cc.o.d"
  "bench_thm53_semicon"
  "bench_thm53_semicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm53_semicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
