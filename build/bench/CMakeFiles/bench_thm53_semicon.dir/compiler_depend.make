# Empty compiler generated dependencies file for bench_thm53_semicon.
# This may be replaced when dependencies are built.
