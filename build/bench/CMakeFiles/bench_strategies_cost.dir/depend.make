# Empty dependencies file for bench_strategies_cost.
# This may be replaced when dependencies are built.
