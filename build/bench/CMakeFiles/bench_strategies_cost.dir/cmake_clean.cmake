file(REMOVE_RECURSE
  "CMakeFiles/bench_strategies_cost.dir/bench_strategies_cost.cc.o"
  "CMakeFiles/bench_strategies_cost.dir/bench_strategies_cost.cc.o.d"
  "bench_strategies_cost"
  "bench_strategies_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategies_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
