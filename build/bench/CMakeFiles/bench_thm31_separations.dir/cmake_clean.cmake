file(REMOVE_RECURSE
  "CMakeFiles/bench_thm31_separations.dir/bench_thm31_separations.cc.o"
  "CMakeFiles/bench_thm31_separations.dir/bench_thm31_separations.cc.o.d"
  "bench_thm31_separations"
  "bench_thm31_separations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm31_separations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
