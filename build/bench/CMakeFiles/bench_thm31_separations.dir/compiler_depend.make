# Empty compiler generated dependencies file for bench_thm31_separations.
# This may be replaced when dependencies are built.
