
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_main_results.cc" "bench/CMakeFiles/bench_fig2_main_results.dir/bench_fig2_main_results.cc.o" "gcc" "bench/CMakeFiles/bench_fig2_main_results.dir/bench_fig2_main_results.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transducer/CMakeFiles/calm_transducer.dir/DependInfo.cmake"
  "/root/repo/build/src/monotonicity/CMakeFiles/calm_monotonicity.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/calm_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/calm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/calm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/calm_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/calm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
