file(REMOVE_RECURSE
  "CMakeFiles/bench_thm45_noall.dir/bench_thm45_noall.cc.o"
  "CMakeFiles/bench_thm45_noall.dir/bench_thm45_noall.cc.o.d"
  "bench_thm45_noall"
  "bench_thm45_noall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm45_noall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
