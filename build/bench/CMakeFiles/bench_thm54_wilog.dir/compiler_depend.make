# Empty compiler generated dependencies file for bench_thm54_wilog.
# This may be replaced when dependencies are built.
