file(REMOVE_RECURSE
  "CMakeFiles/bench_thm54_wilog.dir/bench_thm54_wilog.cc.o"
  "CMakeFiles/bench_thm54_wilog.dir/bench_thm54_wilog.cc.o.d"
  "bench_thm54_wilog"
  "bench_thm54_wilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm54_wilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
