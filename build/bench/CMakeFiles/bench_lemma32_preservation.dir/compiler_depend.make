# Empty compiler generated dependencies file for bench_lemma32_preservation.
# This may be replaced when dependencies are built.
