file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma32_preservation.dir/bench_lemma32_preservation.cc.o"
  "CMakeFiles/bench_lemma32_preservation.dir/bench_lemma32_preservation.cc.o.d"
  "bench_lemma32_preservation"
  "bench_lemma32_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma32_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
