# Empty compiler generated dependencies file for bench_winmove.
# This may be replaced when dependencies are built.
