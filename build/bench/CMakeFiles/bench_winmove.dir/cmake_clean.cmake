file(REMOVE_RECURSE
  "CMakeFiles/bench_winmove.dir/bench_winmove.cc.o"
  "CMakeFiles/bench_winmove.dir/bench_winmove.cc.o.d"
  "bench_winmove"
  "bench_winmove.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_winmove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
