file(REMOVE_RECURSE
  "CMakeFiles/bench_thm44_f2.dir/bench_thm44_f2.cc.o"
  "CMakeFiles/bench_thm44_f2.dir/bench_thm44_f2.cc.o.d"
  "bench_thm44_f2"
  "bench_thm44_f2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm44_f2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
