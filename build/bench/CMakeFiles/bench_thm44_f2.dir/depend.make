# Empty dependencies file for bench_thm44_f2.
# This may be replaced when dependencies are built.
