// Reproduces Theorem 4.4 (F2 = Mdisjoint) constructively:
//
//  * Mdisjoint <= F2: the domain-request transducer computes Mdisjoint
//    queries (win-move, Q_TC) on every tested network with domain-guided
//    policies and fair schedules, and satisfies Definition 3.
//  * F2 <= Mdisjoint: replay of the proof's value-splitting argument with a
//    domain assignment sending adom(J) to y.
//  * Plus Zinn et al.'s headline: win-move is coordination-free under
//    domain guidance despite being non-monotone.

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "queries/graph_queries.h"
#include "transducer/coordination.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"
#include "workload/instance_gen.h"

using namespace calm;             // NOLINT
using namespace calm::transducer; // NOLINT

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

void CheckComputesEverywhere(bench::Report& report, const Transducer& t,
                             const Query& q, const Instance& input,
                             const std::string& label) {
  Instance expected = q.Eval(input).value();
  size_t runs = 0;
  bool all_ok = true;
  for (size_t n : {1u, 2u, 3u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(900 + k));
    for (uint64_t salt : {0u, 5u}) {
      HashDomainGuidedPolicy policy(nodes, salt);
      std::unique_ptr<TransducerNetwork> holder;
      auto make = [&]() -> Result<TransducerNetwork*> {
        holder = std::make_unique<TransducerNetwork>(
            nodes, &t, &policy, ModelOptions::PolicyAware());
        CALM_RETURN_IF_ERROR(holder->Initialize(input));
        return holder.get();
      };
      ConsistencyOptions co;
      co.random_runs = 3;
      co.seed = salt * 17 + n;
      Result<Instance> out = RunConsistently(make, co);
      ++runs;
      if (!out.ok() || out.value() != expected) all_ok = false;
    }
  }
  report.Check(label + " computed correctly on " + std::to_string(runs) +
                   " (network, domain assignment) combos x 4 schedules",
               all_ok);
}

Instance RenameEdgesTo(const Instance& graph, const char* rel) {
  Instance out;
  for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
    out.Insert(Fact(rel, t));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report("Theorem 4.4 — F2 = Mdisjoint (domain-guided model)");
  report.EnableJson(flags.json_path);

  report.Section("Mdisjoint <= F2: win-move (non-monotone!) and Q_TC");
  {
    auto win = queries::MakeWinMove();
    auto t_win = MakeDomainRequestTransducer(win.get());
    Instance game = RenameEdgesTo(workload::RandomGraph(7, 0.3, 2), "Move");
    CheckComputesEverywhere(report, *t_win, *win, game, "win-move (random game)");
    Instance chain{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)}),
                   Fact("Move", {V(3), V(4)}), Fact("Move", {V(4), V(3)})};
    CheckComputesEverywhere(report, *t_win, *win, chain,
                            "win-move (chain + drawn cycle)");

    auto qtc = queries::MakeComplementTransitiveClosure();
    auto t_qtc = MakeDomainRequestTransducer(qtc.get());
    CheckComputesEverywhere(report, *t_qtc, *qtc, workload::Path(5),
                            "Q_TC (path)");
    CheckComputesEverywhere(report, *t_qtc, *qtc,
                            workload::RandomGraph(6, 0.25, 9), "Q_TC (random)");
  }

  report.Section("Definition 3 under domain guidance: heartbeat prefix");
  {
    auto win = queries::MakeWinMove();
    auto t_win = MakeDomainRequestTransducer(win.get());
    Instance game{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
    for (size_t n : {1u, 2u, 3u}) {
      Network nodes;
      for (size_t k = 0; k < n; ++k) nodes.push_back(V(900 + k));
      Result<bool> hb = HeartbeatPrefixComputes(
          *t_win, ModelOptions::PolicyAware(), nodes, nodes[0], game,
          win->Eval(game).value());
      report.Check("win-move heartbeat prefix on a " + std::to_string(n) +
                       "-node network",
                   hb.ok() && hb.value());
    }
  }

  report.Section("F2 <= Mdisjoint: value-splitting replay");
  {
    auto win = queries::MakeWinMove();
    auto t_win = MakeDomainRequestTransducer(win.get());
    Network nodes{V(900), V(901)};
    Value x = V(900);
    Value y = V(901);
    Instance i{Fact("Move", {V(0), V(1)})};
    size_t trials = 0;
    size_t fails = 0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Instance j = workload::RandomDomainDisjointExtension(
          win->input_schema(), i, /*facts=*/3, /*fresh=*/3, seed);
      if (j.empty() || !IsDomainDisjointFrom(j, i)) continue;
      ++trials;
      // alpha: adom(J) -> {y}, everything else -> {x}.
      std::map<Value, std::set<Value>> alpha;
      for (Value v : j.ActiveDomain()) alpha[v] = {y};
      MapDomainGuidedPolicy policy(nodes, alpha, /*fallback=*/x);
      TransducerNetwork network(nodes, t_win.get(), &policy,
                                ModelOptions::PolicyAware());
      if (!network.Initialize(Instance::Union(i, j)).ok()) {
        ++fails;
        continue;
      }
      if (network.local_input(x) != i) {
        ++fails;
        continue;
      }
      for (int k = 0; k < 8; ++k) (void)network.Heartbeat(x);
      Instance q_i = win->Eval(i).value();
      if (!q_i.IsSubsetOf(network.GlobalOutput())) {
        ++fails;
        continue;
      }
      Result<RunResult> rest = RunToQuiescence(network);
      Instance q_ij = win->Eval(Instance::Union(i, j)).value();
      if (!rest.ok() || rest->output != q_ij || !q_i.IsSubsetOf(q_ij)) ++fails;
    }
    report.Check("Q(I) <= Q(I+J) forced on " + std::to_string(trials) +
                     " random domain-disjoint J's",
                 trials > 0 && fails == 0);
  }

  report.Section("outside Mdisjoint: the triangle query cannot be in F2");
  {
    // Under the ideal split (triangle A at x, disjoint triangle B at y), x's
    // heartbeat prefix outputs triangle A — but Q(I) on the full input is
    // empty, so any F2-style strategy would be wrong. We replay this with
    // the domain-request transducer.
    auto tri = queries::MakeTrianglesUnlessTwoDisjoint();
    auto t_tri = MakeDomainRequestTransducer(tri.get());
    Network nodes{V(900), V(901)};
    Instance a = workload::Cycle(3);
    Instance b = workload::Cycle(3, /*base=*/50);
    std::map<Value, std::set<Value>> alpha;
    for (Value v : b.ActiveDomain()) alpha[v] = {V(901)};
    MapDomainGuidedPolicy policy(nodes, alpha, V(900));
    TransducerNetwork network(nodes, t_tri.get(), &policy,
                              ModelOptions::PolicyAware());
    bool leaked = false;
    if (network.Initialize(Instance::Union(a, b)).ok()) {
      for (int k = 0; k < 8; ++k) (void)network.Heartbeat(V(900));
      // Full-input answer is empty; anything output is a leak.
      leaked = !network.GlobalOutput().empty();
    }
    report.Check(
        "domain-request strategy wrongly outputs a triangle for a query "
        "outside Mdisjoint",
        leaked);
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
