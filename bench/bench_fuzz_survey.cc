// Fuzz-survey driver: generates N random Datalog¬ programs across the seven
// paper fragments, pushes each through the full classification pipeline
// (fragment oracle, monotonicity ladder + witness audit, differential
// canonicalizer check, preservation sweeps, and the Theorem 4.3/4.4/4.5
// strategy transducers under async / chaos-fault / BSP semantics), and
// persists the classified corpus on the durable WAL. A non-empty corpus
// resumes: already-classified seeds are skipped, so a killed sweep picks up
// where it left off. Exits non-zero on any classifier/engine disagreement.
//
// Flags (besides bench/flags.h's --threads/--json/...):
//   --programs N     programs to survey (default 500)
//   --seed N         base seed; per-program seeds are mixed from it (default 1)
//   --corpus PATH    durable corpus WAL ("calm.corpus"); empty = in-memory
//   --witness_dir D  write shrunk divergence witnesses into D
//   --inject N       1 = also run the mislabeled negative control (default 0)

#include <cstring>
#include <string>

#include "base/thread_pool.h"
#include "bench/flags.h"
#include "bench/report.h"
#include "workload/fuzzer.h"

namespace {
using namespace calm;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(
      &argc, argv, {"--programs", "--seed", "--corpus", "--witness_dir",
                    "--inject"});
  size_t programs = 500;
  uint64_t seed = 1;
  std::string corpus_path;
  std::string witness_dir;
  bool inject = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--programs") == 0) {
      programs = std::strtoul(next("--programs"), nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(arg, "--corpus") == 0) {
      corpus_path = next("--corpus");
    } else if (std::strcmp(arg, "--witness_dir") == 0) {
      witness_dir = next("--witness_dir");
    } else if (std::strcmp(arg, "--inject") == 0) {
      inject = std::strtoul(next("--inject"), nullptr, 10) != 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }

  bench::Report report(
      "Program fuzzer — classified corpus sweep (fragments, ladder, "
      "preservation, async/fault/BSP strategies)");
  if (!flags.json_path.empty()) report.EnableJson(flags.json_path);

  workload::SurveyOptions o;
  o.seed = seed;
  o.programs = programs;
  o.corpus_path = corpus_path;
  o.witness_dir = witness_dir;
  o.inject_misclassification = inject;
  if (flags.threads != 0) o.classify.threads = flags.threads;

  report.Section("survey");
  report.Line("  %zu programs, base seed %llu%s", programs,
              static_cast<unsigned long long>(seed),
              corpus_path.empty()
                  ? " (in-memory corpus)"
                  : (", corpus " + corpus_path).c_str());
  Result<workload::SurveyStats> stats = workload::RunSurvey(o);
  if (!stats.ok()) {
    report.Check("survey runs", false, stats.status().ToString());
    return report.Finish();
  }
  report.Check("survey runs", true);
  report.Metric("programs_classified", static_cast<double>(stats->programs));
  report.Metric("programs_skipped", static_cast<double>(stats->skipped));
  report.Metric("strategy_runs", static_cast<double>(stats->strategy_runs));
  report.Metric("bsp_runs", static_cast<double>(stats->bsp_runs));
  report.Metric("disagreements", static_cast<double>(stats->disagreements));
  if (stats->skipped > 0) {
    report.Line("  resumed: %zu seeds already classified were skipped",
                stats->skipped);
  }

  report.Section("fragment histogram (whole corpus)");
  for (const auto& [fragment, count] : stats->fragment_histogram) {
    report.Line("  %-18s %zu", fragment.c_str(), count);
  }
  report.Section("class histogram (whole corpus)");
  for (const auto& [bucket, count] : stats->class_histogram) {
    report.Line("  %-10s %zu", bucket.c_str(), count);
  }

  report.Section("verdicts");
  // Every fragment the generator can emit must actually appear once the
  // sweep is big enough to cycle the shapes (7 programs).
  const size_t corpus_size = [&] {
    size_t n = 0;
    for (const auto& [fragment, count] : stats->fragment_histogram) n += count;
    return n;
  }();
  if (corpus_size >= workload::kProgramShapeCount) {
    report.Check("all seven fragments represented",
                 stats->fragment_histogram.size() ==
                     workload::kProgramShapeCount);
  }
  report.Check(
      "every guarantee-carrying program ran async, fault, and BSP twins",
      stats->strategy_runs == stats->bsp_runs,
      std::to_string(stats->strategy_runs) + " strategy vs " +
          std::to_string(stats->bsp_runs) + " BSP");
  report.Check("zero classifier/engine disagreements",
               stats->disagreements == 0,
               stats->disagreements == 0
                   ? ""
                   : std::to_string(stats->disagreements) +
                         " divergence records (see witness dir)");
  if (inject) {
    report.Check("negative control: mislabeled program caught",
                 stats->control_caught);
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
