// The win-move story end to end — the query that motivated the whole line
// of work ("win-move is coordination-free (sometimes)", Zinn et al., and
// this paper's finer answer):
//
//   1. central evaluation under the well-founded semantics (alternating
//      fixpoint) vs. native retrograde game analysis;
//   2. the paper-conclusion "doubled program" route: the doubled win-move
//      program is *connected* stratified Datalog, hence semicon, hence in
//      Mdisjoint by Theorem 5.3 — giving the simpler proof that win-move is
//      domain-disjoint-monotone;
//   3. monotonicity placement: win-move outside Mdistinct, inside Mdisjoint;
//   4. distributed evaluation: coordination-free under domain guidance on
//      several game families, network sizes and schedules — and provably
//      NOT computable by the broadcast strategy.

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "datalog/wellfounded.h"
#include "monotonicity/checker.h"
#include "queries/graph_queries.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

using namespace calm;                // NOLINT
using namespace calm::transducer;    // NOLINT

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

Instance AsGame(const Instance& graph) {
  Instance out;
  for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
    out.Insert(Fact("Move", t));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report("win-move — the flagship non-monotone coordination-free query");
  report.EnableJson(flags.json_path);

  datalog::Program win = datalog::ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  datalog::ProgramInfo info = datalog::Analyze(win).value();
  auto native = queries::MakeWinMove();

  report.Section("well-founded semantics vs. retrograde analysis");
  {
    size_t agreements = 0;
    for (uint64_t seed = 0; seed < 12; ++seed) {
      Instance game = AsGame(workload::RandomGraph(8, 0.3, seed));
      Result<datalog::WellFoundedModel> wf =
          datalog::EvaluateWellFounded(win, game);
      Result<Instance> nat = native->Eval(game);
      if (!wf.ok() || !nat.ok()) continue;
      const TupleSet& w = wf->definitely.TuplesOf(InternName("Win"));
      const TupleSet& n = nat->TuplesOf(InternName("O"));
      if (w == n) ++agreements;
    }
    report.Check("alternating fixpoint == retrograde analysis on 12 random games",
                 agreements == 12);
  }

  report.Section("the doubled-program route (paper's conclusion)");
  {
    report.Check("win-move itself is not stratifiable",
                 !datalog::IsStratifiable(win, info));
    datalog::DoubledProgram doubled =
        datalog::BuildDoubledProgram(win, info, /*steps=*/6);
    datalog::ProgramInfo dinfo = datalog::Analyze(doubled.program).value();
    datalog::FragmentInfo dfrag =
        datalog::ClassifyFragment(doubled.program, dinfo);
    report.Check("the doubled program IS stratifiable", dfrag.stratifiable);
    report.Check(
        "the doubled program is *connected* stratified Datalog (con-Datalog¬)",
        dfrag.connected_stratified);
    report.Check("hence semicon, so within Mdisjoint by Theorem 5.3",
                 dfrag.semi_connected);

    // The doubled program agrees with the alternating fixpoint whenever the
    // alternation converges within the unrolled steps.
    size_t agree = 0;
    size_t total = 0;
    uint32_t lo6 = InternName(datalog::DoubledProgram::LoName("Win", 6));
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Instance game = AsGame(workload::RandomGraph(6, 0.35, seed));
      Result<datalog::WellFoundedModel> wf =
          datalog::EvaluateWellFounded(win, game);
      Result<Instance> out = datalog::Evaluate(doubled.program, game);
      if (!wf.ok() || !out.ok()) continue;
      ++total;
      if (out->TuplesOf(lo6) == wf->definitely.TuplesOf(InternName("Win"))) {
        ++agree;
      }
    }
    report.Check("doubled program (6 rounds) == well-founded model on " +
                     std::to_string(total) + " games",
                 total == 8 && agree == total);
  }

  report.Section("monotonicity placement (Figure 1 position of win-move)");
  {
    monotonicity::ExhaustiveOptions o;
    o.domain_size = 2;
    o.max_facts_i = 2;
    o.fresh_values = 2;
    o.max_facts_j = 2;
    auto not_distinct = monotonicity::FindViolation(
        *native, monotonicity::MonotonicityClass::kDomainDistinct, o);
    report.Check("win-move not in Mdistinct",
                 not_distinct.ok() && not_distinct->has_value(),
                 not_distinct.ok() && not_distinct->has_value()
                     ? not_distinct->value().ToString()
                     : "");
    monotonicity::ExhaustiveOptions od = o;
    od.fresh_values = 3;
    od.max_facts_j = 3;
    auto in_disjoint = monotonicity::FindViolation(
        *native, monotonicity::MonotonicityClass::kDomainDisjoint, od);
    report.Check("win-move in Mdisjoint (exhaustive bounded)",
                 in_disjoint.ok() && !in_disjoint->has_value());
  }

  report.Section("distributed win-move across game families");
  {
    auto t = MakeDomainRequestTransducer(native.get());
    struct GameCase {
      const char* label;
      Instance game;
    };
    std::vector<GameCase> games;
    games.push_back({"chain of 6", AsGame(workload::Path(6))});
    games.push_back({"drawn cycle of 4", AsGame(workload::Cycle(4))});
    games.push_back({"random 8-vertex", AsGame(workload::RandomGraph(8, 0.3, 3))});
    Instance mixed = AsGame(workload::Path(4));
    mixed.InsertAll(AsGame(workload::Cycle(3, 100)));
    games.push_back({"chain + disjoint drawn cycle", mixed});

    for (const GameCase& g : games) {
      Instance expected = native->Eval(g.game).value();
      bool all_ok = true;
      for (size_t n : {1u, 2u, 3u}) {
        Network nodes;
        for (size_t k = 0; k < n; ++k) nodes.push_back(V(900 + k));
        HashDomainGuidedPolicy policy(nodes, n);
        std::unique_ptr<TransducerNetwork> holder;
        auto make = [&]() -> Result<TransducerNetwork*> {
          holder = std::make_unique<TransducerNetwork>(
              nodes, t.get(), &policy, ModelOptions::PolicyAware());
          CALM_RETURN_IF_ERROR(holder->Initialize(g.game));
          return holder.get();
        };
        ConsistencyOptions co;
        co.random_runs = 2;
        co.seed = n;
        Result<Instance> out = RunConsistently(make, co);
        if (!out.ok() || out.value() != expected) all_ok = false;
      }
      report.Check(std::string(g.label) + " computed on 1..3 nodes x schedules",
                   all_ok);
    }
  }

  report.Section("broadcast cannot compute win-move (it is not monotone)");
  {
    auto t = MakeBroadcastTransducer(native.get());
    Network nodes{V(900), V(901)};
    // Adversarial split: Move(0,1) at one node, Move(1,2) at the other;
    // the first node eagerly outputs O(0), which the full game refutes.
    std::map<Fact, std::set<Value>> ov{
        {Fact("Move", {V(0), V(1)}), {V(900)}},
        {Fact("Move", {V(1), V(2)}), {V(901)}},
    };
    HashPolicy base(nodes);
    OverridePolicy policy(&base, ov);
    Instance game{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
    TransducerNetwork network(nodes, t.get(), &policy,
                              ModelOptions::Original());
    bool leaked = false;
    if (network.Initialize(game).ok()) {
      Result<RunResult> r = RunToQuiescence(network);
      Instance expected = native->Eval(game).value();
      leaked = r.ok() && r->output != expected &&
               expected.IsSubsetOf(r->output);
    }
    report.Check("broadcast leaks the retracted output O(0)", leaked);
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
