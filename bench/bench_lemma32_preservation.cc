// Reproduces Lemma 3.2: H ( Hinj = M ( E = Mdistinct.
//
// Each (in)equality is re-derived empirically on specimen queries: the
// bounded preservation checkers (H / Hinj / E) must agree with the bounded
// monotonicity checkers (M / Mdistinct) query by query, and the strictness
// witnesses must separate.

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "monotonicity/checker.h"
#include "monotonicity/preservation.h"
#include "queries/graph_queries.h"

using namespace calm;                // NOLINT
using namespace calm::monotonicity;  // NOLINT

namespace {

// Set by main once flags are parsed; the helpers flush-and-exit through it
// when a SIGINT/SIGTERM lands mid-sweep (the sweeps' progress is already
// durable in --checkpoint_dir by then).
const bench::Flags* g_flags = nullptr;

bool InPreservation(const Query& q, PreservationClass cls,
                    const PreservationOptions& o) {
  Result<std::optional<PreservationViolation>> r =
      FindPreservationViolation(q, cls, o);
  bench::ExitIfCancelled(*g_flags);
  return r.ok() && !r->has_value();
}

bool InMonotonicity(const Query& q, MonotonicityClass cls,
                    const ExhaustiveOptions& o) {
  Result<std::optional<Counterexample>> r = FindViolation(q, cls, o);
  bench::ExitIfCancelled(*g_flags);
  return r.ok() && !r->has_value();
}

std::unique_ptr<Query> MakeNonLoopEdges() {
  return std::make_unique<NativeQuery>(
      "non-loop-edges", Schema({{"E", 2}}), Schema({{"O", 2}}),
      [](const Instance& in) -> Result<Instance> {
        Instance out;
        for (const Tuple& t : in.TuplesOf(InternName("E"))) {
          if (t[0] != t[1]) out.Insert(Fact("O", t));
        }
        return out;
      });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  g_flags = &flags;
  bench::InstallCancelHandlers();
  bench::Report report("Lemma 3.2 — H ( Hinj = M ( E = Mdistinct");
  report.EnableJson(flags.json_path);

  // Homomorphism checks are exponential in |adom| x |adom_target|, so they
  // run on 2-value domains; the extensions column needs 3 values (Q_TC's
  // witness is a 2-edge path through a midpoint). --domain_bump widens every
  // column in lockstep (the CI deep-sweep job passes 1): the lemma's
  // equalities are genuine, so wider bounds only grow the searched space —
  // affordable with the source-orbit reduction and result cache on.
  const size_t bump = flags.domain_bump;
  PreservationOptions po;
  po.domain_size = 2 + bump;
  po.max_facts = 2;
  po.checkpoint_dir = flags.checkpoint_dir;
  po.cancel = &bench::CancelFlag();
  PreservationOptions pe = po;
  pe.domain_size = 3 + bump;
  pe.max_facts = 3;
  ExhaustiveOptions mo;
  mo.domain_size = 2 + bump;
  mo.max_facts_i = 2;
  mo.fresh_values = 2;
  mo.max_facts_j = 2;
  mo.checkpoint_dir = flags.checkpoint_dir;
  mo.cancel = &bench::CancelFlag();

  std::vector<std::unique_ptr<Query>> specimens;
  specimens.push_back(queries::MakeTransitiveClosure());
  specimens.push_back(queries::MakeTwoHopJoin());
  specimens.push_back(MakeNonLoopEdges());
  specimens.push_back(queries::MakeComplementTransitiveClosure());
  specimens.push_back(queries::MakeStarQuery(2));

  report.Section("class membership matrix");
  report.Line("  %-18s %-4s %-6s %-4s %-4s %-10s", "query", "H", "Hinj", "M",
              "E", "Mdistinct");
  for (const auto& q : specimens) {
    bool h = InPreservation(*q, PreservationClass::kHomomorphisms, po);
    bool hinj =
        InPreservation(*q, PreservationClass::kInjectiveHomomorphisms, po);
    bool m = InMonotonicity(*q, MonotonicityClass::kMonotone, mo);
    bool e = InPreservation(*q, PreservationClass::kExtensions, pe);
    bool mdist = InMonotonicity(*q, MonotonicityClass::kDomainDistinct, mo);
    report.Line("  %-18s %-4s %-6s %-4s %-4s %-10s", q->name().c_str(),
                h ? "yes" : "no", hinj ? "yes" : "no", m ? "yes" : "no",
                e ? "yes" : "no", mdist ? "yes" : "no");
    report.Check(q->name() + ": Hinj verdict == M verdict", hinj == m);
    report.Check(q->name() + ": E verdict == Mdistinct verdict", e == mdist);
    report.Check(q->name() + ": H implies Hinj, M implies Mdistinct",
                 (!h || hinj) && (!m || mdist));
  }

  report.Section("strictness");
  {
    auto nle = MakeNonLoopEdges();
    bool h = InPreservation(*nle, PreservationClass::kHomomorphisms, po);
    bool hinj =
        InPreservation(*nle, PreservationClass::kInjectiveHomomorphisms, po);
    report.Check("H ( Hinj: non-loop-edges in Hinj \\ H", !h && hinj);

    NativeQuery comp_s(
        "complement-S", Schema({{"V", 1}, {"S", 1}}), Schema({{"O", 1}}),
        [](const Instance& in) -> Result<Instance> {
          Instance out;
          for (const Tuple& t : in.TuplesOf(InternName("V"))) {
            if (in.TuplesOf(InternName("S")).count(t) == 0) {
              out.Insert(Fact("O", t));
            }
          }
          return out;
        });
    bool m = InMonotonicity(comp_s, MonotonicityClass::kMonotone, mo);
    bool e = InPreservation(comp_s, PreservationClass::kExtensions, pe);
    report.Check("M ( E: V\\S in E \\ M", !m && e);
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
