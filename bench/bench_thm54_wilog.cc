// Reproduces the Section 5.2 landscape (Theorem 5.4 direction we can test
// mechanically): weakly safe ILOG¬ programs — value invention with
// invention-free outputs — and the semi-connected wILOG¬ fragment staying
// within Mdisjoint on bounded checks. Also re-derives Cabibbo-style facts
// the figure cites: SP-wILOG programs stay in Mdistinct (= E) on bounded
// checks, and wILOG(!=) programs stay in M.

#include "bench/flags.h"
#include "bench/report.h"
#include "datalog/ilog.h"
#include "datalog/parser.h"
#include "monotonicity/checker.h"
#include "workload/graph_gen.h"

using namespace calm;                // NOLINT
using namespace calm::monotonicity;  // NOLINT
using calm::datalog::IlogQuery;

namespace {

bool NoViolation(const Query& q, MonotonicityClass cls) {
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 2;
  o.max_facts_j = 2;
  Result<std::optional<Counterexample>> r = FindViolation(q, cls, o);
  if (!r.ok() || r->has_value()) return false;
  RandomOptions ro;
  ro.trials = 40;
  Result<std::optional<Counterexample>> rr = FindViolationRandom(q, cls, ro);
  return rr.ok() && !rr->has_value();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report("Theorem 5.4 / Section 5.2 — wILOG¬ fragments");
  report.EnableJson(flags.json_path);

  report.Section("weak safety analysis");
  {
    Result<datalog::Program> leaky = datalog::Parse(
        ".output Leak\nN(*, x) :- E(x, y).\nLeak(k) :- N(k, x).");
    report.Check("leaky program parses", leaky.ok());
    report.Check("leaky program rejected as not weakly safe",
                 !IlogQuery::Create(leaky.value(), "leak").ok());
    Result<datalog::Program> safe = datalog::Parse(
        ".output O\nN(*, x) :- E(x, y).\nO(x) :- N(k, x).");
    report.Check("projection of safe positions accepted",
                 IlogQuery::Create(safe.value(), "safe").ok());
  }

  report.Section("wILOG(!=) (positive + invention) stays in M");
  {
    IlogQuery q = IlogQuery::FromTextOrDie(
        ".output O\n"
        "G(*, x) :- E(x, y).\n"
        "Pair(k, y) :- G(k, x), E(x, y).\n"
        "O(y, z) :- Pair(k, y), Pair(k, z), y != z.\n",
        "same-source-pairs");
    report.Check("same-source-pairs in M",
                 NoViolation(q, MonotonicityClass::kMonotone));
    report.Check("... hence in Mdistinct and Mdisjoint",
                 NoViolation(q, MonotonicityClass::kDomainDistinct) &&
                     NoViolation(q, MonotonicityClass::kDomainDisjoint));
  }

  report.Section("SP-wILOG (edb negation + invention) stays in Mdistinct");
  {
    IlogQuery q = IlogQuery::FromTextOrDie(
        ".output O\n"
        "G(*, x) :- E(x, y), !Blocked(x).\n"
        "O(x) :- G(k, x).\n",
        "unblocked-sources");
    report.Check("unblocked-sources in Mdistinct",
                 NoViolation(q, MonotonicityClass::kDomainDistinct));
    // ... but not in M: blocking an existing source retracts it.
    Instance i{Fact("E", {Value::FromInt(0), Value::FromInt(1)})};
    Instance j{Fact("Blocked", {Value::FromInt(0)})};
    Result<std::optional<Counterexample>> r = CheckPair(q, i, j);
    report.Check("unblocked-sources not in M", r.ok() && r->has_value());
  }

  report.Section("semi-connected wILOG¬ stays in Mdisjoint (Theorem 5.4)");
  {
    IlogQuery q = IlogQuery::FromTextOrDie(
        ".output O\n"
        "G(*, x) :- E(x, y).\n"
        "Mark(x) :- G(k, x).\n"
        "O(x) :- Adom(x), !Mark(x).\n",
        "non-sources");
    report.Check("non-sources is semi-connected wILOG¬",
                 q.fragment().semi_connected);
    report.Check("non-sources in Mdisjoint",
                 NoViolation(q, MonotonicityClass::kDomainDisjoint));
    // ... and properly outside Mdistinct:
    Instance i{Fact("E", {Value::FromInt(0), Value::FromInt(1)})};
    Instance j{Fact("E", {Value::FromInt(1), Value::FromInt(9)})};
    Result<std::optional<Counterexample>> r = CheckPair(q, i, j);
    report.Check("non-sources not in Mdistinct", r.ok() && r->has_value());
  }

  report.Section("invention semantics: hash-consed Skolem terms");
  {
    datalog::Program p = datalog::ParseOrDie("N(*, x) :- E(x, y).");
    Instance in = workload::Star(4);  // center 0, spokes 1..4
    size_t invented = 0;
    Result<Instance> out =
        datalog::EvaluateIlog(p, in, {}, nullptr, &invented);
    report.Check("one invented value per distinct source",
                 out.ok() && invented == 1);

    datalog::Program diverging = datalog::ParseOrDie(
        "N(*, x) :- S(x).\nN(*, k) :- N(k, x).");
    datalog::EvalOptions opts;
    opts.max_total_facts = 500;
    Result<Instance> d = datalog::EvaluateIlog(
        diverging, Instance{Fact("S", {Value::FromInt(1)})}, opts);
    report.Check("divergent invention detected as 'output undefined'",
                 !d.ok() && d.status().code() == StatusCode::kResourceExhausted);
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
