// Reproduces Figure 2 — the paper's summary diagram — edge by edge:
//
//   Datalog(!=)  (  M         = F0 = A0
//   SP-Datalog   (  Mdistinct = E  = F1 = A1
//   semicon-D¬   (  Mdisjoint      = F2 = A2
//
// Columns: fragment membership is decided syntactically; monotonicity and
// preservation classes by the bounded checkers; F/A columns by simulating
// the corresponding strategy transducer on networks (correctness across
// fair schedules + the Definition 3 heartbeat-prefix witness).

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "monotonicity/checker.h"
#include "monotonicity/preservation.h"
#include "queries/graph_queries.h"
#include "queries/paper_programs.h"
#include "transducer/coordination.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

using namespace calm;                // NOLINT
using namespace calm::monotonicity;  // NOLINT
using namespace calm::transducer;    // NOLINT

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

bool InClass(const Query& q, MonotonicityClass cls) {
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 2;
  o.max_facts_j = 2;
  Result<std::optional<Counterexample>> r = FindViolation(q, cls, o);
  return r.ok() && !r->has_value();
}

// "Computable coordination-free with strategy S": the strategy transducer
// computes Q on a 2-node network under round-robin + random schedules AND
// passes the heartbeat-prefix test.
bool StrategyComputes(const Query& q, const Transducer& t,
                      const DistributionPolicy& policy,
                      const ModelOptions& model, const Instance& input) {
  Network nodes{V(900), V(901)};
  Instance expected = q.Eval(input).value();
  std::unique_ptr<TransducerNetwork> holder;
  auto make = [&]() -> Result<TransducerNetwork*> {
    holder = std::make_unique<TransducerNetwork>(nodes, &t, &policy, model);
    CALM_RETURN_IF_ERROR(holder->Initialize(input));
    return holder.get();
  };
  ConsistencyOptions co;
  co.random_runs = 2;
  Result<Instance> out = RunConsistently(make, co);
  if (!out.ok() || out.value() != expected) return false;
  Result<bool> hb =
      HeartbeatPrefixComputes(t, model, nodes, nodes[0], input, expected);
  return hb.ok() && hb.value();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report("Figure 2 — the main-results diagram, re-derived");
  report.EnableJson(flags.json_path);

  // ------------------------------------------------------------------
  report.Section("row 1: Datalog(!=) ( M = F0 = A0");
  {
    datalog::DatalogQuery tc = queries::TcProgram();
    report.Check("TC program is positive Datalog",
                 tc.fragment().positive && !tc.fragment().uses_inequalities);
    report.Check("TC in M", InClass(tc, MonotonicityClass::kMonotone));

    auto tcq = queries::MakeTransitiveClosure();
    auto bcast = MakeBroadcastTransducer(tcq.get());
    Network nodes{V(900), V(901)};
    HashPolicy policy(nodes);
    Instance input = workload::RandomGraph(6, 0.3, 1);
    report.Check("TC in F0 (broadcast on the original model)",
                 StrategyComputes(*tcq, *bcast, policy,
                                  ModelOptions::Original(), input));
    report.Check("TC in A0 (broadcast obliviously, no Id/All)",
                 StrategyComputes(*tcq, *bcast, policy,
                                  ModelOptions::Oblivious(), input));
    // Strictness Datalog(!=) ( M: a monotone query outside Datalog(!=)
    // needs e.g. a non-hom-preserved monotone query; the folklore witness
    // is "E with distinct endpoints" — in M, requires !=, and the class H
    // (plain Datalog's home) rejects it:
    NativeQuery nle("non-loop-edges", Schema({{"E", 2}}), Schema({{"O", 2}}),
                    [](const Instance& in) -> Result<Instance> {
                      Instance out;
                      for (const Tuple& t : in.TuplesOf(InternName("E"))) {
                        if (t[0] != t[1]) out.Insert(Fact("O", t));
                      }
                      return out;
                    });
    PreservationOptions po;
    po.domain_size = 2;
    po.max_facts = 2;
    Result<std::optional<PreservationViolation>> h =
        FindPreservationViolation(nle, PreservationClass::kHomomorphisms, po);
    report.Check("strictness: non-loop-edges in M but not in H",
                 InClass(nle, MonotonicityClass::kMonotone) && h.ok() &&
                     h->has_value());
  }

  // ------------------------------------------------------------------
  report.Section("row 2: SP-Datalog ( Mdistinct = E = F1 = A1");
  {
    datalog::DatalogQuery sp = datalog::DatalogQuery::FromTextOrDie(
        "O(x) :- V(x), !S(x).", "v-minus-s-sp");
    report.Check("V\\S program is SP-Datalog", sp.fragment().semi_positive);
    report.Check("V\\S in Mdistinct",
                 InClass(sp, MonotonicityClass::kDomainDistinct));
    PreservationOptions po;
    po.domain_size = 2;
    po.max_facts = 2;
    Result<std::optional<PreservationViolation>> e =
        FindPreservationViolation(sp, PreservationClass::kExtensions, po);
    report.Check("V\\S in E (= Mdistinct)", e.ok() && !e->has_value());

    auto absence = MakeAbsenceTransducer(&sp);
    Network nodes{V(900), V(901)};
    HashPolicy policy(nodes);
    Instance input{Fact("V", {V(1)}), Fact("V", {V(2)}), Fact("S", {V(2)})};
    report.Check("V\\S in F1 (absence strategy, policy-aware model)",
                 StrategyComputes(sp, *absence, policy,
                                  ModelOptions::PolicyAware(), input));
    report.Check("V\\S in A1 (absence strategy, no All)",
                 StrategyComputes(sp, *absence, policy,
                                  ModelOptions::PolicyAwareNoAll(), input));
    // Strictness SP-Datalog ( Mdistinct: Q_clique_3 is in no M^k_distinct
    // beyond k=1... the clean witness for "in Mdistinct, beyond SP" is the
    // value-invention query of Cabibbo; here we verify the inclusion
    // direction only and mark strictness via the bounded clique ladder:
    auto clique = queries::MakeCliqueQuery(3);
    report.Check("Q_clique_3 outside Mdistinct (not all of M^i collapse)",
                 !InClass(*clique, MonotonicityClass::kDomainDistinct));
  }

  // ------------------------------------------------------------------
  report.Section("row 3: semicon-Datalog¬ ( Mdisjoint = F2 = A2");
  {
    datalog::DatalogQuery qtc = queries::ComplementTcProgram();
    report.Check("Q_TC program is semicon-Datalog¬",
                 qtc.fragment().semi_connected &&
                     !qtc.fragment().semi_positive);
    report.Check("Q_TC in Mdisjoint",
                 InClass(qtc, MonotonicityClass::kDomainDisjoint));
    report.Check("Q_TC outside Mdistinct (rows are strict)",
                 !InClass(qtc, MonotonicityClass::kDomainDistinct));

    auto native_qtc = queries::MakeComplementTransitiveClosure();
    auto request = MakeDomainRequestTransducer(native_qtc.get());
    Network nodes{V(900), V(901)};
    HashDomainGuidedPolicy policy(nodes);
    Instance input = workload::Path(4);
    report.Check("Q_TC in F2 (domain-request, domain-guided policies)",
                 StrategyComputes(*native_qtc, *request, policy,
                                  ModelOptions::PolicyAware(), input));
    report.Check("Q_TC in A2 (domain-request, no All)",
                 StrategyComputes(*native_qtc, *request, policy,
                                  ModelOptions::PolicyAwareNoAll(), input));

    // Strictness semicon ( Mdisjoint is witnessed by win-move: in
    // Mdisjoint, yet not expressible in semicon-Datalog¬ under stratified
    // semantics (it is unstratifiable); we verify its Mdisjoint membership
    // and its F2 membership.
    auto win = queries::MakeWinMove();
    report.Check("win-move in Mdisjoint",
                 InClass(*win, MonotonicityClass::kDomainDisjoint));
    auto win_t = MakeDomainRequestTransducer(win.get());
    Instance game{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)})};
    report.Check("win-move in F2",
                 StrategyComputes(*win, *win_t, policy,
                                  ModelOptions::PolicyAware(), game));
  }

  // ------------------------------------------------------------------
  report.Section("column strictness: M ( Mdistinct ( Mdisjoint ( C");
  {
    auto qtc = queries::MakeComplementTransitiveClosure();
    auto win = queries::MakeWinMove();
    auto tri = queries::MakeTrianglesUnlessTwoDisjoint();
    report.Check("Q_TC: Mdisjoint yes / Mdistinct no",
                 InClass(*qtc, MonotonicityClass::kDomainDisjoint) &&
                     !InClass(*qtc, MonotonicityClass::kDomainDistinct));
    report.Check("win-move: Mdisjoint yes / M no",
                 InClass(*win, MonotonicityClass::kDomainDisjoint) &&
                     !InClass(*win, MonotonicityClass::kMonotone));
    Result<std::optional<Counterexample>> r = CheckPair(
        *tri, workload::Cycle(3), workload::Cycle(3, /*base=*/100));
    report.Check("triangle query computable but outside Mdisjoint",
                 r.ok() && r->has_value());
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
