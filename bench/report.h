#ifndef CALM_BENCH_REPORT_H_
#define CALM_BENCH_REPORT_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace calm::bench {

// Tiny reporting helper for the reproduction harnesses: prints sections and
// verdict rows, tracks failures, and returns a process exit code. Each bench
// binary re-derives one figure/theorem of the paper and prints the claims it
// verified.
class Report {
 public:
  explicit Report(const std::string& title) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
  }

  void Section(const std::string& name) {
    std::printf("\n--- %s ---\n", name.c_str());
  }

  // A free-form line.
  void Line(const char* format, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, format);
    std::vprintf(format, args);
    va_end(args);
    std::printf("\n");
  }

  // A verified claim: prints ok/FAIL and records the verdict.
  void Check(const std::string& claim, bool ok, const std::string& detail = "") {
    std::printf("  [%s] %s%s%s\n", ok ? " ok " : "FAIL", claim.c_str(),
                detail.empty() ? "" : " — ", detail.c_str());
    ++total_;
    if (!ok) {
      ++failed_;
      failures_.push_back(claim);
    }
  }

  // Prints the summary; returns 0 iff every check passed.
  int Finish() {
    std::printf("\n%zu/%zu claims verified", total_ - failed_, total_);
    if (failed_ > 0) {
      std::printf("; FAILED:\n");
      for (const std::string& f : failures_) std::printf("  - %s\n", f.c_str());
    } else {
      std::printf(".\n");
    }
    return failed_ == 0 ? 0 : 1;
  }

 private:
  size_t total_ = 0;
  size_t failed_ = 0;
  std::vector<std::string> failures_;
};

}  // namespace calm::bench

#endif  // CALM_BENCH_REPORT_H_
