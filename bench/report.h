#ifndef CALM_BENCH_REPORT_H_
#define CALM_BENCH_REPORT_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "base/thread_pool.h"

namespace calm::bench {

// Tiny reporting helper for the reproduction harnesses: prints sections and
// verdict rows, tracks failures, and returns a process exit code. Each bench
// binary re-derives one figure/theorem of the paper and prints the claims it
// verified. When EnableJson is set (the --json flag), Finish additionally
// writes the verdicts plus any Metric values (wall-clock, speedups, thread
// count) as a JSON document, so CI can archive the perf trajectory.
class Report {
 public:
  explicit Report(const std::string& title)
      : title_(title), start_(std::chrono::steady_clock::now()) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
  }

  // Writes a JSON summary to `path` when Finish runs (empty = disabled).
  void EnableJson(std::string path) { json_path_ = std::move(path); }

  void Section(const std::string& name) {
    std::printf("\n--- %s ---\n", name.c_str());
  }

  // A free-form line.
  void Line(const char* format, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, format);
    std::vprintf(format, args);
    va_end(args);
    std::printf("\n");
  }

  // A verified claim: prints ok/FAIL and records the verdict.
  void Check(const std::string& claim, bool ok, const std::string& detail = "") {
    std::printf("  [%s] %s%s%s\n", ok ? " ok " : "FAIL", claim.c_str(),
                detail.empty() ? "" : " — ", detail.c_str());
    checks_.push_back({claim, ok});
    ++total_;
    if (!ok) {
      ++failed_;
      failures_.push_back(claim);
    }
  }

  // Records a named numeric metric (printed and included in the JSON).
  void Metric(const std::string& name, double value,
              const std::string& unit = "") {
    std::printf("  metric %s = %.6g%s%s\n", name.c_str(), value,
                unit.empty() ? "" : " ", unit.c_str());
    metrics_.push_back({name, value});
  }

  // Prints the summary; returns 0 iff every check passed.
  int Finish() {
    std::printf("\n%zu/%zu claims verified", total_ - failed_, total_);
    if (failed_ > 0) {
      std::printf("; FAILED:\n");
      for (const std::string& f : failures_) std::printf("  - %s\n", f.c_str());
    } else {
      std::printf(".\n");
    }
    if (!json_path_.empty()) WriteJson();
    return failed_ == 0 ? 0 : 1;
  }

 private:
  struct CheckRecord {
    std::string claim;
    bool ok;
  };
  struct MetricRecord {
    std::string name;
    double value;
  };

  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  void WriteJson() {
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n",
                   json_path_.c_str());
      return;
    }
    double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::fprintf(f, "{\n  \"title\": \"%s\",\n", JsonEscape(title_).c_str());
    std::fprintf(f, "  \"threads\": %zu,\n", DefaultThreads());
    std::fprintf(f, "  \"wall_ms\": %.3f,\n", wall_ms);
    std::fprintf(f, "  \"passed\": %zu,\n  \"failed\": %zu,\n", total_ - failed_,
                 failed_);
    std::fprintf(f, "  \"metrics\": {");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.6g", i == 0 ? "" : ",",
                   JsonEscape(metrics_[i].name).c_str(), metrics_[i].value);
    }
    std::fprintf(f, "%s},\n", metrics_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"checks\": [");
    for (size_t i = 0; i < checks_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"claim\": \"%s\", \"ok\": %s}",
                   i == 0 ? "" : ",", JsonEscape(checks_[i].claim).c_str(),
                   checks_[i].ok ? "true" : "false");
    }
    std::fprintf(f, "%s]\n}\n", checks_.empty() ? "" : "\n  ");
    std::fclose(f);
    std::printf("JSON report written to %s\n", json_path_.c_str());
  }

  std::string title_;
  std::string json_path_;
  std::chrono::steady_clock::time_point start_;
  size_t total_ = 0;
  size_t failed_ = 0;
  std::vector<std::string> failures_;
  std::vector<CheckRecord> checks_;
  std::vector<MetricRecord> metrics_;
};

}  // namespace calm::bench

#endif  // CALM_BENCH_REPORT_H_
