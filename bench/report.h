#ifndef CALM_BENCH_REPORT_H_
#define CALM_BENCH_REPORT_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/thread_pool.h"

namespace calm::bench {

// Tiny reporting helper for the reproduction harnesses: prints sections and
// verdict rows, tracks failures, and returns a process exit code. Each bench
// binary re-derives one figure/theorem of the paper and prints the claims it
// verified. When EnableJson is set (the --json flag), Finish additionally
// writes the verdicts plus any Metric values (wall-clock, speedups, thread
// count) as a JSON document, so CI can archive the perf trajectory.
//
// The JSON document is built with base/json — the same serializer the stats
// structs (EvalStatsToJson, RunStatsToJson) and the metrics snapshot use —
// and the human-readable Stats lines are printed by walking that same JSON
// object, so the two outputs cannot disagree.
class Report {
 public:
  explicit Report(const std::string& title)
      : title_(title), start_(std::chrono::steady_clock::now()) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
  }

  // Writes a JSON summary to `path` when Finish runs (empty = disabled).
  void EnableJson(std::string path) { json_path_ = std::move(path); }

  void Section(const std::string& name) {
    std::printf("\n--- %s ---\n", name.c_str());
  }

  // A free-form line.
  void Line(const char* format, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, format);
    std::vprintf(format, args);
    va_end(args);
    std::printf("\n");
  }

  // A verified claim: prints ok/FAIL and records the verdict.
  void Check(const std::string& claim, bool ok, const std::string& detail = "") {
    std::printf("  [%s] %s%s%s\n", ok ? " ok " : "FAIL", claim.c_str(),
                detail.empty() ? "" : " — ", detail.c_str());
    checks_.push_back({claim, ok});
    ++total_;
    if (!ok) {
      ++failed_;
      failures_.push_back(claim);
    }
  }

  // Records a named numeric metric (printed and included in the JSON).
  void Metric(const std::string& name, double value,
              const std::string& unit = "") {
    std::printf("  metric %s = %.6g%s%s\n", name.c_str(), value,
                unit.empty() ? "" : " ", unit.c_str());
    metrics_.push_back({name, value});
  }

  // Records a named stats object (EvalStatsToJson, RunStatsToJson, a metrics
  // snapshot slice, ...). The human-readable k=v line is rendered from the
  // very object that lands in the JSON report under "stats", so the console
  // and --json outputs share one source of truth.
  void Stats(const std::string& name, const Json& object) {
    std::string line;
    for (const auto& [key, value] : object.members()) {
      if (!line.empty()) line += ' ';
      line += key + "=";
      if (value.is_int()) {
        line += std::to_string(value.int_value());
      } else if (value.is_number()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", value.double_value());
        line += buf;
      } else if (value.is_string()) {
        line += value.string_value();
      } else {
        line += value.Dump(-1);
      }
    }
    std::printf("  stats %s: %s\n", name.c_str(), line.c_str());
    stats_.emplace_back(name, object);
  }

  // Prints the summary; returns 0 iff every check passed.
  int Finish() {
    std::printf("\n%zu/%zu claims verified", total_ - failed_, total_);
    if (failed_ > 0) {
      std::printf("; FAILED:\n");
      for (const std::string& f : failures_) std::printf("  - %s\n", f.c_str());
    } else {
      std::printf(".\n");
    }
    if (!json_path_.empty()) WriteJson();
    return failed_ == 0 ? 0 : 1;
  }

 private:
  struct CheckRecord {
    std::string claim;
    bool ok;
  };
  struct MetricRecord {
    std::string name;
    double value;
  };

  void WriteJson() {
    double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    Json doc = Json::Object();
    doc.Set("title", Json::Str(title_));
    doc.Set("threads", Json::Uint(DefaultThreads()));
    doc.Set("wall_ms", Json::Double(wall_ms));
    doc.Set("passed", Json::Uint(total_ - failed_));
    doc.Set("failed", Json::Uint(failed_));
    Json metrics = Json::Object();
    for (const MetricRecord& m : metrics_) {
      metrics.Set(m.name, Json::Double(m.value));
    }
    doc.Set("metrics", std::move(metrics));
    Json stats = Json::Object();
    for (const auto& [name, object] : stats_) stats.Set(name, object);
    doc.Set("stats", std::move(stats));
    Json checks = Json::Array();
    for (const CheckRecord& c : checks_) {
      Json check = Json::Object();
      check.Set("claim", Json::Str(c.claim));
      check.Set("ok", Json::Bool(c.ok));
      checks.Append(std::move(check));
    }
    doc.Set("checks", std::move(checks));

    std::string text = doc.Dump(2);
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n",
                   json_path_.c_str());
      return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("JSON report written to %s\n", json_path_.c_str());
  }

  std::string title_;
  std::string json_path_;
  std::chrono::steady_clock::time_point start_;
  size_t total_ = 0;
  size_t failed_ = 0;
  std::vector<std::string> failures_;
  std::vector<CheckRecord> checks_;
  std::vector<MetricRecord> metrics_;
  std::vector<std::pair<std::string, Json>> stats_;
};

}  // namespace calm::bench

#endif  // CALM_BENCH_REPORT_H_
