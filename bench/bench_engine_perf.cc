// Engine performance benchmarks (google-benchmark): the substrate ablations
// DESIGN.md calls out — semi-naive vs naive evaluation, stratified vs
// well-founded semantics, transducer network simulation scaling, and the
// monotonicity checker.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/thread_pool.h"
#include "bench/flags.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/prepared.h"
#include "datalog/program.h"
#include "datalog/relstore.h"
#include "datalog/snapshot.h"
#include "datalog/wellfounded.h"
#include "monotonicity/checker.h"
#include "monotonicity/ladder.h"
#include "queries/graph_queries.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/fuzzer.h"
#include "workload/graph_gen.h"

namespace {

using namespace calm;  // NOLINT

const datalog::Program& TcProgram() {
  static const datalog::Program* kProgram =
      new datalog::Program(datalog::ParseOrDie(
          "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T"));
  return *kProgram;
}

void BM_TransitiveClosureSemiNaive(benchmark::State& state) {
  Instance input =
      workload::RandomGraphM(state.range(0), 3 * state.range(0), /*seed=*/7);
  datalog::EvalOptions opts;
  opts.semi_naive = true;
  size_t derived = 0;
  for (auto _ : state) {
    Result<Instance> out = datalog::Evaluate(TcProgram(), input, opts);
    benchmark::DoNotOptimize(out);
    derived = out.ok() ? out->size() : 0;
  }
  state.counters["facts"] = static_cast<double>(derived);
}
BENCHMARK(BM_TransitiveClosureSemiNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_TransitiveClosureNaive(benchmark::State& state) {
  Instance input =
      workload::RandomGraphM(state.range(0), 3 * state.range(0), /*seed=*/7);
  datalog::EvalOptions opts;
  opts.semi_naive = false;
  for (auto _ : state) {
    Result<Instance> out = datalog::Evaluate(TcProgram(), input, opts);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TransitiveClosureNaive)->Arg(16)->Arg(32)->Arg(64);

void BM_StratifiedComplementTc(benchmark::State& state) {
  datalog::Program program = datalog::ParseOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y). .output O");
  Instance input =
      workload::RandomGraphM(state.range(0), 2 * state.range(0), /*seed=*/3);
  for (auto _ : state) {
    Result<Instance> out = datalog::Evaluate(program, input);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StratifiedComplementTc)->Arg(16)->Arg(32)->Arg(64);

void BM_WellFoundedWinMove(benchmark::State& state) {
  datalog::Program program =
      datalog::ParseOrDie("Win(x) :- Move(x, y), !Win(y).");
  Instance graph =
      workload::RandomGraphM(state.range(0), 2 * state.range(0), /*seed=*/5);
  Instance input;
  for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
    input.Insert(Fact("Move", t));
  }
  for (auto _ : state) {
    Result<datalog::WellFoundedModel> m =
        datalog::EvaluateWellFounded(program, input);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_WellFoundedWinMove)->Arg(16)->Arg(32)->Arg(64);

void BM_BroadcastNetworkTc(benchmark::State& state) {
  auto tc = queries::MakeTransitiveClosure();
  auto t = transducer::MakeBroadcastTransducer(tc.get());
  transducer::Network nodes;
  for (int64_t k = 0; k < state.range(0); ++k) {
    nodes.push_back(Value::FromInt(900 + k));
  }
  transducer::HashPolicy policy(nodes);
  Instance input = workload::RandomGraphM(12, 30, /*seed=*/2);
  for (auto _ : state) {
    transducer::TransducerNetwork network(nodes, t.get(), &policy,
                                          transducer::ModelOptions::Original());
    (void)network.Initialize(input);
    Result<transducer::RunResult> r = transducer::RunToQuiescence(network);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BroadcastNetworkTc)->Arg(2)->Arg(4)->Arg(8);

void BM_DomainRequestNetworkWinMove(benchmark::State& state) {
  auto win = queries::MakeWinMove();
  auto t = transducer::MakeDomainRequestTransducer(win.get());
  transducer::Network nodes;
  for (int64_t k = 0; k < state.range(0); ++k) {
    nodes.push_back(Value::FromInt(900 + k));
  }
  transducer::HashDomainGuidedPolicy policy(nodes);
  Instance graph = workload::RandomGraphM(10, 20, /*seed=*/8);
  Instance input;
  for (const Tuple& tu : graph.TuplesOf(InternName("E"))) {
    input.Insert(Fact("Move", tu));
  }
  for (auto _ : state) {
    transducer::TransducerNetwork network(
        nodes, t.get(), &policy, transducer::ModelOptions::PolicyAware());
    (void)network.Initialize(input);
    Result<transducer::RunResult> r = transducer::RunToQuiescence(network);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DomainRequestNetworkWinMove)->Arg(2)->Arg(4);

// Fault-channel overhead: the same broadcast-TC run with no plan attached
// vs. a chaos plan. The fault-injected run does strictly more work
// (retransmit queues, durable inboxes, extra copies), so the tracked number
// is the injected/free ratio staying modest.
void BM_RunToQuiescenceFaultFree(benchmark::State& state) {
  auto tc = queries::MakeTransitiveClosure();
  auto t = transducer::MakeBroadcastTransducer(tc.get());
  transducer::Network nodes;
  for (int64_t k = 0; k < state.range(0); ++k) {
    nodes.push_back(Value::FromInt(900 + k));
  }
  transducer::HashPolicy policy(nodes);
  Instance input = workload::RandomGraphM(10, 24, /*seed=*/4);
  for (auto _ : state) {
    transducer::TransducerNetwork network(nodes, t.get(), &policy,
                                          transducer::ModelOptions::Original());
    (void)network.Initialize(input);
    Result<transducer::RunResult> r = transducer::RunToQuiescence(network);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RunToQuiescenceFaultFree)->Arg(2)->Arg(4);

void BM_RunToQuiescenceFaultInjected(benchmark::State& state) {
  auto tc = queries::MakeTransitiveClosure();
  auto t = transducer::MakeBroadcastTransducer(tc.get());
  transducer::Network nodes;
  for (int64_t k = 0; k < state.range(0); ++k) {
    nodes.push_back(Value::FromInt(900 + k));
  }
  transducer::HashPolicy policy(nodes);
  Instance input = workload::RandomGraphM(10, 24, /*seed=*/4);
  uint64_t plan_seed = 0;
  for (auto _ : state) {
    net::FaultPlan plan =
        net::FaultPlan::Random(++plan_seed, net::FaultProfile::Chaos());
    transducer::TransducerNetwork network(nodes, t.get(), &policy,
                                          transducer::ModelOptions::Original());
    (void)network.Initialize(input);
    transducer::RunOptions ro;
    ro.faults = &plan;
    Result<transducer::RunResult> r = transducer::RunToQuiescence(network, ro);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RunToQuiescenceFaultInjected)->Arg(2)->Arg(4);

// A rule written in pessimal order: B(z), A(x) is a cartesian product
// unless the compiler reorders to chain through the E atoms.
void BM_JoinOrderPessimalRule(benchmark::State& state) {
  datalog::Program program = datalog::ParseOrDie(
      "O(x, z) :- B(z), A(x), E(x, y), E(y, z). .output O");
  Instance input = workload::RandomGraphM(state.range(0), 3 * state.range(0),
                                          /*seed=*/9);
  for (uint64_t v = 0; v < static_cast<uint64_t>(state.range(0)); v += 2) {
    input.Insert(Fact("A", {Value::FromInt(v)}));
    input.Insert(Fact("B", {Value::FromInt(v + 1)}));
  }
  datalog::EvalOptions opts;
  opts.reorder_joins = state.range(1) != 0;
  for (auto _ : state) {
    Result<Instance> out = datalog::Evaluate(program, input, opts);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_JoinOrderPessimalRule)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({96, 0})
    ->Args({96, 1});

// Prepared-pipeline ablation. DatalogQuery::Create runs the whole frontend
// (analysis, stratification, join ordering, compilation) exactly once; Eval
// is then a scratch-reusing fixpoint run. The free Evaluate() entry point
// re-runs the frontend on every call. Both report items_per_second =
// evaluations/sec on the same input, so the prepared/recompile ratio is the
// tracked number (tools/compare_bench.py guards it in CI).
void BM_EvalPrepared(benchmark::State& state) {
  datalog::DatalogQuery q = datalog::DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T",
      "tc-prepared");
  Instance input =
      workload::RandomGraphM(state.range(0), 3 * state.range(0), /*seed=*/7);
  for (auto _ : state) {
    Result<Instance> out = q.Eval(input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalPrepared)->Arg(8)->Arg(32);

// Materialization in isolation: Database::ToInstance over a TC fixpoint's
// worth of rows (the back end of every Eval — raw-pointer column reads,
// strict-key-order emission, InsertSortedUnique adoption). Tracked so a
// regression here is attributable separately from the fixpoint itself.
void BM_ToInstance(benchmark::State& state) {
  datalog::DatalogQuery q = datalog::DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T",
      "tc-to-instance");
  Instance input =
      workload::RandomGraphM(state.range(0), 3 * state.range(0), /*seed=*/7);
  Result<Instance> fixpoint = q.Eval(input);
  if (!fixpoint.ok()) {
    state.SkipWithError("fixpoint evaluation failed");
    return;
  }
  datalog::Database db(*fixpoint);
  for (auto _ : state) {
    Instance out = db.ToInstance();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixpoint->size()));
}
BENCHMARK(BM_ToInstance)->Arg(32)->Arg(128);

// The dedup-table insert path in isolation: one binary relation fed a
// pre-generated code stream in which every row appears twice (TC-like
// attempt mix — about half the attempts are rejects). Covers the packed-u64
// open-addressing table, its growth schedule, and the batched insert the
// engines flush through.
void BM_DedupInsert(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> c0, c1;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (uint32_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    c0.push_back(static_cast<uint32_t>(x % (n / 2 + 1)));
    c1.push_back(static_cast<uint32_t>((x >> 32) % (n / 2 + 1)));
  }
  // Duplicate the stream: the second half replays the first.
  c0.insert(c0.end(), c0.begin(), c0.begin() + n);
  c1.insert(c1.end(), c1.begin(), c1.begin() + n);
  const uint32_t* cols[2] = {c0.data(), c1.data()};
  for (auto _ : state) {
    state.PauseTiming();
    datalog::Database db;
    // Interning outside the timed region: the stream is pure code-space.
    for (uint32_t v = 0; v <= n / 2; ++v) {
      (void)db.dict().Intern(Value::FromInt(v));
    }
    state.ResumeTiming();
    uint64_t inserted = 0, rejected = 0;
    db.EnsureStores({InternName("R")});
    datalog::RelStore* store = db.Store(InternName("R"));
    store->InsertBatchCols(cols, 2, c0.size(), &inserted, &rejected);
    benchmark::DoNotOptimize(inserted);
    benchmark::DoNotOptimize(rejected);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(c0.size()));
}
BENCHMARK(BM_DedupInsert)->Arg(4096)->Arg(65536);

// Morsel-parallel stratum evaluation on an instance large enough that the
// semi-naive deltas exceed the morsel size: Arg is eval_threads. Outputs are
// byte-identical at any count (pinned by tests/engine_diff_test.cc); the
// threads=N over threads=1 speedup on multi-core hosts is the tracked
// number. On single-core CI runners the lanes execute inline, so this also
// tracks the sink/merge overhead of the parallel plumbing itself.
void BM_EvalPreparedThreads(benchmark::State& state) {
  datalog::EvalOptions opts;
  opts.eval_threads = static_cast<int>(state.range(0));
  Result<datalog::PreparedProgram> p =
      datalog::PreparedProgram::Prepare(TcProgram(), opts);
  if (!p.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  Instance input = workload::RandomGraphM(400, 1600, /*seed=*/7);
  for (auto _ : state) {
    Result<Instance> out = p->Eval(input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalPreparedThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Incremental union evaluation: the Q(I) fixpoint is materialized once by
// MakeUnionEvaluator; each single-fact J then runs as an epoch-scoped
// insertion delta over the versioned columnar store and rolls back. A J
// that only grows the fixpoint (here: a fresh disjoint edge — TC is
// monotone) proves Q(I) ⊆ Q(I ∪ J) with no output materialization at all,
// so the tracked number is this benchmark against BM_EvalPrepared at the
// same Arg: the from-scratch cost of the identical subset check
// (tools/compare_bench.py guards the ratio in CI).
void BM_EvalIncrementalOverlay(benchmark::State& state) {
  datalog::DatalogQuery q = datalog::DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T",
      "tc-incremental");
  Instance input =
      workload::RandomGraphM(state.range(0), 3 * state.range(0), /*seed=*/7);
  std::vector<Fact> base;
  if (!q.EvalFacts(input, &base).ok()) {
    state.SkipWithError("base evaluation failed");
    return;
  }
  std::unique_ptr<UnionEvaluator> ev = q.MakeUnionEvaluator(input);
  Instance j;
  j.Insert(Fact("E", {Value::FromInt(1000), Value::FromInt(1001)}));
  for (auto _ : state) {
    Result<std::optional<Fact>> r = ev->FirstRetracted(j, base);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalIncrementalOverlay)->Arg(8)->Arg(32);

void BM_EvalCompileEveryCall(benchmark::State& state) {
  Instance input =
      workload::RandomGraphM(state.range(0), 3 * state.range(0), /*seed=*/7);
  for (auto _ : state) {
    Result<Instance> out = datalog::Evaluate(TcProgram(), input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalCompileEveryCall)->Arg(8)->Arg(32);

void BM_MonotonicityCheckExhaustive(benchmark::State& state) {
  auto qtc = queries::MakeComplementTransitiveClosure();
  monotonicity::ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 1;
  o.max_facts_j = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = monotonicity::FindViolation(
        *qtc, monotonicity::MonotonicityClass::kDomainDisjoint, o);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonotonicityCheckExhaustive)->Arg(1)->Arg(2)->Arg(3);

// The genericity-aware symmetry reduction, measured head to head on the same
// violation-free search (Q_TC in Mdisjoint — the whole space is enumerated)
// at a bound one notch past what the full sweep was previously clamped to.
// BM_FindViolationFull runs the plain sweep; BM_FindViolationCanonical sweeps
// orbit representatives with the stabilizer-filtered J space. Both are pinned
// to one thread so the ratio isolates the reduction (the canonical/full
// speedup is the tracked number; byte-identical verdicts are pinned by
// tests/canonical_test.cc).
monotonicity::ExhaustiveOptions CanonicalBenchBounds() {
  monotonicity::ExhaustiveOptions o;
  o.domain_size = 3;
  o.max_facts_i = 3;
  o.fresh_values = 2;
  o.max_facts_j = 2;
  o.threads = 1;
  return o;
}

void BM_FindViolationFull(benchmark::State& state) {
  auto qtc = queries::MakeComplementTransitiveClosure();
  monotonicity::ExhaustiveOptions o = CanonicalBenchBounds();
  o.symmetry = SymmetryMode::kOff;
  for (auto _ : state) {
    auto r = monotonicity::FindViolation(
        *qtc, monotonicity::MonotonicityClass::kDomainDisjoint, o);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FindViolationFull)->Unit(benchmark::kMillisecond);

void BM_FindViolationCanonical(benchmark::State& state) {
  auto qtc = queries::MakeComplementTransitiveClosure();
  monotonicity::ExhaustiveOptions o = CanonicalBenchBounds();
  o.symmetry = SymmetryMode::kForceOn;
  for (auto _ : state) {
    auto r = monotonicity::FindViolation(
        *qtc, monotonicity::MonotonicityClass::kDomainDisjoint, o);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FindViolationCanonical)->Unit(benchmark::kMillisecond);

// The ladder re-evaluates the identical I space 3 * max_i times; the cached
// variant shares one canonical result cache across all cells, so each
// isomorphism class of unions is evaluated once for the whole table.
void BM_LadderFull(benchmark::State& state) {
  auto qtc = queries::MakeComplementTransitiveClosure();
  monotonicity::ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 3;
  o.fresh_values = 2;
  o.threads = 1;
  o.symmetry = SymmetryMode::kOff;
  for (auto _ : state) {
    auto r = monotonicity::ComputeLadder(*qtc, 3, o);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LadderFull)->Unit(benchmark::kMillisecond);

void BM_LadderCached(benchmark::State& state) {
  auto qtc = queries::MakeComplementTransitiveClosure();
  monotonicity::ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 3;
  o.fresh_values = 2;
  o.threads = 1;
  o.symmetry = SymmetryMode::kForceOn;
  for (auto _ : state) {
    auto r = monotonicity::ComputeLadder(*qtc, 3, o);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LadderCached)->Unit(benchmark::kMillisecond);

// The durability layer (base/durable.h + datalog/snapshot.h): the cost of
// one atomic snapshot publication (write + fsync + rename + dirsync) and of
// recovering one back into a fresh Database, over the edge relation of a
// random graph. Arg is the vertex count; fsync dominates the write, decode
// + re-interning dominates the recover.
datalog::Database SnapshotBenchDb(int64_t n) {
  return datalog::Database(
      workload::RandomGraphM(n, 3 * n, /*seed=*/7));
}

std::string SnapshotBenchPath() {
  return "/tmp/calm_bench_snapshot_" + std::to_string(::getpid()) + ".snap";
}

void BM_SnapshotWrite(benchmark::State& state) {
  datalog::Database db = SnapshotBenchDb(state.range(0));
  const std::string path = SnapshotBenchPath();
  for (auto _ : state) {
    Status s = datalog::WriteSnapshot(db, path);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotWrite)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRecover(benchmark::State& state) {
  datalog::Database db = SnapshotBenchDb(state.range(0));
  const std::string path = SnapshotBenchPath();
  Status s = datalog::WriteSnapshot(db, path);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<datalog::Database> loaded = datalog::LoadSnapshot(path);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(loaded);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRecover)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// The fuzz-classification pipeline per program: generation, fragment check,
// the bounded monotonicity ladder with witness audit, the differential
// (symmetry off) re-run, and both preservation sweeps — everything the
// nightly survey pays per seed except the strategy/BSP network runs. Arg is
// the shape index; 0 (positive Datalog) and 6 (well-founded win-move) bound
// the cheap and expensive ends.
void BM_FuzzClassifyProgram(benchmark::State& state) {
  workload::FuzzerOptions fo;
  fo.shape = static_cast<workload::ProgramShape>(state.range(0));
  workload::ClassifyOptions co;
  co.run_strategies = false;  // ladder + sweeps only: the per-seed floor
  uint64_t seed = 1;
  for (auto _ : state) {
    fo.seed = seed++;
    workload::GeneratedProgram program = workload::GenerateProgram(fo);
    Result<workload::Classification> c =
        workload::ClassifyProgram(program, co);
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FuzzClassifyProgram)->Arg(0)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// The parallel exhaustive-check workload: a violation-free search (the whole
// space is enumerated, the embarrassingly parallel worst case) at a larger
// bound than the serial benchmark above, swept over thread counts. Arg is
// the thread count; 0 means the configured default (--threads / CALM_THREADS
// / hardware). CI archives this sweep as BENCH_engine.json; the speedup of
// threads=N over threads=1 is the tracked number.
void BM_MonotonicityCheckParallel(benchmark::State& state) {
  auto tc = queries::MakeTransitiveClosure();  // monotone: no early exit
  monotonicity::ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 3;
  o.fresh_values = 2;
  o.max_facts_j = 3;
  o.threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = monotonicity::FindViolation(
        *tc, monotonicity::MonotonicityClass::kMonotone, o);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(
      o.threads == 0 ? calm::DefaultThreads() : o.threads);
}
BENCHMARK(BM_MonotonicityCheckParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

namespace {

using namespace calm;  // NOLINT

// With --trace_out set, every Evaluate in the loops above recorded one
// datalog.eval span and one datalog.stratum span per stratum. Pin that
// relationship on one more evaluation whose EvalStats we hold, so the trace
// file's span counts are validated against the engine's own accounting
// before it is written.
int CrossCheckTrace() {
  if (!calm::TracingEnabled()) return 0;
  Instance input = workload::RandomGraphM(16, 48, /*seed=*/7);
  const size_t evals_before = calm::Trace::SpanCount("datalog.eval");
  const size_t strata_before = calm::Trace::SpanCount("datalog.stratum");
  datalog::EvalStats stats;
  Result<Instance> out = datalog::Evaluate(TcProgram(), input, {}, &stats);
  if (!out.ok()) {
    std::fprintf(stderr, "trace cross-check evaluation failed: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  const size_t evals = calm::Trace::SpanCount("datalog.eval") - evals_before;
  const size_t strata =
      calm::Trace::SpanCount("datalog.stratum") - strata_before;
  // TcProgram is a single stratum, so 1 eval span and 1 stratum span; the
  // stratum span's rounds arg equals stats.fixpoint_rounds by construction.
  if (evals != 1 || strata != 1) {
    std::fprintf(stderr,
                 "trace cross-check failed: %zu datalog.eval / %zu "
                 "datalog.stratum spans for one single-stratum evaluation "
                 "(stats: %s)\n",
                 evals, strata, datalog::EvalStatsToString(stats).c_str());
    return 1;
  }
  std::printf("trace cross-check ok: 1 eval span, 1 stratum span (%s)\n",
              datalog::EvalStatsToString(stats).c_str());
  return 0;
}

// Same idea for the incremental union path: one overlay evaluation through a
// fresh union evaluator must record exactly one datalog.eval.delta span (and
// bump calm.eval.incremental.overlays by one, with no fallback) when the
// mode is on, and exactly zero when --incremental=off routed the check to
// the overlay evaluator instead.
int CrossCheckIncrementalTrace() {
  if (!calm::TracingEnabled()) return 0;
  datalog::DatalogQuery q = datalog::DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z). .output T",
      "tc-trace-check");
  Instance input = workload::RandomGraphM(16, 48, /*seed=*/7);
  std::vector<Fact> base;
  Status bs = q.EvalFacts(input, &base);
  if (!bs.ok()) {
    std::fprintf(stderr, "incremental cross-check base eval failed: %s\n",
                 bs.ToString().c_str());
    return 1;
  }
  const bool metrics_on = calm::MetricsEnabled();
  Counter* overlays =
      metrics_on ? &MetricRegistry::Global().GetCounter(
                       "calm.eval.incremental.overlays")
                 : nullptr;
  Counter* fallbacks =
      metrics_on ? &MetricRegistry::Global().GetCounter(
                       "calm.eval.incremental.fallbacks")
                 : nullptr;
  const uint64_t overlays_before = metrics_on ? overlays->Value() : 0;
  const uint64_t fallbacks_before = metrics_on ? fallbacks->Value() : 0;
  const size_t deltas_before = calm::Trace::SpanCount("datalog.eval.delta");

  std::unique_ptr<UnionEvaluator> ev = q.MakeUnionEvaluator(input);
  Instance j;
  j.Insert(Fact("E", {Value::FromInt(1000), Value::FromInt(1001)}));
  Result<std::optional<Fact>> r = ev->FirstRetracted(j, base);
  if (!r.ok()) {
    std::fprintf(stderr, "incremental cross-check union failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  if (r->has_value()) {
    std::fprintf(stderr,
                 "incremental cross-check failed: TC reported a retracted "
                 "fact for a monotone overlay\n");
    return 1;
  }

  const bool incremental_on =
      datalog::DefaultIncrementalMode() == datalog::IncrementalMode::kOn;
  const size_t expected = incremental_on ? 1 : 0;
  const size_t deltas =
      calm::Trace::SpanCount("datalog.eval.delta") - deltas_before;
  if (deltas != expected) {
    std::fprintf(stderr,
                 "incremental cross-check failed: %zu datalog.eval.delta "
                 "spans for one overlay evaluation (expected %zu)\n",
                 deltas, expected);
    return 1;
  }
  if (metrics_on) {
    const uint64_t new_overlays = overlays->Value() - overlays_before;
    const uint64_t new_fallbacks = fallbacks->Value() - fallbacks_before;
    if (new_overlays != expected || new_fallbacks != 0) {
      std::fprintf(stderr,
                   "incremental cross-check failed: overlays +%llu / "
                   "fallbacks +%llu for one overlay evaluation (expected "
                   "+%zu / +0)\n",
                   static_cast<unsigned long long>(new_overlays),
                   static_cast<unsigned long long>(new_fallbacks), expected);
      return 1;
    }
  }
  std::printf("incremental cross-check ok: %zu delta span(s), no fallback\n",
              deltas);
  return 0;
}

}  // namespace

// Custom main: strip --threads/--json/--metrics_out/--trace_out
// (bench/flags.h) before handing argv to google-benchmark, so
// `bench_engine_perf --threads N` sizes the pool. JSON output goes through
// google-benchmark's own --benchmark_out; --trace_out/--metrics_out write
// the observability artifacts after the benchmarks finish.
int main(int argc, char** argv) {
  calm::bench::Flags flags = calm::bench::ParseFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int rc = CrossCheckTrace();
  rc |= CrossCheckIncrementalTrace();
  calm::bench::WriteObservability(flags);
  return rc;
}
