// Reproduces Figure 1: the monotonicity hierarchy
//
//     M ( Mdistinct ( Mdisjoint ( C,     M = M^i,
//     and the bounded ladders M^i_distinct / M^i_disjoint with their
//     (non-)inclusions.
//
// Every query class membership is decided by the bounded checkers of
// monotonicity/checker.h: "in" = exhaustive search over the stated space
// found no violation; "not in" = a concrete counterexample was found (these
// match the paper's proof witnesses and are printed).

#include <memory>
#include <vector>

#include "bench/flags.h"
#include "bench/report.h"
#include "monotonicity/checker.h"
#include "monotonicity/ladder.h"
#include "queries/graph_queries.h"
#include "workload/graph_gen.h"

using namespace calm;                // NOLINT
using namespace calm::monotonicity;  // NOLINT

namespace {

struct Verdict {
  bool decided = false;
  bool in = false;
  std::string detail;
};

Verdict Member(const Query& q, MonotonicityClass cls,
               const ExhaustiveOptions& opts) {
  Result<std::optional<Counterexample>> r = FindViolation(q, cls, opts);
  Verdict v;
  if (!r.ok()) {
    v.detail = r.status().ToString();
    return v;
  }
  v.decided = true;
  v.in = !r->has_value();
  if (r->has_value()) v.detail = r->value().ToString();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report(
      "Figure 1 — the monotonicity hierarchy (Ameloot et al., PODS 2014)");
  report.EnableJson(flags.json_path);

  ExhaustiveOptions base;
  base.domain_size = 2;
  base.max_facts_i = 2;
  base.fresh_values = 2;
  base.max_facts_j = 2;

  // ------------------------------------------------------------------
  report.Section("membership matrix (bounded exhaustive checks)");
  struct Specimen {
    std::unique_ptr<Query> q;
    bool expect_m, expect_distinct, expect_disjoint;
    ExhaustiveOptions opts;
  };
  std::vector<Specimen> specimens;
  specimens.push_back({queries::MakeTransitiveClosure(), true, true, true, base});
  specimens.push_back({queries::MakeTwoHopJoin(), true, true, true, base});
  {
    ExhaustiveOptions o = base;
    o.fresh_values = 1;
    specimens.push_back(
        {queries::MakeComplementTransitiveClosure(), false, false, true, o});
  }
  specimens.push_back({queries::MakeWinMove(), false, false, true, base});

  report.Line("  %-12s %-6s %-11s %-11s", "query", "M", "Mdistinct",
              "Mdisjoint");
  for (const Specimen& s : specimens) {
    Verdict m = Member(*s.q, MonotonicityClass::kMonotone, s.opts);
    Verdict di = Member(*s.q, MonotonicityClass::kDomainDistinct, s.opts);
    Verdict dj = Member(*s.q, MonotonicityClass::kDomainDisjoint, s.opts);
    report.Line("  %-12s %-6s %-11s %-11s", s.q->name().c_str(),
                m.in ? "yes" : "no", di.in ? "yes" : "no",
                dj.in ? "yes" : "no");
    report.Check(s.q->name() + " matches the paper's placement",
                 m.decided && di.decided && dj.decided &&
                     m.in == s.expect_m && di.in == s.expect_distinct &&
                     dj.in == s.expect_disjoint);
  }

  // ------------------------------------------------------------------
  report.Section("the bounded ladders, rendered (Figure 1's left columns)");
  {
    struct LadderCase {
      const char* label;
      std::unique_ptr<Query> q;
      size_t fresh;
      size_t expect_first_distinct;  // 0 = never within the table
      size_t expect_first_disjoint;
    };
    std::vector<LadderCase> cases;
    // Q_clique_3's M^3_disjoint violation needs 3 fresh values (a whole new
    // triangle), which this 1-fresh-value table cannot witness — rung 0
    // here; the hand-built witness appears under Thm 3.1(5) below.
    cases.push_back({"Q_clique_3", queries::MakeCliqueQuery(3), 1, 2, 0});
    cases.push_back({"Q_star_2", queries::MakeStarQuery(2), 3, 1, 2});
    cases.push_back(
        {"Q_TC", queries::MakeComplementTransitiveClosure(), 1, 2, 0});
    for (LadderCase& c : cases) {
      ExhaustiveOptions o;
      o.domain_size = c.label == std::string("Q_clique_3") ? 3 : 2;
      o.max_facts_i = 3;
      o.fresh_values = c.fresh;
      Result<Ladder> ladder = ComputeLadder(*c.q, 3, o);
      if (!ladder.ok()) {
        report.Check(std::string(c.label) + " ladder computed", false,
                     ladder.status().ToString());
        continue;
      }
      report.Line("%s:", c.label);
      report.Line("%s", ladder->ToString().c_str());
      report.Check(std::string(c.label) + " leaves M^i_distinct at i=" +
                       std::to_string(c.expect_first_distinct),
                   ladder->FirstDistinctViolation() == c.expect_first_distinct);
      report.Check(std::string(c.label) + " leaves M^i_disjoint at i=" +
                       std::to_string(c.expect_first_disjoint),
                   ladder->FirstDisjointViolation() == c.expect_first_disjoint);
    }
  }

  // ------------------------------------------------------------------
  report.Section("M ( Mdistinct ( Mdisjoint ( C (Theorem 3.1(1))");
  {
    auto qtc = queries::MakeComplementTransitiveClosure();
    ExhaustiveOptions o = base;
    o.fresh_values = 1;
    Verdict di = Member(*qtc, MonotonicityClass::kDomainDistinct, o);
    Verdict dj = Member(*qtc, MonotonicityClass::kDomainDisjoint, o);
    report.Check("Q_TC in Mdisjoint \\ Mdistinct",
                 di.decided && dj.decided && !di.in && dj.in, di.detail);

    auto tri = queries::MakeTrianglesUnlessTwoDisjoint();
    Result<std::optional<Counterexample>> r = CheckPair(
        *tri, workload::Cycle(3), workload::Cycle(3, /*base=*/100));
    report.Check("triangles-unless-two-disjoint in C \\ Mdisjoint",
                 r.ok() && r->has_value(),
                 r.ok() && r->has_value() ? r->value().ToString() : "");
  }

  // ------------------------------------------------------------------
  report.Section("M = M^i collapse (Theorem 3.1(2))");
  {
    auto tc = queries::MakeTransitiveClosure();
    auto star = queries::MakeStarQuery(2);
    for (size_t j : {1u, 2u, 3u}) {
      ExhaustiveOptions o = base;
      o.max_facts_j = j;
      Verdict v = Member(*tc, MonotonicityClass::kMonotone, o);
      report.Check("TC in M^" + std::to_string(j), v.decided && v.in);
    }
    ExhaustiveOptions o1 = base;
    o1.max_facts_j = 1;
    Verdict v = Member(*star, MonotonicityClass::kMonotone, o1);
    report.Check("Q_star_2 not even in M^1 (non-monotone queries fail at j=1)",
                 v.decided && !v.in, v.detail);
  }

  // ------------------------------------------------------------------
  report.Section("the M^i_distinct ladder via Q^{i+2}_clique (Thm 3.1(3))");
  for (size_t i : {1u, 2u}) {
    auto clique = queries::MakeCliqueQuery(i + 2);
    ExhaustiveOptions in_opts;
    in_opts.domain_size = 3;
    in_opts.max_facts_i = i + 2;
    in_opts.fresh_values = 1;
    in_opts.max_facts_j = i;
    Verdict inside = Member(*clique, MonotonicityClass::kDomainDistinct, in_opts);
    ExhaustiveOptions out_opts = in_opts;
    out_opts.max_facts_j = i + 1;
    Verdict outside =
        Member(*clique, MonotonicityClass::kDomainDistinct, out_opts);
    report.Check("Q_clique_" + std::to_string(i + 2) + " in M^" +
                     std::to_string(i) + "_distinct \\ M^" +
                     std::to_string(i + 1) + "_distinct",
                 inside.decided && outside.decided && inside.in && !outside.in,
                 outside.detail);
  }

  // ------------------------------------------------------------------
  report.Section("the M^i_disjoint ladder via Q^{i+1}_star (Thm 3.1(4))");
  for (size_t i : {1u, 2u}) {
    auto star = queries::MakeStarQuery(i + 1);
    ExhaustiveOptions in_opts;
    in_opts.domain_size = 2;
    in_opts.max_facts_i = 2;
    in_opts.fresh_values = i + 2;
    in_opts.max_facts_j = i;
    Verdict inside = Member(*star, MonotonicityClass::kDomainDisjoint, in_opts);
    ExhaustiveOptions out_opts = in_opts;
    out_opts.max_facts_j = i + 1;
    Verdict outside =
        Member(*star, MonotonicityClass::kDomainDisjoint, out_opts);
    report.Check("Q_star_" + std::to_string(i + 1) + " in M^" +
                     std::to_string(i) + "_disjoint \\ M^" +
                     std::to_string(i + 1) + "_disjoint",
                 inside.decided && outside.decided && inside.in && !outside.in,
                 outside.detail);
  }

  // ------------------------------------------------------------------
  report.Section("M^i_distinct ( M^i_disjoint, strictness (Thm 3.1(5,6))");
  {
    // Q^{i+1}_clique in M^i_disjoint but Q^{j+1}_star not in M^i_distinct.
    auto clique3 = queries::MakeCliqueQuery(3);
    ExhaustiveOptions o;
    o.domain_size = 3;
    o.max_facts_i = 3;
    o.fresh_values = 3;
    o.max_facts_j = 2;
    Verdict v = Member(*clique3, MonotonicityClass::kDomainDisjoint, o);
    report.Check("Q_clique_3 in M^2_disjoint (Thm 3.1(5))", v.decided && v.in);

    auto star2 = queries::MakeStarQuery(2);
    ExhaustiveOptions o1;
    o1.domain_size = 2;
    o1.max_facts_i = 1;
    o1.fresh_values = 1;
    o1.max_facts_j = 1;
    Verdict w = Member(*star2, MonotonicityClass::kDomainDistinct, o1);
    report.Check("Q_star_2 not in M^1_distinct (Thm 3.1(6))",
                 w.decided && !w.in, w.detail);
  }

  // ------------------------------------------------------------------
  report.Section("M^i_distinct !<= M^j_disjoint via Q^j_duplicate (Thm 3.1(7))");
  {
    auto dup = queries::MakeDuplicateQuery(2);
    ExhaustiveOptions o;
    o.domain_size = 2;
    o.max_facts_i = 2;
    o.fresh_values = 2;
    o.max_facts_j = 1;
    Verdict inside = Member(*dup, MonotonicityClass::kDomainDistinct, o);
    ExhaustiveOptions o2 = o;
    o2.max_facts_j = 2;
    Verdict outside = Member(*dup, MonotonicityClass::kDomainDisjoint, o2);
    report.Check("Q_duplicate_2 in M^1_distinct but not in M^2_disjoint",
                 inside.decided && outside.decided && inside.in && !outside.in,
                 outside.detail);
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
