// Section 4.3 — the cost of the three coordination-free evaluation
// strategies. The paper gives no measurements (its algorithms are "naive:
// the whole database is sent to all nodes"); this harness quantifies that
// naivety: messages and transitions versus network size and input size for
// broadcast (M), absence (Mdistinct) and domain-request (Mdisjoint).
//
// Measured shape: broadcast is always cheapest (exactly |I| * (n-1) fact
// messages). The other two trade off: the absence strategy's extra cost is
// the broadcast of non-facts, which is governed by |adom|^k — roughly flat
// in |I| at fixed active domain — while the domain-request protocol pays a
// few messages per (node, value) pair and overtakes the absence strategy as
// the network grows.

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "queries/graph_queries.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

using namespace calm;             // NOLINT
using namespace calm::transducer; // NOLINT

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

struct CostRow {
  bool ok = false;
  net::RunStats stats;
};

CostRow Measure(const Transducer& t, const DistributionPolicy& policy,
                const Network& nodes, const Instance& input,
                const Instance& expected) {
  TransducerNetwork network(nodes, &t, &policy, ModelOptions::PolicyAware());
  CostRow row;
  if (!network.Initialize(input).ok()) return row;
  RunOptions ro;
  ro.scheduler = RunOptions::SchedulerKind::kRoundRobin;
  Result<RunResult> r = RunToQuiescence(network, ro);
  if (!r.ok() || !r->quiesced || r->output != expected) return row;
  row.ok = true;
  row.stats = r->stats;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report("Section 4.3 — strategy cost comparison");
  report.EnableJson(flags.json_path);

  auto tc = queries::MakeTransitiveClosure();
  auto qtc = queries::MakeComplementTransitiveClosure();
  auto broadcast = MakeBroadcastTransducer(tc.get());
  auto absence = MakeAbsenceTransducer(qtc.get());
  auto request = MakeDomainRequestTransducer(qtc.get());

  report.Section("sweep over network size n (input: random graph, 12 edges)");
  Instance input = workload::RandomGraphM(8, 12, /*seed=*/1);
  Instance tc_out = tc->Eval(input).value();
  Instance qtc_out = qtc->Eval(input).value();
  report.Line("  %-3s %-24s %-12s %-12s %-12s", "n", "strategy", "transitions",
              "sent", "delivered");
  std::vector<size_t> bcast_sent;
  std::vector<size_t> abs_sent;
  std::vector<size_t> req_sent;
  for (size_t n : {1u, 2u, 3u, 4u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(900 + k));
    HashPolicy hash(nodes);
    HashDomainGuidedPolicy dom(nodes);

    CostRow b = Measure(*broadcast, hash, nodes, input, tc_out);
    CostRow a = Measure(*absence, hash, nodes, input, qtc_out);
    CostRow r = Measure(*request, dom, nodes, input, qtc_out);
    report.Check("all strategies correct at n=" + std::to_string(n),
                 b.ok && a.ok && r.ok);
    for (auto [label, row] :
         {std::pair<const char*, CostRow*>{"broadcast(TC)/M", &b},
          {"absence(Q_TC)/Mdistinct", &a},
          {"domain-request(Q_TC)/Mdisjoint", &r}}) {
      report.Line("  %-3zu %-24s %-12zu %-12zu %-12zu", n, label,
                  row->stats.transitions, row->stats.messages_sent,
                  row->stats.messages_delivered);
    }
    bcast_sent.push_back(b.stats.messages_sent);
    abs_sent.push_back(a.stats.messages_sent);
    req_sent.push_back(r.stats.messages_sent);
  }
  report.Check("single node never communicates (all strategies)",
               bcast_sent[0] == 0 && abs_sent[0] == 0 && req_sent[0] == 0);
  report.Check("broadcast is strictly cheapest at every n >= 2",
               bcast_sent[1] < abs_sent[1] && bcast_sent[1] < req_sent[1] &&
                   bcast_sent[3] < abs_sent[3] && bcast_sent[3] < req_sent[3]);
  report.Check(
      "absence-vs-request crossover: absence dearer at n=2, request dearer "
      "at n=4 (protocol cost scales with nodes x values)",
      abs_sent[1] > req_sent[1] && req_sent[3] > abs_sent[3]);
  report.Check("messages grow with n for every strategy",
               bcast_sent[1] < bcast_sent[3] && abs_sent[1] < abs_sent[3] &&
                   req_sent[1] < req_sent[3]);

  report.Section("sweep over input size (n = 3 nodes)");
  report.Line("  %-7s %-24s %-12s %-12s", "edges", "strategy", "transitions",
              "sent");
  Network nodes{V(900), V(901), V(902)};
  HashPolicy hash(nodes);
  HashDomainGuidedPolicy dom(nodes);
  std::vector<size_t> abs_by_edges;
  std::vector<size_t> bcast_by_edges;
  for (size_t m : {4u, 8u, 16u, 24u}) {
    Instance in = workload::RandomGraphM(10, m, /*seed=*/m);
    Instance tco = tc->Eval(in).value();
    Instance qo = qtc->Eval(in).value();
    CostRow b = Measure(*broadcast, hash, nodes, in, tco);
    CostRow a = Measure(*absence, hash, nodes, in, qo);
    CostRow r = Measure(*request, dom, nodes, in, qo);
    report.Check("all strategies correct at |E|=" + std::to_string(m),
                 b.ok && a.ok && r.ok);
    for (auto [label, row] :
         {std::pair<const char*, CostRow*>{"broadcast(TC)/M", &b},
          {"absence(Q_TC)/Mdistinct", &a},
          {"domain-request(Q_TC)/Mdisjoint", &r}}) {
      report.Line("  %-7zu %-24s %-12zu %-12zu", m, label,
                  row->stats.transitions, row->stats.messages_sent);
    }
    abs_by_edges.push_back(a.stats.messages_sent);
    bcast_by_edges.push_back(b.stats.messages_sent);
    // Broadcast ships each fact to each other node exactly once.
    report.Check("broadcast ships exactly |E| * (n-1) messages at |E|=" +
                     std::to_string(m),
                 b.stats.messages_sent == m * (nodes.size() - 1));
  }
  // Broadcast grows linearly in |E| (6x from 4 to 24 edges); the absence
  // strategy's cost is dominated by the |adom|^2 non-fact broadcast and
  // stays within a small factor at fixed active domain.
  report.Check("broadcast cost grows ~linearly with |E| (6x edges => 6x msgs)",
               bcast_by_edges.back() == 6 * bcast_by_edges.front());
  report.Check(
      "absence cost is adom-bound: < 3x growth while |E| grows 6x",
      abs_by_edges.back() < 3 * abs_by_edges.front());

  bench::WriteObservability(flags);
  return report.Finish();
}
