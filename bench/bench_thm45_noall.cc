// Reproduces Theorem 4.5 and Corollary 4.6: removing the All relation does
// not shrink the computable classes —
//
//     A1 = Mdistinct,   A2 = Mdisjoint,   F0 = A0 = M.
//
// The strategy transducers never read All, so they run unmodified in the
// no-All model; the broadcast strategy even runs obliviously (no Id, no
// All). We verify each on its class's specimen queries, and replay the
// A1 <= Mdistinct single-node argument (a node that cannot see the network
// behaves identically on a one-node and a two-node network).

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "queries/graph_queries.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

using namespace calm;             // NOLINT
using namespace calm::transducer; // NOLINT

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

std::unique_ptr<Query> MakeVMinusS() {
  return std::make_unique<NativeQuery>(
      "v-minus-s", Schema({{"V", 1}, {"S", 1}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        Instance out;
        for (const Tuple& t : in.TuplesOf(InternName("V"))) {
          if (in.TuplesOf(InternName("S")).count(t) == 0) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
}

bool ComputesConsistently(const Transducer& t, const Query& q,
                          const Instance& input,
                          const DistributionPolicy& policy,
                          const Network& nodes, const ModelOptions& model) {
  std::unique_ptr<TransducerNetwork> holder;
  auto make = [&]() -> Result<TransducerNetwork*> {
    holder = std::make_unique<TransducerNetwork>(nodes, &t, &policy, model);
    CALM_RETURN_IF_ERROR(holder->Initialize(input));
    return holder.get();
  };
  ConsistencyOptions co;
  co.random_runs = 3;
  Result<Instance> out = RunConsistently(make, co);
  return out.ok() && out.value() == q.Eval(input).value();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report(
      "Theorem 4.5 / Corollary 4.6 — the no-All and oblivious models");
  report.EnableJson(flags.json_path);

  Network nodes2{V(900), V(901)};
  Network nodes3{V(900), V(901), V(902)};

  report.Section("A1 = Mdistinct: absence strategy without All");
  {
    auto q = MakeVMinusS();
    auto t = MakeAbsenceTransducer(q.get());
    Instance input{Fact("V", {V(1)}), Fact("V", {V(2)}), Fact("V", {V(3)}),
                   Fact("S", {V(2)})};
    HashPolicy policy2(nodes2);
    HashPolicy policy3(nodes3, 3);
    report.Check("V\\S on 2 nodes (no All)",
                 ComputesConsistently(*t, *q, input, policy2, nodes2,
                                      ModelOptions::PolicyAwareNoAll()));
    report.Check("V\\S on 3 nodes (no All)",
                 ComputesConsistently(*t, *q, input, policy3, nodes3,
                                      ModelOptions::PolicyAwareNoAll()));
  }

  report.Section("A2 = Mdisjoint: domain-request strategy without All");
  {
    auto q = queries::MakeWinMove();
    auto t = MakeDomainRequestTransducer(q.get());
    Instance game{Fact("Move", {V(0), V(1)}), Fact("Move", {V(1), V(2)}),
                  Fact("Move", {V(4), V(5)}), Fact("Move", {V(5), V(4)})};
    HashDomainGuidedPolicy policy2(nodes2);
    HashDomainGuidedPolicy policy3(nodes3, 11);
    report.Check("win-move on 2 nodes (no All)",
                 ComputesConsistently(*t, *q, game, policy2, nodes2,
                                      ModelOptions::PolicyAwareNoAll()));
    report.Check("win-move on 3 nodes (no All)",
                 ComputesConsistently(*t, *q, game, policy3, nodes3,
                                      ModelOptions::PolicyAwareNoAll()));
  }

  report.Section("F0 = A0 = M: broadcast strategy runs obliviously");
  {
    auto q = queries::MakeTransitiveClosure();
    auto t = MakeBroadcastTransducer(q.get());
    Instance input = workload::RandomGraph(7, 0.25, 4);
    HashPolicy policy(nodes3);
    report.Check("TC on 3 nodes, oblivious model (no Id, no All)",
                 ComputesConsistently(*t, *q, input, policy, nodes3,
                                      ModelOptions::Oblivious()));
    report.Check("TC on 3 nodes, original model of [13]",
                 ComputesConsistently(*t, *q, input, policy, nodes3,
                                      ModelOptions::Original()));
  }

  report.Section("A1 <= Mdistinct: the single-node indistinguishability replay");
  {
    // Without All, node x on a 2-node network where y holds only the
    // domain-distinct J behaves exactly as on a 1-node network with input I.
    auto q = MakeVMinusS();
    auto t = MakeAbsenceTransducer(q.get());
    Instance i{Fact("V", {V(1)}), Fact("S", {V(1)}), Fact("V", {V(2)})};
    Instance j{Fact("V", {V(7)})};  // domain distinct from i

    // 1-node run on I.
    Network solo{V(900)};
    AllToOnePolicy p_solo(V(900));
    TransducerNetwork net1(solo, t.get(), &p_solo,
                           ModelOptions::PolicyAwareNoAll());
    (void)net1.Initialize(i);
    for (int k = 0; k < 8; ++k) (void)net1.Heartbeat(V(900));

    // 2-node run on I+J with J at y; heartbeats at x only.
    AllToOnePolicy base(V(900));
    std::map<Fact, std::set<Value>> to_y;
    j.ForEachFact(
        [&](uint32_t name, const Tuple& tu) { to_y[Fact(name, tu)] = {V(901)}; });
    OverridePolicy p2(&base, to_y);
    TransducerNetwork net2(nodes2, t.get(), &p2,
                           ModelOptions::PolicyAwareNoAll());
    (void)net2.Initialize(Instance::Union(i, j));
    for (int k = 0; k < 8; ++k) (void)net2.Heartbeat(V(900));

    report.Check("x's state identical on both networks (cannot detect node y)",
                 net1.state(V(900)) == net2.state(V(900)));
    Instance q_i = q->Eval(i).value();
    report.Check("x outputs Q(I) in both runs",
                 q_i.IsSubsetOf(net1.GlobalOutput()) &&
                     q_i.IsSubsetOf(net2.GlobalOutput()));
    Result<RunResult> rest = RunToQuiescence(net2);
    report.Check("extending the 2-node run computes Q(I+J) >= Q(I)",
                 rest.ok() &&
                     rest->output == q->Eval(Instance::Union(i, j)).value() &&
                     q_i.IsSubsetOf(rest->output));
  }

  report.Section("with All *exposed*, the same split IS detectable");
  {
    // The contrast that motivates Theorem 4.5: in the full model node x sees
    // All(y), so its system facts differ between the two networks.
    auto q = MakeVMinusS();
    auto t = MakeAbsenceTransducer(q.get());
    Instance i{Fact("V", {V(1)})};
    Network solo{V(900)};
    AllToOnePolicy policy(V(900));
    TransducerNetwork net1(solo, t.get(), &policy, ModelOptions::PolicyAware());
    TransducerNetwork net2(nodes2, t.get(), &policy,
                           ModelOptions::PolicyAware());
    (void)net1.Initialize(i);
    (void)net2.Initialize(i);
    Result<Instance> s1 = net1.SystemFactsFor(V(900), Instance{});
    Result<Instance> s2 = net2.SystemFactsFor(V(900), Instance{});
    report.Check("system facts differ when All is exposed",
                 s1.ok() && s2.ok() && s1.value() != s2.value());
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
