// Confluence-under-faults harness: hammers the Section 4.2/4.3 strategy
// transducers with seeded fault plans (duplication, reordering,
// drop-with-retransmit, partition-then-heal, crash-restart) crossed with
// every scheduler and checks the coordination-free strategies still compute
// their query — the fault-tolerant reading of Theorems 4.3-4.5. The
// racy-election negative control must diverge; its divergence is
// delta-debugged to a minimal fault schedule, written as a JSON trace, and
// replayed to verify the witness is deterministic.
//
// Flags (besides bench/flags.h's --threads/--json):
//   --plans N        fault plans per scheduler kind (default 64)
//   --seed N         base seed for plan generation (default 1)
//   --trace_dir DIR  write divergence traces as DIR/<scenario>-<n>.json
//   --replay FILE    replay a recorded trace instead of running the sweep

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "bench/flags.h"
#include "bench/report.h"
#include "queries/graph_queries.h"
#include "transducer/confluence.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"

namespace {

using namespace calm;  // NOLINT

Value V(uint64_t i) { return Value::FromInt(i); }

// ---------------------------------------------------------------------------
// Scenario catalog. A trace names its scenario, so replay can rebuild the
// identical (transducer, policy, input) without shipping code in the trace.
// ---------------------------------------------------------------------------

struct Scenario {
  std::string name;
  bool coordination_free = true;
  std::unique_ptr<Query> query;  // null for racy-election
  std::unique_ptr<transducer::Transducer> machine;
  Instance input;
  transducer::Network nodes;
  std::unique_ptr<transducer::DistributionPolicy> policy;
  transducer::ModelOptions model;

  transducer::NetworkFactory Factory() const {
    return [this]() -> Result<std::unique_ptr<transducer::TransducerNetwork>> {
      auto network = std::make_unique<transducer::TransducerNetwork>(
          nodes, machine.get(), policy.get(), model);
      CALM_RETURN_IF_ERROR(network->Initialize(input));
      return network;
    };
  }
};

std::unique_ptr<Query> MakeVMinusS() {
  return std::make_unique<NativeQuery>(
      "v-minus-s", Schema({{"V", 1}, {"S", 1}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        Instance out;
        for (const Tuple& t : in.TuplesOf(InternName("V"))) {
          if (in.TuplesOf(InternName("S")).count(t) == 0) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
}

std::unique_ptr<Scenario> MakeScenario(const std::string& name) {
  auto s = std::make_unique<Scenario>();
  s->name = name;
  const uint64_t seed = 1;
  const size_t node_count = 3;
  for (size_t k = 0; k < node_count; ++k) s->nodes.push_back(V(900 + k));
  if (name == "broadcast-tc") {
    s->query = queries::MakeTransitiveClosure();
    s->machine = transducer::MakeBroadcastTransducer(s->query.get());
    s->input = workload::RandomGraph(6, 0.3, seed);
    s->policy = std::make_unique<transducer::HashPolicy>(s->nodes, seed);
    s->model = transducer::ModelOptions::Original();
  } else if (name == "absence-vminus") {
    s->query = MakeVMinusS();
    s->machine = transducer::MakeAbsenceTransducer(s->query.get());
    for (uint64_t k = 0; k < 4; ++k) s->input.Insert(Fact("V", {V(k)}));
    s->input.Insert(Fact("S", {V(1)}));
    s->policy = std::make_unique<transducer::HashPolicy>(s->nodes, seed);
    s->model = transducer::ModelOptions::PolicyAware();
  } else if (name == "request-winmove") {
    s->query = queries::MakeWinMove();
    s->machine = transducer::MakeDomainRequestTransducer(s->query.get());
    Instance graph = workload::RandomGraph(5, 0.35, seed);
    for (const Tuple& t : graph.TuplesOf(InternName("E"))) {
      s->input.Insert(Fact("Move", t));
    }
    s->policy =
        std::make_unique<transducer::HashDomainGuidedPolicy>(s->nodes, seed);
    s->model = transducer::ModelOptions::PolicyAware();
  } else if (name == "racy-election") {
    s->coordination_free = false;
    s->machine = transducer::MakeRacyElectionTransducer();
    for (uint64_t k = 1; k <= node_count; ++k) {
      s->input.Insert(Fact("P", {V(k)}));
    }
    s->policy = std::make_unique<transducer::HashPolicy>(s->nodes, seed);
    s->model = transducer::ModelOptions::Original();
  } else {
    return nullptr;
  }
  return s;
}

const char* const kScenarios[] = {"broadcast-tc", "absence-vminus",
                                  "request-winmove", "racy-election"};

transducer::TraceRecord WitnessTrace(
    const Scenario& s, const transducer::ConfluenceReport& report,
    const transducer::DivergenceWitness& witness) {
  transducer::TraceRecord trace;
  trace.scenario = s.name;
  trace.policy = "hash";
  trace.policy_salt = 1;
  trace.model = s.model.ToString();
  for (Value n : s.nodes) trace.nodes.push_back(n.payload());
  s.input.ForEachFact([&](uint32_t rel, const Tuple& t) {
    trace.input.push_back(Fact(rel, t));
  });
  trace.scheduler = witness.scheduler;
  trace.scheduler_seed = witness.plan_seed;
  trace.events = witness.events;
  trace.choices = witness.choices;
  report.reference.ForEachFact([&](uint32_t rel, const Tuple& t) {
    trace.expected_output.push_back(Fact(rel, t));
  });
  witness.observed.ForEachFact([&](uint32_t rel, const Tuple& t) {
    trace.observed_output.push_back(Fact(rel, t));
  });
  return trace;
}

int ReplayFile(const std::string& path, bench::Report* report) {
  std::ifstream in(path);
  if (!in) {
    report->Check("trace file opens", false, path);
    return report->Finish();
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<transducer::TraceRecord> trace =
      transducer::ParseTrace(buffer.str());
  report->Check("trace parses", trace.ok(),
                trace.ok() ? "" : trace.status().ToString());
  if (!trace.ok()) return report->Finish();
  std::unique_ptr<Scenario> scenario = MakeScenario(trace->scenario);
  report->Check("scenario '" + trace->scenario + "' known",
                scenario != nullptr);
  if (scenario == nullptr) return report->Finish();
  report->Line("replaying %s: %zu fault events under %s(seed=%llu)",
               path.c_str(), trace->events.size(),
               transducer::SchedulerKindName(trace->scheduler),
               static_cast<unsigned long long>(trace->scheduler_seed));
  Result<transducer::ReplayOutcome> outcome =
      transducer::ReplayTrace(scenario->Factory(), *trace);
  report->Check("replay runs", outcome.ok(),
                outcome.ok() ? "" : outcome.status().ToString());
  if (!outcome.ok()) return report->Finish();
  report->Check("recorded output reproduced", outcome->reproduced_output,
                outcome->result.output.ToString());
  report->Check("recorded schedule reproduced", outcome->reproduced_choices);
  report->Line("divergence from expected output: %s",
               outcome->diverged ? "yes" : "no");
  return report->Finish();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(
      &argc, argv, {"--plans", "--seed", "--trace_dir", "--replay"});
  bench::InstallCancelHandlers();
  size_t plans = 64;
  uint64_t seed = 1;
  std::string trace_dir;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--plans") == 0) {
      plans = std::strtoul(next("--plans"), nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(arg, "--trace_dir") == 0) {
      trace_dir = next("--trace_dir");
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay_path = next("--replay");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }

  bench::Report report(
      replay_path.empty()
          ? "Fault-injection confluence oracle (Theorems 4.3-4.5 under "
            "duplication / reorder / drop-retransmit / partition / crash)"
          : "Divergence trace replay");
  if (!flags.json_path.empty()) report.EnableJson(flags.json_path);
  if (!replay_path.empty()) return ReplayFile(replay_path, &report);

  transducer::ConfluenceOptions opts;
  opts.fault_plans = plans;
  opts.seed = seed;
  opts.threads = DefaultThreads();

  net::FaultStats aggregate;
  size_t total_runs = 0;
  size_t traces_written = 0;
  for (const char* name : kScenarios) {
    // A SIGINT/SIGTERM between scenarios still flushes --metrics_out /
    // --trace_out with everything gathered so far.
    bench::ExitIfCancelled(flags);
    std::unique_ptr<Scenario> s = MakeScenario(name);
    report.Section(s->name);
    transducer::ConfluenceOptions scenario_opts = opts;
    if (!s->coordination_free) {
      // Round-robin only: the faultless round-robin run is deterministic,
      // so every divergence is attributable to the injected faults and the
      // shrunk schedule is a meaningful witness.
      scenario_opts.schedulers = {
          transducer::RunOptions::SchedulerKind::kRoundRobin};
    }
    Result<transducer::ConfluenceReport> result =
        transducer::CheckConfluence(s->Factory(), scenario_opts);
    if (!result.ok()) {
      report.Check(s->name + " oracle runs", false, result.status().ToString());
      continue;
    }
    total_runs += result->runs;
    const net::FaultStats& fs = result->total_faults;
    aggregate.duplicates += fs.duplicates;
    aggregate.drops += fs.drops;
    aggregate.retransmits += fs.retransmits;
    aggregate.reorders += fs.reorders;
    aggregate.partitions += fs.partitions;
    aggregate.partition_holds += fs.partition_holds;
    aggregate.crashes += fs.crashes;
    report.Line(
        "  %zu runs (%zu faulted): %zu dup, %zu dropped, %zu reordered, "
        "%zu partitions, %zu crashes",
        result->runs, result->faulted_runs, fs.duplicates, fs.drops,
        fs.reorders, fs.partitions, fs.crashes);

    if (s->coordination_free) {
      std::string detail;
      if (!result->confluent()) {
        const transducer::DivergenceWitness& w = result->divergences[0];
        detail = std::string("diverged under ") +
                 transducer::SchedulerKindName(w.scheduler) +
                 " plan seed " + std::to_string(w.plan_seed);
      }
      report.Check(s->name + " confluent under all fault plans",
                   result->confluent(), detail);
    } else {
      report.Check(s->name + " diverges (coordination detected)",
                   !result->confluent());
      for (size_t d = 0; d < result->divergences.size(); ++d) {
        const transducer::DivergenceWitness& w = result->divergences[d];
        report.Line("  witness %zu: %zu events shrunk to %zu (%s, seed %llu)",
                    d, w.original_events, w.events.size(),
                    transducer::SchedulerKindName(w.scheduler),
                    static_cast<unsigned long long>(w.plan_seed));
        transducer::TraceRecord trace = WitnessTrace(*s, *result, w);

        // The witness must replay deterministically to the same divergence.
        Result<transducer::ReplayOutcome> replay =
            transducer::ReplayTrace(s->Factory(), trace);
        bool deterministic = replay.ok() && replay->reproduced_output &&
                             replay->reproduced_choices && replay->diverged;
        if (d == 0) {
          report.Check("shrunk witness replays deterministically",
                       deterministic,
                       replay.ok() ? "" : replay.status().ToString());
        }

        Result<std::string> json = transducer::SerializeTrace(trace);
        if (d == 0) {
          report.Check("witness serializes to JSON", json.ok(),
                       json.ok() ? "" : json.status().ToString());
        }
        if (json.ok() && !trace_dir.empty()) {
          std::string path = trace_dir + "/" + s->name + "-" +
                             std::to_string(d) + ".json";
          std::ofstream out(path);
          if (out) {
            out << *json;
            ++traces_written;
            report.Line("  trace written to %s", path.c_str());
          } else {
            report.Check("trace written", false, path);
          }
        }
      }
      if (!result->divergences.empty()) {
        report.Metric("witness_events_original",
                      static_cast<double>(
                          result->divergences[0].original_events));
        report.Metric(
            "witness_events_shrunk",
            static_cast<double>(result->divergences[0].events.size()));
      }
    }
  }

  report.Section("fault coverage");
  report.Metric("runs", static_cast<double>(total_runs));
  report.Metric("faults_duplicate", static_cast<double>(aggregate.duplicates));
  report.Metric("faults_drop", static_cast<double>(aggregate.drops));
  report.Metric("faults_reorder", static_cast<double>(aggregate.reorders));
  report.Metric("faults_partition", static_cast<double>(aggregate.partitions));
  report.Metric("faults_crash", static_cast<double>(aggregate.crashes));
  if (traces_written > 0) {
    report.Metric("traces_written", static_cast<double>(traces_written));
  }
  // The acceptance bar: the sweep exercised every one of the five fault
  // kinds (so "confluent under all plans" actually covered the model).
  report.Check("all five fault kinds exercised",
               aggregate.duplicates > 0 && aggregate.drops > 0 &&
                   aggregate.reorders > 0 && aggregate.partitions > 0 &&
                   aggregate.crashes > 0);
  // Observability cross-check: one traced, faulted run of the win-move
  // scenario. Every completed transition records exactly one net.step span
  // and every reorder/partition/crash exactly one net.fault.* instant, so
  // the Chrome trace written by --trace_out must agree with RunStats and
  // FaultStats to the event.
  if (TracingEnabled()) {
    report.Section("observability cross-check (trace vs RunStats)");
    std::unique_ptr<Scenario> s = MakeScenario("request-winmove");
    Result<std::unique_ptr<transducer::TransducerNetwork>> network =
        s->Factory()();
    if (!network.ok()) {
      report.Check("cross-check network builds", false,
                   network.status().ToString());
    } else {
      net::FaultPlan plan =
          net::FaultPlan::Random(seed, net::FaultProfile::Chaos());
      transducer::RunOptions ro;
      ro.faults = &plan;
      const size_t steps_before = Trace::SpanCount("net.step");
      const size_t reorders_before = Trace::InstantCount("net.fault.reorder");
      const size_t crashes_before = Trace::InstantCount("net.fault.crash");
      const size_t partitions_before =
          Trace::InstantCount("net.fault.partition");
      Result<transducer::RunResult> run =
          transducer::RunToQuiescence(**network, ro);
      if (!run.ok()) {
        report.Check("cross-check run quiesces", false,
                     run.status().ToString());
      } else {
        report.Stats("cross_check_run", net::RunStatsToJson(run->stats));
        const size_t steps = Trace::SpanCount("net.step") - steps_before;
        report.Check(
            "net.step span count equals RunStats transitions",
            steps == run->stats.transitions,
            std::to_string(steps) + " spans vs " +
                std::to_string(run->stats.transitions) + " transitions");
        const net::FaultStats& fs = plan.stats();
        const size_t reorders =
            Trace::InstantCount("net.fault.reorder") - reorders_before;
        const size_t crashes =
            Trace::InstantCount("net.fault.crash") - crashes_before;
        const size_t partitions =
            Trace::InstantCount("net.fault.partition") - partitions_before;
        report.Check("net.fault.* instants equal FaultStats counts",
                     reorders == fs.reorders && crashes == fs.crashes &&
                         partitions == fs.partitions,
                     "reorders " + std::to_string(reorders) + "/" +
                         std::to_string(fs.reorders) + ", crashes " +
                         std::to_string(crashes) + "/" +
                         std::to_string(fs.crashes) + ", partitions " +
                         std::to_string(partitions) + "/" +
                         std::to_string(fs.partitions));
      }
    }
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
