// Reproduces Section 5.1: semicon-Datalog¬ <= Mdisjoint (Theorem 5.3),
// Lemma 5.2 (con-Datalog¬ distributes over components), Example 5.1, and
// the fragment landscape SP-Datalog ( semicon-Datalog¬, SP !<= con,
// con ( semicon.

#include "bench/flags.h"
#include "bench/report.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "monotonicity/checker.h"
#include "monotonicity/components_property.h"
#include "queries/paper_programs.h"
#include "workload/graph_gen.h"

using namespace calm;                // NOLINT
using namespace calm::monotonicity;  // NOLINT
using calm::datalog::DatalogQuery;

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

bool NoDisjointViolation(const Query& q) {
  ExhaustiveOptions o;
  o.domain_size = 2;
  o.max_facts_i = 2;
  o.fresh_values = 3;
  o.max_facts_j = 3;
  Result<std::optional<Counterexample>> r =
      FindViolation(q, MonotonicityClass::kDomainDisjoint, o);
  if (!r.ok() || r->has_value()) return false;
  RandomOptions ro;
  ro.trials = 60;
  Result<std::optional<Counterexample>> rr =
      FindViolationRandom(q, MonotonicityClass::kDomainDisjoint, ro);
  return rr.ok() && !rr->has_value();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report(
      "Theorem 5.3 / Lemma 5.2 / Example 5.1 — semicon-Datalog¬ and Mdisjoint");
  report.EnableJson(flags.json_path);

  report.Section("fragment landscape (Section 5.1)");
  {
    // Q_duplicate's program has a *disconnected* rule (Some(z) :- Dup(x,y),
    // Adom(z)) whose head is negated above it — no stratification puts it
    // last, so the program is not semicon. Consistent with Thm 5.3, since
    // the query is outside Mdisjoint.
    datalog::FragmentInfo dup_frag = queries::DuplicateProgram(2).fragment();
    report.Check("Q_duplicate program is stratifiable but NOT semicon",
                 dup_frag.stratifiable && !dup_frag.semi_connected);

    DatalogQuery p1 = queries::Example51P1();
    report.Check("P1 is con-Datalog¬ (all rules connected, stratifiable)",
                 p1.fragment().connected_stratified);
    report.Check("P1 is not semi-positive",
                 !p1.fragment().semi_positive);

    DatalogQuery p2 = queries::Example51P2();
    report.Check("P2 is stratifiable but NOT semicon-Datalog¬",
                 p2.fragment().stratifiable && !p2.fragment().semi_connected);

    // SP !<= con: a semi-positive program with a disconnected rule.
    datalog::Program sp_disc = datalog::ParseOrDie(
        ".output O\nO(x, u) :- A(x), B(u), !C(x).");
    Result<DatalogQuery> spq = DatalogQuery::Create(sp_disc, "sp-disconnected");
    report.Check("SP-Datalog program with a disconnected rule: SP but not con",
                 spq.ok() && spq->fragment().semi_positive &&
                     !spq->fragment().connected_stratified &&
                     spq->fragment().semi_connected);
  }

  report.Section("Theorem 5.3: semicon programs stay in Mdisjoint");
  {
    DatalogQuery qtc = queries::ComplementTcProgram();
    report.Check("Q_TC (semicon) has no Mdisjoint violation",
                 qtc.fragment().semi_connected && NoDisjointViolation(qtc));
    DatalogQuery p1 = queries::Example51P1();
    report.Check("P1 (con) has no Mdisjoint violation",
                 NoDisjointViolation(p1));
    // Converse sanity: the non-semicon Q_duplicate program violates
    // Mdisjoint exactly as the paper's M^j_disjoint witness predicts —
    // Theorem 5.3's hypothesis is necessary here.
    DatalogQuery dup = queries::DuplicateProgram(2);
    Instance i{Fact("R1", {V(0), V(1)})};
    Instance j{Fact("R1", {V(50), V(51)}), Fact("R2", {V(50), V(51)})};
    Result<std::optional<Counterexample>> r = CheckPair(dup, i, j);
    report.Check("non-semicon Q_duplicate program violates Mdisjoint",
                 IsDomainDisjointFrom(j, i) && r.ok() && r->has_value());
  }

  report.Section("Lemma 5.2: con-Datalog¬ distributes over components");
  {
    DatalogQuery p1 = queries::Example51P1();
    ComponentsCheckOptions o;
    o.trials = 40;
    Result<std::optional<ComponentsViolation>> r =
        FindComponentsViolationRandom(p1, o);
    report.Check("P1 distributes over components (40 random multi-component inputs)",
                 r.ok() && !r->has_value());

    DatalogQuery tc = queries::TcProgram();
    Result<std::optional<ComponentsViolation>> rt =
        FindComponentsViolationRandom(tc, o);
    report.Check("TC distributes over components", rt.ok() && !rt->has_value());

    // Q_TC (semicon, disconnected last stratum) does NOT distribute.
    DatalogQuery qtc = queries::ComplementTcProgram();
    Instance two{Fact("E", {V(0), V(1)}), Fact("E", {V(50), V(51)})};
    Result<std::optional<ComponentsViolation>> rq =
        CheckDistributesOverComponents(qtc, two);
    report.Check("Q_TC does not distribute over components",
                 rq.ok() && rq->has_value());
  }

  report.Section("Example 5.1 exactly as printed");
  {
    DatalogQuery p1 = queries::Example51P1();
    // "P1({E(a,b)}) != {}":
    Instance eab{Fact("E", {V(0), V(1)})};
    Result<Instance> out1 = p1.Eval(eab);
    report.Check("P1({E(a,b)}) is nonempty", out1.ok() && !out1->empty());
    // "... while P1({E(a,b)} u {E(b,c), E(c,a)}) = {}":
    Instance tri = workload::Cycle(3);
    Result<Instance> out2 = p1.Eval(tri);
    report.Check("P1 on the completed triangle is empty",
                 out2.ok() && out2->empty());
    // Hence P1 not in Mdistinct:
    Instance j{Fact("E", {V(1), V(2)}), Fact("E", {V(2), V(0)})};
    Result<std::optional<Counterexample>> r = CheckPair(p1, eab, j);
    report.Check("P1 not in Mdistinct (the two added edges are domain distinct)",
                 IsDomainDistinctFrom(j, eab) && r.ok() && r->has_value());

    DatalogQuery p2 = queries::Example51P2();
    Instance a = workload::Cycle(3);
    Instance b = workload::Cycle(3, /*base=*/50);
    Result<std::optional<Counterexample>> rp2 =
        CheckPair(p2, a, b);
    report.Check("P2 not in Mdisjoint (two disjoint triangles)",
                 rp2.ok() && rp2->has_value());
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
