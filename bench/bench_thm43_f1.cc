// Reproduces Theorem 4.3 (F1 = Mdistinct), constructively:
//
//  * Mdistinct <= F1: the absence-strategy transducer computes Mdistinct
//    queries on every tested network / policy / fair schedule, and satisfies
//    Definition 3's heartbeat-prefix condition on the ideal policy.
//  * F1 <= Mdistinct: the proof's policy-splitting argument is replayed —
//    node x cannot distinguish input I under the ideal policy from I+J
//    (J domain distinct, assigned to y), so Q(I) <= Q(I+J).
//  * Contrast: the same strategy machinery cannot help a query outside
//    Mdistinct — Q_TC's heartbeat-produced prefix output would be wrong.

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "queries/graph_queries.h"
#include "transducer/coordination.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/strategies.h"
#include "workload/graph_gen.h"
#include "workload/instance_gen.h"

using namespace calm;             // NOLINT
using namespace calm::transducer; // NOLINT

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

std::unique_ptr<Query> MakeVMinusS() {
  return std::make_unique<NativeQuery>(
      "v-minus-s", Schema({{"V", 1}, {"S", 1}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        Instance out;
        for (const Tuple& t : in.TuplesOf(InternName("V"))) {
          if (in.TuplesOf(InternName("S")).count(t) == 0) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
}

// Runs `t` on every network size in {1,2,3}, hash policies with two salts,
// round-robin + 3 random schedules; checks output == Q(input) every time.
void CheckComputesEverywhere(bench::Report& report, const Transducer& t,
                             const Query& q, const Instance& input,
                             const ModelOptions& model,
                             const std::string& label) {
  Instance expected = q.Eval(input).value();
  size_t runs = 0;
  bool all_ok = true;
  for (size_t n : {1u, 2u, 3u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(900 + k));
    for (uint64_t salt : {0u, 7u}) {
      HashPolicy policy(nodes, salt);
      std::unique_ptr<TransducerNetwork> holder;
      auto make = [&]() -> Result<TransducerNetwork*> {
        holder = std::make_unique<TransducerNetwork>(nodes, &t, &policy, model);
        CALM_RETURN_IF_ERROR(holder->Initialize(input));
        return holder.get();
      };
      ConsistencyOptions co;
      co.random_runs = 3;
      co.seed = salt + n;
      Result<Instance> out = RunConsistently(make, co);
      ++runs;
      if (!out.ok() || out.value() != expected) all_ok = false;
    }
  }
  report.Check(label + " computed correctly on " + std::to_string(runs) +
                   " (network, policy) combos x 4 schedules each",
               all_ok);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::Report report("Theorem 4.3 — F1 = Mdistinct (policy-aware model)");
  report.EnableJson(flags.json_path);

  auto q = MakeVMinusS();
  auto t = MakeAbsenceTransducer(q.get());

  report.Section("Mdistinct <= F1: the absence strategy computes the query");
  Instance input{Fact("V", {V(1)}), Fact("V", {V(2)}), Fact("V", {V(3)}),
                 Fact("S", {V(2)})};
  CheckComputesEverywhere(report, *t, *q, input, ModelOptions::PolicyAware(),
                          "V\\S (4 facts)");
  Instance bigger = workload::RandomInstance(q->input_schema(), 12, 6, 3);
  CheckComputesEverywhere(report, *t, *q, bigger, ModelOptions::PolicyAware(),
                          "V\\S (12 random facts)");

  report.Section("Definition 3: heartbeat-only prefix on the ideal policy");
  for (size_t n : {1u, 2u, 3u}) {
    Network nodes;
    for (size_t k = 0; k < n; ++k) nodes.push_back(V(900 + k));
    Result<bool> hb = HeartbeatPrefixComputes(*t, ModelOptions::PolicyAware(),
                                              nodes, nodes[0], input,
                                              q->Eval(input).value());
    report.Check("heartbeat prefix computes Q(I) on a " + std::to_string(n) +
                     "-node network",
                 hb.ok() && hb.value());
  }

  report.Section("F1 <= Mdistinct: the proof's policy-splitting replay");
  {
    Network nodes{V(900), V(901)};
    Value x = V(900);
    Value y = V(901);
    Instance i{Fact("V", {V(1)}), Fact("S", {V(1)}), Fact("V", {V(2)})};
    uint64_t fails = 0;
    uint64_t trials = 0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Instance j = workload::RandomDomainDistinctExtension(
          q->input_schema(), i, /*facts=*/3, /*fresh=*/2, seed);
      if (!IsDomainDistinctFrom(j, i)) continue;
      ++trials;
      AllToOnePolicy p1(x);
      std::map<Fact, std::set<Value>> to_y;
      j.ForEachFact(
          [&](uint32_t name, const Tuple& tu) { to_y[Fact(name, tu)] = {y}; });
      OverridePolicy p2(&p1, to_y);
      TransducerNetwork network(nodes, t.get(), &p2,
                                ModelOptions::PolicyAware());
      if (!network.Initialize(Instance::Union(i, j)).ok()) {
        ++fails;
        continue;
      }
      // x's local input under P2 on I+J equals its input under P1 on I.
      if (network.local_input(x) != i) {
        ++fails;
        continue;
      }
      for (int k = 0; k < 8; ++k) (void)network.Heartbeat(x);
      Instance q_i = q->Eval(i).value();
      if (!q_i.IsSubsetOf(network.GlobalOutput())) {
        ++fails;
        continue;
      }
      Result<RunResult> rest = RunToQuiescence(network);
      if (!rest.ok() ||
          rest->output != q->Eval(Instance::Union(i, j)).value() ||
          !q_i.IsSubsetOf(rest->output)) {
        ++fails;
      }
    }
    report.Check("Q(I) <= Q(I+J) forced by the construction on " +
                     std::to_string(trials) + " random domain-distinct J's",
                 trials > 0 && fails == 0);
  }

  report.Section("contrast: Q_TC (outside Mdistinct) breaks under broadcast-style prefixes");
  {
    // Run the *absence* strategy wrapped around Q_TC on a 2-node network.
    // Q_TC is not in Mdistinct, so some adversarial distribution makes a
    // node emit an output fact that the full input refutes.
    auto qtc = queries::MakeComplementTransitiveClosure();
    auto t_qtc = MakeAbsenceTransducer(qtc.get());
    Network nodes{V(900), V(901)};
    Instance i{Fact("E", {V(0), V(0)}), Fact("E", {V(1), V(1)})};
    Instance j{Fact("E", {V(0), V(2)}), Fact("E", {V(2), V(1)})};
    AllToOnePolicy p1(V(900));
    std::map<Fact, std::set<Value>> to_y;
    j.ForEachFact(
        [&](uint32_t name, const Tuple& tu) { to_y[Fact(name, tu)] = {V(901)}; });
    OverridePolicy p2(&p1, to_y);
    TransducerNetwork network(nodes, t_qtc.get(), &p2,
                              ModelOptions::PolicyAware());
    bool leaked = false;
    if (network.Initialize(Instance::Union(i, j)).ok()) {
      for (int k = 0; k < 8; ++k) (void)network.Heartbeat(V(900));
      // x believes MyAdom complete on I and outputs O(0,1) — wrong on I+J.
      Instance full = qtc->Eval(Instance::Union(i, j)).value();
      network.GlobalOutput().ForEachFact([&](uint32_t name, const Tuple& tu) {
        if (!full.Contains(Fact(name, tu))) leaked = true;
      });
    }
    report.Check(
        "the absence strategy produces a wrong prefix output for Q_TC "
        "(hence Q_TC is not in F1)",
        leaked);
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
