#ifndef CALM_BENCH_FLAGS_H_
#define CALM_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/thread_pool.h"

namespace calm::bench {

// Flags shared by the bench binaries:
//   --threads N       worker threads for the parallel checkers (also settable
//                     via the CALM_THREADS environment variable; the flag wins)
//   --json PATH       write the report's verdicts/metrics as JSON to PATH
//   --domain_bump N   widen the exhaustive searches' domain_size by N beyond
//                     the seed bounds (the CI "deep sweep" job passes 1; only
//                     affordable with the symmetry reduction on)
struct Flags {
  size_t threads = 0;     // 0 = CALM_THREADS / hardware default
  std::string json_path;  // empty = no JSON output
  size_t domain_bump = 0;
};

// Parses and strips the flags above from argv (leaving unrecognized
// arguments, e.g. google-benchmark's, in place) and applies --threads via
// SetDefaultThreads. Exits with a usage message on a malformed value.
inline Flags ParseFlags(int* argc, char** argv) {
  Flags flags;
  int out = 1;
  for (int in = 1; in < *argc; ++in) {
    const char* arg = argv[in];
    const char* value = nullptr;
    bool is_threads = false;
    bool is_json = false;
    bool is_bump = false;
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      is_threads = true;
      value = arg + 10;
    } else if (std::strcmp(arg, "--threads") == 0 && in + 1 < *argc) {
      is_threads = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      is_json = true;
      value = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0 && in + 1 < *argc) {
      is_json = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--domain_bump=", 14) == 0) {
      is_bump = true;
      value = arg + 14;
    } else if (std::strcmp(arg, "--domain_bump") == 0 && in + 1 < *argc) {
      is_bump = true;
      value = argv[++in];
    }
    if (is_threads || is_bump) {
      char* end = nullptr;
      unsigned long n = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || (is_threads && n == 0)) {
        std::fprintf(stderr, "%s expects a %s integer, got %s\n",
                     is_threads ? "--threads" : "--domain_bump",
                     is_threads ? "positive" : "non-negative", value);
        std::exit(2);
      }
      if (is_threads) {
        flags.threads = static_cast<size_t>(n);
      } else {
        flags.domain_bump = static_cast<size_t>(n);
      }
    } else if (is_json) {
      flags.json_path = value;
    } else {
      argv[out++] = argv[in];
    }
  }
  *argc = out;
  if (flags.threads != 0) SetDefaultThreads(flags.threads);
  return flags;
}

}  // namespace calm::bench

#endif  // CALM_BENCH_FLAGS_H_
