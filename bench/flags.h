#ifndef CALM_BENCH_FLAGS_H_
#define CALM_BENCH_FLAGS_H_

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "datalog/evaluator.h"

namespace calm::bench {

// Flags shared by the bench binaries:
//   --threads N       worker threads for the parallel checkers (also settable
//                     via the CALM_THREADS environment variable; the flag wins)
//   --json PATH       write the report's verdicts/metrics as JSON to PATH
//   --domain_bump N   widen the exhaustive searches' domain_size by N beyond
//                     the seed bounds (the CI "deep sweep" job passes 1; only
//                     affordable with the symmetry reduction on)
//   --metrics_out P   enable the metrics registry for the run and write its
//                     JSON snapshot to P on exit (WriteObservability)
//   --trace_out P     enable span tracing for the run and write a Chrome
//                     trace_event file to P on exit (load in chrome://tracing
//                     or ui.perfetto.dev; tools/trace_view.py summarizes it)
//   --engine NAME     rule evaluator: "bytecode" (default) or "tree" (the
//                     differential oracle); also settable via CALM_ENGINE,
//                     the flag wins (SetDefaultEvalEngine)
//   --incremental M   union evaluation in the checkers: "on" (default — reuse
//                     the materialized Q(I) fixpoint, run each J as an
//                     insertion delta) or "off" (from-scratch ablation); also
//                     settable via CALM_INCREMENTAL, the flag wins
//                     (SetDefaultIncrementalMode)
//   --eval_threads N  worker threads for morsel-parallel stratum evaluation
//                     inside a single bytecode fixpoint (default 1 = serial;
//                     results are byte-identical at any count); also settable
//                     via CALM_EVAL_THREADS, the flag wins
//                     (SetDefaultEvalThreads)
//   --checkpoint_dir D  journal every exhaustive sweep's progress into D
//                     (monotonicity/sweep_checkpoint.h) so a killed run —
//                     SIGINT/SIGTERM with InstallCancelHandlers, or a hard
//                     crash — resumes instead of restarting
//
// The parser is strict: an argument starting with "--" must be one of the
// flags above (unique prefixes are accepted as abbreviations; an ambiguous
// prefix is an error), a google-benchmark flag ("--benchmark_..."), or a
// binary-specific flag the caller allowlists via `passthrough`. Anything
// else exits 2 with the usage below — a typo never silently becomes a
// default-valued run.
struct Flags {
  size_t threads = 0;     // 0 = CALM_THREADS / hardware default
  std::string json_path;  // empty = no JSON output
  size_t domain_bump = 0;
  std::string metrics_out;  // empty = metrics registry stays disabled
  std::string trace_out;    // empty = tracing stays disabled
  std::string engine;       // empty = CALM_ENGINE / bytecode default
  std::string incremental;  // empty = CALM_INCREMENTAL / on default
  size_t eval_threads = 0;  // 0 = CALM_EVAL_THREADS / serial default
  std::string checkpoint_dir;  // empty = sweeps run without a journal
};

namespace internal {

// One row per flag: a string sink or a numeric sink (positive when the
// value must be > 0). Both "--name value" and "--name=value" forms work.
struct FlagSpec {
  const char* name;
  const char* value_name;
  const char* help;
  std::string* str;
  size_t* num;
  bool positive;
};

inline std::vector<FlagSpec> FlagSpecs(Flags* flags) {
  return {
      {"--threads", "N", "checker worker threads (default: CALM_THREADS)",
       nullptr, &flags->threads, true},
      {"--eval_threads", "N",
       "morsel-parallel evaluation threads (default: CALM_EVAL_THREADS)",
       nullptr, &flags->eval_threads, true},
      {"--domain_bump", "N", "widen exhaustive domain_size by N", nullptr,
       &flags->domain_bump, false},
      {"--json", "PATH", "write the report as JSON", &flags->json_path,
       nullptr, false},
      {"--metrics_out", "PATH", "enable metrics, write JSON snapshot on exit",
       &flags->metrics_out, nullptr, false},
      {"--trace_out", "PATH", "enable tracing, write Chrome trace on exit",
       &flags->trace_out, nullptr, false},
      {"--engine", "NAME", "rule evaluator: bytecode (default) or tree",
       &flags->engine, nullptr, false},
      {"--incremental", "MODE", "union evaluation: on (default) or off",
       &flags->incremental, nullptr, false},
      {"--checkpoint_dir", "DIR",
       "journal sweep progress into DIR; a rerun resumes",
       &flags->checkpoint_dir, nullptr, false},
  };
}

inline void PrintUsage(std::FILE* out, const char* argv0,
                       const std::vector<FlagSpec>& specs,
                       std::initializer_list<const char*> passthrough) {
  std::fprintf(out, "usage: %s [flags]\n\nflags:\n", argv0);
  for (const FlagSpec& spec : specs) {
    std::fprintf(out, "  %s %-5s %s\n", spec.name, spec.value_name, spec.help);
  }
  for (const char* extra : passthrough) {
    std::fprintf(out, "  %s (binary-specific; see the file header)\n", extra);
  }
  std::fprintf(out,
               "  --benchmark_... google-benchmark flags pass through\n"
               "  --help          this message\n");
}

}  // namespace internal

// Parses and strips the shared flags from argv, leaving only allowlisted
// arguments (google-benchmark's --benchmark_* and the caller's `passthrough`
// names, with their values) in place; applies --threads via
// SetDefaultThreads and switches metrics/tracing on when an output path asks
// for them. Exits 2 with a usage message on an unknown or ambiguous flag or
// a malformed value.
inline Flags ParseFlags(int* argc, char** argv,
                        std::initializer_list<const char*> passthrough = {}) {
  Flags flags;
  const std::vector<internal::FlagSpec> specs = internal::FlagSpecs(&flags);
  auto usage_and_exit = [&](const char* fmt, const char* detail) {
    std::fprintf(stderr, fmt, detail);
    std::fprintf(stderr, "\n\n");
    internal::PrintUsage(stderr, argv[0], specs, passthrough);
    std::exit(2);
  };

  int out = 1;
  for (int in = 1; in < *argc; ++in) {
    const char* arg = argv[in];
    if (std::strncmp(arg, "--", 2) != 0) {
      argv[out++] = argv[in];  // positional; not ours to police
      continue;
    }
    // Split "--name=value".
    std::string name(arg);
    std::string inline_value;
    bool has_inline = false;
    if (size_t eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
      has_inline = true;
    }
    if (name == "--help") {
      internal::PrintUsage(stdout, argv[0], specs, passthrough);
      std::exit(0);
    }
    if (name.compare(0, 12, "--benchmark_") == 0) {
      argv[out++] = argv[in];  // google-benchmark parses these itself
      continue;
    }
    bool is_passthrough = false;
    for (const char* extra : passthrough) {
      if (name == extra) {
        is_passthrough = true;
        break;
      }
    }
    if (is_passthrough) {
      // Keep the flag and (for the two-token form) its value for the binary.
      argv[out++] = argv[in];
      if (!has_inline && in + 1 < *argc) argv[out++] = argv[++in];
      continue;
    }

    // Ours: exact name first, then a unique-prefix abbreviation.
    const internal::FlagSpec* hit = nullptr;
    for (const internal::FlagSpec& spec : specs) {
      if (name == spec.name) {
        hit = &spec;
        break;
      }
    }
    if (hit == nullptr) {
      std::vector<const internal::FlagSpec*> matches;
      for (const internal::FlagSpec& spec : specs) {
        if (std::strncmp(spec.name, name.c_str(), name.size()) == 0) {
          matches.push_back(&spec);
        }
      }
      if (matches.size() > 1) {
        std::string listed;
        for (const internal::FlagSpec* m : matches) {
          if (!listed.empty()) listed += ", ";
          listed += m->name;
        }
        usage_and_exit("ambiguous flag %s",
                       (name + " (matches " + listed + ")").c_str());
      }
      if (matches.empty()) usage_and_exit("unknown flag %s", name.c_str());
      hit = matches[0];
    }

    const char* value = nullptr;
    if (has_inline) {
      value = inline_value.c_str();
    } else if (in + 1 < *argc) {
      value = argv[++in];
    } else {
      usage_and_exit("%s expects a value", hit->name);
    }
    if (hit->str != nullptr) {
      *hit->str = value;
      continue;
    }
    char* end = nullptr;
    unsigned long n = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || (hit->positive && n == 0)) {
      std::fprintf(stderr, "%s expects a %s integer, got %s\n", hit->name,
                   hit->positive ? "positive" : "non-negative", value);
      std::exit(2);
    }
    *hit->num = static_cast<size_t>(n);
  }
  *argc = out;
  if (!flags.engine.empty()) {
    Result<datalog::EvalEngine> engine = datalog::ParseEvalEngine(flags.engine);
    if (!engine.ok()) {
      std::fprintf(stderr, "--engine expects tree or bytecode, got %s\n",
                   flags.engine.c_str());
      std::exit(2);
    }
    datalog::SetDefaultEvalEngine(*engine);
  }
  if (!flags.incremental.empty()) {
    Result<datalog::IncrementalMode> mode =
        datalog::ParseIncrementalMode(flags.incremental);
    if (!mode.ok()) {
      std::fprintf(stderr, "--incremental expects on or off, got %s\n",
                   flags.incremental.c_str());
      std::exit(2);
    }
    datalog::SetDefaultIncrementalMode(*mode);
  }
  if (flags.threads != 0) SetDefaultThreads(flags.threads);
  if (flags.eval_threads != 0) {
    datalog::SetDefaultEvalThreads(static_cast<int>(flags.eval_threads));
  }
  if (!flags.metrics_out.empty()) SetMetricsEnabled(true);
  if (!flags.trace_out.empty()) {
    if (!TracingCompiledIn()) {
      std::fprintf(stderr,
                   "--trace_out requested but this binary was built with "
                   "-DCALM_TRACING=OFF; the trace will be empty\n");
    }
    Trace::SetEnabled(true);
  }
  return flags;
}

// Writes the artifacts the observability flags asked for. Call once, after
// the workload (typically right before Report::Finish).
inline void WriteObservability(const Flags& flags) {
  if (!flags.metrics_out.empty()) {
    std::string text = MetricRegistry::Global().Snapshot().Dump(2);
    std::FILE* f = std::fopen(flags.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   flags.metrics_out.c_str());
    } else {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics snapshot written to %s\n",
                  flags.metrics_out.c_str());
    }
  }
  if (!flags.trace_out.empty()) {
    Status s = Trace::WriteChromeTrace(flags.trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
    } else {
      size_t dropped = Trace::DroppedCount();
      std::printf("trace written to %s (%zu events%s)\n",
                  flags.trace_out.c_str(), Trace::EventCount(),
                  dropped == 0
                      ? ""
                      : (", " + std::to_string(dropped) + " dropped").c_str());
    }
  }
}

// --- cooperative cancellation ----------------------------------------------
//
// InstallCancelHandlers routes SIGINT/SIGTERM into a flag the sweeps poll
// (ExhaustiveOptions::cancel / PreservationOptions::cancel). An interrupted
// sweep returns kDeadlineExceeded with everything finished so far already
// fsync'd in the checkpoint journal; the bench then calls ExitIfCancelled,
// which flushes the metrics/trace artifacts and exits 130 (the conventional
// "died on SIGINT" code), so a kill mid-run still leaves a resumable
// checkpoint AND the observability outputs.

inline std::atomic<bool>& CancelFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

namespace internal {
inline void OnCancelSignal(int) {
  CancelFlag().store(true, std::memory_order_relaxed);
}
}  // namespace internal

inline void InstallCancelHandlers() {
  std::signal(SIGINT, internal::OnCancelSignal);
  std::signal(SIGTERM, internal::OnCancelSignal);
}

// Call after any sweep that may have been cancelled: flushes observability
// artifacts and exits 130 if a cancel signal arrived.
inline void ExitIfCancelled(const Flags& flags) {
  if (!CancelFlag().load(std::memory_order_relaxed)) return;
  if (flags.checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "interrupted (no --checkpoint_dir; progress not saved)\n");
  } else {
    std::fprintf(stderr, "interrupted; resume with --checkpoint_dir %s\n",
                 flags.checkpoint_dir.c_str());
  }
  WriteObservability(flags);
  std::exit(130);
}

}  // namespace calm::bench

#endif  // CALM_BENCH_FLAGS_H_
