#ifndef CALM_BENCH_FLAGS_H_
#define CALM_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/metrics.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "datalog/evaluator.h"

namespace calm::bench {

// Flags shared by the bench binaries:
//   --threads N       worker threads for the parallel checkers (also settable
//                     via the CALM_THREADS environment variable; the flag wins)
//   --json PATH       write the report's verdicts/metrics as JSON to PATH
//   --domain_bump N   widen the exhaustive searches' domain_size by N beyond
//                     the seed bounds (the CI "deep sweep" job passes 1; only
//                     affordable with the symmetry reduction on)
//   --metrics_out P   enable the metrics registry for the run and write its
//                     JSON snapshot to P on exit (WriteObservability)
//   --trace_out P     enable span tracing for the run and write a Chrome
//                     trace_event file to P on exit (load in chrome://tracing
//                     or ui.perfetto.dev; tools/trace_view.py summarizes it)
//   --engine NAME     rule evaluator: "bytecode" (default) or "tree" (the
//                     differential oracle); also settable via CALM_ENGINE,
//                     the flag wins (SetDefaultEvalEngine)
//   --incremental M   union evaluation in the checkers: "on" (default — reuse
//                     the materialized Q(I) fixpoint, run each J as an
//                     insertion delta) or "off" (from-scratch ablation); also
//                     settable via CALM_INCREMENTAL, the flag wins
//                     (SetDefaultIncrementalMode)
//   --eval_threads N  worker threads for morsel-parallel stratum evaluation
//                     inside a single bytecode fixpoint (default 1 = serial;
//                     results are byte-identical at any count); also settable
//                     via CALM_EVAL_THREADS, the flag wins
//                     (SetDefaultEvalThreads)
struct Flags {
  size_t threads = 0;     // 0 = CALM_THREADS / hardware default
  std::string json_path;  // empty = no JSON output
  size_t domain_bump = 0;
  std::string metrics_out;  // empty = metrics registry stays disabled
  std::string trace_out;    // empty = tracing stays disabled
  std::string engine;       // empty = CALM_ENGINE / bytecode default
  std::string incremental;  // empty = CALM_INCREMENTAL / on default
  size_t eval_threads = 0;  // 0 = CALM_EVAL_THREADS / serial default
};

// Parses and strips the flags above from argv (leaving unrecognized
// arguments, e.g. google-benchmark's, in place), applies --threads via
// SetDefaultThreads, and switches metrics/tracing on when an output path asks
// for them. Exits with a usage message on a malformed value.
inline Flags ParseFlags(int* argc, char** argv) {
  Flags flags;
  // One row per flag: a string sink or a numeric sink (positive when the
  // value must be > 0). Both "--name value" and "--name=value" forms work.
  struct Spec {
    const char* name;
    std::string* str;
    size_t* num;
    bool positive;
  };
  const Spec specs[] = {
      {"--threads", nullptr, &flags.threads, true},
      {"--eval_threads", nullptr, &flags.eval_threads, true},
      {"--domain_bump", nullptr, &flags.domain_bump, false},
      {"--json", &flags.json_path, nullptr, false},
      {"--metrics_out", &flags.metrics_out, nullptr, false},
      {"--trace_out", &flags.trace_out, nullptr, false},
      {"--engine", &flags.engine, nullptr, false},
      {"--incremental", &flags.incremental, nullptr, false},
  };
  int out = 1;
  for (int in = 1; in < *argc; ++in) {
    const char* arg = argv[in];
    const Spec* hit = nullptr;
    const char* value = nullptr;
    for (const Spec& spec : specs) {
      const size_t len = std::strlen(spec.name);
      if (std::strncmp(arg, spec.name, len) != 0) continue;
      if (arg[len] == '=') {
        hit = &spec;
        value = arg + len + 1;
      } else if (arg[len] == '\0' && in + 1 < *argc) {
        hit = &spec;
        value = argv[++in];
      }
      if (hit != nullptr) break;
    }
    if (hit == nullptr) {
      argv[out++] = argv[in];  // unrecognized (e.g. google-benchmark's)
      continue;
    }
    if (hit->str != nullptr) {
      *hit->str = value;
      continue;
    }
    char* end = nullptr;
    unsigned long n = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || (hit->positive && n == 0)) {
      std::fprintf(stderr, "%s expects a %s integer, got %s\n", hit->name,
                   hit->positive ? "positive" : "non-negative", value);
      std::exit(2);
    }
    *hit->num = static_cast<size_t>(n);
  }
  *argc = out;
  if (!flags.engine.empty()) {
    Result<datalog::EvalEngine> engine = datalog::ParseEvalEngine(flags.engine);
    if (!engine.ok()) {
      std::fprintf(stderr, "--engine expects tree or bytecode, got %s\n",
                   flags.engine.c_str());
      std::exit(2);
    }
    datalog::SetDefaultEvalEngine(*engine);
  }
  if (!flags.incremental.empty()) {
    Result<datalog::IncrementalMode> mode =
        datalog::ParseIncrementalMode(flags.incremental);
    if (!mode.ok()) {
      std::fprintf(stderr, "--incremental expects on or off, got %s\n",
                   flags.incremental.c_str());
      std::exit(2);
    }
    datalog::SetDefaultIncrementalMode(*mode);
  }
  if (flags.threads != 0) SetDefaultThreads(flags.threads);
  if (flags.eval_threads != 0) {
    datalog::SetDefaultEvalThreads(static_cast<int>(flags.eval_threads));
  }
  if (!flags.metrics_out.empty()) SetMetricsEnabled(true);
  if (!flags.trace_out.empty()) {
    if (!TracingCompiledIn()) {
      std::fprintf(stderr,
                   "--trace_out requested but this binary was built with "
                   "-DCALM_TRACING=OFF; the trace will be empty\n");
    }
    Trace::SetEnabled(true);
  }
  return flags;
}

// Writes the artifacts the observability flags asked for. Call once, after
// the workload (typically right before Report::Finish).
inline void WriteObservability(const Flags& flags) {
  if (!flags.metrics_out.empty()) {
    std::string text = MetricRegistry::Global().Snapshot().Dump(2);
    std::FILE* f = std::fopen(flags.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   flags.metrics_out.c_str());
    } else {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics snapshot written to %s\n",
                  flags.metrics_out.c_str());
    }
  }
  if (!flags.trace_out.empty()) {
    Status s = Trace::WriteChromeTrace(flags.trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
    } else {
      size_t dropped = Trace::DroppedCount();
      std::printf("trace written to %s (%zu events%s)\n",
                  flags.trace_out.c_str(), Trace::EventCount(),
                  dropped == 0
                      ? ""
                      : (", " + std::to_string(dropped) + " dropped").c_str());
    }
  }
}

}  // namespace calm::bench

#endif  // CALM_BENCH_FLAGS_H_
