#ifndef CALM_BENCH_FLAGS_H_
#define CALM_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/metrics.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "datalog/evaluator.h"

namespace calm::bench {

// Flags shared by the bench binaries:
//   --threads N       worker threads for the parallel checkers (also settable
//                     via the CALM_THREADS environment variable; the flag wins)
//   --json PATH       write the report's verdicts/metrics as JSON to PATH
//   --domain_bump N   widen the exhaustive searches' domain_size by N beyond
//                     the seed bounds (the CI "deep sweep" job passes 1; only
//                     affordable with the symmetry reduction on)
//   --metrics_out P   enable the metrics registry for the run and write its
//                     JSON snapshot to P on exit (WriteObservability)
//   --trace_out P     enable span tracing for the run and write a Chrome
//                     trace_event file to P on exit (load in chrome://tracing
//                     or ui.perfetto.dev; tools/trace_view.py summarizes it)
//   --engine NAME     rule evaluator: "bytecode" (default) or "tree" (the
//                     differential oracle); also settable via CALM_ENGINE,
//                     the flag wins (SetDefaultEvalEngine)
//   --incremental M   union evaluation in the checkers: "on" (default — reuse
//                     the materialized Q(I) fixpoint, run each J as an
//                     insertion delta) or "off" (from-scratch ablation); also
//                     settable via CALM_INCREMENTAL, the flag wins
//                     (SetDefaultIncrementalMode)
struct Flags {
  size_t threads = 0;     // 0 = CALM_THREADS / hardware default
  std::string json_path;  // empty = no JSON output
  size_t domain_bump = 0;
  std::string metrics_out;  // empty = metrics registry stays disabled
  std::string trace_out;    // empty = tracing stays disabled
  std::string engine;       // empty = CALM_ENGINE / bytecode default
  std::string incremental;  // empty = CALM_INCREMENTAL / on default
};

// Parses and strips the flags above from argv (leaving unrecognized
// arguments, e.g. google-benchmark's, in place), applies --threads via
// SetDefaultThreads, and switches metrics/tracing on when an output path asks
// for them. Exits with a usage message on a malformed value.
inline Flags ParseFlags(int* argc, char** argv) {
  Flags flags;
  int out = 1;
  for (int in = 1; in < *argc; ++in) {
    const char* arg = argv[in];
    const char* value = nullptr;
    bool is_threads = false;
    bool is_json = false;
    bool is_bump = false;
    bool is_metrics = false;
    bool is_trace = false;
    bool is_engine = false;
    bool is_incremental = false;
    if (std::strncmp(arg, "--engine=", 9) == 0) {
      is_engine = true;
      value = arg + 9;
    } else if (std::strcmp(arg, "--engine") == 0 && in + 1 < *argc) {
      is_engine = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--incremental=", 14) == 0) {
      is_incremental = true;
      value = arg + 14;
    } else if (std::strcmp(arg, "--incremental") == 0 && in + 1 < *argc) {
      is_incremental = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      is_threads = true;
      value = arg + 10;
    } else if (std::strcmp(arg, "--threads") == 0 && in + 1 < *argc) {
      is_threads = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      is_json = true;
      value = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0 && in + 1 < *argc) {
      is_json = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--domain_bump=", 14) == 0) {
      is_bump = true;
      value = arg + 14;
    } else if (std::strcmp(arg, "--domain_bump") == 0 && in + 1 < *argc) {
      is_bump = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--metrics_out=", 14) == 0) {
      is_metrics = true;
      value = arg + 14;
    } else if (std::strcmp(arg, "--metrics_out") == 0 && in + 1 < *argc) {
      is_metrics = true;
      value = argv[++in];
    } else if (std::strncmp(arg, "--trace_out=", 12) == 0) {
      is_trace = true;
      value = arg + 12;
    } else if (std::strcmp(arg, "--trace_out") == 0 && in + 1 < *argc) {
      is_trace = true;
      value = argv[++in];
    }
    if (is_threads || is_bump) {
      char* end = nullptr;
      unsigned long n = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || (is_threads && n == 0)) {
        std::fprintf(stderr, "%s expects a %s integer, got %s\n",
                     is_threads ? "--threads" : "--domain_bump",
                     is_threads ? "positive" : "non-negative", value);
        std::exit(2);
      }
      if (is_threads) {
        flags.threads = static_cast<size_t>(n);
      } else {
        flags.domain_bump = static_cast<size_t>(n);
      }
    } else if (is_json) {
      flags.json_path = value;
    } else if (is_metrics) {
      flags.metrics_out = value;
    } else if (is_trace) {
      flags.trace_out = value;
    } else if (is_engine) {
      flags.engine = value;
    } else if (is_incremental) {
      flags.incremental = value;
    } else {
      argv[out++] = argv[in];
    }
  }
  *argc = out;
  if (!flags.engine.empty()) {
    Result<datalog::EvalEngine> engine = datalog::ParseEvalEngine(flags.engine);
    if (!engine.ok()) {
      std::fprintf(stderr, "--engine expects tree or bytecode, got %s\n",
                   flags.engine.c_str());
      std::exit(2);
    }
    datalog::SetDefaultEvalEngine(*engine);
  }
  if (!flags.incremental.empty()) {
    Result<datalog::IncrementalMode> mode =
        datalog::ParseIncrementalMode(flags.incremental);
    if (!mode.ok()) {
      std::fprintf(stderr, "--incremental expects on or off, got %s\n",
                   flags.incremental.c_str());
      std::exit(2);
    }
    datalog::SetDefaultIncrementalMode(*mode);
  }
  if (flags.threads != 0) SetDefaultThreads(flags.threads);
  if (!flags.metrics_out.empty()) SetMetricsEnabled(true);
  if (!flags.trace_out.empty()) {
    if (!TracingCompiledIn()) {
      std::fprintf(stderr,
                   "--trace_out requested but this binary was built with "
                   "-DCALM_TRACING=OFF; the trace will be empty\n");
    }
    Trace::SetEnabled(true);
  }
  return flags;
}

// Writes the artifacts the observability flags asked for. Call once, after
// the workload (typically right before Report::Finish).
inline void WriteObservability(const Flags& flags) {
  if (!flags.metrics_out.empty()) {
    std::string text = MetricRegistry::Global().Snapshot().Dump(2);
    std::FILE* f = std::fopen(flags.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   flags.metrics_out.c_str());
    } else {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics snapshot written to %s\n",
                  flags.metrics_out.c_str());
    }
  }
  if (!flags.trace_out.empty()) {
    Status s = Trace::WriteChromeTrace(flags.trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
    } else {
      size_t dropped = Trace::DroppedCount();
      std::printf("trace written to %s (%zu events%s)\n",
                  flags.trace_out.c_str(), Trace::EventCount(),
                  dropped == 0
                      ? ""
                      : (", " + std::to_string(dropped) + " dropped").c_str());
    }
  }
}

}  // namespace calm::bench

#endif  // CALM_BENCH_FLAGS_H_
