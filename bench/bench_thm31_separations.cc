// Replays Theorem 3.1's proof, item by item, with the exact witnesses the
// paper constructs — every separation is demonstrated by a concrete (I, J)
// pair, and every membership by an exhaustive bounded search.

#include <memory>

#include "bench/flags.h"
#include "bench/report.h"
#include "monotonicity/checker.h"
#include "queries/graph_queries.h"
#include "workload/graph_gen.h"

using namespace calm;                // NOLINT
using namespace calm::monotonicity;  // NOLINT

namespace {

Value V(uint64_t i) { return Value::FromInt(i); }

// True iff Q(i) loses a fact when j is added (the separation witness fires).
bool Retracts(const Query& q, const Instance& i, const Instance& j,
              std::string* detail) {
  Result<std::optional<Counterexample>> r = CheckPair(q, i, j);
  if (!r.ok()) {
    *detail = r.status().ToString();
    return false;
  }
  if (r->has_value()) *detail = r->value().ToString();
  return r->has_value();
}

bool NoViolation(const Query& q, MonotonicityClass cls,
                 const ExhaustiveOptions& o, const bench::Flags& flags) {
  Result<std::optional<Counterexample>> r = FindViolation(q, cls, o);
  // A SIGINT/SIGTERM mid-sweep surfaces here: flush artifacts and exit 130;
  // everything this run finished is already durable in --checkpoint_dir.
  bench::ExitIfCancelled(flags);
  return r.ok() && !r->has_value();
}

// Sweep options wired for kill-and-resume: every exhaustive search in this
// bench journals into --checkpoint_dir (when set) and polls the signal flag.
ExhaustiveOptions SweepOptions(const bench::Flags& flags) {
  ExhaustiveOptions o;
  o.checkpoint_dir = flags.checkpoint_dir;
  o.cancel = &bench::CancelFlag();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(&argc, argv);
  bench::InstallCancelHandlers();
  bench::Report report("Theorem 3.1 — separations, replayed with the paper's witnesses");
  report.EnableJson(flags.json_path);
  std::string detail;
  // Every exhaustive membership search widens its domain by --domain_bump
  // (the CI deep-sweep job passes 1). Memberships are genuine, so a wider
  // bound only costs time — which the symmetry reduction pays for.
  const size_t bump = flags.domain_bump;

  // (1) M ( Mdistinct: SP-Datalog specimen V \ S is in Mdistinct but a
  // non-monotone addition (old value into S) retracts output.
  report.Section("(1) M ( Mdistinct ( Mdisjoint ( C");
  {
    NativeQuery vs("v-minus-s", Schema({{"V", 1}, {"S", 1}}),
                   Schema({{"O", 1}}),
                   [](const Instance& in) -> Result<Instance> {
                     Instance out;
                     for (const Tuple& t : in.TuplesOf(InternName("V"))) {
                       if (in.TuplesOf(InternName("S")).count(t) == 0) {
                         out.Insert(Fact("O", t));
                       }
                     }
                     return out;
                   });
    Instance i{Fact("V", {V(1)})};
    Instance j{Fact("S", {V(1)})};
    report.Check("V\\S not monotone (witness: add S(1))",
                 Retracts(vs, i, j, &detail), detail);
    ExhaustiveOptions o = SweepOptions(flags);
    // domain_size 3 was out of reach for the full sweep (it was clamped to 2
    // before the orbit-representative reduction landed).
    o.domain_size = 3 + bump;
    o.max_facts_i = 3;
    o.fresh_values = 2;
    o.max_facts_j = 3;
    report.Check("V\\S in Mdistinct (exhaustive)",
                 NoViolation(vs, MonotonicityClass::kDomainDistinct, o, flags));

    // Q_TC in Mdisjoint \ Mdistinct: "the addition of domain-distinct
    // subgraphs can create a path E(a,c), E(c,b) where c is a new vertex".
    auto qtc = queries::MakeComplementTransitiveClosure();
    Instance graph{Fact("E", {V(0), V(0)}), Fact("E", {V(1), V(1)})};
    Instance bridge{Fact("E", {V(0), V(2)}), Fact("E", {V(2), V(1)})};
    report.Check("Q_TC loses (0,1) when bridged through fresh c (not Mdistinct)",
                 Retracts(*qtc, graph, bridge, &detail), detail);
    report.Check("Q_TC in Mdisjoint (exhaustive)",
                 NoViolation(*qtc, MonotonicityClass::kDomainDisjoint, o, flags));

    // Mdisjoint ( C: the triangles query killed by a disjoint triangle.
    auto tri = queries::MakeTrianglesUnlessTwoDisjoint();
    report.Check("triangle query retracts on a disjoint triangle (not Mdisjoint)",
                 Retracts(*tri, workload::Cycle(3), workload::Cycle(3, 50),
                          &detail),
                 detail);
  }

  // (2) M = M^i.
  report.Section("(2) M = M^i");
  {
    auto tc = queries::MakeTransitiveClosure();
    for (size_t jmax : {1u, 2u, 3u, 4u}) {
      ExhaustiveOptions o = SweepOptions(flags);
      o.domain_size = 2 + bump;
      o.max_facts_i = 2;
      o.fresh_values = 1;
      o.max_facts_j = jmax;
      report.Check("TC in M^" + std::to_string(jmax),
                   NoViolation(*tc, MonotonicityClass::kMonotone, o, flags));
    }
  }

  // (3) the clique ladder: "J needs to contain a star: one new value is the
  // center and it points at old clique vertices, requiring |J| >= i+1".
  report.Section("(3) Q^{i+2}_clique separates M^i_distinct from M^{i+1}_distinct");
  for (size_t i : {1u, 2u, 3u}) {
    auto q = queries::MakeCliqueQuery(i + 2);
    // I = an (i+1)-clique; J = a fresh center pointing at all of it.
    Instance clique = workload::Clique(i + 1);
    Instance star;
    for (size_t s = 0; s < i + 1; ++s) {
      star.Insert(Fact("E", {V(1000), V(s)}));
    }
    report.Check("i=" + std::to_string(i) + ": fresh center + " +
                     std::to_string(i + 1) + " edges kills the output",
                 IsDomainDistinctFrom(star, clique) &&
                     Retracts(*q, clique, star, &detail),
                 detail);
    ExhaustiveOptions o = SweepOptions(flags);
    o.domain_size = i + 2 + bump;
    o.max_facts_i = i <= 1 ? (i + 1) * i + 1 : 3;  // keep the search small
    o.fresh_values = 1;
    o.max_facts_j = i;
    report.Check("i=" + std::to_string(i) + ": no violation with |J| <= i",
                 NoViolation(*q, MonotonicityClass::kDomainDistinct, o, flags));
  }

  // (4) the star ladder: "i+1 domain-disjoint edges suffice to create an
  // entirely new star with i+1 spokes".
  report.Section("(4) Q^{i+1}_star separates M^i_disjoint from M^{i+1}_disjoint");
  for (size_t i : {1u, 2u, 3u}) {
    auto q = queries::MakeStarQuery(i + 1);
    Instance input{Fact("E", {V(0), V(1)})};
    Instance fresh_star = workload::Star(i + 1, /*base=*/1000);
    report.Check("i=" + std::to_string(i) + ": " + std::to_string(i + 1) +
                     " disjoint edges build a fresh star",
                 IsDomainDisjointFrom(fresh_star, input) &&
                     Retracts(*q, input, fresh_star, &detail),
                 detail);
    ExhaustiveOptions o = SweepOptions(flags);
    o.domain_size = 2 + bump;
    o.max_facts_i = 2;
    o.fresh_values = i + 1;
    o.max_facts_j = i;
    report.Check("i=" + std::to_string(i) + ": no violation with |J| <= i",
                 NoViolation(*q, MonotonicityClass::kDomainDisjoint, o, flags));
  }

  // (5) Q^{i+1}_clique in M^i_disjoint but not M^i_distinct.
  report.Section("(5) M^i_distinct ( M^i_disjoint");
  {
    auto q = queries::MakeCliqueQuery(3);  // i = 2
    Instance edge{Fact("E", {V(0), V(1)})};
    Instance extend{Fact("E", {V(1000), V(0)}), Fact("E", {V(1000), V(1)})};
    report.Check("Q_clique_3 not in M^2_distinct",
                 Retracts(*q, edge, extend, &detail), detail);
    ExhaustiveOptions o = SweepOptions(flags);
    o.domain_size = 3 + bump;
    o.max_facts_i = 3;
    o.fresh_values = 2;
    o.max_facts_j = 2;
    report.Check("Q_clique_3 in M^2_disjoint",
                 NoViolation(*q, MonotonicityClass::kDomainDisjoint, o, flags));
  }

  // (6) Q^{j+1}_star in M^j_disjoint \ M^i_distinct: "we can increase the
  // number of spokes by adding one additional edge containing the old
  // central vertex and one new value".
  report.Section("(6) M^j_disjoint !<= M^i_distinct");
  for (size_t j : {1u, 2u}) {
    auto q = queries::MakeStarQuery(j + 1);
    Instance star = workload::Star(j);
    Instance extra{Fact("E", {V(0), V(1000)})};
    report.Check("j=" + std::to_string(j) +
                     ": one distinct edge extends the old star",
                 IsDomainDistinctFrom(extra, star) &&
                     Retracts(*q, star, extra, &detail),
                 detail);
  }

  // (7) Q^j_duplicate in M^i_distinct (i < j) \ M^j_disjoint.
  report.Section("(7) M^i_distinct !<= M^j_disjoint (schema grows with j)");
  for (size_t j : {2u, 3u}) {
    auto q = queries::MakeDuplicateQuery(j);
    Instance i_inst{Fact("R1", {V(0), V(1)})};
    Instance dup;
    for (size_t r = 1; r <= j; ++r) {
      dup.Insert(Fact("R" + std::to_string(r), {V(1000), V(1001)}));
    }
    report.Check("j=" + std::to_string(j) +
                     ": j disjoint facts replicate a fresh tuple",
                 IsDomainDisjointFrom(dup, i_inst) &&
                     Retracts(*q, i_inst, dup, &detail),
                 detail);
    ExhaustiveOptions o = SweepOptions(flags);
    o.domain_size = 2 + bump;
    o.max_facts_i = 2;
    o.fresh_values = 2;
    o.max_facts_j = j - 1;
    report.Check("j=" + std::to_string(j) + ": in M^" + std::to_string(j - 1) +
                     "_distinct (exhaustive)",
                 NoViolation(*q, MonotonicityClass::kDomainDistinct, o, flags));
  }

  bench::WriteObservability(flags);
  return report.Finish();
}
