#include "datalog/fragment.h"

#include <map>
#include <queue>
#include <set>
#include <vector>

#include "datalog/stratifier.h"

namespace calm::datalog {

bool IsConnectedRule(const Rule& rule) {
  std::set<uint32_t> vars = rule.PositiveVariables();
  if (vars.size() <= 1) return true;

  // Union-find over variables, merging variables of each positive atom.
  std::map<uint32_t, uint32_t> parent;
  for (uint32_t v : vars) parent[v] = v;
  auto find = [&](uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Atom& a : rule.pos) {
    uint32_t first = UINT32_MAX;
    for (const Term& t : a.args) {
      if (!t.is_var()) continue;
      if (first == UINT32_MAX) {
        first = t.var;
      } else {
        parent[find(t.var)] = find(first);
      }
    }
  }
  uint32_t root = find(*vars.begin());
  for (uint32_t v : vars) {
    if (find(v) != root) return false;
  }
  return true;
}

namespace {

// A program is semicon-Datalog¬ iff it is stratifiable and every head
// predicate of a disconnected rule can be placed in the last stratum. A
// predicate T can be in the last stratum iff no negative dependency edge
// leaves the set of predicates transitively depending on T (any such edge
// would force a strictly higher stratum above T's).
bool CheckSemiConnected(const Program& program, const ProgramInfo& info) {
  std::set<uint32_t> bad_heads;
  for (const Rule& r : program.rules) {
    if (!IsConnectedRule(r)) bad_heads.insert(r.head.relation);
  }
  if (bad_heads.empty()) return true;

  // used_by: predicate -> predicates whose rules mention it in the body.
  std::map<uint32_t, std::vector<std::pair<uint32_t, bool>>> used_by;
  for (const ProgramInfo::Edge& e : info.idb_edges) {
    used_by[e.from].emplace_back(e.to, e.negative);
  }

  for (uint32_t t : bad_heads) {
    // BFS upward from t; any negative edge reachable from t (including out
    // of t itself) forces a higher stratum above t.
    std::set<uint32_t> seen{t};
    std::queue<uint32_t> queue;
    queue.push(t);
    while (!queue.empty()) {
      uint32_t cur = queue.front();
      queue.pop();
      auto it = used_by.find(cur);
      if (it == used_by.end()) continue;
      for (auto [next, negative] : it->second) {
        if (negative) return false;
        if (seen.insert(next).second) queue.push(next);
      }
    }
  }
  return true;
}

}  // namespace

FragmentInfo ClassifyFragment(const Program& program,
                              const ProgramInfo& info) {
  FragmentInfo out;
  out.stratifiable = IsStratifiable(program, info);
  out.positive = true;
  out.uses_inequalities = false;
  out.semi_positive = true;
  out.all_rules_connected = true;
  for (const Rule& r : program.rules) {
    if (!r.neg.empty()) out.positive = false;
    if (!r.ineqs.empty()) out.uses_inequalities = true;
    for (const Atom& a : r.neg) {
      if (info.idb.Contains(a.relation)) out.semi_positive = false;
    }
    if (!IsConnectedRule(r)) out.all_rules_connected = false;
  }
  out.connected_stratified = out.stratifiable && out.all_rules_connected;
  out.semi_connected = out.stratifiable && CheckSemiConnected(program, info);
  return out;
}

std::string FragmentInfo::FragmentName() const {
  if (!stratifiable) return "unstratifiable";
  if (positive && !uses_inequalities) return "Datalog";
  if (positive) return "Datalog(!=)";
  if (semi_positive) return "SP-Datalog";
  if (connected_stratified) return "con-Datalog~";
  if (semi_connected) return "semicon-Datalog~";
  return "Datalog~";
}

}  // namespace calm::datalog
