#include "datalog/analysis.h"

namespace calm::datalog {

uint32_t AdomRelation() {
  static const uint32_t kId = InternName("Adom");
  return kId;
}

namespace {

Status NoteArity(std::map<uint32_t, uint32_t>& arities, const Atom& atom) {
  size_t arity = atom.arity() + (atom.invents ? 1 : 0);
  if (arity == 0) {
    return InvalidArgumentError("nullary atom '" + NameOf(atom.relation) +
                                "()' not allowed (paper assumes arity >= 1)");
  }
  auto [it, inserted] = arities.emplace(atom.relation, arity);
  if (!inserted && it->second != arity) {
    return InvalidArgumentError(
        "relation '" + NameOf(atom.relation) + "' used with arities " +
        std::to_string(it->second) + " and " + std::to_string(arity));
  }
  return Status::Ok();
}

}  // namespace

Result<ProgramInfo> Analyze(const Program& program, bool allow_invention) {
  std::map<uint32_t, uint32_t> arities;
  std::set<uint32_t> idb_names;

  for (const Rule& rule : program.rules) {
    if (rule.pos.empty()) {
      return InvalidArgumentError("rule '" + RuleToString(rule) +
                                  "' has an empty positive body");
    }
    if (rule.head.invents && !allow_invention) {
      return InvalidArgumentError("invention atom in head of '" +
                                  RuleToString(rule) +
                                  "' (not a plain Datalog¬ program)");
    }
    for (const Atom& a : rule.pos) {
      if (a.invents) {
        return InvalidArgumentError("invention atom in body of '" +
                                    RuleToString(rule) + "'");
      }
    }
    for (const Atom& a : rule.neg) {
      if (a.invents) {
        return InvalidArgumentError("invention atom in body of '" +
                                    RuleToString(rule) + "'");
      }
    }
    CALM_RETURN_IF_ERROR(NoteArity(arities, rule.head));
    idb_names.insert(rule.head.relation);
    for (const Atom& a : rule.pos) CALM_RETURN_IF_ERROR(NoteArity(arities, a));
    for (const Atom& a : rule.neg) CALM_RETURN_IF_ERROR(NoteArity(arities, a));

    // Safety: every variable occurs in pos.
    std::set<uint32_t> pos_vars = rule.PositiveVariables();
    for (uint32_t v : rule.Variables()) {
      if (pos_vars.count(v) == 0) {
        return InvalidArgumentError("unsafe rule '" + RuleToString(rule) +
                                    "': variable '" + NameOf(v) +
                                    "' does not occur positively");
      }
    }
  }

  ProgramInfo info;
  for (auto [name, arity] : arities) {
    CALM_RETURN_IF_ERROR(
        info.sch.AddRelation(RelationDecl(name, static_cast<uint32_t>(arity))));
    if (idb_names.count(name) > 0) {
      CALM_RETURN_IF_ERROR(
          info.idb.AddRelation(RelationDecl(name, static_cast<uint32_t>(arity))));
    } else {
      CALM_RETURN_IF_ERROR(
          info.edb.AddRelation(RelationDecl(name, static_cast<uint32_t>(arity))));
    }
  }

  for (const Rule& rule : program.rules) {
    for (const Atom& a : rule.pos) {
      if (idb_names.count(a.relation) > 0) {
        info.idb_edges.push_back({a.relation, rule.head.relation, false});
      }
    }
    for (const Atom& a : rule.neg) {
      if (idb_names.count(a.relation) > 0) {
        info.idb_edges.push_back({a.relation, rule.head.relation, true});
      }
    }
  }

  info.uses_adom = info.edb.Contains(AdomRelation());
  return info;
}

Result<Schema> OutputSchema(const Program& program, const ProgramInfo& info) {
  Schema out;
  for (uint32_t name : program.output_relations) {
    uint32_t arity = info.idb.ArityOf(name);
    if (arity == 0) {
      return InvalidArgumentError("output relation '" + NameOf(name) +
                                  "' is not an idb relation of the program");
    }
    CALM_RETURN_IF_ERROR(out.AddRelation(RelationDecl(name, arity)));
  }
  return out;
}

}  // namespace calm::datalog
