#ifndef CALM_DATALOG_COMPILED_H_
#define CALM_DATALOG_COMPILED_H_

#include <cstdint>
#include <map>
#include <vector>

#include "base/value.h"
#include "datalog/ast.h"

namespace calm::datalog {

// Rule compilation: variables renamed to dense slots; per positive atom the
// bound/free layout is decided at match time (bindings flow left to right).
// Compiled rules are immutable after compilation and shared read-only by
// concurrent evaluations of the same PreparedProgram.

struct CompiledAtom {
  uint32_t relation = 0;
  bool invents = false;  // head-only: leading Skolem invention position
  // Per argument: the variable slot, or -1 for a constant.
  std::vector<int> slots;
  std::vector<Value> constants;  // parallel; meaningful where slot == -1
};

struct CompiledIneq {
  int left_slot = -1;  // -1 => constant
  int right_slot = -1;
  Value left_const;
  Value right_const;
  size_t ready_after = 0;  // pos-atom index after which both sides are bound
};

struct CompiledRule {
  CompiledAtom head;
  std::vector<CompiledAtom> pos;
  std::vector<CompiledAtom> neg;
  std::vector<CompiledIneq> ineqs;
  size_t slot_count = 0;
};

class RuleCompiler {
 public:
  // Compiles one rule. When `reorder_joins` is set, positive body atoms are
  // greedily reordered: repeatedly pick the remaining atom with the most
  // bound argument positions (constants or variables already bound by the
  // chosen prefix); ties broken by fewer new variables, then written order.
  CompiledRule Compile(const Rule& rule, bool reorder_joins);

 private:
  static std::vector<const Atom*> OrderAtoms(const Rule& rule,
                                             bool reorder_joins);
  int SlotOf(uint32_t var);
  CompiledAtom CompileAtom(const Atom& atom);

  std::map<uint32_t, int> slots_;
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_COMPILED_H_
