#include "datalog/program.h"

#include <cstdio>
#include <cstdlib>

#include "datalog/parser.h"
#include "datalog/wellfounded.h"

namespace calm::datalog {

namespace {

// FirstRetracted through the prepared program's incremental evaluator: the
// Q(i) fixpoint stays materialized across calls and each j runs as an
// epoch-scoped insertion delta. Overlays that only grow the fixpoint prove
// Q(i) ⊆ Q(i ∪ j) without materializing any output, so the common monotone
// check is just the delta propagation plus a rollback.
class IncrementalUnionEvaluator : public UnionEvaluator {
 public:
  IncrementalUnionEvaluator(std::shared_ptr<const PreparedProgram> prepared,
                            std::unique_ptr<IncrementalEval> inc)
      : prepared_(std::move(prepared)), inc_(std::move(inc)) {}

  Result<std::optional<Fact>> FirstRetracted(
      const Instance& j, const std::vector<Fact>& base_facts) override {
    CALM_ASSIGN_OR_RETURN(
        IncrementalEval::Overlay overlay,
        inc_->EvalOverlay(j, &out_, /*materialize=*/false));
    if (overlay.superset_of_base) return std::optional<Fact>();
    auto it = out_.begin();
    for (const Fact& f : base_facts) {
      while (it != out_.end() && *it < f) ++it;
      if (it == out_.end() || !(*it == f)) return std::optional<Fact>(f);
    }
    return std::optional<Fact>();
  }

 private:
  std::shared_ptr<const PreparedProgram> prepared_;  // keeps inc_'s prog alive
  std::unique_ptr<IncrementalEval> inc_;
  std::vector<Fact> out_;  // Q(i ∪ j), reused across calls
};

}  // namespace

Result<DatalogQuery> DatalogQuery::Create(Program program, std::string name,
                                          Semantics semantics,
                                          EvalOptions options) {
  DatalogQuery q;
  // Analyze, stratify (under kStratified), and compile exactly once; Eval
  // only runs the prepared form.
  Result<PreparedProgram> prepared =
      semantics == Semantics::kStratified
          ? PreparedProgram::Prepare(program, options)
          : PreparedProgram::PrepareFixedNegation(program, options);
  CALM_RETURN_IF_ERROR(prepared.status());
  q.prepared_ =
      std::make_shared<const PreparedProgram>(std::move(prepared).value());
  const ProgramInfo& info = q.prepared_->info();
  q.fragment_ = ClassifyFragment(program, info);
  CALM_ASSIGN_OR_RETURN(q.output_schema_, OutputSchema(program, info));
  if (q.output_schema_.empty()) {
    return InvalidArgumentError(
        "program has no output relations (mark one with .output or name it O)");
  }
  for (const RelationDecl& r : info.edb.relations()) {
    if (r.name == AdomRelation()) continue;
    CALM_RETURN_IF_ERROR(q.input_schema_.AddRelation(r));
  }
  q.program_ = std::move(program);
  q.name_ = name.empty() ? q.fragment_.FragmentName() : std::move(name);
  q.semantics_ = semantics;
  return q;
}

DatalogQuery DatalogQuery::FromTextOrDie(std::string_view text,
                                         std::string name, Semantics semantics,
                                         EvalOptions options) {
  Result<Program> program = Parse(text);
  if (!program.ok()) {
    std::fprintf(stderr, "FromTextOrDie parse error: %s\n",
                 program.status().ToString().c_str());
    std::abort();
  }
  Result<DatalogQuery> q = Create(std::move(program).value(), std::move(name),
                                  semantics, options);
  if (!q.ok()) {
    std::fprintf(stderr, "FromTextOrDie invalid program: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

Result<Instance> DatalogQuery::EvalSeeded(
    std::initializer_list<const Instance*> parts) const {
  if (semantics_ == Semantics::kStratified) {
    return prepared_->EvalParts(parts, &input_schema_, &output_schema_);
  }
  CALM_ASSIGN_OR_RETURN(
      WellFoundedModel model,
      EvaluateWellFounded(*prepared_, parts, &input_schema_));
  return model.definitely.Restrict(output_schema_);
}

Result<Instance> DatalogQuery::Eval(const Instance& input) const {
  return EvalSeeded({&input});
}

Result<Instance> DatalogQuery::EvalUnion(const Instance& a,
                                         const Instance& b) const {
  return EvalSeeded({&a, &b});
}

std::unique_ptr<UnionEvaluator> DatalogQuery::MakeUnionEvaluator(
    const Instance& i) const {
  // The well-founded alternation has no single materialized fixpoint to
  // continue from; it keeps the overlay route regardless of mode.
  if (semantics_ == Semantics::kStratified &&
      prepared_->incremental() == IncrementalMode::kOn) {
    return std::make_unique<IncrementalUnionEvaluator>(
        prepared_,
        prepared_->BeginIncremental(i, &input_schema_, &output_schema_));
  }
  return Query::MakeUnionEvaluator(i);
}

}  // namespace calm::datalog
