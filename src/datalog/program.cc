#include "datalog/program.h"

#include <cstdio>
#include <cstdlib>

#include "datalog/parser.h"
#include "datalog/stratifier.h"
#include "datalog/wellfounded.h"

namespace calm::datalog {

Result<DatalogQuery> DatalogQuery::Create(Program program, std::string name,
                                          Semantics semantics,
                                          EvalOptions options) {
  DatalogQuery q;
  CALM_ASSIGN_OR_RETURN(q.info_, Analyze(program));
  if (semantics == Semantics::kStratified) {
    CALM_ASSIGN_OR_RETURN(Stratification strat, Stratify(program, q.info_));
    (void)strat;
  }
  q.fragment_ = ClassifyFragment(program, q.info_);
  CALM_ASSIGN_OR_RETURN(q.output_schema_, OutputSchema(program, q.info_));
  if (q.output_schema_.empty()) {
    return InvalidArgumentError(
        "program has no output relations (mark one with .output or name it O)");
  }
  for (const RelationDecl& r : q.info_.edb.relations()) {
    if (r.name == AdomRelation()) continue;
    CALM_RETURN_IF_ERROR(q.input_schema_.AddRelation(r));
  }
  q.program_ = std::move(program);
  q.name_ = name.empty() ? q.fragment_.FragmentName() : std::move(name);
  q.semantics_ = semantics;
  q.options_ = options;
  return q;
}

DatalogQuery DatalogQuery::FromTextOrDie(std::string_view text,
                                         std::string name, Semantics semantics,
                                         EvalOptions options) {
  Result<Program> program = Parse(text);
  if (!program.ok()) {
    std::fprintf(stderr, "FromTextOrDie parse error: %s\n",
                 program.status().ToString().c_str());
    std::abort();
  }
  Result<DatalogQuery> q = Create(std::move(program).value(), std::move(name),
                                  semantics, options);
  if (!q.ok()) {
    std::fprintf(stderr, "FromTextOrDie invalid program: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

Result<Instance> DatalogQuery::Eval(const Instance& input) const {
  Instance restricted = input.Restrict(input_schema_);
  if (semantics_ == Semantics::kStratified) {
    CALM_ASSIGN_OR_RETURN(Instance full,
                          Evaluate(program_, restricted, options_));
    return full.Restrict(output_schema_);
  }
  CALM_ASSIGN_OR_RETURN(WellFoundedModel model,
                        EvaluateWellFounded(program_, restricted, options_));
  return model.definitely.Restrict(output_schema_);
}

}  // namespace calm::datalog
