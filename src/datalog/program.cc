#include "datalog/program.h"

#include <cstdio>
#include <cstdlib>

#include "datalog/parser.h"
#include "datalog/wellfounded.h"

namespace calm::datalog {

Result<DatalogQuery> DatalogQuery::Create(Program program, std::string name,
                                          Semantics semantics,
                                          EvalOptions options) {
  DatalogQuery q;
  // Analyze, stratify (under kStratified), and compile exactly once; Eval
  // only runs the prepared form.
  Result<PreparedProgram> prepared =
      semantics == Semantics::kStratified
          ? PreparedProgram::Prepare(program, options)
          : PreparedProgram::PrepareFixedNegation(program, options);
  CALM_RETURN_IF_ERROR(prepared.status());
  q.prepared_ =
      std::make_shared<const PreparedProgram>(std::move(prepared).value());
  const ProgramInfo& info = q.prepared_->info();
  q.fragment_ = ClassifyFragment(program, info);
  CALM_ASSIGN_OR_RETURN(q.output_schema_, OutputSchema(program, info));
  if (q.output_schema_.empty()) {
    return InvalidArgumentError(
        "program has no output relations (mark one with .output or name it O)");
  }
  for (const RelationDecl& r : info.edb.relations()) {
    if (r.name == AdomRelation()) continue;
    CALM_RETURN_IF_ERROR(q.input_schema_.AddRelation(r));
  }
  q.program_ = std::move(program);
  q.name_ = name.empty() ? q.fragment_.FragmentName() : std::move(name);
  q.semantics_ = semantics;
  return q;
}

DatalogQuery DatalogQuery::FromTextOrDie(std::string_view text,
                                         std::string name, Semantics semantics,
                                         EvalOptions options) {
  Result<Program> program = Parse(text);
  if (!program.ok()) {
    std::fprintf(stderr, "FromTextOrDie parse error: %s\n",
                 program.status().ToString().c_str());
    std::abort();
  }
  Result<DatalogQuery> q = Create(std::move(program).value(), std::move(name),
                                  semantics, options);
  if (!q.ok()) {
    std::fprintf(stderr, "FromTextOrDie invalid program: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

Result<Instance> DatalogQuery::EvalSeeded(
    std::initializer_list<const Instance*> parts) const {
  if (semantics_ == Semantics::kStratified) {
    return prepared_->EvalParts(parts, &input_schema_, &output_schema_);
  }
  CALM_ASSIGN_OR_RETURN(
      WellFoundedModel model,
      EvaluateWellFounded(*prepared_, parts, &input_schema_));
  return model.definitely.Restrict(output_schema_);
}

Result<Instance> DatalogQuery::Eval(const Instance& input) const {
  return EvalSeeded({&input});
}

Result<Instance> DatalogQuery::EvalUnion(const Instance& a,
                                         const Instance& b) const {
  return EvalSeeded({&a, &b});
}

}  // namespace calm::datalog
