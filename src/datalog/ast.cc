#include "datalog/ast.h"

namespace calm::datalog {

Term Term::Var(std::string_view name) {
  Term t;
  t.kind = Kind::kVar;
  t.var = InternName(name);
  return t;
}

Atom::Atom(std::string_view relation_name, std::vector<Term> terms)
    : relation(InternName(relation_name)), args(std::move(terms)) {}

std::set<uint32_t> Rule::Variables() const {
  std::set<uint32_t> out = PositiveVariables();
  for (const Term& t : head.args) {
    if (t.is_var()) out.insert(t.var);
  }
  for (const Atom& a : neg) {
    for (const Term& t : a.args) {
      if (t.is_var()) out.insert(t.var);
    }
  }
  for (const auto& [l, r] : ineqs) {
    if (l.is_var()) out.insert(l.var);
    if (r.is_var()) out.insert(r.var);
  }
  return out;
}

std::set<uint32_t> Rule::PositiveVariables() const {
  std::set<uint32_t> out;
  for (const Atom& a : pos) {
    for (const Term& t : a.args) {
      if (t.is_var()) out.insert(t.var);
    }
  }
  return out;
}

std::string TermToString(const Term& t) {
  if (t.is_var()) return NameOf(t.var);
  return ValueToString(t.constant);
}

std::string AtomToString(const Atom& a) {
  std::string out = NameOf(a.relation) + "(";
  if (a.invents) out += "*";
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (i > 0 || a.invents) out += ", ";
    out += TermToString(a.args[i]);
  }
  out += ")";
  return out;
}

std::string RuleToString(const Rule& r) {
  std::string out = AtomToString(r.head) + " :- ";
  bool first = true;
  for (const Atom& a : r.pos) {
    if (!first) out += ", ";
    first = false;
    out += AtomToString(a);
  }
  for (const Atom& a : r.neg) {
    if (!first) out += ", ";
    first = false;
    out += "!" + AtomToString(a);
  }
  for (const auto& [l, rt] : r.ineqs) {
    if (!first) out += ", ";
    first = false;
    out += TermToString(l) + " != " + TermToString(rt);
  }
  out += ".";
  return out;
}

std::string ProgramToString(const Program& p) {
  std::string out;
  for (const Rule& r : p.rules) {
    out += RuleToString(r);
    out += "\n";
  }
  return out;
}

}  // namespace calm::datalog
