#include "datalog/bytecode.h"

#include <algorithm>

namespace calm::datalog {

namespace {

// Deduplicating append into the program's constant pool.
uint32_t PoolId(std::vector<Value>* pool, Value v) {
  for (uint32_t i = 0; i < pool->size(); ++i) {
    if ((*pool)[i] == v) return i;
  }
  pool->push_back(v);
  return static_cast<uint32_t>(pool->size() - 1);
}

ValueSrc MakeSrc(int slot, uint32_t const_id) {
  ValueSrc src;
  src.slot = slot;
  src.const_id = const_id;
  return src;
}

ValueSrc IneqSide(std::vector<Value>* pool, int slot, Value constant) {
  return MakeSrc(slot, slot >= 0 ? 0 : PoolId(pool, constant));
}

// Appends the child frame of (parent, row) to `next`: copy-forward the
// parent slots, bind this atom's free columns, then run the residual
// equality and inequality checks. Returns whether the child survived.
// Everything compares dictionary codes — the shared dictionary makes code
// equality coincide with value equality.
inline bool ExpandRow(const JoinOp& op, const RelStore& store, uint32_t row,
                      const uint32_t* parent, size_t stride,
                      const uint32_t* const_codes,
                      std::vector<uint32_t>& next) {
  size_t base = next.size();
  next.resize(base + stride);
  uint32_t* child = next.data() + base;
  std::copy(parent, parent + stride, child);
  for (const auto& [col, slot] : op.loads) {
    child[slot] = store.CodeAt(row, col);
  }
  for (const auto& [col, slot] : op.checks) {
    if (store.CodeAt(row, col) != child[slot]) {
      next.resize(base);
      return false;
    }
  }
  for (const IneqCheck& iq : op.ineqs) {
    uint32_t l = iq.left.slot >= 0 ? child[iq.left.slot]
                                   : const_codes[iq.left.const_id];
    uint32_t r = iq.right.slot >= 0 ? child[iq.right.slot]
                                    : const_codes[iq.right.const_id];
    if (l == r) {
      next.resize(base);
      return false;
    }
  }
  return true;
}

}  // namespace

RuleBytecode CompileRuleBytecode(const CompiledRule& rule,
                                 std::vector<Value>* pool) {
  RuleBytecode bc;
  bc.slot_count = static_cast<uint32_t>(rule.slot_count);
  bc.head_relation = rule.head.relation;
  bc.head_invents = rule.head.invents;
  for (size_t i = 0; i < rule.head.slots.size(); ++i) {
    int s = rule.head.slots[i];
    bc.head.push_back(
        MakeSrc(s, s >= 0 ? 0 : PoolId(pool, rule.head.constants[i])));
  }

  // Static binding analysis: a slot is bound at atom k iff an earlier atom
  // (or an earlier position of atom k) bound it — exactly the state the
  // tree matcher rediscovers per candidate tuple at run time.
  std::vector<bool> bound(rule.slot_count, false);
  for (size_t a = 0; a < rule.pos.size(); ++a) {
    const CompiledAtom& atom = rule.pos[a];
    JoinOp op;
    op.relation = atom.relation;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      if (s < 0) {
        op.mask |= (1u << i);
        KeySrc k;
        k.col = static_cast<uint16_t>(i);
        k.slot = -1;
        k.const_id = PoolId(pool, atom.constants[i]);
        op.key.push_back(k);
      } else if (bound[s]) {
        op.mask |= (1u << i);
        KeySrc k;
        k.col = static_cast<uint16_t>(i);
        k.slot = s;
        op.key.push_back(k);
      } else {
        bool in_atom = false;
        for (const auto& [col, slot] : op.loads) in_atom |= slot == s;
        if (in_atom) {
          op.checks.emplace_back(static_cast<uint16_t>(i),
                                 static_cast<uint16_t>(s));
        } else {
          op.loads.emplace_back(static_cast<uint16_t>(i),
                                static_cast<uint16_t>(s));
        }
      }
    }
    for (const auto& [col, slot] : op.loads) bound[slot] = true;
    for (const CompiledIneq& iq : rule.ineqs) {
      if (iq.ready_after != a + 1) continue;
      op.ineqs.push_back(
          IneqCheck{IneqSide(pool, iq.left_slot, iq.left_const),
                    IneqSide(pool, iq.right_slot, iq.right_const)});
    }
    bc.ops.push_back(std::move(op));
  }

  for (const CompiledIneq& iq : rule.ineqs) {
    if (iq.ready_after != 0) continue;
    bc.const_ineqs.push_back(
        IneqCheck{IneqSide(pool, iq.left_slot, iq.left_const),
                  IneqSide(pool, iq.right_slot, iq.right_const)});
  }
  for (const CompiledAtom& atom : rule.neg) {
    NegCheck n;
    n.relation = atom.relation;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      n.args.push_back(
          MakeSrc(s, s >= 0 ? 0 : PoolId(pool, atom.constants[i])));
    }
    bc.negs.push_back(std::move(n));
  }

  if (!bc.ops.empty() && bc.negs.empty() && !bc.head_invents &&
      bc.ops.back().checks.empty() && bc.ops.back().ineqs.empty()) {
    const JoinOp& op = bc.ops.back();
    bc.fused = true;
    for (const ValueSrc& src : bc.head) {
      RuleBytecode::FusedSrc f;
      if (src.slot < 0) {
        f.kind = RuleBytecode::FusedSrc::kConst;
        f.idx = static_cast<uint16_t>(src.const_id);
      } else {
        f.kind = RuleBytecode::FusedSrc::kSlot;
        f.idx = static_cast<uint16_t>(src.slot);
        for (const auto& [col, slot] : op.loads) {
          if (slot == src.slot) {
            f.kind = RuleBytecode::FusedSrc::kCol;
            f.idx = col;
            break;
          }
        }
      }
      bc.fused_head.push_back(f);
    }
  }
  return bc;
}

BytecodeProgram CompileBytecode(const std::vector<CompiledRule>& rules) {
  BytecodeProgram out;
  out.rules.reserve(rules.size());
  for (const CompiledRule& r : rules) {
    out.rules.push_back(CompileRuleBytecode(r, &out.const_pool));
  }
  return out;
}

BytecodeExecutor::BytecodeExecutor(
    const BytecodeProgram& program, Database* db, const Database* negation_db,
    const std::vector<uint32_t>* growing,
    const std::vector<std::pair<uint32_t, uint32_t>>* ranges,
    EvalStats* stats, InventionTable* invention, ExecCounters* counters,
    BytecodeScratch* scratch)
    : db_(db),
      negation_db_(negation_db),
      growing_(growing),
      ranges_(ranges),
      stats_(stats),
      invention_(invention),
      counters_(counters),
      scratch_(scratch),
      pool_(&program.const_pool) {
  const_codes_.resize(pool_->size());
  for (size_t i = 0; i < pool_->size(); ++i) {
    const_codes_[i] = db->dict().Intern((*pool_)[i]);
  }
}

void BytecodeExecutor::EmitRow(const RuleBytecode& rule, const JoinOp& op,
                               const RelStore* store, uint32_t row,
                               const uint32_t* parent, size_t stride,
                               bool emit_ok) {
  uint32_t* child = scratch_->child.data();
  std::copy(parent, parent + stride, child);
  for (const auto& [col, slot] : op.loads) {
    child[slot] = store->CodeAt(row, col);
  }
  for (const auto& [col, slot] : op.checks) {
    if (store->CodeAt(row, col) != child[slot]) return;
  }
  const uint32_t* ccodes = const_codes_.data();
  for (const IneqCheck& iq : op.ineqs) {
    uint32_t l = iq.left.slot >= 0 ? child[iq.left.slot]
                                   : ccodes[iq.left.const_id];
    uint32_t r = iq.right.slot >= 0 ? child[iq.right.slot]
                                    : ccodes[iq.right.const_id];
    if (l == r) return;
  }
  // The join ran (probe/hit counters ticked); a failing constant-only
  // inequality only suppresses the leaf, exactly as the tree matcher's
  // per-leaf Finish does.
  if (!emit_ok) return;
  const ValueDict& dict = db_->dict();
  if (!rule.negs.empty()) {
    Tuple& neg_tuple = scratch_->tuple;
    for (const NegCheck& n : rule.negs) {
      // Negation decodes to Values: the anti-probe may target a different
      // database (fixed-negation alternation) with its own dictionary.
      neg_tuple.clear();
      neg_tuple.reserve(n.args.size());
      for (const ValueSrc& src : n.args) {
        neg_tuple.push_back(src.slot >= 0 ? dict.ValueOf(child[src.slot])
                                          : (*pool_)[src.const_id]);
      }
      if (negation_db_->Contains(n.relation, neg_tuple)) return;
    }
  }
  ++counters_->applications;
  uint32_t* head = scratch_->head.data();
  size_t h = 0;
  if (rule.head_invents) {
    // ILOG invention stays in Value space: the Skolem table is keyed by
    // Values so both engines invent byte-identical terms.
    Tuple& args = scratch_->tuple;
    args.clear();
    args.reserve(rule.head.size());
    for (const ValueSrc& src : rule.head) {
      args.push_back(src.slot >= 0 ? dict.ValueOf(child[src.slot])
                                   : (*pool_)[src.const_id]);
    }
    Value skolem = invention_->GetOrCreate(rule.head_relation, args);
    head[h++] = db_->dict().Intern(skolem);
  }
  for (const ValueSrc& src : rule.head) {
    head[h++] = src.slot >= 0 ? child[src.slot] : ccodes[src.const_id];
  }
  if (head_store_->InsertCodes(head, static_cast<uint32_t>(h))) {
    ++counters_->inserted;
  } else {
    ++counters_->rejected;
  }
}

bool BytecodeExecutor::EvalScanProbeFused(const RuleBytecode& rule,
                                          size_t delta_index, uint32_t delta_lo,
                                          uint32_t delta_hi, bool emit_ok) {
  const JoinOp& op0 = rule.ops[0];
  const JoinOp& op1 = rule.ops[1];
  const uint32_t* ccodes = const_codes_.data();

  // Map every slot the probe key and head plan reference back to the op0
  // column that binds it — after that, the whole rule reads columns only.
  auto col_of_slot = [&](uint16_t slot, uint32_t* col) {
    for (const auto& [c, s] : op0.loads) {
      if (s == slot) {
        *col = c;
        return true;
      }
    }
    return false;
  };
  struct Src {
    uint8_t kind;  // 0 = op0 column, 1 = op1 column, 2 = constant code
    uint32_t idx;
  };
  Src key[32];
  const uint32_t nkey = static_cast<uint32_t>(op1.key.size());
  if (nkey > 32) return false;
  for (uint32_t i = 0; i < nkey; ++i) {
    const KeySrc& k = op1.key[i];
    if (k.slot < 0) {
      key[i] = {2, ccodes[k.const_id]};
    } else {
      uint32_t col = 0;
      if (!col_of_slot(static_cast<uint16_t>(k.slot), &col)) return false;
      key[i] = {0, col};
    }
  }
  Src head_plan[32];
  const uint32_t nhead = static_cast<uint32_t>(rule.fused_head.size());
  if (nhead > 32) return false;
  for (uint32_t i = 0; i < nhead; ++i) {
    const RuleBytecode::FusedSrc& s = rule.fused_head[i];
    if (s.kind == RuleBytecode::FusedSrc::kConst) {
      head_plan[i] = {2, ccodes[s.idx]};
    } else if (s.kind == RuleBytecode::FusedSrc::kCol) {
      head_plan[i] = {1, s.idx};
    } else {
      uint32_t col = 0;
      if (!col_of_slot(s.idx, &col)) return false;
      head_plan[i] = {0, col};
    }
  }

  RelStore* s0 = db_->Store(op0.relation);
  if (s0 == nullptr || s0->size() == 0) return true;
  bool grows0 = false;
  const uint32_t end0 = Horizon(op0.relation, *s0, &grows0);
  if (grows0 && end0 == 0) return true;
  const bool d0 = delta_index == 0;
  const uint32_t begin0 = d0 ? delta_lo : 0;
  const uint32_t stop0 = d0 ? delta_hi : end0;

  RelStore* s1 = db_->Store(op1.relation);
  if (s1 == nullptr || s1->size() == 0) return true;
  bool grows1 = false;
  const uint32_t end1 = Horizon(op1.relation, *s1, &grows1);
  if (grows1 && end1 == 0) return true;
  const RelStore::MaskIndex& index = s1->PrepareProbe(op1.mask);
  const bool bound1 = s1->row_count() > end1;
  const bool d1 = delta_index == 1;

  uint32_t* head = scratch_->head.data();
  uint32_t codes[32];
  for (uint32_t row = begin0; row < stop0; ++row) {
    for (uint32_t i = 0; i < nkey; ++i) {
      codes[i] = key[i].kind == 0 ? s0->CodeAt(row, key[i].idx) : key[i].idx;
    }
    ++counters_->probes;  // tree parity: one probe per (frame = op0 row)
    const std::vector<uint32_t>& hits = s1->ProbePrepared(index, codes);
    const uint32_t* hb = hits.data();
    const uint32_t* he = hb + hits.size();
    if (bound1) he = std::lower_bound(hb, he, end1);
    if (d1) hb = std::lower_bound(hb, he, delta_lo);
    counters_->probe_hits += static_cast<uint64_t>(he - hb);
    if (!emit_ok) continue;  // constant inequality failed: count, emit not
    for (; hb != he; ++hb) {
      for (uint32_t i = 0; i < nhead; ++i) {
        const Src& s = head_plan[i];
        head[i] = s.kind == 0 ? s0->CodeAt(row, s.idx)
                  : s.kind == 1 ? s1->CodeAt(*hb, s.idx)
                                : s.idx;
      }
      ++counters_->applications;
      if (head_store_->InsertCodes(head, nhead)) {
        ++counters_->inserted;
      } else {
        ++counters_->rejected;
      }
    }
  }
  return true;
}

void BytecodeExecutor::Eval(const RuleBytecode& rule, size_t delta_index,
                            uint32_t delta_lo, uint32_t delta_hi) {
  const size_t stride = rule.slot_count;
  const uint32_t* ccodes = const_codes_.data();
  // Constant-only inequalities (ready_after == 0): frame-independent, but a
  // failure must not skip the joins — the tree matcher still walks them
  // (counting probes) and rejects each leaf in Finish.
  bool emit_ok = true;
  for (const IneqCheck& iq : rule.const_ineqs) {
    if (ccodes[iq.left.const_id] == ccodes[iq.right.const_id]) {
      emit_ok = false;
    }
  }
  if (scratch_->child.size() < stride) scratch_->child.resize(stride);
  const size_t head_arity = rule.head.size() + (rule.head_invents ? 1 : 0);
  if (scratch_->head.size() < head_arity) scratch_->head.resize(head_arity);
  head_store_ = db_->Store(rule.head_relation);

  std::vector<uint32_t>& cur = scratch_->cur;
  std::vector<uint32_t>& next = scratch_->next;
  cur.clear();
  cur.resize(stride);  // level 0: one frame, all slots free
  size_t frames = 1;

  const size_t nops = rule.ops.size();
  if (nops == 0) {
    // Bodyless rule: a single empty match.
    static const JoinOp kNoOp;
    EmitRow(rule, kNoOp, nullptr, 0, cur.data(), stride, emit_ok);
    return;
  }
  if (nops == 2 && rule.fused && rule.ops[0].mask == 0 &&
      rule.ops[0].checks.empty() && rule.ops[0].ineqs.empty() &&
      rule.ops[1].mask != 0 &&
      EvalScanProbeFused(rule, delta_index, delta_lo, delta_hi, emit_ok)) {
    return;
  }

  for (size_t a = 0; a < nops && frames > 0; ++a) {
    const JoinOp& op = rule.ops[a];
    const bool is_delta = a == delta_index;
    const bool last = a + 1 == nops;
    RelStore* store = db_->Store(op.relation);
    if (store == nullptr || store->size() == 0) return;
    bool grows = false;
    const uint32_t end = Horizon(op.relation, *store, &grows);
    // A growing store with nothing visible this round is, for this Eval,
    // the same as a missing store (the tree engine has no such rows at
    // all) — bail before any probe is counted.
    if (grows && end == 0) return;
    size_t survivors = 0;
    if (!last) next.clear();
    const uint32_t scan_begin = is_delta ? delta_lo : 0;
    const uint32_t scan_end = is_delta ? delta_hi : end;
    const RelStore::MaskIndex* index =
        op.mask != 0 ? &store->PrepareProbe(op.mask) : nullptr;
    const bool bound_hits = store->row_count() > end;
    const bool fused = last && rule.fused;
    const RuleBytecode::FusedSrc* plan = rule.fused_head.data();
    const uint32_t nhead = static_cast<uint32_t>(rule.fused_head.size());
    // One matched row of the last op, straight to the database: the fused
    // plan skips the child frame entirely; the general path goes through
    // EmitRow (residual checks, inequalities, negation, invention).
    auto emit_one = [&](uint32_t row, const uint32_t* parent) {
      if (fused) {
        if (!emit_ok) return;  // constant inequality failed: count, emit not
        uint32_t* head = scratch_->head.data();
        for (uint32_t i = 0; i < nhead; ++i) {
          const RuleBytecode::FusedSrc& s = plan[i];
          head[i] = s.kind == RuleBytecode::FusedSrc::kSlot
                        ? parent[s.idx]
                        : s.kind == RuleBytecode::FusedSrc::kCol
                              ? store->CodeAt(row, s.idx)
                              : ccodes[s.idx];
        }
        ++counters_->applications;
        if (head_store_->InsertCodes(head, nhead)) {
          ++counters_->inserted;
        } else {
          ++counters_->rejected;
        }
      } else {
        EmitRow(rule, op, store, row, parent, stride, emit_ok);
      }
    };
    for (size_t f = 0; f < frames; ++f) {
      const uint32_t* parent = cur.data() + f * stride;
      if (op.mask == 0) {
        for (uint32_t row = scan_begin; row < scan_end; ++row) {
          if (last) {
            emit_one(row, parent);
          } else {
            survivors +=
                ExpandRow(op, *store, row, parent, stride, ccodes, next);
          }
        }
        continue;
      }
      uint32_t codes[32];
      for (size_t i = 0; i < op.key.size(); ++i) {
        const KeySrc& k = op.key[i];
        codes[i] = k.slot >= 0 ? parent[k.slot] : ccodes[k.const_id];
      }
      ++counters_->probes;  // tree parity: one probe per frame
      const std::vector<uint32_t>& hits = store->ProbePrepared(*index, codes);
      // Hit rows are ascending, so both the visibility horizon and the
      // delta restriction are contiguous slices.
      const uint32_t* hb = hits.data();
      const uint32_t* he = hb + hits.size();
      if (bound_hits) he = std::lower_bound(hb, he, end);
      if (is_delta) hb = std::lower_bound(hb, he, delta_lo);
      counters_->probe_hits += static_cast<uint64_t>(he - hb);
      for (; hb != he; ++hb) {
        if (last) {
          emit_one(*hb, parent);
        } else {
          survivors +=
              ExpandRow(op, *store, *hb, parent, stride, ccodes, next);
        }
      }
    }
    if (last) return;
    cur.swap(next);
    frames = survivors;
  }
}

}  // namespace calm::datalog
