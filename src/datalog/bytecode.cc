#include "datalog/bytecode.h"

#include <algorithm>

#include "base/simd.h"

namespace calm::datalog {

namespace {

// Deduplicating append into the program's constant pool.
uint32_t PoolId(std::vector<Value>* pool, Value v) {
  for (uint32_t i = 0; i < pool->size(); ++i) {
    if ((*pool)[i] == v) return i;
  }
  pool->push_back(v);
  return static_cast<uint32_t>(pool->size() - 1);
}

ValueSrc MakeSrc(int slot, uint32_t const_id) {
  ValueSrc src;
  src.slot = slot;
  src.const_id = const_id;
  return src;
}

ValueSrc IneqSide(std::vector<Value>* pool, int slot, Value constant) {
  return MakeSrc(slot, slot >= 0 ? 0 : PoolId(pool, constant));
}

// Appends the child frame of (parent, row) to `next`: copy-forward the
// parent slots, bind this atom's free columns, then run the residual
// equality and inequality checks. Returns whether the child survived.
// Everything compares dictionary codes — the shared dictionary makes code
// equality coincide with value equality.
inline bool ExpandRow(const JoinOp& op, const RelStore& store, uint32_t row,
                      const uint32_t* parent, size_t stride,
                      const uint32_t* const_codes,
                      std::vector<uint32_t>& next) {
  size_t base = next.size();
  next.resize(base + stride);
  uint32_t* child = next.data() + base;
  std::copy(parent, parent + stride, child);
  for (const auto& [col, slot] : op.loads) {
    child[slot] = store.CodeAt(row, col);
  }
  for (const auto& [col, slot] : op.checks) {
    if (store.CodeAt(row, col) != child[slot]) {
      next.resize(base);
      return false;
    }
  }
  for (const IneqCheck& iq : op.ineqs) {
    uint32_t l = iq.left.slot >= 0 ? child[iq.left.slot]
                                   : const_codes[iq.left.const_id];
    uint32_t r = iq.right.slot >= 0 ? child[iq.right.slot]
                                    : const_codes[iq.right.const_id];
    if (l == r) {
      next.resize(base);
      return false;
    }
  }
  return true;
}

}  // namespace

RuleBytecode CompileRuleBytecode(const CompiledRule& rule,
                                 std::vector<Value>* pool) {
  RuleBytecode bc;
  bc.slot_count = static_cast<uint32_t>(rule.slot_count);
  bc.head_relation = rule.head.relation;
  bc.head_invents = rule.head.invents;
  for (size_t i = 0; i < rule.head.slots.size(); ++i) {
    int s = rule.head.slots[i];
    bc.head.push_back(
        MakeSrc(s, s >= 0 ? 0 : PoolId(pool, rule.head.constants[i])));
  }

  // Static binding analysis: a slot is bound at atom k iff an earlier atom
  // (or an earlier position of atom k) bound it — exactly the state the
  // tree matcher rediscovers per candidate tuple at run time.
  std::vector<bool> bound(rule.slot_count, false);
  for (size_t a = 0; a < rule.pos.size(); ++a) {
    const CompiledAtom& atom = rule.pos[a];
    JoinOp op;
    op.relation = atom.relation;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      if (s < 0) {
        op.mask |= (1u << i);
        KeySrc k;
        k.col = static_cast<uint16_t>(i);
        k.slot = -1;
        k.const_id = PoolId(pool, atom.constants[i]);
        op.key.push_back(k);
      } else if (bound[s]) {
        op.mask |= (1u << i);
        KeySrc k;
        k.col = static_cast<uint16_t>(i);
        k.slot = s;
        op.key.push_back(k);
      } else {
        bool in_atom = false;
        for (const auto& [col, slot] : op.loads) in_atom |= slot == s;
        if (in_atom) {
          op.checks.emplace_back(static_cast<uint16_t>(i),
                                 static_cast<uint16_t>(s));
        } else {
          op.loads.emplace_back(static_cast<uint16_t>(i),
                                static_cast<uint16_t>(s));
        }
      }
    }
    for (const auto& [col, slot] : op.loads) bound[slot] = true;
    for (const CompiledIneq& iq : rule.ineqs) {
      if (iq.ready_after != a + 1) continue;
      op.ineqs.push_back(
          IneqCheck{IneqSide(pool, iq.left_slot, iq.left_const),
                    IneqSide(pool, iq.right_slot, iq.right_const)});
    }
    bc.ops.push_back(std::move(op));
  }

  for (const CompiledIneq& iq : rule.ineqs) {
    if (iq.ready_after != 0) continue;
    bc.const_ineqs.push_back(
        IneqCheck{IneqSide(pool, iq.left_slot, iq.left_const),
                  IneqSide(pool, iq.right_slot, iq.right_const)});
  }
  for (const CompiledAtom& atom : rule.neg) {
    NegCheck n;
    n.relation = atom.relation;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      n.args.push_back(
          MakeSrc(s, s >= 0 ? 0 : PoolId(pool, atom.constants[i])));
    }
    bc.negs.push_back(std::move(n));
  }

  if (!bc.ops.empty() && bc.negs.empty() && !bc.head_invents &&
      bc.ops.back().checks.empty() && bc.ops.back().ineqs.empty()) {
    const JoinOp& op = bc.ops.back();
    bc.fused = true;
    for (const ValueSrc& src : bc.head) {
      RuleBytecode::FusedSrc f;
      if (src.slot < 0) {
        f.kind = RuleBytecode::FusedSrc::kConst;
        f.idx = static_cast<uint16_t>(src.const_id);
      } else {
        f.kind = RuleBytecode::FusedSrc::kSlot;
        f.idx = static_cast<uint16_t>(src.slot);
        for (const auto& [col, slot] : op.loads) {
          if (slot == src.slot) {
            f.kind = RuleBytecode::FusedSrc::kCol;
            f.idx = col;
            break;
          }
        }
      }
      bc.fused_head.push_back(f);
    }
  }
  return bc;
}

BytecodeProgram CompileBytecode(const std::vector<CompiledRule>& rules) {
  BytecodeProgram out;
  out.rules.reserve(rules.size());
  for (const CompiledRule& r : rules) {
    out.rules.push_back(CompileRuleBytecode(r, &out.const_pool));
  }
  return out;
}

BytecodeExecutor::BytecodeExecutor(
    const BytecodeProgram& program, Database* db, const Database* negation_db,
    const std::vector<uint32_t>* growing,
    const std::vector<std::pair<uint32_t, uint32_t>>* ranges,
    EvalStats* stats, InventionTable* invention, ExecCounters* counters,
    BytecodeScratch* scratch)
    : db_(db),
      negation_db_(negation_db),
      growing_(growing),
      ranges_(ranges),
      stats_(stats),
      invention_(invention),
      counters_(counters),
      scratch_(scratch),
      pool_(&program.const_pool) {
  const_codes_.resize(pool_->size());
  for (size_t i = 0; i < pool_->size(); ++i) {
    const_codes_[i] = db->dict().Intern((*pool_)[i]);
  }
}

void BytecodeExecutor::EmitRow(const RuleBytecode& rule, const JoinOp& op,
                               const RelStore* store, uint32_t row,
                               const uint32_t* parent, size_t stride,
                               bool emit_ok) {
  uint32_t* child = scratch_->child.data();
  std::copy(parent, parent + stride, child);
  for (const auto& [col, slot] : op.loads) {
    child[slot] = store->CodeAt(row, col);
  }
  for (const auto& [col, slot] : op.checks) {
    if (store->CodeAt(row, col) != child[slot]) return;
  }
  const uint32_t* ccodes = const_codes_.data();
  for (const IneqCheck& iq : op.ineqs) {
    uint32_t l = iq.left.slot >= 0 ? child[iq.left.slot]
                                   : ccodes[iq.left.const_id];
    uint32_t r = iq.right.slot >= 0 ? child[iq.right.slot]
                                    : ccodes[iq.right.const_id];
    if (l == r) return;
  }
  // The join ran (probe/hit counters ticked); a failing constant-only
  // inequality only suppresses the leaf, exactly as the tree matcher's
  // per-leaf Finish does.
  if (!emit_ok) return;
  const ValueDict& dict = db_->dict();
  if (!rule.negs.empty()) {
    // Code-space anti-probes (the common case, per the plan BuildNegPlan
    // computed once for this Eval): stage every key first and prefetch its
    // dedup bucket, then resolve in order, so the cache misses overlap
    // instead of serializing. Foreign-dictionary targets (fixed-negation
    // alternation) decode to Values exactly as before.
    neg_codes_.clear();
    for (size_t n = 0; n < rule.negs.size(); ++n) {
      if (!neg_plan_[n].code_ok) continue;
      const NegCheck& neg = rule.negs[n];
      const size_t base = neg_codes_.size();
      for (const ValueSrc& src : neg.args) {
        neg_codes_.push_back(src.slot >= 0 ? child[src.slot]
                                           : const_codes_[src.const_id]);
      }
      neg_plan_[n].store->PrefetchContains(
          neg_codes_.data() + base, static_cast<uint32_t>(neg.args.size()));
    }
    size_t staged = 0;
    for (size_t n = 0; n < rule.negs.size(); ++n) {
      const NegCheck& neg = rule.negs[n];
      if (neg_plan_[n].code_ok) {
        const uint32_t arity = static_cast<uint32_t>(neg.args.size());
        if (neg_plan_[n].store->ContainsCodes(neg_codes_.data() + staged,
                                              arity)) {
          return;
        }
        staged += arity;
      } else {
        Tuple& neg_tuple = scratch_->tuple;
        neg_tuple.clear();
        neg_tuple.reserve(neg.args.size());
        for (const ValueSrc& src : neg.args) {
          neg_tuple.push_back(src.slot >= 0 ? dict.ValueOf(child[src.slot])
                                            : (*pool_)[src.const_id]);
        }
        if (negation_db_->Contains(neg.relation, neg_tuple)) return;
      }
    }
  }
  ++counters_->applications;
  uint32_t* head = scratch_->head.data();
  size_t h = 0;
  if (rule.head_invents) {
    // ILOG invention stays in Value space: the Skolem table is keyed by
    // Values so both engines invent byte-identical terms.
    Tuple& args = scratch_->tuple;
    args.clear();
    args.reserve(rule.head.size());
    for (const ValueSrc& src : rule.head) {
      args.push_back(src.slot >= 0 ? dict.ValueOf(child[src.slot])
                                   : (*pool_)[src.const_id]);
    }
    Value skolem = invention_->GetOrCreate(rule.head_relation, args);
    head[h++] = db_->dict().Intern(skolem);
  }
  for (const ValueSrc& src : rule.head) {
    head[h++] = src.slot >= 0 ? child[src.slot] : ccodes[src.const_id];
  }
  if (sink_ != nullptr) {
    for (size_t i = 0; i < h; ++i) (*sink_)[i].push_back(head[i]);
    return;
  }
  if (head_store_->InsertCodes(head, static_cast<uint32_t>(h))) {
    ++counters_->inserted;
  } else {
    ++counters_->rejected;
  }
}

void BytecodeExecutor::BuildNegPlan(const RuleBytecode& rule) {
  neg_plan_.assign(rule.negs.size(), NegPlan{});
  const bool same_dict = &negation_db_->dict() == &db_->dict();
  for (size_t n = 0; n < rule.negs.size(); ++n) {
    const NegCheck& neg = rule.negs[n];
    NegPlan& plan = neg_plan_[n];
    plan.store = negation_db_->Store(neg.relation);
    // ContainsCodes needs the columnar shape to cover the whole relation:
    // matching arity and no overflow rows. Negated relations never grow
    // within their stratum (stratification), so the plan holds for the
    // whole Eval.
    plan.code_ok = same_dict && plan.store != nullptr && !neg.args.empty() &&
                   neg.args.size() <= 16 &&
                   plan.store->arity() ==
                       static_cast<int>(neg.args.size()) &&
                   plan.store->overflow_count() == 0;
  }
}

bool BytecodeExecutor::BuildScanPrefilter(const JoinOp& op,
                                          const RelStore& store,
                                          uint32_t begin, uint32_t end,
                                          const uint32_t** rows_out,
                                          size_t* n_out) {
  auto load_col = [&](int slot, uint32_t* col) {
    if (slot < 0) return false;
    for (const auto& [c, s] : op.loads) {
      if (s == slot) {
        *col = c;
        return true;
      }
    }
    return false;
  };
  std::vector<uint32_t>& rows = scratch_->prefilter;
  bool active = false;
  size_t n = 0;
  // Equality filters first (checks always compare two columns of the
  // scanned row — the compiler only emits in-atom repeats as checks), then
  // the row-local inequalities. The first foldable predicate runs as a full
  // range filter; the rest refine the surviving row list in place.
  for (const auto& [col, slot] : op.checks) {
    uint32_t col2 = 0;
    if (!load_col(slot, &col2)) continue;  // defensive; checks are in-atom
    const uint32_t* a = store.ColumnData(col);
    const uint32_t* b = store.ColumnData(col2);
    if (!active) {
      rows.resize(end - begin);
      n = simd::FilterEq(a, b, begin, end, rows.data());
      active = true;
    } else {
      n = simd::RefineEq(a, b, rows.data(), n, rows.data());
    }
  }
  const uint32_t* ccodes = const_codes_.data();
  for (const IneqCheck& iq : op.ineqs) {
    uint32_t lcol = 0, rcol = 0;
    const bool lconst = iq.left.slot < 0;
    const bool rconst = iq.right.slot < 0;
    const bool lb = !lconst && load_col(iq.left.slot, &lcol);
    const bool rb = !rconst && load_col(iq.right.slot, &rcol);
    if (lb && rb) {
      const uint32_t* a = store.ColumnData(lcol);
      const uint32_t* b = store.ColumnData(rcol);
      if (!active) {
        rows.resize(end - begin);
        n = simd::FilterNe(a, b, begin, end, rows.data());
        active = true;
      } else {
        n = simd::RefineNe(a, b, rows.data(), n, rows.data());
      }
    } else if ((lb && rconst) || (rb && lconst)) {
      const uint32_t* a = store.ColumnData(lb ? lcol : rcol);
      const uint32_t v = ccodes[lb ? iq.right.const_id : iq.left.const_id];
      if (!active) {
        rows.resize(end - begin);
        n = simd::FilterNeConst(a, begin, end, v, rows.data());
        active = true;
      } else {
        n = simd::RefineNeConst(a, rows.data(), n, v, rows.data());
      }
    }
    // A side bound by an earlier atom lives in the parent frame — not
    // row-local; ExpandRow/EmitRow keep handling it per frame.
  }
  *rows_out = rows.data();
  *n_out = n;
  return active;
}

bool BytecodeExecutor::EvalScanProbeFused(const RuleBytecode& rule,
                                          size_t delta_index, uint32_t delta_lo,
                                          uint32_t delta_hi, bool emit_ok) {
  const JoinOp& op0 = rule.ops[0];
  const JoinOp& op1 = rule.ops[1];
  const uint32_t* ccodes = const_codes_.data();

  // Map every slot the probe key and head plan reference back to the op0
  // column that binds it — after that, the whole rule reads columns only.
  auto col_of_slot = [&](uint16_t slot, uint32_t* col) {
    for (const auto& [c, s] : op0.loads) {
      if (s == slot) {
        *col = c;
        return true;
      }
    }
    return false;
  };
  struct Src {
    uint8_t kind;  // 0 = op0 column, 1 = op1 column, 2 = constant code
    uint32_t idx;
  };
  Src key[32];
  const uint32_t nkey = static_cast<uint32_t>(op1.key.size());
  if (nkey > 32) return false;
  for (uint32_t i = 0; i < nkey; ++i) {
    const KeySrc& k = op1.key[i];
    if (k.slot < 0) {
      key[i] = {2, ccodes[k.const_id]};
    } else {
      uint32_t col = 0;
      if (!col_of_slot(static_cast<uint16_t>(k.slot), &col)) return false;
      key[i] = {0, col};
    }
  }
  Src head_plan[32];
  const uint32_t nhead = static_cast<uint32_t>(rule.fused_head.size());
  // Nullary heads would leave the deferred-emission buffers without a
  // column to carry the attempt count; the general path handles them.
  if (nhead == 0 || nhead > 32) return false;
  for (uint32_t i = 0; i < nhead; ++i) {
    const RuleBytecode::FusedSrc& s = rule.fused_head[i];
    if (s.kind == RuleBytecode::FusedSrc::kConst) {
      head_plan[i] = {2, ccodes[s.idx]};
    } else if (s.kind == RuleBytecode::FusedSrc::kCol) {
      head_plan[i] = {1, s.idx};
    } else {
      uint32_t col = 0;
      if (!col_of_slot(s.idx, &col)) return false;
      head_plan[i] = {0, col};
    }
  }

  RelStore* s0 = db_->Store(op0.relation);
  if (s0 == nullptr || s0->size() == 0) return true;
  bool grows0 = false;
  const uint32_t end0 = Horizon(op0.relation, *s0, &grows0);
  if (grows0 && end0 == 0) return true;
  const bool d0 = delta_index == 0;
  const uint32_t begin0 = d0 ? delta_lo : 0;
  const uint32_t stop0 = d0 ? delta_hi : end0;

  RelStore* s1 = db_->Store(op1.relation);
  if (s1 == nullptr || s1->size() == 0) return true;
  bool grows1 = false;
  const uint32_t end1 = Horizon(op1.relation, *s1, &grows1);
  if (grows1 && end1 == 0) return true;
  const RelStore::MaskIndex& index = s1->PrepareProbe(op1.mask);
  const bool bound1 = s1->row_count() > end1;
  const bool d1 = delta_index == 1;

  // Block-at-a-time execution. For each block of scan rows: stage the probe
  // keys row-major (copies, so nothing below can invalidate them), prefetch
  // every key's index bucket, resolve all probes, then materialize the head
  // rows column-wise — splats for op0/constant sources, a vectorized gather
  // over the hit span for op1 columns — into deferred emission buffers.
  // Buffers flush through the batched dedup insert at block boundaries.
  // Outcomes are byte-identical to row-at-a-time insertion: attempt order
  // is preserved, and mid-round derivations are invisible to every scan and
  // probe anyway (visibility horizons; probe indexes extend only inside
  // PrepareProbe, never on insert).
  std::vector<std::vector<uint32_t>>& emit =
      sink_ != nullptr ? *sink_ : scratch_->emit_cols;
  if (emit.size() < nhead) emit.resize(nhead);
  const bool direct = sink_ == nullptr;
  if (direct) {
    for (uint32_t i = 0; i < nhead; ++i) emit[i].clear();
  }
  // The emit columns are managed as raw storage plus one shared logical row
  // count `en`: per-row appends are pointer writes (no size bookkeeping, no
  // value-initialized tails), and sizes are committed only before a flush
  // and at return — the sink leaves with size() == rows emitted.
  size_t en = emit[0].size();
  size_t estore = en;
  auto ensure = [&](size_t cnt) {
    if (en + cnt <= estore) return;
    estore = std::max(std::max(estore * 2, en + cnt), size_t{1024});
    for (uint32_t i = 0; i < nhead; ++i) emit[i].resize(estore);
  };
  auto commit = [&] {
    for (uint32_t i = 0; i < nhead; ++i) emit[i].resize(en);
    estore = en;
  };
  auto flush = [&] {
    if (en == 0) return;
    commit();
    const uint32_t* ptrs[32];
    for (uint32_t i = 0; i < nhead; ++i) ptrs[i] = emit[i].data();
    head_store_->InsertBatchCols(ptrs, nhead, en, &counters_->inserted,
                                 &counters_->rejected);
    for (uint32_t i = 0; i < nhead; ++i) emit[i].clear();
    en = estore = 0;
  };

  constexpr uint32_t kBlock = 256;
  constexpr size_t kFlushRows = 4096;
  // Probes run whole-block: stage the keys (single-column frame keys read
  // the scan column in place), prefetch every key's bucket, then resolve.
  // Prefetching only pays when the probed index can actually miss cache;
  // small relations are L1/L2-resident and the pass would be pure overhead.
  const bool single_key = nkey == 1 && key[0].kind == 0;
  const bool prefetch = s1->row_count() > 4096;
  std::vector<uint32_t>& keys = scratch_->block_keys;
  std::vector<const std::vector<uint32_t>*>& hitp = scratch_->block_hits;
  for (uint32_t bs = begin0; bs < stop0; bs += kBlock) {
    const uint32_t bn = std::min(kBlock, stop0 - bs);
    // Column pointers re-fetched per block: the flush below may have grown
    // this very relation when it is also the head.
    const uint32_t* kptr;
    size_t kstride;
    if (single_key) {
      kptr = s0->ColumnData(key[0].idx) + bs;
      kstride = 1;
    } else {
      keys.resize(static_cast<size_t>(bn) * nkey);
      for (uint32_t i = 0; i < nkey; ++i) {
        const Src& k = key[i];
        if (k.kind == 0) {
          const uint32_t* col = s0->ColumnData(k.idx) + bs;
          for (uint32_t b = 0; b < bn; ++b) keys[b * nkey + i] = col[b];
        } else {
          for (uint32_t b = 0; b < bn; ++b) keys[b * nkey + i] = k.idx;
        }
      }
      kptr = keys.data();
      kstride = nkey;
    }
    hitp.resize(bn);
    if (prefetch) {
      for (uint32_t b = 0; b < bn; ++b) {
        s1->PrefetchPrepared(index, kptr + b * kstride);
      }
    }
    for (uint32_t b = 0; b < bn; ++b) {
      hitp[b] = &s1->ProbePrepared(index, kptr + b * kstride);
    }
    counters_->probes += bn;  // tree parity: one probe per (frame = op0 row)
    for (uint32_t b = 0; b < bn; ++b) {
      const std::vector<uint32_t>& hits = *hitp[b];
      const uint32_t* hb = hits.data();
      const uint32_t* he = hb + hits.size();
      if (bound1) he = std::lower_bound(hb, he, end1);
      if (d1) hb = std::lower_bound(hb, he, delta_lo);
      const size_t cnt = static_cast<size_t>(he - hb);
      counters_->probe_hits += cnt;
      // A failed constant inequality counts the joins but emits nothing.
      if (!emit_ok || cnt == 0) continue;
      counters_->applications += cnt;
      ensure(cnt);
      const uint32_t row = bs + b;
      for (uint32_t i = 0; i < nhead; ++i) {
        uint32_t* dst = emit[i].data() + en;
        const Src& s = head_plan[i];
        if (s.kind == 1) {
          const uint32_t* col = s1->ColumnData(s.idx);
          if (cnt < 8) {
            // Short hit spans (the common case on sparse joins): the plain
            // loop beats the vector gather's setup and tail handling.
            for (size_t k = 0; k < cnt; ++k) dst[k] = col[hb[k]];
          } else {
            simd::Gather(col, hb, cnt, dst);
          }
        } else {
          const uint32_t v = s.kind == 0 ? s0->CodeAt(row, s.idx) : s.idx;
          std::fill(dst, dst + cnt, v);
        }
      }
      en += cnt;
    }
    if (direct && en >= kFlushRows) flush();
  }
  if (direct) {
    flush();
  } else {
    commit();
  }
  return true;
}

void BytecodeExecutor::Eval(const RuleBytecode& rule, size_t delta_index,
                            uint32_t delta_lo, uint32_t delta_hi) {
  const size_t stride = rule.slot_count;
  const uint32_t* ccodes = const_codes_.data();
  // Constant-only inequalities (ready_after == 0): frame-independent, but a
  // failure must not skip the joins — the tree matcher still walks them
  // (counting probes) and rejects each leaf in Finish.
  bool emit_ok = true;
  for (const IneqCheck& iq : rule.const_ineqs) {
    if (ccodes[iq.left.const_id] == ccodes[iq.right.const_id]) {
      emit_ok = false;
    }
  }
  if (scratch_->child.size() < stride) scratch_->child.resize(stride);
  const size_t head_arity = rule.head.size() + (rule.head_invents ? 1 : 0);
  if (scratch_->head.size() < head_arity) scratch_->head.resize(head_arity);
  head_store_ = db_->Store(rule.head_relation);
  if (!rule.negs.empty()) BuildNegPlan(rule);

  std::vector<uint32_t>& cur = scratch_->cur;
  std::vector<uint32_t>& next = scratch_->next;
  cur.clear();
  cur.resize(stride);  // level 0: one frame, all slots free
  size_t frames = 1;

  const size_t nops = rule.ops.size();
  if (nops == 0) {
    // Bodyless rule: a single empty match.
    static const JoinOp kNoOp;
    EmitRow(rule, kNoOp, nullptr, 0, cur.data(), stride, emit_ok);
    return;
  }
  if (nops == 2 && rule.fused && rule.ops[0].mask == 0 &&
      rule.ops[0].checks.empty() && rule.ops[0].ineqs.empty() &&
      rule.ops[1].mask != 0 &&
      EvalScanProbeFused(rule, delta_index, delta_lo, delta_hi, emit_ok)) {
    return;
  }

  for (size_t a = 0; a < nops && frames > 0; ++a) {
    const JoinOp& op = rule.ops[a];
    const bool is_delta = a == delta_index;
    const bool last = a + 1 == nops;
    RelStore* store = db_->Store(op.relation);
    if (store == nullptr || store->size() == 0) return;
    bool grows = false;
    const uint32_t end = Horizon(op.relation, *store, &grows);
    // A growing store with nothing visible this round is, for this Eval,
    // the same as a missing store (the tree engine has no such rows at
    // all) — bail before any probe is counted.
    if (grows && end == 0) return;
    size_t survivors = 0;
    if (!last) next.clear();
    const uint32_t scan_begin = is_delta ? delta_lo : 0;
    const uint32_t scan_end = is_delta ? delta_hi : end;
    const RelStore::MaskIndex* index =
        op.mask != 0 ? &store->PrepareProbe(op.mask) : nullptr;
    const bool bound_hits = store->row_count() > end;
    const bool fused = last && rule.fused;
    const RuleBytecode::FusedSrc* plan = rule.fused_head.data();
    const uint32_t nhead = static_cast<uint32_t>(rule.fused_head.size());
    // One matched row of the last op, straight to the database: the fused
    // plan skips the child frame entirely; the general path goes through
    // EmitRow (residual checks, inequalities, negation, invention).
    auto emit_one = [&](uint32_t row, const uint32_t* parent) {
      if (fused) {
        if (!emit_ok) return;  // constant inequality failed: count, emit not
        uint32_t* head = scratch_->head.data();
        for (uint32_t i = 0; i < nhead; ++i) {
          const RuleBytecode::FusedSrc& s = plan[i];
          head[i] = s.kind == RuleBytecode::FusedSrc::kSlot
                        ? parent[s.idx]
                        : s.kind == RuleBytecode::FusedSrc::kCol
                              ? store->CodeAt(row, s.idx)
                              : ccodes[s.idx];
        }
        ++counters_->applications;
        if (sink_ != nullptr) {
          for (uint32_t i = 0; i < nhead; ++i) (*sink_)[i].push_back(head[i]);
          return;
        }
        if (head_store_->InsertCodes(head, nhead)) {
          ++counters_->inserted;
        } else {
          ++counters_->rejected;
        }
      } else {
        EmitRow(rule, op, store, row, parent, stride, emit_ok);
      }
    };
    // A scan's row-local predicates (in-atom repeated-variable checks,
    // inequalities over this op's own columns or constants) never depend on
    // the parent frame — fold them into one vectorized pass over the scan
    // range instead of re-testing per frame. ExpandRow/EmitRow re-verify
    // the same predicates on the surviving rows (they always pass), so the
    // emission semantics and counters are untouched: scans tick no probe
    // counters, and applications are only counted after the checks anyway.
    const uint32_t* scan_rows = nullptr;
    size_t scan_rows_n = 0;
    bool prefiltered = false;
    if (op.mask == 0 && scan_begin < scan_end &&
        (!op.checks.empty() || !op.ineqs.empty())) {
      prefiltered = BuildScanPrefilter(op, *store, scan_begin, scan_end,
                                       &scan_rows, &scan_rows_n);
    }
    for (size_t f = 0; f < frames; ++f) {
      const uint32_t* parent = cur.data() + f * stride;
      if (op.mask == 0) {
        if (prefiltered) {
          for (size_t j = 0; j < scan_rows_n; ++j) {
            const uint32_t row = scan_rows[j];
            if (last) {
              emit_one(row, parent);
            } else {
              survivors +=
                  ExpandRow(op, *store, row, parent, stride, ccodes, next);
            }
          }
          continue;
        }
        for (uint32_t row = scan_begin; row < scan_end; ++row) {
          if (last) {
            emit_one(row, parent);
          } else {
            survivors +=
                ExpandRow(op, *store, row, parent, stride, ccodes, next);
          }
        }
        continue;
      }
      uint32_t codes[32];
      for (size_t i = 0; i < op.key.size(); ++i) {
        const KeySrc& k = op.key[i];
        codes[i] = k.slot >= 0 ? parent[k.slot] : ccodes[k.const_id];
      }
      ++counters_->probes;  // tree parity: one probe per frame
      const std::vector<uint32_t>& hits = store->ProbePrepared(*index, codes);
      // Hit rows are ascending, so both the visibility horizon and the
      // delta restriction are contiguous slices.
      const uint32_t* hb = hits.data();
      const uint32_t* he = hb + hits.size();
      if (bound_hits) he = std::lower_bound(hb, he, end);
      if (is_delta) {
        hb = std::lower_bound(hb, he, delta_lo);
        // delta_hi == the horizon for whole-delta runs (the clamp above
        // already cut there); a morsel's sub-range needs its own upper cut.
        if (delta_hi < end) he = std::lower_bound(hb, he, delta_hi);
      }
      counters_->probe_hits += static_cast<uint64_t>(he - hb);
      for (; hb != he; ++hb) {
        if (last) {
          emit_one(*hb, parent);
        } else {
          survivors +=
              ExpandRow(op, *store, *hb, parent, stride, ccodes, next);
        }
      }
    }
    if (last) return;
    cur.swap(next);
    frames = survivors;
  }
}

}  // namespace calm::datalog
