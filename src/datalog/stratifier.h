#ifndef CALM_DATALOG_STRATIFIER_H_
#define CALM_DATALOG_STRATIFIER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "base/status.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"

namespace calm::datalog {

// A syntactic stratification of a program (Section 2): stratum numbers per
// idb predicate such that positive idb dependencies never go down and
// negative idb dependencies go strictly up. Strata are numbered from 1.
struct Stratification {
  std::map<uint32_t, uint32_t> stratum_of;  // idb predicate -> stratum (1-based)
  uint32_t stratum_count = 0;
  // rules_per_stratum[i] lists the indices (into program.rules) of the rules
  // whose head predicate has stratum number i + 1.
  std::vector<std::vector<size_t>> rules_per_stratum;
};

// Computes the minimal syntactic stratification, or FailedPrecondition if
// the program is not syntactically stratifiable (a dependency cycle through
// negation exists).
Result<Stratification> Stratify(const Program& program,
                                const ProgramInfo& info);

// Convenience: true iff the program is syntactically stratifiable.
bool IsStratifiable(const Program& program, const ProgramInfo& info);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_STRATIFIER_H_
