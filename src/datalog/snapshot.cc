#include "datalog/snapshot.h"

#include <cstdint>
#include <string>
#include <vector>

#include "base/durable.h"
#include "base/metrics.h"
#include "base/trace.h"

namespace calm::datalog {

namespace {

constexpr std::string_view kClientTag = "calm.snapshot";
constexpr std::string_view kTrailerMarker = "calm.snapshot.end";
// Serialized arity for a store that was never keyed (arity() == -1).
constexpr uint32_t kNoArity = UINT32_MAX;

Counter& SnapshotWrites() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.snapshot_writes");
  return c;
}
Counter& SnapshotLoads() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.snapshot_loads");
  return c;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return InvalidArgumentError("snapshot " + path + ": " + what);
}

}  // namespace

Status WriteSnapshot(const Database& db, const std::string& path) {
  if (db.EpochDepth() != 0) {
    return FailedPreconditionError(
        "WriteSnapshot requires no open epoch (depth " +
        std::to_string(db.EpochDepth()) + ")");
  }
  TraceSpan span("durable.snapshot");

  durable::FileWriter file(kClientTag);
  durable::ByteWriter w;

  // Record 0 — meta: dictionary size, relation count.
  size_t rel_count = 0;
  db.ForEachStore([&](uint32_t, const RelStore&) { ++rel_count; });
  w.U64(db.dict().size());
  w.U32(static_cast<uint32_t>(rel_count));
  file.Append(w.data());

  // Record 1 — the dictionary, in code order (symbols travel by name).
  w.clear();
  for (uint32_t code = 0; code < db.dict().size(); ++code) {
    durable::EncodeValue(db.dict().ValueOf(code), &w);
  }
  file.Append(w.data());

  // One record per relation, in creation order.
  db.ForEachStore([&](uint32_t rel, const RelStore& store) {
    w.clear();
    w.Str(NameOf(rel));
    if (store.arity() < 0) {
      w.U32(kNoArity);
    } else {
      w.U32(static_cast<uint32_t>(store.arity()));
      w.U32(store.row_count());
      for (int c = 0; c < store.arity(); ++c) {
        const uint32_t* col = store.ColumnData(static_cast<uint32_t>(c));
        for (uint32_t r = 0; r < store.row_count(); ++r) w.U32(col[r]);
      }
      w.U32(static_cast<uint32_t>(store.overflow_count()));
      for (const Tuple& t : store.OverflowRows()) {
        durable::EncodeTuple(t, &w);
      }
    }
    file.Append(w.data());
  });

  // Trailer: marker + relation count — a record-granularity truncation of
  // the file (every remaining record intact) is still detected.
  w.clear();
  w.Str(kTrailerMarker);
  w.U32(static_cast<uint32_t>(rel_count));
  file.Append(w.data());

  span.Arg("relations", static_cast<int64_t>(rel_count));
  span.Arg("bytes", static_cast<int64_t>(file.byte_size()));
  CALM_RETURN_IF_ERROR(file.Commit(path));
  if (MetricsEnabled()) SnapshotWrites().Increment();
  return Status::Ok();
}

Result<Database> LoadSnapshot(const std::string& path) {
  TraceSpan span("durable.recover");
  CALM_ASSIGN_OR_RETURN(
      durable::ReadResult file,
      durable::ReadRecordFile(path, kClientTag, /*repair_torn_tail=*/false));
  if (file.torn) return Corrupt(path, "torn record");
  if (file.records.size() < 3) return Corrupt(path, "too few records");

  durable::ByteReader meta(file.records[0]);
  uint64_t dict_size = 0;
  uint32_t rel_count = 0;
  if (!meta.U64(&dict_size) || !meta.U32(&rel_count) || !meta.AtEnd()) {
    return Corrupt(path, "malformed meta record");
  }
  if (file.records.size() != 3 + static_cast<size_t>(rel_count)) {
    return Corrupt(path, "record count mismatch");
  }

  Database db;
  // Re-interning the dictionary values in code order into a fresh (empty)
  // dictionary reassigns every code identically — codes are dense in
  // interning order — so the row records below replay verbatim.
  durable::ByteReader dict(file.records[1]);
  for (uint64_t code = 0; code < dict_size; ++code) {
    Value v;
    if (!durable::DecodeValue(&dict, &v)) {
      return Corrupt(path, "malformed dictionary record");
    }
    if (db.dict().Intern(v) != code) {
      return Corrupt(path, "duplicate dictionary value");
    }
  }
  if (!dict.AtEnd()) return Corrupt(path, "trailing dictionary bytes");

  std::string name;
  std::vector<uint32_t> row;
  std::vector<uint32_t> single_rel(1);
  Tuple t;
  uint64_t rows_restored = 0;
  for (uint32_t i = 0; i < rel_count; ++i) {
    durable::ByteReader r(file.records[2 + i]);
    uint32_t arity = 0;
    if (!r.Str(&name) || !r.U32(&arity)) {
      return Corrupt(path, "malformed relation record");
    }
    const uint32_t rel = InternName(name);
    // EnsureStores (not Insert) so rowless relations still occupy their
    // creation-order slot in the relation table.
    single_rel[0] = rel;
    db.EnsureStores(single_rel);
    if (arity == kNoArity) {
      if (!r.AtEnd()) return Corrupt(path, "trailing bytes in empty store");
      continue;
    }
    RelStore* store = db.Store(rel);
    store->RestoreArity(arity);
    uint32_t rows = 0;
    if (!r.U32(&rows)) return Corrupt(path, "malformed relation record");
    if (arity == 0) {
      if (rows > 1) return Corrupt(path, "bad zero-arity row count");
      if (rows == 1) {
        uint32_t dummy = 0;
        store->InsertCodes(&dummy, 0);
      }
    } else {
      // The record is column-major; replay wants rows. Decode the columns
      // into one buffer and stride it.
      row.assign(static_cast<size_t>(arity) * rows, 0);
      for (uint32_t c = 0; c < arity; ++c) {
        for (uint32_t j = 0; j < rows; ++j) {
          uint32_t code = 0;
          if (!r.U32(&code)) return Corrupt(path, "short column data");
          if (code >= dict_size) return Corrupt(path, "code out of range");
          row[static_cast<size_t>(j) * arity + c] = code;
        }
      }
      for (uint32_t j = 0; j < rows; ++j) {
        if (!store->InsertCodes(&row[static_cast<size_t>(j) * arity],
                                arity)) {
          return Corrupt(path, "duplicate row in snapshot");
        }
      }
    }
    uint32_t overflow = 0;
    if (!r.U32(&overflow)) return Corrupt(path, "malformed relation record");
    for (uint32_t j = 0; j < overflow; ++j) {
      if (!durable::DecodeTuple(&r, &t)) {
        return Corrupt(path, "malformed overflow tuple");
      }
      store->RestoreOverflow(t);
    }
    if (!r.AtEnd()) return Corrupt(path, "trailing bytes in relation record");
    rows_restored += store->size();
  }

  durable::ByteReader trailer(file.records.back());
  uint32_t trailer_count = 0;
  if (!trailer.Str(&name) || name != kTrailerMarker ||
      !trailer.U32(&trailer_count) || trailer_count != rel_count ||
      !trailer.AtEnd()) {
    return Corrupt(path, "bad trailer");
  }

  span.Arg("relations", rel_count);
  span.Arg("rows", static_cast<int64_t>(rows_restored));
  if (MetricsEnabled()) SnapshotLoads().Increment();
  return db;
}

}  // namespace calm::datalog
