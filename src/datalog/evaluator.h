#ifndef CALM_DATALOG_EVALUATOR_H_
#define CALM_DATALOG_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/instance.h"
#include "base/json.h"
#include "base/status.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/stratifier.h"

namespace calm::datalog {

// Which rule evaluator a prepared program runs on. The flat bytecode engine
// (datalog/bytecode.h) over columnar stores is the default; the recursive
// tree-walking matcher is kept as the in-tree differential oracle
// (--engine=tree). Verdicts, counterexamples, and EvalStats are
// byte-identical between the two (pinned by tests/engine_diff_test.cc).
enum class EvalEngine {
  kDefault = 0,  // resolve through DefaultEvalEngine()
  kTree,
  kBytecode,
};

// The process-wide engine that EvalEngine::kDefault resolves to. Starts as
// kBytecode unless the CALM_ENGINE environment variable says "tree".
EvalEngine DefaultEvalEngine();
// Overrides the process-wide default (bench/test plumbing for --engine).
// Passing kDefault restores the environment-derived initial value.
void SetDefaultEvalEngine(EvalEngine engine);
// Parses "tree" / "bytecode" (the --engine flag and CALM_ENGINE values).
Result<EvalEngine> ParseEvalEngine(std::string_view name);

// Whether checker paths may reuse a materialized Q(I) fixpoint and evaluate
// each Q(I ∪ J) as an epoch-scoped insertion delta (prepared.h's
// IncrementalEval) instead of re-running from scratch. Outputs are
// byte-identical either way (pinned by tests/incremental_test.cc and the CI
// engine-diff leg); the mode only changes how much work each union costs.
enum class IncrementalMode {
  kDefault = 0,  // resolve through DefaultIncrementalMode()
  kOn,
  kOff,
};

// The process-wide mode that IncrementalMode::kDefault resolves to. Starts
// as kOn unless the CALM_INCREMENTAL environment variable says "off".
IncrementalMode DefaultIncrementalMode();
// Overrides the process-wide default (bench/test plumbing for
// --incremental). Passing kDefault restores the environment-derived value.
void SetDefaultIncrementalMode(IncrementalMode mode);
// Parses "on" / "off" (the --incremental flag and CALM_INCREMENTAL values).
Result<IncrementalMode> ParseIncrementalMode(std::string_view name);

// The process-wide worker count that EvalOptions::eval_threads == 0 resolves
// to. Starts as 1 (serial) unless the CALM_EVAL_THREADS environment variable
// names a larger count. Morsel-parallel stratum evaluation partitions
// semi-naive delta rows across this many workers; results are byte-identical
// at any count (pinned by tests/engine_diff_test.cc).
int DefaultEvalThreads();
// Overrides the process-wide default (bench/test plumbing for
// --eval_threads). Passing n <= 0 restores the environment-derived value.
void SetDefaultEvalThreads(int n);

struct EvalOptions {
  // Use semi-naive (delta) iteration; naive re-derivation otherwise. Both
  // must agree (ablation-tested); semi-naive is the default.
  bool semi_naive = true;
  // Greedily reorder positive body atoms at rule-compile time so that each
  // atom shares as many bound variables as possible with the atoms before
  // it (avoids accidental cartesian products in carelessly written rules).
  // Purely a performance knob; results are identical (ablation-tested).
  bool reorder_joins = true;
  // When the program reads the Adom relation as edb, seed it with the active
  // domain of the input (the paper's convention; the defining rules are
  // omitted in its examples).
  bool populate_adom = true;
  // Abort with ResourceExhausted when more facts than this are stored.
  size_t max_total_facts = 10'000'000;
  // Rule evaluator selection, resolved against DefaultEvalEngine() at
  // Prepare time. Results are engine-independent (differential-tested);
  // only the execution strategy differs.
  EvalEngine engine = EvalEngine::kDefault;
  // Incremental union evaluation, resolved against DefaultIncrementalMode()
  // at Prepare time. Only consulted by the checker's union path; results
  // are identical either way (differential-tested).
  IncrementalMode incremental = IncrementalMode::kDefault;
  // Worker threads for morsel-parallel stratum evaluation (bytecode engine
  // only), resolved against DefaultEvalThreads() at Prepare time when 0.
  // Results are byte-identical at any count (differential-tested); only
  // wall-clock changes.
  int eval_threads = 0;
};

struct EvalStats {
  size_t derived_facts = 0;      // facts derived beyond the input
  size_t fixpoint_rounds = 0;    // delta rounds across all strata
  size_t rule_applications = 0;  // satisfying valuations found (incl. dups)
};

// The canonical serialization: {"derived_facts": 4, ...}. The k=v string
// below and the bench --json sections are both derived from this object, so
// human and machine reports share one field list and can never disagree.
Json EvalStatsToJson(const EvalStats& stats);

// "derived_facts=4 fixpoint_rounds=3 rule_applications=17", derived from
// EvalStatsToJson by walking its members in order.
std::string EvalStatsToString(const EvalStats& stats);

// Evaluates the (syntactically stratifiable) program under the stratified
// semantics. Returns the full instance over sch(P): the input (restricted to
// sch(P)) plus all derived facts. Errors on unstratifiable programs and on
// resource exhaustion.
Result<Instance> Evaluate(const Program& program, const Instance& input,
                          const EvalOptions& options = {},
                          EvalStats* stats = nullptr);

// Evaluates an ILOG¬ program (invention atoms allowed in heads) under the
// stratified semantics with Skolem-functor value invention (Section 5.2):
// deriving R(*, a1..ak) creates (or reuses) the invented value f_R(a1..ak).
// Divergent programs hit options.max_total_facts and return
// ResourceExhausted, matching the paper's "output undefined" case.
// `invented_count`, when non-null, receives the number of distinct invented
// values created.
Result<Instance> EvaluateIlog(const Program& program, const Instance& input,
                              const EvalOptions& options = {},
                              EvalStats* stats = nullptr,
                              size_t* invented_count = nullptr);

// Evaluates the least fixpoint of `program` where every *negated idb* body
// atom !A is satisfied iff A is absent from `neg_reference` (negated edb
// atoms are also checked against `neg_reference`). This is the Gamma
// operator of the alternating-fixpoint characterization of the well-founded
// semantics; stratifiability is not required. Returns input + derived facts.
Result<Instance> EvaluateWithFixedNegation(const Program& program,
                                           const Instance& input,
                                           const Instance& neg_reference,
                                           const EvalOptions& options = {},
                                           EvalStats* stats = nullptr);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_EVALUATOR_H_
