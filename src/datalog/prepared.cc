#include "datalog/prepared.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "base/metrics.h"
#include "base/thread_pool.h"
#include "base/trace.h"

namespace calm::datalog {

namespace {

constexpr uint32_t kNoSlot = UINT32_MAX;

// Per-fixpoint observability tallies. The matcher and the insert loops
// accumulate into these plain locals unconditionally (an add next to a hash
// probe is noise); whether anything observable happens with them is decided
// once, at the end of the fixpoint. This keeps the disabled-observability
// cost to one branch per fixpoint and guarantees instrumentation can never
// perturb evaluation order or results.
struct FixpointCounters {
  uint64_t probes = 0;          // indexed Probe() calls
  uint64_t probe_hits = 0;      // tuples those probes returned
  uint64_t dedup_rejected = 0;  // derived tuples already present in the db
  uint64_t inserts = 0;         // derived tuples that were new
};

// Replicates the Instance::Restrict admission rule.
inline bool SchemaAdmits(const Schema& schema, uint32_t name, const Tuple& t) {
  uint32_t arity = schema.ArityOf(name);
  return arity != 0 && t.size() == arity;
}

// Skolem hash-consing (Section 5.2) lives in datalog/bytecode.h
// (InventionTable) so both engines share one implementation; one table per
// evaluation, so identical derivations reuse the same value.

// Per-round delta stores. Entries persist across Reset (clear keeps the
// store allocations warm); emptiness is tracked by the total tuple count.
class DeltaSet {
 public:
  bool Insert(uint32_t rel, const Tuple& t) {
    RelStore* store = Find(rel);
    if (store == nullptr) {
      rels_.emplace_back(rel, RelStore());
      store = &rels_.back().second;
    }
    if (store->Insert(t)) {
      ++total_;
      return true;
    }
    return false;
  }

  RelStore* Find(uint32_t rel) {
    for (auto& [r, store] : rels_) {
      if (r == rel) return &store;
    }
    return nullptr;
  }

  bool any() const { return total_ > 0; }

  void Reset() {
    for (auto& [r, store] : rels_) store.clear();
    total_ = 0;
  }

 private:
  std::vector<std::pair<uint32_t, RelStore>> rels_;
  size_t total_ = 0;
};

// Per-thread evaluation scratch: the working database and the semi-naive
// delta sets live across calls (cleared, capacity kept), so a checker loop
// evaluating one prepared program millions of times allocates almost
// nothing after warm-up. Results are materialized into an Instance before
// returning, so reuse is invisible to callers; sharing one scratch between
// different programs on a thread is harmless (stores are empty between
// runs). The stratified Eval paths run on this scratch; the well-founded
// alternation manages its own seed copies (see RunFixedNegation).
// One morsel worker's private state: frame scratch, counters, and the
// deferred head emissions (one code column per head position). Lanes only
// read the shared database during the concurrent section; everything they
// produce lands here and is merged serially afterwards.
struct MorselLane {
  BytecodeScratch bytecode;
  ExecCounters counters;
  std::vector<std::vector<uint32_t>> sink;
};

struct EvalScratch {
  Database db;
  DeltaSet delta;
  DeltaSet next_delta;
  std::vector<std::pair<uint32_t, Tuple>> derived;
  BytecodeScratch bytecode;
  std::vector<std::pair<uint32_t, uint32_t>> ranges;  // row-range deltas
  // Morsel-parallel lane pool (unique_ptr: stable addresses while the lane
  // vector grows to its high-water mark; reused across fixpoints).
  std::vector<std::unique_ptr<MorselLane>> lanes;
};

EvalScratch& LocalScratch() {
  thread_local EvalScratch scratch;
  return scratch;
}

class RuleMatcher {
 public:
  // `negation_db`: database against which negated atoms are tested (the main
  // db under stratified semantics; a fixed reference under the Gamma
  // operator of the well-founded semantics).
  RuleMatcher(Database* db, const Database* negation_db, EvalStats* stats,
              InventionTable* invention, FixpointCounters* counters)
      : db_(db), negation_db_(negation_db), stats_(stats),
        invention_(invention), counters_(counters) {}

  // Evaluates `rule`, deriving head facts into `out`. When `delta` is
  // non-null, exactly the atom at `delta_index` ranges over `delta` instead
  // of the full store (semi-naive evaluation).
  void Eval(const CompiledRule& rule, RelStore* delta, size_t delta_index,
            std::vector<std::pair<uint32_t, Tuple>>* out) {
    rule_ = &rule;
    delta_ = delta;
    delta_index_ = delta_index;
    out_ = out;
    binding_.assign(rule.slot_count, Value());
    bound_.assign(rule.slot_count, false);
    if (nb_stack_.size() < rule.pos.size()) nb_stack_.resize(rule.pos.size());
    Match(0);
  }

 private:
  void Match(size_t atom_index) {
    if (atom_index == rule_->pos.size()) {
      Finish();
      return;
    }
    const CompiledAtom& atom = rule_->pos[atom_index];
    RelStore* source = (delta_ != nullptr && atom_index == delta_index_)
                           ? delta_
                           : db_->Store(atom.relation);
    if (source == nullptr || source->size() == 0) return;

    // Determine bound positions under the current binding.
    uint32_t mask = 0;
    Tuple key;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      if (s < 0) {
        mask |= (1u << i);
        key.push_back(atom.constants[i]);
      } else if (bound_[s]) {
        mask |= (1u << i);
        key.push_back(binding_[s]);
      }
    }

    // Per-depth scratch for the slots each candidate row newly binds
    // (member storage: no per-row allocation).
    std::vector<int>& newly_bound = nb_stack_[atom_index];
    auto try_row = [&](uint32_t row) {
      // Bind free positions; repeated variables within the atom must agree.
      newly_bound.clear();
      bool ok = true;
      for (size_t i = 0; i < atom.slots.size() && ok; ++i) {
        Value v = source->At(row, static_cast<uint32_t>(i));
        int s = atom.slots[i];
        if (s < 0) {
          if (v != atom.constants[i]) ok = false;
        } else if (bound_[s]) {
          if (binding_[s] != v) ok = false;
        } else {
          binding_[s] = v;
          bound_[s] = true;
          newly_bound.push_back(s);
        }
      }
      if (ok) ok = IneqsHold(atom_index + 1);
      if (ok) Match(atom_index + 1);
      for (int s : newly_bound) bound_[s] = false;
    };

    if (mask == 0) {
      // Full scan over rows in insertion order.
      size_t n = source->size();
      for (uint32_t i = 0; i < n; ++i) try_row(i);
    } else {
      const std::vector<uint32_t>& hits = source->Probe(mask, key);
      ++counters_->probes;
      counters_->probe_hits += hits.size();
      for (uint32_t i : hits) try_row(i);
    }
  }

  bool IneqsHold(size_t after) const {
    for (const CompiledIneq& iq : rule_->ineqs) {
      if (iq.ready_after != after) continue;
      Value l = iq.left_slot >= 0 ? binding_[iq.left_slot] : iq.left_const;
      Value r = iq.right_slot >= 0 ? binding_[iq.right_slot] : iq.right_const;
      if (l == r) return false;
    }
    return true;
  }

  void Finish() {
    // Inequalities with no positive variables (ready_after == 0).
    if (!IneqsHold(0)) return;
    // Negated atoms: all variables are bound (safety).
    for (const CompiledAtom& atom : rule_->neg) {
      Tuple t = Instantiate(atom);
      if (negation_db_->Contains(atom.relation, t)) return;
    }
    if (stats_ != nullptr) ++stats_->rule_applications;
    Tuple head = Instantiate(rule_->head);
    if (rule_->head.invents) {
      assert(invention_ != nullptr);
      Value skolem = invention_->GetOrCreate(rule_->head.relation, head);
      head.prepend(skolem);
    }
    out_->emplace_back(rule_->head.relation, std::move(head));
  }

  Tuple Instantiate(const CompiledAtom& atom) const {
    Tuple t;
    t.reserve(atom.slots.size());
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      t.push_back(s >= 0 ? binding_[s] : atom.constants[i]);
    }
    return t;
  }

  Database* db_;
  const Database* negation_db_;
  EvalStats* stats_;
  InventionTable* invention_;
  FixpointCounters* counters_;

  const CompiledRule* rule_ = nullptr;
  RelStore* delta_ = nullptr;
  size_t delta_index_ = kNoSlot;
  std::vector<std::pair<uint32_t, Tuple>>* out_ = nullptr;
  Tuple binding_;
  std::vector<bool> bound_;
  std::vector<std::vector<int>> nb_stack_;  // per-depth newly-bound slots
};

size_t CountDerived(const Database& db, size_t input_size) {
  return db.size() - std::min(db.size(), input_size);
}

// Runs the fixpoint of one prepared stratum over `db`: `rules` indexes into
// `compiled` and `delta_sites` lists its semi-naive (rule, atom) pairs.
// `negation_db` is the database used for negated atoms (== db under
// stratified semantics; the fixed reference under Gamma).
// Flushes one fixpoint's tallies into the metrics registry. Out of line and
// called at most once per fixpoint, so the registry lookups (the per-stratum
// statics aside, the per-rule series are looked up by label each time) stay
// off the evaluation path entirely.
void FlushFixpointMetrics(const std::vector<CompiledRule>& compiled,
                          const FixpointCounters& counters, size_t rounds,
                          const std::vector<uint64_t>& rule_derived) {
  MetricRegistry& registry = MetricRegistry::Global();
  static Counter& fixpoints = registry.GetCounter("calm.eval.fixpoints");
  static Counter& round_total = registry.GetCounter("calm.eval.rounds");
  static Counter& probes = registry.GetCounter("calm.eval.probes");
  static Counter& probe_hits = registry.GetCounter("calm.eval.probe_hits");
  static Counter& dedup = registry.GetCounter("calm.eval.dedup_rejected");
  static Counter& inserts = registry.GetCounter("calm.eval.delta_inserts");
  static Histogram& insert_hist =
      registry.GetHistogram("calm.eval.delta_inserts_per_fixpoint");
  fixpoints.Increment();
  round_total.Increment(rounds);
  probes.Increment(counters.probes);
  probe_hits.Increment(counters.probe_hits);
  dedup.Increment(counters.dedup_rejected);
  inserts.Increment(counters.inserts);
  insert_hist.Observe(counters.inserts);
  for (size_t r = 0; r < rule_derived.size(); ++r) {
    if (rule_derived[r] == 0) continue;
    registry
        .GetCounter("calm.eval.rule_derivations",
                    {{"rule", NameOf(compiled[r].head.relation) + "#" +
                                  std::to_string(r)}})
        .Increment(rule_derived[r]);
  }
}

Status RunFixpoint(const std::vector<CompiledRule>& compiled,
                   const std::vector<uint32_t>& rules,
                   const std::vector<std::pair<uint32_t, uint32_t>>& delta_sites,
                   size_t stratum_index, Database* db,
                   const Database* negation_db, const EvalOptions& options,
                   EvalStats* stats, InventionTable* invention) {
  TraceSpan span("datalog.stratum");
  span.Arg("stratum", static_cast<int64_t>(stratum_index));
  FixpointCounters counters;
  // Per-rule derivation counts, kept only when the registry will consume
  // them (the extra branch per rule per round is the entire cost otherwise).
  const bool metrics_on = MetricsEnabled();
  std::vector<uint64_t> rule_derived;
  if (metrics_on) rule_derived.assign(compiled.size(), 0);
  size_t rounds = 0;

  RuleMatcher matcher(db, negation_db, stats, invention, &counters);
  EvalScratch& scratch = LocalScratch();
  std::vector<std::pair<uint32_t, Tuple>>& derived = scratch.derived;
  derived.clear();

  // Round 0: evaluate every rule against the full database.
  for (uint32_t r : rules) {
    size_t before = derived.size();
    matcher.Eval(compiled[r], nullptr, kNoSlot, &derived);
    if (metrics_on) rule_derived[r] += derived.size() - before;
  }

  DeltaSet& delta = scratch.delta;
  delta.Reset();
  for (auto& [rel, tuple] : derived) {
    if (db->Insert(rel, tuple)) {
      delta.Insert(rel, tuple);
      ++counters.inserts;
    } else {
      ++counters.dedup_rejected;
    }
  }
  if (stats != nullptr) ++stats->fixpoint_rounds;
  ++rounds;

  auto finish = [&](Status status) {
    if (span.active()) {
      span.Arg("rounds", static_cast<int64_t>(rounds));
      span.Arg("inserts", static_cast<int64_t>(counters.inserts));
      span.Arg("probes", static_cast<int64_t>(counters.probes));
      span.Arg("probe_hits", static_cast<int64_t>(counters.probe_hits));
      span.Arg("dedup_rejected",
               static_cast<int64_t>(counters.dedup_rejected));
    }
    if (metrics_on) {
      FlushFixpointMetrics(compiled, counters, rounds, rule_derived);
    }
    return status;
  };

  if (!options.semi_naive) {
    // Naive: re-run all rules on the full database until no change.
    bool changed = delta.any();
    while (changed) {
      if (db->size() > options.max_total_facts) {
        return finish(
            ResourceExhaustedError("fixpoint exceeded max_total_facts"));
      }
      derived.clear();
      for (uint32_t r : rules) {
        size_t before = derived.size();
        matcher.Eval(compiled[r], nullptr, kNoSlot, &derived);
        if (metrics_on) rule_derived[r] += derived.size() - before;
      }
      changed = false;
      for (auto& [rel, tuple] : derived) {
        if (db->Insert(rel, tuple)) {
          changed = true;
          ++counters.inserts;
        } else {
          ++counters.dedup_rejected;
        }
      }
      if (stats != nullptr) ++stats->fixpoint_rounds;
      ++rounds;
    }
    return finish(Status::Ok());
  }

  // Semi-naive: in each round, for every precomputed (rule, growing-atom)
  // site, evaluate with that atom restricted to the delta.
  DeltaSet& next_delta = scratch.next_delta;
  while (delta.any()) {
    if (db->size() > options.max_total_facts) {
      return finish(
          ResourceExhaustedError("fixpoint exceeded max_total_facts"));
    }
    derived.clear();
    for (const auto& [r, atom_index] : delta_sites) {
      const CompiledRule& rule = compiled[r];
      RelStore* d = delta.Find(rule.pos[atom_index].relation);
      if (d == nullptr || d->size() == 0) continue;
      size_t before = derived.size();
      matcher.Eval(rule, d, atom_index, &derived);
      if (metrics_on) rule_derived[r] += derived.size() - before;
    }
    next_delta.Reset();
    for (auto& [rel, tuple] : derived) {
      if (db->Insert(rel, tuple)) {
        next_delta.Insert(rel, tuple);
        ++counters.inserts;
      } else {
        ++counters.dedup_rejected;
      }
    }
    std::swap(delta, next_delta);
    if (stats != nullptr) ++stats->fixpoint_rounds;
    ++rounds;
  }
  return finish(Status::Ok());
}

// The bytecode twin of RunFixpoint: identical round structure, identical
// counter accounting, identical insert order — only the per-rule evaluation
// (flat batch execution) and the delta representation differ. Instead of
// copying each round's new tuples into side stores, the delta of a growing
// relation is the contiguous row range its main store gained last round
// (rows are append-only). Derivations insert into the database as they are
// emitted; rounds stay isolated because the executor bounds every scan and
// probe of a growing relation to its row count at the start of the round
// (the visibility horizon, ranges[g].second).
Status RunFixpointBytecode(
    const std::vector<CompiledRule>& compiled,
    const BytecodeProgram& bytecode, const std::vector<uint32_t>& rules,
    const std::vector<std::pair<uint32_t, uint32_t>>& delta_sites,
    const std::vector<uint32_t>& growing, size_t stratum_index, Database* db,
    const Database* negation_db, const EvalOptions& options, EvalStats* stats,
    InventionTable* invention) {
  TraceSpan span("datalog.stratum");
  span.Arg("stratum", static_cast<int64_t>(stratum_index));
  FixpointCounters counters;
  ExecCounters exec;
  const bool metrics_on = MetricsEnabled();
  std::vector<uint64_t> rule_derived;
  if (metrics_on) rule_derived.assign(compiled.size(), 0);
  size_t rounds = 0;

  // The executor holds RelStore pointers across inserts; pre-creating the
  // head-relation stores pins the relation table's layout.
  db->EnsureStores(growing);

  EvalScratch& scratch = LocalScratch();
  // Delta row ranges and visibility horizons, parallel to `growing`:
  // [first, second) is the previous round's growth, and second — the row
  // count when the current round started — bounds what this round may see.
  std::vector<std::pair<uint32_t, uint32_t>>& ranges = scratch.ranges;
  BytecodeExecutor executor(bytecode, db, negation_db, &growing, &ranges,
                            stats, invention, &exec, &scratch.bytecode);
  const Database* cdb = db;
  auto size_of = [&](uint32_t rel) {
    const RelStore* s = cdb->Store(rel);
    return s == nullptr ? 0u : s->row_count();
  };
  ranges.resize(growing.size());
  for (size_t g = 0; g < growing.size(); ++g) {
    ranges[g] = {0, size_of(growing[g])};
  }
  // Ends the round: last round's end becomes the new delta start, the
  // current row count the new end (and next round's horizon).
  auto advance = [&] {
    bool any = false;
    for (size_t g = 0; g < growing.size(); ++g) {
      uint32_t lo = ranges[g].second;
      uint32_t hi = size_of(growing[g]);
      any |= hi > lo;
      ranges[g] = {lo, hi};
    }
    return any;
  };
  // Per-rule derivation tally = this Eval's insert attempts (new + dup),
  // matching the tree matcher's emitted-tuple count.
  auto attempts = [&] { return exec.inserted + exec.rejected; };

  // Round 0: evaluate every rule against the full database.
  for (uint32_t r : rules) {
    uint64_t before = attempts();
    executor.Eval(bytecode.rules[r], BytecodeExecutor::kNoDelta, 0, 0);
    if (metrics_on) rule_derived[r] += attempts() - before;
  }
  bool any = advance();
  if (stats != nullptr) ++stats->fixpoint_rounds;
  ++rounds;

  auto finish = [&](Status status) {
    counters.probes = exec.probes;
    counters.probe_hits = exec.probe_hits;
    counters.inserts = exec.inserted;
    counters.dedup_rejected = exec.rejected;
    if (stats != nullptr) stats->rule_applications += exec.applications;
    if (span.active()) {
      span.Arg("rounds", static_cast<int64_t>(rounds));
      span.Arg("inserts", static_cast<int64_t>(counters.inserts));
      span.Arg("probes", static_cast<int64_t>(counters.probes));
      span.Arg("probe_hits", static_cast<int64_t>(counters.probe_hits));
      span.Arg("dedup_rejected",
               static_cast<int64_t>(counters.dedup_rejected));
    }
    if (metrics_on) {
      FlushFixpointMetrics(compiled, counters, rounds, rule_derived);
    }
    return status;
  };

  if (!options.semi_naive) {
    // Naive: re-run all rules on the full database until no change.
    bool changed = any;
    while (changed) {
      if (db->size() > options.max_total_facts) {
        return finish(
            ResourceExhaustedError("fixpoint exceeded max_total_facts"));
      }
      uint64_t inserted_before = exec.inserted;
      for (uint32_t r : rules) {
        uint64_t before = attempts();
        executor.Eval(bytecode.rules[r], BytecodeExecutor::kNoDelta, 0, 0);
        if (metrics_on) rule_derived[r] += attempts() - before;
      }
      advance();
      changed = exec.inserted > inserted_before;
      if (stats != nullptr) ++stats->fixpoint_rounds;
      ++rounds;
    }
    return finish(Status::Ok());
  }

  // Semi-naive: per (rule, growing-atom) site, run with that atom
  // restricted to its relation's last-round row range.
  //
  // Morsel parallelism (eval_threads > 1): a site whose delta atom drives
  // the outermost loop emits its derivations in ascending delta-row order,
  // so splitting [lo, hi) into contiguous morsels and concatenating the
  // morsel outputs reproduces the serial emission stream exactly. Eligible
  // sites are queued; a flush evaluates every queued morsel concurrently
  // into a private lane (counting applications/probes against the shared,
  // horizon-frozen stores, which no lane mutates) and then merges the lane
  // sinks serially in (site, morsel) order through the batched dedup
  // insert — the insert-attempt sequence, and with it every verdict,
  // counter, and EvalStats field, is byte-identical at any thread count.
  // Sites the argument does not cover (delta atom not outermost, invented
  // or nullary heads) run serially in place, after flushing the queue so
  // site order is preserved.
  const int threads = std::max(1, options.eval_threads);
  constexpr uint32_t kMorselRows = 1024;
  struct PendingSite {
    uint32_t rule;
    uint32_t lo, hi;
  };
  struct MorselTask {
    size_t site;
    uint32_t lo, hi;
  };
  std::vector<PendingSite> pending;
  std::vector<MorselTask> tasks;
  std::vector<BytecodeExecutor> lane_exec;
  auto flush_pending = [&] {
    if (pending.empty()) return;
    while (scratch.lanes.size() < tasks.size()) {
      scratch.lanes.push_back(std::make_unique<MorselLane>());
    }
    // Lane executors are built serially: construction interns the constant
    // pool into the shared dictionary. Lanes never insert (sink mode), and
    // stats/invention stay with the driver.
    lane_exec.clear();
    lane_exec.reserve(tasks.size());
    for (size_t t = 0; t < tasks.size(); ++t) {
      const RuleBytecode& rb = bytecode.rules[pending[tasks[t].site].rule];
      MorselLane& lane = *scratch.lanes[t];
      lane.counters = ExecCounters{};
      lane.sink.resize(rb.head.size());
      for (std::vector<uint32_t>& col : lane.sink) col.clear();
      lane_exec.emplace_back(bytecode, db, negation_db, &growing, &ranges,
                             /*stats=*/nullptr, /*invention=*/nullptr,
                             &lane.counters, &lane.bytecode);
      lane_exec.back().SetSink(&lane.sink);
    }
    // Pre-extend every probe index the lanes will touch: lazy index
    // building is the one store mutation inside Eval, so it must happen
    // before the concurrent section.
    for (const PendingSite& site : pending) {
      for (const JoinOp& op : bytecode.rules[site.rule].ops) {
        if (op.mask == 0) continue;
        RelStore* s = db->Store(op.relation);
        if (s != nullptr && s->size() > 0) s->PrepareProbe(op.mask);
      }
    }
    ParallelFor(tasks.size(), static_cast<size_t>(threads), [&](size_t t) {
      lane_exec[t].Eval(bytecode.rules[pending[tasks[t].site].rule],
                        /*delta_index=*/0, tasks[t].lo, tasks[t].hi);
    });
    for (size_t t = 0; t < tasks.size(); ++t) {
      const PendingSite& site = pending[tasks[t].site];
      const RuleBytecode& rb = bytecode.rules[site.rule];
      MorselLane& lane = *scratch.lanes[t];
      exec.probes += lane.counters.probes;
      exec.probe_hits += lane.counters.probe_hits;
      exec.applications += lane.counters.applications;
      const uint32_t arity = static_cast<uint32_t>(rb.head.size());
      const size_t n = lane.sink.empty() ? 0 : lane.sink[0].size();
      if (n > 0) {
        const uint32_t* ptrs[32];
        for (uint32_t c = 0; c < arity; ++c) ptrs[c] = lane.sink[c].data();
        db->Store(rb.head_relation)
            ->InsertBatchCols(ptrs, arity, n, &exec.inserted, &exec.rejected);
      }
      if (metrics_on) rule_derived[site.rule] += n;
    }
    pending.clear();
    tasks.clear();
  };
  while (any) {
    if (db->size() > options.max_total_facts) {
      return finish(
          ResourceExhaustedError("fixpoint exceeded max_total_facts"));
    }
    for (const auto& [r, atom_index] : delta_sites) {
      uint32_t rel = compiled[r].pos[atom_index].relation;
      uint32_t lo = 0, hi = 0;
      for (size_t g = 0; g < growing.size(); ++g) {
        if (growing[g] == rel) {
          lo = ranges[g].first;
          hi = ranges[g].second;
          break;
        }
      }
      if (lo >= hi) continue;
      const RuleBytecode& rb = bytecode.rules[r];
      if (threads > 1 && atom_index == 0 && !rb.head_invents &&
          !rb.head.empty() && rb.head.size() <= 32 && hi - lo > kMorselRows) {
        const size_t si = pending.size();
        pending.push_back({r, lo, hi});
        for (uint32_t m = lo; m < hi; m += kMorselRows) {
          tasks.push_back({si, m, std::min(m + kMorselRows, hi)});
        }
        continue;
      }
      flush_pending();
      uint64_t before = attempts();
      executor.Eval(rb, atom_index, lo, hi);
      if (metrics_on) rule_derived[r] += attempts() - before;
    }
    flush_pending();
    any = advance();
    if (stats != nullptr) ++stats->fixpoint_rounds;
    ++rounds;
  }
  return finish(Status::Ok());
}

// A contiguous slice of rows some relation gained from outside a stratum's
// own fixpoint: overlay-seeded EDB rows, or an upstream stratum's delta.
struct ExternalDelta {
  uint32_t rel = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;  // rows [lo, hi) are new
};

// Continues one stratum's already-completed fixpoint after external facts
// appeared in relations it reads. Round 0 feeds each external row range
// through every (rule, positive-atom) site over its relation — the δR ×
// full-db half of the semi-naive recurrence; derivations made purely of old
// facts already sit in the store from the base run — and the normal
// delta_sites rounds then propagate recursive growth. Only sound when no
// negated relation of the stratum changed (new facts would retract
// derivations; callers recompute the stratum in that case), which also
// means every store strictly grows.
Status RunStratumDeltaBytecode(
    const std::vector<CompiledRule>& compiled, const BytecodeProgram& bytecode,
    const std::vector<uint32_t>& rules,
    const std::vector<std::pair<uint32_t, uint32_t>>& delta_sites,
    const std::vector<uint32_t>& growing, size_t stratum_index,
    const std::vector<ExternalDelta>& external, Database* db,
    const EvalOptions& options, EvalStats* stats, uint64_t* rounds_out) {
  TraceSpan span("datalog.stratum");
  span.Arg("stratum", static_cast<int64_t>(stratum_index));
  span.Arg("delta", 1);
  FixpointCounters counters;
  ExecCounters exec;
  const bool metrics_on = MetricsEnabled();
  std::vector<uint64_t> rule_derived;
  if (metrics_on) rule_derived.assign(compiled.size(), 0);
  size_t rounds = 0;

  db->EnsureStores(growing);
  EvalScratch& scratch = LocalScratch();
  std::vector<std::pair<uint32_t, uint32_t>>& ranges = scratch.ranges;
  BytecodeExecutor executor(bytecode, db, db, &growing, &ranges, stats,
                            /*invention=*/nullptr, &exec, &scratch.bytecode);
  const Database* cdb = db;
  auto size_of = [&](uint32_t rel) {
    const RelStore* s = cdb->Store(rel);
    return s == nullptr ? 0u : s->row_count();
  };
  // The base fixpoint is complete, so round 0's horizon is the full current
  // extent of every growing store (empty delta); the first advance() below
  // turns whatever round 0 inserted into the first recursive delta.
  ranges.resize(growing.size());
  for (size_t g = 0; g < growing.size(); ++g) {
    uint32_t n = size_of(growing[g]);
    ranges[g] = {n, n};
  }
  auto advance = [&] {
    bool any = false;
    for (size_t g = 0; g < growing.size(); ++g) {
      uint32_t lo = ranges[g].second;
      uint32_t hi = size_of(growing[g]);
      any |= hi > lo;
      ranges[g] = {lo, hi};
    }
    return any;
  };
  auto attempts = [&] { return exec.inserted + exec.rejected; };

  // Round 0: every (rule, atom) site over an externally grown relation runs
  // with that atom restricted to the new rows. A rule reading two changed
  // relations fires once per site; the cross-delta derivations come out of
  // both runs and dedup in the store.
  for (const ExternalDelta& d : external) {
    if (d.lo >= d.hi) continue;
    for (uint32_t r : rules) {
      const CompiledRule& rule = compiled[r];
      for (uint32_t a = 0; a < rule.pos.size(); ++a) {
        if (rule.pos[a].relation != d.rel) continue;
        uint64_t before = attempts();
        executor.Eval(bytecode.rules[r], a, d.lo, d.hi);
        if (metrics_on) rule_derived[r] += attempts() - before;
      }
    }
  }
  bool any = advance();
  if (stats != nullptr) ++stats->fixpoint_rounds;
  ++rounds;

  auto finish = [&](Status status) {
    counters.probes = exec.probes;
    counters.probe_hits = exec.probe_hits;
    counters.inserts = exec.inserted;
    counters.dedup_rejected = exec.rejected;
    if (stats != nullptr) stats->rule_applications += exec.applications;
    if (rounds_out != nullptr) *rounds_out += rounds;
    if (span.active()) {
      span.Arg("rounds", static_cast<int64_t>(rounds));
      span.Arg("inserts", static_cast<int64_t>(counters.inserts));
      span.Arg("probes", static_cast<int64_t>(counters.probes));
      span.Arg("probe_hits", static_cast<int64_t>(counters.probe_hits));
      span.Arg("dedup_rejected",
               static_cast<int64_t>(counters.dedup_rejected));
    }
    if (metrics_on) {
      FlushFixpointMetrics(compiled, counters, rounds, rule_derived);
    }
    return status;
  };

  while (any) {
    if (db->size() > options.max_total_facts) {
      return finish(
          ResourceExhaustedError("fixpoint exceeded max_total_facts"));
    }
    for (const auto& [r, atom_index] : delta_sites) {
      uint32_t rel = compiled[r].pos[atom_index].relation;
      uint32_t lo = 0, hi = 0;
      for (size_t g = 0; g < growing.size(); ++g) {
        if (growing[g] == rel) {
          lo = ranges[g].first;
          hi = ranges[g].second;
          break;
        }
      }
      if (lo >= hi) continue;
      uint64_t before = attempts();
      executor.Eval(bytecode.rules[r], atom_index, lo, hi);
      if (metrics_on) rule_derived[r] += attempts() - before;
    }
    any = advance();
    if (stats != nullptr) ++stats->fixpoint_rounds;
    ++rounds;
  }
  return finish(Status::Ok());
}

// Per-EvalOverlay observability tallies, flushed once at the end (same
// pattern as FixpointCounters: unconditional adds on the path, one branch
// to decide whether anybody consumes them).
struct OverlayTallies {
  bool fallback = false;
  bool monotone = false;  // superset proven, nothing materialized
  uint64_t delta_rounds = 0;
  uint64_t recomputed_strata = 0;
  uint64_t retracted_rows = 0;  // rows truncated for recomputation
  uint64_t epoch_rollbacks = 0;
};

void FlushIncrementalMetrics(const OverlayTallies& t) {
  MetricRegistry& registry = MetricRegistry::Global();
  static Counter& overlays =
      registry.GetCounter("calm.eval.incremental.overlays");
  static Counter& fallbacks =
      registry.GetCounter("calm.eval.incremental.fallbacks");
  static Counter& monotone =
      registry.GetCounter("calm.eval.incremental.monotone_overlays");
  static Counter& delta_rounds =
      registry.GetCounter("calm.eval.incremental.delta_rounds");
  static Counter& recomputed =
      registry.GetCounter("calm.eval.incremental.recomputed_strata");
  static Counter& retracted =
      registry.GetCounter("calm.eval.incremental.retracted_rows");
  static Counter& rollbacks =
      registry.GetCounter("calm.eval.incremental.epoch_rollbacks");
  overlays.Increment();
  if (t.fallback) fallbacks.Increment();
  if (t.monotone) monotone.Increment();
  delta_rounds.Increment(t.delta_rounds);
  recomputed.Increment(t.recomputed_strata);
  retracted.Increment(t.retracted_rows);
  rollbacks.Increment(t.epoch_rollbacks);
}

}  // namespace

void PreparedProgram::CompileRules(const Program& program) {
  RuleCompiler compiler;
  compiled_.reserve(program.rules.size());
  for (const Rule& r : program.rules) {
    compiled_.push_back(compiler.Compile(r, options_.reorder_joins));
  }
  if (info_.uses_adom) {
    for (const RelationDecl& r : info_.edb.relations()) {
      if (r.name != AdomRelation()) (void)adom_source_.AddRelation(r);
    }
  }
}

PreparedProgram::Stratum PreparedProgram::MakeStratum(
    const Program& program, const std::vector<size_t>& rule_indices) const {
  Stratum st;
  std::set<uint32_t> growing;
  for (size_t idx : rule_indices) {
    st.rules.push_back(static_cast<uint32_t>(idx));
    growing.insert(program.rules[idx].head.relation);
  }
  for (uint32_t r : st.rules) {
    const CompiledRule& rule = compiled_[r];
    for (uint32_t a = 0; a < rule.pos.size(); ++a) {
      if (growing.count(rule.pos[a].relation) > 0) {
        st.delta_sites.emplace_back(r, a);
      }
    }
  }
  st.growing.assign(growing.begin(), growing.end());
  return st;
}

Result<PreparedProgram> PreparedProgram::Prepare(const Program& program,
                                                 const EvalOptions& options,
                                                 bool allow_invention) {
  PreparedProgram p;
  CALM_ASSIGN_OR_RETURN(p.info_, Analyze(program, allow_invention));
  CALM_ASSIGN_OR_RETURN(Stratification strat, Stratify(program, p.info_));
  p.options_ = options;
  p.engine_ = options.engine == EvalEngine::kDefault ? DefaultEvalEngine()
                                                     : options.engine;
  p.incremental_ = options.incremental == IncrementalMode::kDefault
                       ? DefaultIncrementalMode()
                       : options.incremental;
  p.options_.eval_threads =
      options.eval_threads > 0 ? options.eval_threads : DefaultEvalThreads();
  p.CompileRules(program);
  if (p.engine_ == EvalEngine::kBytecode) {
    p.bytecode_ = CompileBytecode(p.compiled_);
  }
  for (uint32_t s = 0; s < strat.stratum_count; ++s) {
    if (strat.rules_per_stratum[s].empty()) continue;
    p.strata_.push_back(p.MakeStratum(program, strat.rules_per_stratum[s]));
  }
  return p;
}

Result<PreparedProgram> PreparedProgram::PrepareFixedNegation(
    const Program& program, const EvalOptions& options) {
  PreparedProgram p;
  CALM_ASSIGN_OR_RETURN(p.info_, Analyze(program));
  p.options_ = options;
  p.engine_ = options.engine == EvalEngine::kDefault ? DefaultEvalEngine()
                                                     : options.engine;
  p.incremental_ = options.incremental == IncrementalMode::kDefault
                       ? DefaultIncrementalMode()
                       : options.incremental;
  p.options_.eval_threads =
      options.eval_threads > 0 ? options.eval_threads : DefaultEvalThreads();
  p.fixed_negation_ = true;
  p.CompileRules(program);
  if (p.engine_ == EvalEngine::kBytecode) {
    p.bytecode_ = CompileBytecode(p.compiled_);
  }
  std::vector<size_t> all;
  all.reserve(program.rules.size());
  for (size_t i = 0; i < program.rules.size(); ++i) all.push_back(i);
  if (!all.empty()) p.strata_.push_back(p.MakeStratum(program, all));
  return p;
}

Database PreparedProgram::MakeSeed(
    std::initializer_list<const Instance*> parts,
    const Schema* pre_restrict) const {
  Database db;
  SeedInto(&db, parts, pre_restrict);
  return db;
}

void PreparedProgram::SeedInto(Database* db,
                               std::initializer_list<const Instance*> parts,
                               const Schema* pre_restrict) const {
  const bool seed_adom = info_.uses_adom && options_.populate_adom;
  const uint32_t adom_rel = AdomRelation();
  auto admitted = [&](uint32_t name, const Tuple& t) {
    return SchemaAdmits(info_.sch, name, t) &&
           (pre_restrict == nullptr || SchemaAdmits(*pre_restrict, name, t));
  };

  // The seeded Adom store must hold sorted(input Adom facts ∪ active-domain
  // values) — the insertion order the one-shot path produced by inserting
  // Adom facts into the sorted working Instance before building the
  // database — so derivation order (and with it ILOG's invented-value
  // numbering) is unchanged.
  std::set<Tuple> adom_facts;
  if (seed_adom) {
    for (const Instance* part : parts) {
      part->ForEachFact([&](uint32_t name, const Tuple& t) {
        if (!admitted(name, t)) return;
        if (name == adom_rel) {
          adom_facts.insert(t);
        } else if (adom_source_.ArityOf(name) != 0) {
          for (Value v : t) adom_facts.insert(Tuple{v});
        }
      });
    }
  }

  for (const Instance* part : parts) {
    part->ForEachFact([&](uint32_t name, const Tuple& t) {
      if (seed_adom && name == adom_rel) return;  // merged below, sorted
      if (admitted(name, t)) db->Insert(name, t);
    });
  }
  if (seed_adom) {
    for (const Tuple& t : adom_facts) db->Insert(adom_rel, t);
  }
}

Result<Instance> PreparedProgram::RunInPlace(Database* db, EvalStats* stats,
                                             size_t* invented_count,
                                             const Schema* post_restrict) const {
  const size_t input_size = db->size();
  TraceSpan span("datalog.eval");
  span.Arg("strata", static_cast<int64_t>(strata_.size()));
  // The span wants round/derived totals even when the caller passed no stats
  // sink; borrow a local one in that case (only when a span is recording).
  EvalStats local_stats;
  EvalStats* sink = stats;
  if (sink == nullptr && span.active()) sink = &local_stats;
  InventionTable invention;
  for (size_t i = 0; i < strata_.size(); ++i) {
    const Stratum& s = strata_[i];
    if (engine_ == EvalEngine::kBytecode) {
      CALM_RETURN_IF_ERROR(RunFixpointBytecode(
          compiled_, bytecode_, s.rules, s.delta_sites, s.growing, i, db, db,
          options_, sink, &invention));
    } else {
      CALM_RETURN_IF_ERROR(RunFixpoint(compiled_, s.rules, s.delta_sites, i,
                                       db, db, options_, sink, &invention));
    }
  }
  if (sink != nullptr) sink->derived_facts = CountDerived(*db, input_size);
  if (invented_count != nullptr) *invented_count = invention.size();
  if (span.active() && sink != nullptr) {
    span.Arg("rounds", static_cast<int64_t>(sink->fixpoint_rounds));
    span.Arg("derived", static_cast<int64_t>(sink->derived_facts));
  }
  return db->ToInstance(post_restrict);
}

Result<Instance> PreparedProgram::Eval(const Instance& input, EvalStats* stats,
                                       size_t* invented_count) const {
  return EvalParts({&input}, nullptr, nullptr, stats, invented_count);
}

Result<Instance> PreparedProgram::EvalParts(
    std::initializer_list<const Instance*> parts, const Schema* pre_restrict,
    const Schema* post_restrict, EvalStats* stats,
    size_t* invented_count) const {
  if (fixed_negation_) {
    return InternalError(
        "EvalParts on a fixed-negation prepared program; use "
        "EvalFixedNegation");
  }
  Database& db = LocalScratch().db;
  db.Reset();
  SeedInto(&db, parts, pre_restrict);
  return RunInPlace(&db, stats, invented_count, post_restrict);
}

Result<Instance> PreparedProgram::RunFixedNegation(Database db,
                                                   const Database& neg_db,
                                                   EvalStats* stats) const {
  if (!fixed_negation_) {
    return InternalError(
        "RunFixedNegation on a stratified prepared program; use Eval");
  }
  const size_t input_size = db.size();
  TraceSpan span("datalog.eval_fixed_negation");
  if (!strata_.empty()) {
    const Stratum& s = strata_[0];
    if (engine_ == EvalEngine::kBytecode) {
      CALM_RETURN_IF_ERROR(RunFixpointBytecode(compiled_, bytecode_, s.rules,
                                               s.delta_sites, s.growing, 0,
                                               &db, &neg_db, options_, stats,
                                               nullptr));
    } else {
      CALM_RETURN_IF_ERROR(RunFixpoint(compiled_, s.rules, s.delta_sites, 0,
                                       &db, &neg_db, options_, stats,
                                       nullptr));
    }
  }
  if (stats != nullptr) stats->derived_facts = CountDerived(db, input_size);
  return db.ToInstance();
}

Result<Instance> PreparedProgram::EvalFixedNegation(
    const Instance& input, const Instance& neg_reference,
    EvalStats* stats) const {
  return RunFixedNegation(MakeSeed({&input}, nullptr), Database(neg_reference),
                          stats);
}

std::unique_ptr<IncrementalEval> PreparedProgram::BeginIncremental(
    const Instance& base, const Schema* pre_restrict,
    const Schema* post_restrict) const {
  std::unique_ptr<IncrementalEval> ev(new IncrementalEval());
  ev->prog_ = this;
  ev->base_ = base;
  if (pre_restrict != nullptr) ev->pre_ = *pre_restrict;
  if (post_restrict != nullptr) ev->post_ = *post_restrict;

  // Gate: the delta machinery rides the bytecode engine's row-range
  // visibility horizons and the semi-naive delta sites; the tree engine,
  // naive iteration, the Gamma operator, and Skolem invention (whose value
  // numbering depends on global derivation order) all take the from-scratch
  // route instead. Nullary heads are excluded too: their single phantom row
  // is a flag, not a row, so watermark truncation cannot restore it.
  bool unsupported_rule = false;
  for (const CompiledRule& r : compiled_) {
    unsupported_rule |= r.head.invents || r.head.slots.empty();
  }
  ev->supported_ = !fixed_negation_ && engine_ == EvalEngine::kBytecode &&
                   options_.semi_naive && !unsupported_rule;
  if (!ev->supported_) return ev;

  for (const Stratum& s : strata_) {
    for (uint32_t g : s.growing) ev->idb_rels_.push_back(g);
  }
  std::sort(ev->idb_rels_.begin(), ev->idb_rels_.end());

  // Materialize the base fixpoint, capturing each stratum's pre/post row
  // counts on its growing stores — the watermarks recomputation truncates
  // to and the boundaries that separate base rows from overlay deltas.
  TraceSpan span("datalog.eval");
  span.Arg("strata", static_cast<int64_t>(strata_.size()));
  SeedInto(&ev->db_, {&base}, pre_restrict);
  ev->wm_.resize(strata_.size());
  ev->end_.resize(strata_.size());
  ev->saved_.resize(strata_.size());
  ev->saved_ready_.assign(strata_.size(), false);
  InventionTable invention;  // unused: invention is gated out above
  Status st;
  for (size_t i = 0; i < strata_.size() && st.ok(); ++i) {
    const Stratum& s = strata_[i];
    ev->db_.EnsureStores(s.growing);
    std::vector<uint32_t>& wm = ev->wm_[i];
    wm.resize(s.growing.size());
    for (size_t k = 0; k < s.growing.size(); ++k) {
      wm[k] = ev->db_.Store(s.growing[k])->row_count();
    }
    st = RunFixpointBytecode(compiled_, bytecode_, s.rules, s.delta_sites,
                             s.growing, i, &ev->db_, &ev->db_, options_,
                             nullptr, &invention);
    std::vector<uint32_t>& end = ev->end_[i];
    end.resize(s.growing.size());
    for (size_t k = 0; k < s.growing.size(); ++k) {
      end[k] = ev->db_.Store(s.growing[k])->row_count();
    }
  }
  ev->base_status_ = st;
  // A failed base fixpoint leaves no state to continue from; overlays then
  // replay the from-scratch path, reproducing its exact error behavior.
  if (!st.ok()) ev->supported_ = false;
  return ev;
}

bool IncrementalEval::Admitted(uint32_t name, const Tuple& t) const {
  if (!SchemaAdmits(prog_->info_.sch, name, t)) return false;
  return !pre_.has_value() || SchemaAdmits(*pre_, name, t);
}

Result<IncrementalEval::Overlay> IncrementalEval::Fallback(
    const Instance& overlay, std::vector<Fact>* out, EvalStats* stats) {
  Overlay result;
  result.fell_back = true;
  CALM_ASSIGN_OR_RETURN(
      Instance inst,
      prog_->EvalParts({&base_, &overlay},
                       pre_.has_value() ? &*pre_ : nullptr,
                       post_.has_value() ? &*post_ : nullptr, stats));
  if (out != nullptr) {
    out->clear();
    inst.ForEachFact(
        [&](uint32_t name, const Tuple& t) { out->emplace_back(name, t); });
  }
  return result;
}

void IncrementalEval::SaveStratumRows(size_t stratum) {
  if (saved_ready_[stratum]) return;
  saved_ready_[stratum] = true;
  const PreparedProgram::Stratum& s = prog_->strata_[stratum];
  saved_[stratum].resize(s.growing.size());
  for (size_t k = 0; k < s.growing.size(); ++k) {
    const RelStore* store =
        static_cast<const Database&>(db_).Store(s.growing[k]);
    std::vector<uint32_t>& flat = saved_[stratum][k];
    const uint32_t lo = wm_[stratum][k];
    const uint32_t hi = end_[stratum][k];
    if (lo >= hi) continue;
    const uint32_t arity = static_cast<uint32_t>(store->arity());
    flat.reserve(static_cast<size_t>(hi - lo) * arity);
    for (uint32_t r = lo; r < hi; ++r) {
      for (uint32_t c = 0; c < arity; ++c) flat.push_back(store->CodeAt(r, c));
    }
  }
}

void IncrementalEval::RestoreStratumRows(size_t stratum) {
  const PreparedProgram::Stratum& s = prog_->strata_[stratum];
  for (size_t k = 0; k < s.growing.size(); ++k) {
    RelStore* store = db_.Store(s.growing[k]);
    store->TruncateRows(wm_[stratum][k]);
    const std::vector<uint32_t>& flat = saved_[stratum][k];
    if (flat.empty()) continue;
    const uint32_t arity = static_cast<uint32_t>(store->arity());
    for (size_t off = 0; off < flat.size(); off += arity) {
      store->InsertCodes(&flat[off], arity);
    }
  }
}

Result<IncrementalEval::Overlay> IncrementalEval::EvalOverlay(
    const Instance& overlay, std::vector<Fact>* out_facts, bool materialize,
    EvalStats* stats) {
  if (!supported_) {
    if (MetricsEnabled()) {
      OverlayTallies tally;
      tally.fallback = true;
      FlushIncrementalMetrics(tally);
    }
    return Fallback(overlay, out_facts, stats);
  }

  const bool metrics_on = MetricsEnabled();
  OverlayTallies tally;
  TraceSpan span("datalog.eval.delta");

  // --- Seed: push the overlay as one epoch ---------------------------------
  db_.BeginEpoch();
  const bool seed_adom = prog_->info_.uses_adom && prog_->options_.populate_adom;
  const uint32_t adom_rel = AdomRelation();
  // (rel, row count before the overlay's first insert into it). The overlay
  // touches a handful of relations; linear scans beat any map here.
  std::vector<std::pair<uint32_t, uint32_t>> pre_rows;
  auto note = [&](uint32_t rel) {
    for (const auto& [r, n] : pre_rows) {
      if (r == rel) return;
    }
    const RelStore* s = static_cast<const Database&>(db_).Store(rel);
    pre_rows.emplace_back(rel, s == nullptr ? 0u : s->row_count());
  };
  // Unlike the base seed, overlay Adom values append after the base rows
  // instead of merging sorted — row order differs from a from-scratch seed,
  // but the fact SET is identical and ToInstance sorts by rank, so outputs
  // cannot differ (invention, the one order-sensitive feature, is gated out).
  bool idb_fact = false;
  overlay.ForEachFact([&](uint32_t name, const Tuple& t) {
    if (idb_fact || !Admitted(name, t)) return;
    if (std::binary_search(idb_rels_.begin(), idb_rels_.end(), name)) {
      idb_fact = true;  // a materialized fixpoint cannot absorb IDB seeds
      return;
    }
    note(name);
    db_.Insert(name, t);
    if (seed_adom && name != adom_rel &&
        prog_->adom_source_.ArityOf(name) != 0) {
      note(adom_rel);
      for (Value v : t) db_.Insert(adom_rel, Tuple{v});
    }
  });
  if (idb_fact) {
    db_.RollbackEpoch();
    if (metrics_on) {
      tally.fallback = true;
      ++tally.epoch_rollbacks;
      FlushIncrementalMetrics(tally);
    }
    return Fallback(overlay, out_facts, stats);
  }
  std::vector<ExternalDelta> grew;
  for (const auto& [rel, lo] : pre_rows) {
    uint32_t hi = static_cast<const Database&>(db_).Store(rel)->row_count();
    if (hi > lo) grew.push_back({rel, lo, hi});
  }

  // --- Walk the strata forward ---------------------------------------------
  // A stratum is skipped when nothing it reads changed, delta-continued when
  // only positive atoms saw growth, and recomputed from its watermark when a
  // negated atom saw any change or a positive atom reads a recomputed
  // relation (recomputation can retract, so growth-only reasoning is off).
  Status st;
  std::vector<uint32_t> recomputed_rels;
  std::vector<size_t> recomputed_strata;
  auto grew_has = [&](uint32_t rel) {
    for (const ExternalDelta& d : grew) {
      if (d.rel == rel) return true;
    }
    return false;
  };
  auto recomputed_has = [&](uint32_t rel) {
    for (uint32_t r : recomputed_rels) {
      if (r == rel) return true;
    }
    return false;
  };
  const std::vector<PreparedProgram::Stratum>& strata = prog_->strata_;
  for (size_t i = 0; i < strata.size(); ++i) {
    const PreparedProgram::Stratum& s = strata[i];
    bool recompute = false;
    bool touched = false;
    for (uint32_t r : s.rules) {
      const CompiledRule& rule = prog_->compiled_[r];
      for (const CompiledAtom& a : rule.pos) {
        if (recomputed_has(a.relation)) {
          recompute = true;
        } else if (grew_has(a.relation)) {
          touched = true;
        }
      }
      for (const CompiledAtom& a : rule.neg) {
        if (recomputed_has(a.relation) || grew_has(a.relation)) {
          recompute = true;
        }
      }
    }
    if (!recompute && !touched) continue;
    if (recompute) {
      SaveStratumRows(i);
      for (size_t k = 0; k < s.growing.size(); ++k) {
        RelStore* store = db_.Store(s.growing[k]);
        tally.retracted_rows += store->row_count() - wm_[i][k];
        store->TruncateRows(wm_[i][k]);
      }
      st = RunFixpointBytecode(prog_->compiled_, prog_->bytecode_, s.rules,
                               s.delta_sites, s.growing, i, &db_, &db_,
                               prog_->options_, stats, nullptr);
      ++tally.recomputed_strata;
      for (uint32_t g : s.growing) recomputed_rels.push_back(g);
      recomputed_strata.push_back(i);
    } else {
      st = RunStratumDeltaBytecode(prog_->compiled_, prog_->bytecode_,
                                   s.rules, s.delta_sites, s.growing, i, grew,
                                   &db_, prog_->options_, stats,
                                   &tally.delta_rounds);
      for (size_t k = 0; k < s.growing.size(); ++k) {
        uint32_t hi = db_.Store(s.growing[k])->row_count();
        if (hi > end_[i][k]) grew.push_back({s.growing[k], end_[i][k], hi});
      }
    }
    if (!st.ok()) break;
  }

  // --- Materialize, then unwind the epoch ----------------------------------
  Overlay result;
  result.superset_of_base = st.ok() && recomputed_strata.empty();
  if (st.ok() && out_facts != nullptr &&
      (materialize || !result.superset_of_base)) {
    out_facts->clear();
    Instance inst = db_.ToInstance(post_.has_value() ? &*post_ : nullptr);
    inst.ForEachFact(
        [&](uint32_t name, const Tuple& t) { out_facts->emplace_back(name, t); });
  }
  for (size_t i : recomputed_strata) RestoreStratumRows(i);
  db_.RollbackEpoch();
  ++tally.epoch_rollbacks;

  tally.monotone = result.superset_of_base;
  tally.fallback = !st.ok();
  if (span.active()) {
    span.Arg("changed_rels", static_cast<int64_t>(grew.size()));
    span.Arg("delta_rounds", static_cast<int64_t>(tally.delta_rounds));
    span.Arg("recomputed_strata",
             static_cast<int64_t>(tally.recomputed_strata));
    span.Arg("superset", result.superset_of_base ? 1 : 0);
  }
  if (metrics_on) FlushIncrementalMetrics(tally);
  // A mid-delta error (in practice: max_total_facts, which the delta path
  // can reach at different round boundaries than a from-scratch run because
  // the whole base fixpoint is already resident) reroutes through the
  // from-scratch path, whose success or error is the canonical answer.
  if (!st.ok()) return Fallback(overlay, out_facts, stats);
  return result;
}

}  // namespace calm::datalog
