#include "datalog/wellfounded.h"

#include <string>

#include "datalog/analysis.h"

namespace calm::datalog {

Result<WellFoundedModel> EvaluateWellFounded(const Program& program,
                                             const Instance& input,
                                             const EvalOptions& options) {
  CALM_ASSIGN_OR_RETURN(PreparedProgram prepared,
                        PreparedProgram::PrepareFixedNegation(program, options));
  return EvaluateWellFounded(prepared, {&input}, nullptr);
}

Result<WellFoundedModel> EvaluateWellFounded(
    const PreparedProgram& prepared,
    std::initializer_list<const Instance*> parts,
    const Schema* pre_restrict) {
  const Schema& sch = prepared.info().sch;
  // The restricted input, *without* Adom seeding: the alternation's initial
  // underapproximation (Gamma outputs do include seeded Adom facts).
  Instance restricted;
  for (const Instance* part : parts) {
    part->ForEachFact([&](uint32_t name, const Tuple& t) {
      uint32_t arity = sch.ArityOf(name);
      if (arity == 0 || t.size() != arity) return;
      if (pre_restrict != nullptr) {
        uint32_t pre_arity = pre_restrict->ArityOf(name);
        if (pre_arity == 0 || t.size() != pre_arity) return;
      }
      restricted.Insert(Fact(name, t));
    });
  }

  // The seed (restricted input + Adom) is built once; every Gamma call runs
  // the compiled fixpoint over a copy of it.
  Database seed = prepared.MakeSeed(parts, pre_restrict);

  // Gamma(S): least fixpoint with negation tested against fixed S.
  auto gamma = [&](const Instance& s) -> Result<Instance> {
    return prepared.RunFixedNegation(seed, Database(s));
  };

  // Alternating fixpoint: lo underapproximates the true facts, hi
  // overapproximates them; both are fixed after finitely many rounds.
  Instance lo = std::move(restricted);
  CALM_ASSIGN_OR_RETURN(Instance hi, gamma(lo));
  while (true) {
    CALM_ASSIGN_OR_RETURN(Instance new_lo, gamma(hi));
    CALM_ASSIGN_OR_RETURN(Instance new_hi, gamma(new_lo));
    if (new_lo == lo && new_hi == hi) break;
    lo = std::move(new_lo);
    hi = std::move(new_hi);
  }

  WellFoundedModel model;
  model.definitely = std::move(lo);
  model.possibly = std::move(hi);
  return model;
}

std::string DoubledProgram::LoName(const std::string& rel, size_t round) {
  return rel + "__lo" + std::to_string(round);
}
std::string DoubledProgram::HiName(const std::string& rel, size_t round) {
  return rel + "__hi" + std::to_string(round);
}

namespace {

// Renames an idb atom to its round-r lo or hi copy; edb atoms are unchanged.
Atom RenameAtom(const Atom& atom, const ProgramInfo& info, size_t round,
                bool hi) {
  if (!info.idb.Contains(atom.relation)) return atom;
  const std::string& base = NameOf(atom.relation);
  std::string renamed = hi ? DoubledProgram::HiName(base, round)
                           : DoubledProgram::LoName(base, round);
  Atom out = atom;
  out.relation = InternName(renamed);
  return out;
}

}  // namespace

DoubledProgram BuildDoubledProgram(const Program& program,
                                   const ProgramInfo& info, size_t steps) {
  DoubledProgram out;
  for (size_t r = 1; r <= steps; ++r) {
    for (const Rule& rule : program.rules) {
      // hi^r: positives from hi^r, idb negatives from lo^{r-1}. At r == 1
      // lo^0 is empty, so those literals are vacuously true and dropped.
      Rule hi_rule;
      hi_rule.head = RenameAtom(rule.head, info, r, /*hi=*/true);
      for (const Atom& a : rule.pos) {
        hi_rule.pos.push_back(RenameAtom(a, info, r, /*hi=*/true));
      }
      for (const Atom& a : rule.neg) {
        if (!info.idb.Contains(a.relation)) {
          hi_rule.neg.push_back(a);
        } else if (r > 1) {
          hi_rule.neg.push_back(RenameAtom(a, info, r - 1, /*hi=*/false));
        }
      }
      hi_rule.ineqs = rule.ineqs;
      out.program.rules.push_back(std::move(hi_rule));

      // lo^r: positives from lo^r, idb negatives from hi^r.
      Rule lo_rule;
      lo_rule.head = RenameAtom(rule.head, info, r, /*hi=*/false);
      for (const Atom& a : rule.pos) {
        lo_rule.pos.push_back(RenameAtom(a, info, r, /*hi=*/false));
      }
      for (const Atom& a : rule.neg) {
        if (!info.idb.Contains(a.relation)) {
          lo_rule.neg.push_back(a);
        } else {
          lo_rule.neg.push_back(RenameAtom(a, info, r, /*hi=*/true));
        }
      }
      lo_rule.ineqs = rule.ineqs;
      out.program.rules.push_back(std::move(lo_rule));
    }
  }
  for (uint32_t rel : program.output_relations) {
    const std::string& base = NameOf(rel);
    out.program.output_relations.insert(
        InternName(DoubledProgram::LoName(base, steps)));
    out.program.output_relations.insert(
        InternName(DoubledProgram::HiName(base, steps)));
  }
  return out;
}

}  // namespace calm::datalog
