#include "datalog/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace calm::datalog {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,     // :- or <-
  kNeq,       // !=
  kBang,      // !
  kStar,      // *
  kDirective, // .output
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(LexNumber());
      } else if (c == '"') {
        CALM_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else if (c == '(') {
        out.push_back(Single(TokenKind::kLParen));
      } else if (c == ')') {
        out.push_back(Single(TokenKind::kRParen));
      } else if (c == ',') {
        out.push_back(Single(TokenKind::kComma));
      } else if (c == '*') {
        out.push_back(Single(TokenKind::kStar));
      } else if (c == '.') {
        // ".output" directive vs end-of-rule dot.
        if (text_.substr(pos_).rfind(".output", 0) == 0) {
          out.push_back(Token{TokenKind::kDirective, ".output", line_});
          pos_ += 7;
        } else {
          out.push_back(Single(TokenKind::kDot));
        }
      } else if (c == ':' && Peek(1) == '-') {
        out.push_back(Token{TokenKind::kArrow, ":-", line_});
        pos_ += 2;
      } else if (c == '<' && Peek(1) == '-') {
        out.push_back(Token{TokenKind::kArrow, "<-", line_});
        pos_ += 2;
      } else if (c == '!' && Peek(1) == '=') {
        out.push_back(Token{TokenKind::kNeq, "!=", line_});
        pos_ += 2;
      } else if (c == '!') {
        out.push_back(Single(TokenKind::kBang));
      } else {
        return InvalidArgumentError("line " + std::to_string(line_) +
                                    ": unexpected character '" +
                                    std::string(1, c) + "'");
      }
    }
    out.push_back(Token{TokenKind::kEnd, "", line_});
    return out;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  Token Single(TokenKind kind) {
    Token t{kind, std::string(1, text_[pos_]), line_};
    ++pos_;
    return t;
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokenKind::kIdent, std::string(text_.substr(start, pos_ - start)),
                 line_};
  }

  Token LexNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return Token{TokenKind::kNumber,
                 std::string(text_.substr(start, pos_ - start)), line_};
  }

  Result<Token> LexString() {
    ++pos_;  // opening quote
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("line " + std::to_string(line_) +
                                  ": unterminated string");
    }
    Token t{TokenKind::kString, std::string(text_.substr(start, pos_ - start)),
            line_};
    ++pos_;  // closing quote
    return t;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || (c == '/' && Peek(1) == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    Program program;
    bool explicit_output = false;
    while (!At(TokenKind::kEnd)) {
      if (At(TokenKind::kDirective)) {
        Advance();
        CALM_RETURN_IF_ERROR(ParseOutputList(program));
        explicit_output = true;
        continue;
      }
      CALM_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      program.rules.push_back(std::move(rule));
    }
    if (!explicit_output) {
      // Paper convention: relation "O" is the intended output when defined.
      uint32_t o = GlobalSymbols().Find("O");
      for (const Rule& r : program.rules) {
        if (o != UINT32_MAX && r.head.relation == o) {
          program.output_relations.insert(o);
          break;
        }
      }
    }
    return program;
  }

 private:
  const Token& Cur() const { return tokens_[index_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  void Advance() { ++index_; }

  Status Err(const std::string& what) const {
    return InvalidArgumentError("line " + std::to_string(Cur().line) + ": " +
                                what + " (got '" + Cur().text + "')");
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!At(kind)) return Err(std::string("expected ") + what);
    Advance();
    return Status::Ok();
  }

  Status ParseOutputList(Program& program) {
    while (true) {
      if (!At(TokenKind::kIdent)) return Err("expected relation name");
      program.output_relations.insert(InternName(Cur().text));
      Advance();
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    // Optional trailing dot after the directive.
    if (At(TokenKind::kDot)) Advance();
    return Status::Ok();
  }

  Result<Term> ParseTerm() {
    if (At(TokenKind::kIdent)) {
      Term t = Term::Var(Cur().text);
      Advance();
      return t;
    }
    if (At(TokenKind::kNumber)) {
      Term t = Term::Const(Value::FromInt(std::strtoull(Cur().text.c_str(),
                                                        nullptr, 10)));
      Advance();
      return t;
    }
    if (At(TokenKind::kString)) {
      Term t = Term::Const(Sym(Cur().text));
      Advance();
      return t;
    }
    return Err("expected term");
  }

  Result<Atom> ParseAtom(bool allow_invention) {
    if (!At(TokenKind::kIdent)) return Err("expected relation name");
    Atom atom;
    atom.relation = InternName(Cur().text);
    Advance();
    CALM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (At(TokenKind::kStar)) {
      if (!allow_invention) return Err("invention '*' only allowed in heads");
      atom.invents = true;
      Advance();
      if (At(TokenKind::kComma)) Advance();
    }
    if (!At(TokenKind::kRParen)) {
      while (true) {
        CALM_ASSIGN_OR_RETURN(Term t, ParseTerm());
        atom.args.push_back(t);
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    CALM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return atom;
  }

  Result<Rule> ParseRule() {
    Rule rule;
    CALM_ASSIGN_OR_RETURN(rule.head, ParseAtom(/*allow_invention=*/true));
    CALM_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "':-'"));
    while (true) {
      if (At(TokenKind::kBang) ||
          (At(TokenKind::kIdent) && Cur().text == "not" &&
           tokens_[index_ + 1].kind == TokenKind::kIdent)) {
        Advance();
        CALM_ASSIGN_OR_RETURN(Atom a, ParseAtom(/*allow_invention=*/false));
        rule.neg.push_back(std::move(a));
      } else if (At(TokenKind::kIdent) &&
                 tokens_[index_ + 1].kind == TokenKind::kLParen) {
        CALM_ASSIGN_OR_RETURN(Atom a, ParseAtom(/*allow_invention=*/false));
        rule.pos.push_back(std::move(a));
      } else {
        // Inequality: term != term.
        CALM_ASSIGN_OR_RETURN(Term l, ParseTerm());
        CALM_RETURN_IF_ERROR(Expect(TokenKind::kNeq, "'!='"));
        CALM_ASSIGN_OR_RETURN(Term r, ParseTerm());
        rule.ineqs.emplace_back(l, r);
      }
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    CALM_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.'"));
    return rule;
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<Program> Parse(std::string_view text) {
  Lexer lexer(text);
  CALM_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

Program ParseOrDie(std::string_view text) {
  Result<Program> result = Parse(text);
  if (!result.ok()) {
    std::fprintf(stderr, "ParseOrDie failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace calm::datalog
