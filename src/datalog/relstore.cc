#include "datalog/relstore.h"

#include <algorithm>

namespace calm::datalog {

namespace {

constexpr size_t kInitialTableSize = 16;  // power of two

// True when `used` entries exceed ~0.7 load of `table_size`.
inline bool OverLoad(size_t used, size_t table_size) {
  return used * 10 > table_size * 7;
}

}  // namespace

const std::vector<uint32_t>& RelStore::NoMatches() {
  static const std::vector<uint32_t>* kEmpty = new std::vector<uint32_t>();
  return *kEmpty;
}

void RelStore::GrowDedupTable() {
  size_t new_size = dedup_.empty() ? kInitialTableSize : dedup_.size() * 2;
  dedup_.assign(new_size, 0);
  size_t mask = new_size - 1;
  for (uint32_t i = 0; i < tuples_.size(); ++i) {
    size_t h = TupleHash{}(tuples_[i]) & mask;
    while (dedup_[h] != 0) h = (h + 1) & mask;
    dedup_[h] = i + 1;
  }
}

bool RelStore::Insert(const Tuple& t) {
  if (OverLoad(tuples_.size() + 1, dedup_.size())) GrowDedupTable();
  size_t mask = dedup_.size() - 1;
  size_t h = TupleHash{}(t) & mask;
  while (true) {
    uint32_t e = dedup_[h];
    if (e == 0) {
      dedup_[h] = static_cast<uint32_t>(tuples_.size()) + 1;
      tuples_.push_back(t);
      return true;
    }
    if (tuples_[e - 1] == t) return false;
    h = (h + 1) & mask;
  }
}

bool RelStore::Contains(const Tuple& t) const {
  if (dedup_.empty()) return false;
  size_t mask = dedup_.size() - 1;
  size_t h = TupleHash{}(t) & mask;
  while (true) {
    uint32_t e = dedup_[h];
    if (e == 0) return false;
    if (tuples_[e - 1] == t) return true;
    h = (h + 1) & mask;
  }
}

void RelStore::clear() {
  tuples_.clear();
  std::fill(dedup_.begin(), dedup_.end(), 0);
  // Keep the per-mask index shells (and their table allocations); they
  // rebuild incrementally from row 0 on the next Probe.
  for (MaskIndex& mi : indexes_) {
    mi.upto = 0;
    std::fill(mi.table.begin(), mi.table.end(), 0);
    mi.buckets.clear();
  }
}

Tuple RelStore::KeyOf(const Tuple& t, uint32_t mask) {
  Tuple key;
  for (size_t i = 0; i < t.size(); ++i) {
    if (mask & (1u << i)) key.push_back(t[i]);
  }
  return key;
}

RelStore::Bucket* RelStore::FindOrAddBucket(MaskIndex& index,
                                            const Tuple& key) {
  if (OverLoad(index.buckets.size() + 1, index.table.size())) {
    size_t new_size =
        index.table.empty() ? kInitialTableSize : index.table.size() * 2;
    index.table.assign(new_size, 0);
    size_t mask = new_size - 1;
    for (uint32_t b = 0; b < index.buckets.size(); ++b) {
      size_t h = TupleHash{}(index.buckets[b].key) & mask;
      while (index.table[h] != 0) h = (h + 1) & mask;
      index.table[h] = b + 1;
    }
  }
  size_t mask = index.table.size() - 1;
  size_t h = TupleHash{}(key) & mask;
  while (true) {
    uint32_t e = index.table[h];
    if (e == 0) {
      index.table[h] = static_cast<uint32_t>(index.buckets.size()) + 1;
      index.buckets.push_back(Bucket{key, {}});
      return &index.buckets.back();
    }
    if (index.buckets[e - 1].key == key) return &index.buckets[e - 1];
    h = (h + 1) & mask;
  }
}

const RelStore::Bucket* RelStore::FindBucket(const MaskIndex& index,
                                             const Tuple& key) const {
  if (index.table.empty()) return nullptr;
  size_t mask = index.table.size() - 1;
  size_t h = TupleHash{}(key) & mask;
  while (true) {
    uint32_t e = index.table[h];
    if (e == 0) return nullptr;
    if (index.buckets[e - 1].key == key) return &index.buckets[e - 1];
    h = (h + 1) & mask;
  }
}

const std::vector<uint32_t>& RelStore::Probe(uint32_t mask, const Tuple& key) {
  MaskIndex* index = nullptr;
  for (MaskIndex& mi : indexes_) {
    if (mi.mask == mask) {
      index = &mi;
      break;
    }
  }
  if (index == nullptr) {
    indexes_.push_back(MaskIndex{});
    index = &indexes_.back();
    index->mask = mask;
  }
  // Extend the index over tuples added since the last probe of this mask.
  for (uint32_t i = index->upto; i < tuples_.size(); ++i) {
    FindOrAddBucket(*index, KeyOf(tuples_[i], mask))->rows.push_back(i);
  }
  index->upto = static_cast<uint32_t>(tuples_.size());
  const Bucket* bucket = FindBucket(*index, key);
  return bucket == nullptr ? NoMatches() : bucket->rows;
}

Database::Database(const Instance& instance) {
  instance.ForEachFact(
      [&](uint32_t name, const Tuple& t) { Insert(name, t); });
}

RelStore* Database::Find(uint32_t rel) const {
  if (last_ < rels_.size() && rels_[last_].first == rel) {
    return const_cast<RelStore*>(&rels_[last_].second);
  }
  for (size_t i = 0; i < rels_.size(); ++i) {
    if (rels_[i].first == rel) {
      last_ = i;
      return const_cast<RelStore*>(&rels_[i].second);
    }
  }
  return nullptr;
}

bool Database::Insert(uint32_t rel, const Tuple& t) {
  RelStore* store = Find(rel);
  if (store == nullptr) {
    rels_.emplace_back(rel, RelStore());
    last_ = rels_.size() - 1;
    store = &rels_.back().second;
  }
  if (store->Insert(t)) {
    ++size_;
    return true;
  }
  return false;
}

bool Database::Contains(uint32_t rel, const Tuple& t) const {
  const RelStore* store = Find(rel);
  return store != nullptr && store->Contains(t);
}

RelStore* Database::Store(uint32_t rel) { return Find(rel); }

void Database::Reset() {
  for (auto& [name, store] : rels_) store.clear();
  size_ = 0;
}

Instance Database::ToInstance(const Schema* restrict_to) const {
  Instance out;
  for (const auto& [name, store] : rels_) {
    uint32_t arity =
        restrict_to != nullptr ? restrict_to->ArityOf(name) : 0;
    if (restrict_to != nullptr && arity == 0) continue;
    for (const Tuple& t : store.tuples()) {
      // Same per-fact rule as Instance::Restrict.
      if (restrict_to != nullptr && t.size() != arity) continue;
      out.Insert(Fact(name, t));
    }
  }
  return out;
}

}  // namespace calm::datalog
