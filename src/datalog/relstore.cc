#include "datalog/relstore.h"

#include <algorithm>
#include <numeric>

#include "base/simd.h"

namespace calm::datalog {

using detail::HashCodes;
using detail::Mix64;
using detail::OverLoad;

namespace {

constexpr size_t kInitialTableSize = 16;  // power of two

// Backward-shift deletion from a linear-probing open-addressing table:
// empties `hole` and re-packs the probe cluster after it so every surviving
// entry stays reachable from its home slot. `home_of(entry)` returns the
// entry's hash (pre-mask). The epoch-rollback paths use this to erase the
// tail entries of the dictionary and dedup tables without rebuilding them.
template <typename Entry, typename HomeFn>
void EraseTableSlot(std::vector<Entry>& table, size_t hole, HomeFn home_of) {
  const size_t mask = table.size() - 1;
  size_t j = hole;
  while (true) {
    j = (j + 1) & mask;
    Entry e = table[j];
    if (e == 0) break;
    // e can slide into the hole only when its home slot does not lie
    // (cyclically) between the hole and j — otherwise the move would put it
    // before its home and break its probe chain.
    size_t home = home_of(e) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      table[hole] = e;
      hole = j;
    }
  }
  table[hole] = 0;
}

}  // namespace

// --- ValueDict -------------------------------------------------------------

uint32_t ValueDict::Intern(Value v) {
  if (table_.empty()) table_.assign(kInitialTableSize, 0);
  size_t mask = table_.size() - 1;
  size_t h = Mix64(v.raw()) & mask;
  while (table_[h] != 0) {
    if (values_[table_[h] - 1] == v) return table_[h] - 1;
    h = (h + 1) & mask;
  }
  if (OverLoad(values_.size() + 1, table_.size())) {
    std::vector<uint32_t> bigger(table_.size() * 2, 0);
    size_t bmask = bigger.size() - 1;
    for (uint32_t code = 0; code < values_.size(); ++code) {
      size_t i = Mix64(values_[code].raw()) & bmask;
      while (bigger[i] != 0) i = (i + 1) & bmask;
      bigger[i] = code + 1;
    }
    table_.swap(bigger);
    mask = bmask;
    h = Mix64(v.raw()) & mask;
    while (table_[h] != 0) h = (h + 1) & mask;
  }
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.push_back(v);
  table_[h] = code + 1;
  return code;
}

uint32_t ValueDict::Find(Value v) const {
  if (table_.empty()) return kNoCode;
  size_t mask = table_.size() - 1;
  size_t h = Mix64(v.raw()) & mask;
  while (table_[h] != 0) {
    if (values_[table_[h] - 1] == v) return table_[h] - 1;
    h = (h + 1) & mask;
  }
  return kNoCode;
}

void ValueDict::TruncateTo(size_t n) {
  // A ranks cache built above the surviving prefix is poison: if the dict
  // later regrows to that exact size with different values, the size check
  // in Ranks() would wrongly accept it. Caches built at or below n still
  // either match exactly (same surviving values) or fail the size check.
  if (ranks_upto_ > n) ranks_upto_ = SIZE_MAX;
  while (values_.size() > n) {
    const uint32_t code = static_cast<uint32_t>(values_.size()) - 1;
    const size_t mask = table_.size() - 1;
    size_t h = Mix64(values_[code].raw()) & mask;
    while (table_[h] != code + 1) h = (h + 1) & mask;
    EraseTableSlot(table_, h, [this](uint32_t e) {
      return Mix64(values_[e - 1].raw());
    });
    values_.pop_back();
  }
}

const std::vector<uint32_t>& ValueDict::Ranks() const {
  if (ranks_upto_ != values_.size()) {
    std::vector<uint32_t> order(values_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return values_[a] < values_[b];
    });
    ranks_.resize(values_.size());
    for (uint32_t i = 0; i < order.size(); ++i) ranks_[order[i]] = i;
    ranks_upto_ = values_.size();
  }
  return ranks_;
}

// --- RelStore --------------------------------------------------------------

RelStore::RelStore(const RelStore& o)
    : dict_(o.dict_),
      arity_(o.arity_),
      rows_(o.rows_),
      has_empty_row_(o.has_empty_row_),
      cols_(o.cols_),
      dedup64_(o.dedup64_),
      dedup_(o.dedup_),
      indexes_(o.indexes_),
      overflow_(o.overflow_) {
  // A standalone store keeps its own dictionary; a Database-owned store is
  // re-pointed by Database's copy constructor after this runs.
  if (o.owned_ != nullptr) {
    owned_ = std::make_unique<ValueDict>(*o.owned_);
    dict_ = owned_.get();
  }
}

RelStore& RelStore::operator=(const RelStore& o) {
  if (this == &o) return *this;
  dict_ = o.dict_;
  owned_.reset();
  if (o.owned_ != nullptr) {
    owned_ = std::make_unique<ValueDict>(*o.owned_);
    dict_ = owned_.get();
  }
  arity_ = o.arity_;
  rows_ = o.rows_;
  has_empty_row_ = o.has_empty_row_;
  cols_ = o.cols_;
  dedup64_ = o.dedup64_;
  dedup_ = o.dedup_;
  indexes_ = o.indexes_;
  overflow_ = o.overflow_;
  return *this;
}

const std::vector<uint32_t>& RelStore::NoMatches() {
  static const std::vector<uint32_t>* kEmpty = new std::vector<uint32_t>();
  return *kEmpty;
}

ValueDict& RelStore::dict() {
  if (dict_ == nullptr) {
    owned_ = std::make_unique<ValueDict>();
    dict_ = owned_.get();
  }
  return *dict_;
}

void RelStore::InitColumns(size_t arity) {
  arity_ = static_cast<int>(arity);
  cols_.assign(arity, Column());
  code_scratch_.assign(arity, 0);
  // Probe indexes name column positions of the old arity; drop them. Only
  // reachable with zero rows, so nothing needs re-indexing.
  indexes_.clear();
  rows_ = 0;
  has_empty_row_ = false;
}

size_t RelStore::RowHash(const uint32_t* codes) const {
  return HashCodes(codes, static_cast<size_t>(arity_));
}

void RelStore::GrowDedupTable() {
  size_t new_size = dedup_.empty() ? kInitialTableSize : dedup_.size() * 2;
  std::vector<uint32_t> bigger(new_size, 0);
  size_t mask = new_size - 1;
  std::vector<uint32_t> codes(arity_);
  for (uint32_t r = 0; r < rows_; ++r) {
    for (int c = 0; c < arity_; ++c) codes[c] = cols_[c].codes[r];
    size_t h = RowHash(codes.data()) & mask;
    while (bigger[h] != 0) h = (h + 1) & mask;
    bigger[h] = r + 1;
  }
  dedup_.swap(bigger);
}

void RelStore::Grow64Table() {
  size_t new_size =
      dedup64_.empty() ? kInitialTableSize : dedup64_.size() * 2;
  std::vector<uint64_t> bigger(new_size, 0);
  size_t mask = new_size - 1;
  for (uint64_t key : dedup64_) {
    if (key == 0) continue;
    size_t h = Mix64(key) & mask;
    while (bigger[h] != 0) h = (h + 1) & mask;
    bigger[h] = key;
  }
  dedup64_.swap(bigger);
}

bool RelStore::InsertCodeRow(const uint32_t* codes) {
  if (arity_ == 0) {
    if (has_empty_row_) return false;
    has_empty_row_ = true;
    rows_ = 1;
    return true;
  }
  if (arity_ <= 2) {
    if (dedup64_.empty()) dedup64_.assign(kInitialTableSize, 0);
    uint64_t key = PackKey(codes, static_cast<uint32_t>(arity_));
    size_t mask = dedup64_.size() - 1;
    size_t h = Mix64(key) & mask;
    while (dedup64_[h] != 0) {
      if (dedup64_[h] == key) return false;
      h = (h + 1) & mask;
    }
    if (OverLoad(rows_ + 1, dedup64_.size())) {
      Grow64Table();
      mask = dedup64_.size() - 1;
      h = Mix64(key) & mask;
      while (dedup64_[h] != 0) h = (h + 1) & mask;
    }
    for (int c = 0; c < arity_; ++c) cols_[c].codes.push_back(codes[c]);
    dedup64_[h] = key;
    ++rows_;
    return true;
  }
  if (dedup_.empty()) dedup_.assign(kInitialTableSize, 0);
  size_t mask = dedup_.size() - 1;
  size_t h = RowHash(codes) & mask;
  while (dedup_[h] != 0) {
    if (RowEquals(dedup_[h] - 1, codes)) return false;
    h = (h + 1) & mask;
  }
  if (OverLoad(rows_ + 1, dedup_.size())) {
    GrowDedupTable();
    mask = dedup_.size() - 1;
    h = RowHash(codes) & mask;
    while (dedup_[h] != 0) h = (h + 1) & mask;
  }
  for (int c = 0; c < arity_; ++c) cols_[c].codes.push_back(codes[c]);
  dedup_[h] = rows_ + 1;
  ++rows_;
  return true;
}

bool RelStore::Insert(const Tuple& t) {
  if (arity_ < 0) {
    InitColumns(t.size());
  } else if (static_cast<int>(t.size()) != arity_) {
    if (size() == 0) {
      // A scratch store reused by a program that declares this relation at
      // a different arity: re-key the columns.
      InitColumns(t.size());
    } else {
      // Arity-mismatched straggler (schema-free Instance round-trip only).
      if (std::find(overflow_.begin(), overflow_.end(), t) != overflow_.end())
        return false;
      overflow_.push_back(t);
      return true;
    }
  }
  ValueDict& d = dict();
  code_scratch_.resize(t.size());
  for (size_t i = 0; i < t.size(); ++i) code_scratch_[i] = d.Intern(t[i]);
  return InsertCodeRow(code_scratch_.data());
}

void RelStore::InsertBatchCols(const uint32_t* const* col_ptrs, uint32_t arity,
                               size_t n, uint64_t* inserted,
                               uint64_t* rejected) {
  size_t i = 0;
  uint32_t buf[16];
  std::vector<uint32_t> wide_buf;
  uint32_t* row = buf;
  if (arity > 16) {
    wide_buf.resize(arity);
    row = wide_buf.data();
  }
  auto insert_one = [&](size_t j) {
    for (uint32_t c = 0; c < arity; ++c) row[c] = col_ptrs[c][j];
    if (InsertCodes(row, arity)) {
      ++*inserted;
    } else {
      ++*rejected;
    }
  };
  // The vector path wants a live packed-key table at a matching arity 1/2;
  // route rows through InsertCodes until its first insert establishes that
  // (and entirely, for arity 0 and wide rows — both off the hot path).
  while (i < n && (static_cast<int>(arity) != arity_ || arity - 1 > 1 ||
                   dedup64_.empty())) {
    insert_one(i++);
  }
  if (i == n) return;
  const size_t m = n - i;
  // Geometric growth (not exact reserve): repeated flushes would otherwise
  // reallocate-and-copy the columns once per batch. The whole batch fits
  // after this, so the loop below writes through raw pointers and commits
  // the final size once.
  for (uint32_t c = 0; c < arity; ++c) {
    std::vector<uint32_t>& codes = cols_[c].codes;
    if (codes.capacity() < rows_ + m) {
      codes.reserve(std::max(codes.capacity() * 2, rows_ + m));
    }
    codes.resize(rows_ + m);
  }

  batch_keys_.resize(m);
  batch_hashes_.resize(m);
  const uint32_t* c0 = col_ptrs[0] + i;
  if (arity == 1) {
    for (size_t j = 0; j < m; ++j) {
      batch_keys_[j] = static_cast<uint64_t>(c0[j]) + 1;
    }
  } else {
    const uint32_t* c1 = col_ptrs[1] + i;
    for (size_t j = 0; j < m; ++j) {
      batch_keys_[j] = ((static_cast<uint64_t>(c1[j]) << 32) | c0[j]) + 1;
    }
  }
  simd::Mix64Batch(batch_keys_.data(), m, batch_hashes_.data());

  // Two-phase probe: issue the bucket prefetches kAhead rows in front of
  // the in-order resolution, so the (random-access) dedup lines are already
  // in flight when the linear probe reaches them.
  constexpr size_t kAhead = 16;
  size_t mask = dedup64_.size() - 1;
  for (size_t j = 0; j < m && j < kAhead; ++j) {
    __builtin_prefetch(&dedup64_[batch_hashes_[j] & mask]);
  }
  uint32_t* out0 = cols_[0].codes.data();
  uint32_t* out1 = arity == 2 ? cols_[1].codes.data() : nullptr;
  const uint32_t* c1 = arity == 2 ? col_ptrs[1] + i : nullptr;
  uint32_t r = rows_;
  for (size_t j = 0; j < m; ++j) {
    if (j + kAhead < m) {
      __builtin_prefetch(&dedup64_[batch_hashes_[j + kAhead] & mask]);
    }
    const uint64_t key = batch_keys_[j];
    size_t h = batch_hashes_[j] & mask;
    bool dup = false;
    while (dedup64_[h] != 0) {
      if (dedup64_[h] == key) {
        dup = true;
        break;
      }
      h = (h + 1) & mask;
    }
    if (dup) {
      ++*rejected;
      continue;
    }
    // Grow exactly when the per-row path would (identical table sizes, no
    // duplicate-driven over-provisioning); growth re-buckets, so the slot is
    // re-found and any in-flight prefetches just go stale.
    if (OverLoad(r + 1, dedup64_.size())) {
      Grow64Table();
      mask = dedup64_.size() - 1;
      h = batch_hashes_[j] & mask;
      while (dedup64_[h] != 0) h = (h + 1) & mask;
    }
    out0[r] = c0[j];
    if (out1 != nullptr) out1[r] = c1[j];
    dedup64_[h] = key;
    ++r;
    ++*inserted;
  }
  rows_ = r;
  for (uint32_t c = 0; c < arity; ++c) cols_[c].codes.resize(rows_);
}

bool RelStore::InsertCodesSlow(const uint32_t* codes, uint32_t arity) {
  if (arity_ < 0) {
    InitColumns(arity);
  } else if (static_cast<int>(arity) != arity_) {
    if (size() == 0) {
      InitColumns(arity);
    } else {
      // Never reached from the evaluator (rule heads have fixed arity);
      // decode and take the general path for completeness.
      Tuple t;
      t.reserve(arity);
      for (uint32_t i = 0; i < arity; ++i) {
        t.push_back(dict_->ValueOf(codes[i]));
      }
      return Insert(t);
    }
  }
  return InsertCodeRow(codes);
}

bool RelStore::Contains(const Tuple& t) const {
  if (arity_ < 0) return false;
  if (static_cast<int>(t.size()) != arity_) {
    return std::find(overflow_.begin(), overflow_.end(), t) !=
           overflow_.end();
  }
  if (arity_ == 0) return has_empty_row_;
  if (rows_ == 0) return false;
  // Stack buffer: evaluator relations are small-arity.
  uint32_t codes[16];
  std::vector<uint32_t> big;
  uint32_t* key = codes;
  if (arity_ > 16) {
    big.resize(arity_);
    key = big.data();
  }
  for (int c = 0; c < arity_; ++c) {
    uint32_t code = dict_->Find(t[c]);
    if (code == kNoCode) return false;
    key[c] = code;
  }
  if (arity_ <= 2) {
    if (dedup64_.empty()) return false;
    uint64_t packed = PackKey(key, static_cast<uint32_t>(arity_));
    size_t mask = dedup64_.size() - 1;
    size_t h = Mix64(packed) & mask;
    while (dedup64_[h] != 0) {
      if (dedup64_[h] == packed) return true;
      h = (h + 1) & mask;
    }
    return false;
  }
  if (dedup_.empty()) return false;
  size_t mask = dedup_.size() - 1;
  size_t h = RowHash(key) & mask;
  while (dedup_[h] != 0) {
    if (RowEquals(dedup_[h] - 1, key)) return true;
    h = (h + 1) & mask;
  }
  return false;
}

void RelStore::clear() {
  rows_ = 0;
  has_empty_row_ = false;
  overflow_.clear();
  // The dictionary persists across clear (scratch reuse re-interns
  // nothing); only the row codes go.
  for (Column& col : cols_) col.codes.clear();
  std::fill(dedup64_.begin(), dedup64_.end(), 0);
  std::fill(dedup_.begin(), dedup_.end(), 0);
  for (MaskIndex& mi : indexes_) {
    mi.upto = 0;
    for (std::vector<uint32_t>& rows : mi.direct) rows.clear();
    std::fill(mi.table.begin(), mi.table.end(), 0);
    mi.key_arena.clear();
    mi.bucket_rows.clear();
  }
}

void RelStore::TruncateRows(uint32_t target) {
  if (arity_ <= 0) {
    if (target == 0) {
      rows_ = 0;
      has_empty_row_ = false;
    }
    return;
  }
  if (target >= rows_) return;
  uint32_t key[16];
  std::vector<uint32_t> wide(arity_ > 2 ? arity_ : 0);
  // Descending order keeps two invariants the per-row unwind relies on:
  // the row being removed is the tail of every index bucket that saw it,
  // and the dedup home-slot recomputation only reads rows that still exist.
  for (uint32_t r = rows_; r-- > target;) {
    for (MaskIndex& mi : indexes_) {
      if (mi.upto <= r) continue;
      if (mi.cols.size() == 1) {
        mi.direct[cols_[mi.cols[0]].codes[r]].pop_back();
      } else {
        const size_t k = mi.cols.size();
        for (size_t i = 0; i < k; ++i) key[i] = cols_[mi.cols[i]].codes[r];
        const size_t tmask = mi.table.size() - 1;
        size_t h = HashCodes(key, k) & tmask;
        while (true) {
          const uint32_t e = mi.table[h];
          const uint32_t* bkey = &mi.key_arena[(e - 1) * k];
          if (std::equal(bkey, bkey + k, key)) {
            mi.bucket_rows[e - 1].pop_back();  // empty buckets may linger
            break;
          }
          h = (h + 1) & tmask;
        }
      }
    }
    if (arity_ <= 2) {
      const uint32_t row_codes[2] = {cols_[0].codes[r],
                                     arity_ == 2 ? cols_[1].codes[r] : 0};
      const uint64_t packed = PackKey(row_codes, static_cast<uint32_t>(arity_));
      const size_t mask = dedup64_.size() - 1;
      size_t h = Mix64(packed) & mask;
      while (dedup64_[h] != packed) h = (h + 1) & mask;
      EraseTableSlot(dedup64_, h, [](uint64_t e) { return Mix64(e); });
    } else {
      const size_t mask = dedup_.size() - 1;
      for (int c = 0; c < arity_; ++c) wide[c] = cols_[c].codes[r];
      size_t h = RowHash(wide.data()) & mask;
      while (dedup_[h] != r + 1) h = (h + 1) & mask;
      EraseTableSlot(dedup_, h, [this, &wide](uint32_t e) {
        for (int c = 0; c < arity_; ++c) wide[c] = cols_[c].codes[e - 1];
        return RowHash(wide.data());
      });
    }
    for (Column& col : cols_) col.codes.pop_back();
    --rows_;
  }
  for (MaskIndex& mi : indexes_) mi.upto = std::min(mi.upto, rows_);
}

void RelStore::RollbackTo(const Mark& m) {
  if (arity_ != m.arity) {
    // The arity changed during the epoch — only possible from an empty
    // store (first insert or scratch re-keying), so the mark holds no rows
    // and rollback is a reset to an empty shell at the marked arity.
    clear();
    if (m.arity >= 0) {
      InitColumns(static_cast<size_t>(m.arity));
    } else {
      arity_ = -1;
      cols_.clear();
      indexes_.clear();
      code_scratch_.clear();
    }
    return;
  }
  overflow_.resize(m.overflow);  // overflow is append-only
  if (arity_ <= 0) {
    rows_ = m.rows;
    has_empty_row_ = m.has_empty;
    return;
  }
  TruncateRows(m.rows);
}

Tuple RelStore::KeyOf(const Tuple& t, uint32_t mask) {
  Tuple key;
  for (size_t i = 0; i < t.size(); ++i) {
    if (mask & (1u << i)) key.push_back(t[i]);
  }
  return key;
}

RelStore::MaskIndex& RelStore::IndexFor(uint32_t mask) {
  for (MaskIndex& mi : indexes_) {
    if (mi.mask == mask) return mi;
  }
  indexes_.push_back(MaskIndex{});
  MaskIndex& index = indexes_.back();
  index.mask = mask;
  for (uint32_t i = 0; i < static_cast<uint32_t>(arity_); ++i) {
    if (mask & (1u << i)) index.cols.push_back(i);
  }
  return index;
}

void RelStore::ExtendIndex(MaskIndex& index) {
  if (index.cols.size() == 1) {
    // Single-column probe: a direct array indexed by code — no hashing on
    // the hottest join paths.
    const std::vector<uint32_t>& codes = cols_[index.cols[0]].codes;
    if (index.direct.size() < dict_->size()) {
      index.direct.resize(dict_->size());
    }
    for (uint32_t r = index.upto; r < rows_; ++r) {
      index.direct[codes[r]].push_back(r);
    }
    index.upto = rows_;
    return;
  }
  const size_t k = index.cols.size();
  uint32_t key[16];
  for (uint32_t r = index.upto; r < rows_; ++r) {
    // Pack the key codes of row r and find-or-add its bucket.
    for (size_t i = 0; i < k; ++i) key[i] = cols_[index.cols[i]].codes[r];
    if (OverLoad(index.bucket_rows.size() + 1, index.table.size())) {
      size_t new_size =
          index.table.empty() ? kInitialTableSize : index.table.size() * 2;
      index.table.assign(new_size, 0);
      size_t tmask = new_size - 1;
      for (uint32_t b = 0; b < index.bucket_rows.size(); ++b) {
        size_t h = HashCodes(&index.key_arena[b * k], k) & tmask;
        while (index.table[h] != 0) h = (h + 1) & tmask;
        index.table[h] = b + 1;
      }
    }
    size_t tmask = index.table.size() - 1;
    size_t h = HashCodes(key, k) & tmask;
    uint32_t bucket = 0;
    while (true) {
      uint32_t e = index.table[h];
      if (e == 0) {
        bucket = static_cast<uint32_t>(index.bucket_rows.size());
        index.table[h] = bucket + 1;
        index.key_arena.insert(index.key_arena.end(), key, key + k);
        index.bucket_rows.emplace_back();
        break;
      }
      const uint32_t* bkey = &index.key_arena[(e - 1) * k];
      if (std::equal(bkey, bkey + k, key)) {
        bucket = e - 1;
        break;
      }
      h = (h + 1) & tmask;
    }
    index.bucket_rows[bucket].push_back(r);
  }
  index.upto = rows_;
}

const std::vector<uint32_t>& RelStore::Probe(uint32_t mask, const Tuple& key) {
  if (arity_ <= 0 || rows_ == 0) return NoMatches();
  code_scratch_.resize(key.size());
  for (size_t i = 0; i < key.size(); ++i) {
    uint32_t code = dict_->Find(key[i]);
    if (code == kNoCode) return NoMatches();
    code_scratch_[i] = code;
  }
  return ProbeCodes(mask, code_scratch_.data());
}

const std::vector<uint32_t>& RelStore::ProbeCodes(uint32_t mask,
                                                  const uint32_t* codes) {
  if (arity_ <= 0 || rows_ == 0) return NoMatches();
  MaskIndex& index = IndexFor(mask);
  if (index.upto < rows_) ExtendIndex(index);
  return ProbePrepared(index, codes);
}

const RelStore::MaskIndex& RelStore::PrepareProbe(uint32_t mask) {
  MaskIndex& index = IndexFor(mask);
  if (index.upto < rows_) ExtendIndex(index);
  return index;
}

// --- Database --------------------------------------------------------------

Database::Database() : dict_(std::make_unique<ValueDict>()) {}

Database::Database(const Instance& instance) : Database() {
  instance.ForEachFact(
      [&](uint32_t name, const Tuple& t) { Insert(name, t); });
}

Database::Database(const Database& o)
    : dict_(std::make_unique<ValueDict>(*o.dict_)),
      rels_(o.rels_),
      epochs_(o.epochs_),
      last_(o.last_.load(std::memory_order_relaxed)) {
  for (auto& [name, store] : rels_) store.BindDict(dict_.get());
}

Database& Database::operator=(const Database& o) {
  if (this == &o) return *this;
  dict_ = std::make_unique<ValueDict>(*o.dict_);
  rels_ = o.rels_;
  epochs_ = o.epochs_;
  last_.store(o.last_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  for (auto& [name, store] : rels_) store.BindDict(dict_.get());
  return *this;
}

Database::Database(Database&& o) noexcept
    : dict_(std::move(o.dict_)),
      rels_(std::move(o.rels_)),
      epochs_(std::move(o.epochs_)),
      last_(o.last_.load(std::memory_order_relaxed)) {}

Database& Database::operator=(Database&& o) noexcept {
  if (this == &o) return *this;
  dict_ = std::move(o.dict_);
  rels_ = std::move(o.rels_);
  epochs_ = std::move(o.epochs_);
  last_.store(o.last_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  return *this;
}

RelStore* Database::Find(uint32_t rel) const {
  const size_t cached = last_.load(std::memory_order_relaxed);
  if (cached < rels_.size() && rels_[cached].first == rel) {
    return const_cast<RelStore*>(&rels_[cached].second);
  }
  for (size_t i = 0; i < rels_.size(); ++i) {
    if (rels_[i].first == rel) {
      last_.store(i, std::memory_order_relaxed);
      return const_cast<RelStore*>(&rels_[i].second);
    }
  }
  return nullptr;
}

RelStore* Database::FindOrCreate(uint32_t rel) {
  RelStore* store = Find(rel);
  if (store != nullptr) return store;
  rels_.emplace_back(rel, RelStore());
  last_.store(rels_.size() - 1, std::memory_order_relaxed);
  store = &rels_.back().second;
  store->BindDict(dict_.get());
  return store;
}

bool Database::Insert(uint32_t rel, const Tuple& t) {
  return FindOrCreate(rel)->Insert(t);
}

bool Database::InsertCodes(uint32_t rel, const uint32_t* codes,
                           uint32_t arity) {
  return FindOrCreate(rel)->InsertCodes(codes, arity);
}

size_t Database::size() const {
  size_t n = 0;
  for (const auto& [name, store] : rels_) n += store.size();
  return n;
}

void Database::EnsureStores(const std::vector<uint32_t>& rels) {
  for (uint32_t rel : rels) (void)FindOrCreate(rel);
}

bool Database::Contains(uint32_t rel, const Tuple& t) const {
  const RelStore* store = Find(rel);
  return store != nullptr && store->Contains(t);
}

RelStore* Database::Store(uint32_t rel) { return Find(rel); }

void Database::Reset() {
  for (auto& [name, store] : rels_) store.clear();
}

void Database::BeginEpoch() {
  EpochFrame f;
  f.dict_size = dict_->size();
  f.rel_count = rels_.size();
  f.marks.reserve(rels_.size());
  for (auto& [name, store] : rels_) f.marks.push_back(store.MarkNow());
  epochs_.push_back(std::move(f));
}

void Database::RollbackEpoch() {
  EpochFrame& f = epochs_.back();
  // Stores created during the epoch are a suffix (FindOrCreate appends).
  rels_.resize(f.rel_count);
  for (size_t i = 0; i < f.rel_count; ++i) {
    rels_[i].second.RollbackTo(f.marks[i]);
  }
  dict_->TruncateTo(f.dict_size);
  last_.store(0, std::memory_order_relaxed);
  epochs_.pop_back();
}

Instance Database::ToInstance(const Schema* restrict_to) const {
  Instance out;
  std::vector<Tuple> rows;
  std::vector<std::pair<uint64_t, uint32_t>> keyed;
  std::vector<uint32_t> order;
  std::vector<uint32_t> slots;
  for (const auto& [name, store] : rels_) {
    if (store.size() == 0) continue;
    uint32_t want = 0;
    if (restrict_to != nullptr) {
      want = restrict_to->ArityOf(name);
      if (want == 0) continue;  // relation not in the schema
    }
    const bool cols_admitted =
        restrict_to == nullptr || static_cast<int>(want) == store.arity();
    rows.clear();
    if (store.overflow_count() == 0) {
      if (!cols_admitted) continue;
      const uint32_t n = store.row_count();
      const int a = store.arity();
      rows.reserve(n);
      if (a == 0) {
        rows.emplace_back();
      } else if (a <= 2) {
        // Rows sort by a packed u64 of dictionary ranks: rank order equals
        // Value order per position, so the integer sort yields exactly the
        // lexicographic Tuple order — no Tuple comparisons, no Value loads.
        // Ranks are dense (< dict size) and rows are deduplicated, so when
        // the packed rank space is small the "sort" is direct placement
        // into a rank-indexed table (each key occupied at most once), and
        // emission is a walk of the occupied slots in key order.
        const std::vector<uint32_t>& rank = dict_->Ranks();
        const uint64_t nd = dict_->size();
        const uint64_t buckets = a == 1 ? nd : nd * nd;
        // Materialization is inlined against the raw column pointers (rather
        // than going through MaterializeRow) — this loop is the hottest part
        // of output building and the per-row call shows up at this scale.
        const uint32_t* col0 = store.ColumnData(0);
        const uint32_t* col1 = a == 2 ? store.ColumnData(1) : nullptr;
        auto emit_row = [&](uint32_t r) {
          rows.emplace_back();
          Tuple& t = rows.back();
          t.push_back(dict_->ValueOf(col0[r]));
          if (col1 != nullptr) t.push_back(dict_->ValueOf(col1[r]));
        };
        if (buckets <= 65536) {
          constexpr uint32_t kEmpty = UINT32_MAX;
          slots.assign(buckets, kEmpty);
          for (uint32_t r = 0; r < n; ++r) {
            uint64_t key = a == 1 ? rank[col0[r]]
                                  : rank[col0[r]] * nd + rank[col1[r]];
            slots[key] = r;
          }
          for (uint64_t key = 0; key < buckets; ++key) {
            uint32_t r = slots[key];
            if (r != kEmpty) emit_row(r);
          }
        } else {
          keyed.clear();
          keyed.reserve(n);
          for (uint32_t r = 0; r < n; ++r) {
            uint64_t key = a == 1 ? rank[col0[r]]
                                  : (uint64_t{rank[col0[r]]} << 32) |
                                        rank[col1[r]];
            keyed.emplace_back(key, r);
          }
          std::sort(keyed.begin(), keyed.end());
          for (const auto& [key, r] : keyed) emit_row(r);
        }
      } else {
        const std::vector<uint32_t>& rank = dict_->Ranks();
        order.resize(n);
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
          for (int c = 0; c < a; ++c) {
            uint32_t rx = rank[store.CodeAt(x, c)];
            uint32_t ry = rank[store.CodeAt(y, c)];
            if (rx != ry) return rx < ry;
          }
          return false;
        });
        for (uint32_t r : order) {
          rows.emplace_back();
          store.MaterializeRow(r, &rows.back());
        }
      }
      out.InsertSortedUnique(name, std::move(rows));
    } else {
      // Mixed arities (schema-free round-trips only): materialize, filter,
      // and sort by Tuple — same per-fact rule as Instance::Restrict.
      store.ForEachTuple([&](const Tuple& t) {
        if (restrict_to == nullptr || t.size() == want) rows.push_back(t);
      });
      std::sort(rows.begin(), rows.end());
      out.InsertSorted(name, rows);
    }
  }
  return out;
}

}  // namespace calm::datalog
