#include "datalog/compiled.h"

#include <climits>
#include <cstddef>
#include <set>

namespace calm::datalog {

CompiledRule RuleCompiler::Compile(const Rule& rule, bool reorder_joins) {
  slots_.clear();
  CompiledRule out;
  std::vector<const Atom*> ordered = OrderAtoms(rule, reorder_joins);
  out.pos.reserve(ordered.size());
  for (const Atom* a : ordered) out.pos.push_back(CompileAtom(*a));
  out.head = CompileAtom(rule.head);
  for (const Atom& a : rule.neg) out.neg.push_back(CompileAtom(a));

  // For each slot, the first pos atom index (1-based "after matching") at
  // which it is bound.
  std::vector<size_t> bound_after(slots_.size(), 0);
  std::vector<bool> seen(slots_.size(), false);
  for (size_t i = 0; i < out.pos.size(); ++i) {
    for (int s : out.pos[i].slots) {
      if (s >= 0 && !seen[s]) {
        seen[s] = true;
        bound_after[s] = i + 1;
      }
    }
  }
  for (const auto& [l, r] : rule.ineqs) {
    CompiledIneq ci;
    size_t ready = 0;
    if (l.is_var()) {
      ci.left_slot = SlotOf(l.var);
      ready = std::max(ready, bound_after[ci.left_slot]);
    } else {
      ci.left_const = l.constant;
    }
    if (r.is_var()) {
      ci.right_slot = SlotOf(r.var);
      ready = std::max(ready, bound_after[ci.right_slot]);
    } else {
      ci.right_const = r.constant;
    }
    ci.ready_after = ready;
    out.ineqs.push_back(ci);
  }
  out.slot_count = slots_.size();
  return out;
}

std::vector<const Atom*> RuleCompiler::OrderAtoms(const Rule& rule,
                                                  bool reorder_joins) {
  std::vector<const Atom*> out;
  out.reserve(rule.pos.size());
  if (!reorder_joins) {
    for (const Atom& a : rule.pos) out.push_back(&a);
    return out;
  }
  std::vector<const Atom*> remaining;
  for (const Atom& a : rule.pos) remaining.push_back(&a);
  std::set<uint32_t> bound;
  while (!remaining.empty()) {
    size_t best = 0;
    int best_bound = -1;
    int best_new = INT_MAX;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int bound_positions = 0;
      std::set<uint32_t> fresh;
      for (const Term& t : remaining[i]->args) {
        if (!t.is_var() || bound.count(t.var) > 0) {
          ++bound_positions;
        } else {
          fresh.insert(t.var);
        }
      }
      int new_vars = static_cast<int>(fresh.size());
      if (bound_positions > best_bound ||
          (bound_positions == best_bound && new_vars < best_new)) {
        best = i;
        best_bound = bound_positions;
        best_new = new_vars;
      }
    }
    const Atom* chosen = remaining[best];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
    for (const Term& t : chosen->args) {
      if (t.is_var()) bound.insert(t.var);
    }
    out.push_back(chosen);
  }
  return out;
}

int RuleCompiler::SlotOf(uint32_t var) {
  auto [it, inserted] = slots_.emplace(var, static_cast<int>(slots_.size()));
  return it->second;
}

CompiledAtom RuleCompiler::CompileAtom(const Atom& atom) {
  CompiledAtom out;
  out.relation = atom.relation;
  out.invents = atom.invents;
  out.slots.reserve(atom.args.size());
  out.constants.resize(atom.args.size());
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    if (t.is_var()) {
      out.slots.push_back(SlotOf(t.var));
    } else {
      out.slots.push_back(-1);
      out.constants[i] = t.constant;
    }
  }
  return out;
}

}  // namespace calm::datalog
