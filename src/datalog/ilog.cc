#include "datalog/ilog.h"

#include <cstdio>
#include <cstdlib>

#include "datalog/parser.h"
#include "datalog/stratifier.h"

namespace calm::datalog {

Result<std::set<uint32_t>> InventionRelations(const Program& program) {
  std::set<uint32_t> inventing;
  std::set<uint32_t> plain;
  for (const Rule& r : program.rules) {
    (r.head.invents ? inventing : plain).insert(r.head.relation);
  }
  for (uint32_t rel : inventing) {
    if (plain.count(rel) > 0) {
      return InvalidArgumentError("relation '" + NameOf(rel) +
                                  "' has both inventing and plain rules");
    }
  }
  return inventing;
}

std::set<std::pair<uint32_t, uint32_t>> UnsafePositions(
    const Program& program, const std::set<uint32_t>& invention_relations) {
  std::set<std::pair<uint32_t, uint32_t>> unsafe;
  for (uint32_t rel : invention_relations) unsafe.emplace(rel, 1);

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      const Atom& head = rule.head;
      for (const Atom& body : rule.pos) {
        for (size_t i = 0; i < body.args.size(); ++i) {
          // Body atoms never carry the `*`, so position i+1 is args[i].
          if (!body.args[i].is_var()) continue;
          if (unsafe.count({body.relation,
                            static_cast<uint32_t>(i + 1)}) == 0) {
            continue;
          }
          uint32_t var = body.args[i].var;
          for (size_t j = 0; j < head.args.size(); ++j) {
            if (head.args[j].is_var() && head.args[j].var == var) {
              uint32_t head_pos =
                  static_cast<uint32_t>(j + 1 + (head.invents ? 1 : 0));
              if (unsafe.emplace(head.relation, head_pos).second) {
                changed = true;
              }
            }
          }
        }
      }
    }
  }
  return unsafe;
}

bool IsWeaklySafe(const Program& program,
                  const std::set<uint32_t>& invention_relations) {
  std::set<std::pair<uint32_t, uint32_t>> unsafe =
      UnsafePositions(program, invention_relations);
  for (const auto& [rel, pos] : unsafe) {
    if (program.output_relations.count(rel) > 0) return false;
  }
  return true;
}

Result<IlogQuery> IlogQuery::Create(Program program, std::string name,
                                    EvalOptions options) {
  IlogQuery q;
  // Analyze, stratify, and compile exactly once (invention allowed); Eval
  // only runs the prepared form.
  CALM_ASSIGN_OR_RETURN(
      PreparedProgram prepared,
      PreparedProgram::Prepare(program, options, /*allow_invention=*/true));
  q.prepared_ = std::make_shared<const PreparedProgram>(std::move(prepared));
  const ProgramInfo& info = q.prepared_->info();
  CALM_ASSIGN_OR_RETURN(std::set<uint32_t> inventing,
                        InventionRelations(program));
  if (!IsWeaklySafe(program, inventing)) {
    return InvalidArgumentError(
        "ILOG¬ program is not weakly safe: an output relation has an unsafe "
        "position (invented values could leak into the output)");
  }
  q.fragment_ = ClassifyFragment(program, info);
  CALM_ASSIGN_OR_RETURN(q.output_schema_, OutputSchema(program, info));
  if (q.output_schema_.empty()) {
    return InvalidArgumentError("ILOG¬ program has no output relations");
  }
  for (const RelationDecl& r : info.edb.relations()) {
    if (r.name == AdomRelation()) continue;
    CALM_RETURN_IF_ERROR(q.input_schema_.AddRelation(r));
  }
  q.program_ = std::move(program);
  q.name_ = std::move(name);
  return q;
}

IlogQuery IlogQuery::FromTextOrDie(std::string_view text, std::string name,
                                   EvalOptions options) {
  Result<Program> program = Parse(text);
  if (!program.ok()) {
    std::fprintf(stderr, "IlogQuery parse error: %s\n",
                 program.status().ToString().c_str());
    std::abort();
  }
  Result<IlogQuery> q =
      Create(std::move(program).value(), std::move(name), options);
  if (!q.ok()) {
    std::fprintf(stderr, "IlogQuery invalid program: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

Result<Instance> IlogQuery::EvalSeeded(
    std::initializer_list<const Instance*> parts) const {
  CALM_ASSIGN_OR_RETURN(
      Instance out,
      prepared_->EvalParts(parts, &input_schema_, &output_schema_));
  // Weak safety guarantees invention-free output; verify defensively.
  bool clean = true;
  out.ForEachFact([&](uint32_t, const Tuple& t) {
    for (Value v : t) {
      if (v.is_invented()) clean = false;
    }
  });
  if (!clean) {
    return InternalError("weakly safe program emitted an invented value");
  }
  return out;
}

Result<Instance> IlogQuery::Eval(const Instance& input) const {
  return EvalSeeded({&input});
}

Result<Instance> IlogQuery::EvalUnion(const Instance& a,
                                      const Instance& b) const {
  return EvalSeeded({&a, &b});
}

}  // namespace calm::datalog
