#ifndef CALM_DATALOG_SNAPSHOT_H_
#define CALM_DATALOG_SNAPSHOT_H_

#include <string>

#include "base/status.h"
#include "datalog/relstore.h"

// ---------------------------------------------------------------------------
// Durable Database snapshots (see DESIGN.md, "Durability and crash
// recovery"): one atomic record file (base/durable.h, client tag
// "calm.snapshot") holding the ValueDict in code order followed by every
// relation's SoA code columns in creation order.
//
// Process independence: symbol Values and relation ids are process-local
// interned ids (base/value.h), so both travel as name strings and re-intern
// on load. Dictionary codes, by contrast, are Database-local and dense in
// interning order — the loader re-interns the dictionary values in exactly
// that order into a fresh Database, which reproduces every code assignment,
// and then replays the code rows verbatim.
//
// Restore fidelity: the loaded database contains exactly the original's
// relations (in creation order), dictionary (in code order), rows (in
// insertion order), and overflow rows. Dedup tables are rebuilt by the
// replay, probe indexes are rebuilt lazily on first probe, and epoch marks
// are reset (snapshots require EpochDepth() == 0). The pinned invariant is
// snapshot idempotence: re-snapshotting a loaded database produces a
// byte-identical file.
//
// Torn files: Commit publishes atomically, so a torn snapshot can only come
// from outside interference (or a crashed copy). Load detects any
// truncation — mid-record via the per-record CRCs, at record granularity
// via an explicit trailer — and fails without constructing a database.
// ---------------------------------------------------------------------------

namespace calm::datalog {

// Serializes `db` to `path` with write -> fsync -> rename -> dirsync.
// Requires no open epoch (kFailedPrecondition otherwise).
Status WriteSnapshot(const Database& db, const std::string& path);

// Loads the snapshot at `path` into a fresh Database. kNotFound when the
// file is missing; kInvalidArgument when it is foreign, version-skewed,
// truncated, or fails a checksum.
Result<Database> LoadSnapshot(const std::string& path);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_SNAPSHOT_H_
