#ifndef CALM_DATALOG_BYTECODE_H_
#define CALM_DATALOG_BYTECODE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "base/fact.h"
#include "base/value.h"
#include "datalog/compiled.h"
#include "datalog/evaluator.h"
#include "datalog/relstore.h"

namespace calm::datalog {

// Skolem-term hash-consing shared by both engines (Section 5.2): identical
// derivations reuse one invented value, and numbering follows
// first-derivation order — so two engines that enumerate derivations in the
// same order invent byte-identical values.
class InventionTable {
 public:
  Value GetOrCreate(uint32_t relation, const Tuple& args) {
    auto [it, inserted] =
        table_.emplace(std::make_pair(relation, args), Value());
    if (inserted) it->second = Value::Invented(next_id_++);
    return it->second;
  }
  size_t size() const { return table_.size(); }

 private:
  std::map<std::pair<uint32_t, Tuple>, Value> table_;
  uint64_t next_id_ = 0;
};

// --- Flat bytecode --------------------------------------------------------
//
// One rule compiles to a flat sequence of join ops (one per positive body
// atom, in the compiled join order) plus a trailing emit step; selections,
// projections, inequality filters, and negation anti-probes are attached to
// the op at which they become evaluable. Execution is batch-at-a-time: a
// level of frames (slot vectors) is expanded through each op over the
// columnar store, so the inner loops are flat array walks instead of the
// tree matcher's recursion. Expanding frames in order and appending matches
// in row order makes the breadth-first leaf order equal the tree matcher's
// depth-first enumeration — the derivation streams are identical, which the
// differential harness (tests/engine_diff_test.cc) pins.
//
// Frames hold dictionary codes, not Values: the owning Database's shared
// ValueDict makes code equality coincide with value equality, so joins,
// residual checks, and inequality filters (all pure (in)equality) never
// touch a Value. Rule constants are pooled per program (const_id indexes
// BytecodeProgram::const_pool) and interned once per evaluation by the
// executor; Values reappear only at the edges — negation anti-probes
// against a foreign database and Skolem invention.

// Where a value comes from: a frame slot (slot >= 0) or a pooled constant.
struct ValueSrc {
  int slot = -1;
  uint32_t const_id = 0;  // index into BytecodeProgram::const_pool
};

// One probe-key position: the column it constrains and its value source.
struct KeySrc {
  uint16_t col = 0;
  int slot = -1;  // >= 0: frame slot; < 0: pooled constant
  uint32_t const_id = 0;
};

struct IneqCheck {
  ValueSrc left, right;
};

struct JoinOp {
  uint32_t relation = 0;
  uint32_t mask = 0;  // bound-position mask; 0 = full scan
  std::vector<KeySrc> key;  // masked positions, ascending column order
  // Free positions binding new slots: (column, slot).
  std::vector<std::pair<uint16_t, uint16_t>> loads;
  // Within-atom repeated variables / residual selections: the row's value
  // at `col` must equal the (just-bound) frame slot.
  std::vector<std::pair<uint16_t, uint16_t>> checks;
  // Inequalities whose variables are all bound once this atom matched.
  std::vector<IneqCheck> ineqs;
};

struct NegCheck {
  uint32_t relation = 0;
  std::vector<ValueSrc> args;
};

struct RuleBytecode {
  std::vector<JoinOp> ops;
  // Inequalities over constants only (ready_after == 0): evaluated once per
  // rule evaluation, before any emission.
  std::vector<IneqCheck> const_ineqs;
  std::vector<NegCheck> negs;
  uint32_t head_relation = 0;
  bool head_invents = false;
  std::vector<ValueSrc> head;
  uint32_t slot_count = 0;
  // Fused emission plan, set when the last op fully determines the head
  // (no negation, no invention, and the last op carries no residual checks
  // or inequalities): each head code comes straight from the parent frame
  // (kSlot), the matched row (kCol), or the pool (kConst) — no child frame
  // is materialized at all.
  struct FusedSrc {
    enum : uint8_t { kSlot, kCol, kConst };
    uint8_t kind = kSlot;
    uint16_t idx = 0;
  };
  bool fused = false;
  std::vector<FusedSrc> fused_head;
};

// A compiled stratum/program: the rules plus the deduplicated constant pool
// their const_ids index. Immutable after compilation; shared across threads.
struct BytecodeProgram {
  std::vector<RuleBytecode> rules;
  std::vector<Value> const_pool;
};

// Compiles the slot-form rules (datalog/compiled.h) to bytecode. Pure
// translation: join order, binding structure, and check placement are
// exactly the tree matcher's, just decided once instead of per tuple.
// `pool` accumulates the rule's constants (deduplicated).
RuleBytecode CompileRuleBytecode(const CompiledRule& rule,
                                 std::vector<Value>* pool);
BytecodeProgram CompileBytecode(const std::vector<CompiledRule>& rules);

// Observability tallies with tree-matcher parity: one probe per frame on an
// indexed atom, hits = rows the probe returned (delta-filtered when the
// atom is the semi-naive site), plus the round's insert/dedup outcomes
// (derivations insert as they are emitted; see the visibility note below).
struct ExecCounters {
  uint64_t probes = 0;
  uint64_t probe_hits = 0;
  uint64_t inserted = 0;
  uint64_t rejected = 0;      // duplicate derivations
  uint64_t applications = 0;  // EvalStats::rule_applications contribution
};

// Frame buffers persisted across evaluations (thread-local in the fixpoint
// driver's scratch), so steady-state rule evaluation allocates nothing —
// including the batch-kernel staging areas below, which grow to their
// high-water mark once and are reused by every subsequent rule.
struct BytecodeScratch {
  std::vector<uint32_t> cur, next;
  std::vector<uint32_t> child, head;
  Tuple tuple;
  // Fused-path block staging: row-major probe keys and the resolved hit
  // lists for one block of scan rows (built ahead, prefetched, then
  // resolved — see EvalScanProbeFused).
  std::vector<uint32_t> block_keys;
  std::vector<const std::vector<uint32_t>*> block_hits;
  // Deferred head emissions, one column per head position, flushed through
  // RelStore::InsertBatchCols.
  std::vector<std::vector<uint32_t>> emit_cols;
  // Vectorized scan prefilter output (surviving row indices).
  std::vector<uint32_t> prefilter;
};

class BytecodeExecutor {
 public:
  static constexpr size_t kNoDelta = static_cast<size_t>(-1);

  // Interns the program's constant pool into `db`'s dictionary, so rule
  // constants live in the same code space as the stored rows.
  //
  // `growing` and `ranges` (both owned by the fixpoint driver, parallel
  // vectors) define the round's visibility horizon: derivations insert into
  // `db` immediately during Eval, and rounds stay semantically isolated
  // because every scan and probe of a growing relation is bounded to rows
  // below ranges[g].second — the relation's row count at the start of the
  // round. The driver advances the ranges between rounds.
  BytecodeExecutor(const BytecodeProgram& program, Database* db,
                   const Database* negation_db,
                   const std::vector<uint32_t>* growing,
                   const std::vector<std::pair<uint32_t, uint32_t>>* ranges,
                   EvalStats* stats, InventionTable* invention,
                   ExecCounters* counters, BytecodeScratch* scratch);

  // Evaluates one rule, inserting head derivations into the database in
  // tree-matcher order. When `delta_index` names a positive atom, that atom
  // ranges over rows [delta_lo, delta_hi) of its relation's store instead
  // of the full store (row-range semi-naive: the delta is a contiguous
  // row slice of the main store, so no second delta store is maintained).
  void Eval(const RuleBytecode& rule, size_t delta_index, uint32_t delta_lo,
            uint32_t delta_hi);

  // Redirects head emissions into `sink` (one code column per head
  // position, appended in emission order) instead of inserting into the
  // database. Applications are still counted; inserted/rejected are not —
  // the morsel driver decides those when it merges the sink serially
  // through InsertBatchCols. Only valid for rules without invention.
  // Pass nullptr to restore direct insertion.
  void SetSink(std::vector<std::vector<uint32_t>>* sink) { sink_ = sink; }

 private:
  // The exclusive row bound visible to this round for `rel`, and whether
  // the relation is a growing one (grows_out).
  uint32_t Horizon(uint32_t rel, const RelStore& store,
                   bool* grows_out) const {
    for (size_t g = 0; g < growing_->size(); ++g) {
      if ((*growing_)[g] == rel) {
        *grows_out = true;
        return (*ranges_)[g].second;
      }
    }
    *grows_out = false;
    return store.row_count();
  }

  // Last-op fast path: joins the final atom's row into a stack frame and,
  // if it survives, runs negation checks and emits the head row straight
  // into the database — no intermediate frame level.
  // `store` is null only for bodyless rules (op has no loads/checks).
  void EmitRow(const RuleBytecode& rule, const JoinOp& op,
               const RelStore* store, uint32_t row, const uint32_t* parent,
               size_t stride, bool emit_ok);

  // Whole-rule fast path for the dominant shape (e.g. transitive closure):
  // a fused two-op rule whose first op is an unfiltered scan and whose
  // second is an indexed probe. Runs scan → probe → emit as one nested loop
  // over the columns, materializing no frames at all. Returns false (having
  // done nothing) when the shape doesn't map cleanly; the caller then runs
  // the general batch loop.
  bool EvalScanProbeFused(const RuleBytecode& rule, size_t delta_index,
                          uint32_t delta_lo, uint32_t delta_hi, bool emit_ok);

  // Vectorized scan prefilter: folds the op's in-atom repeated-variable
  // checks and row-local inequalities (both sides constant or bound by this
  // op's own loads) into one SIMD pass over [begin, end), leaving the
  // surviving row indices in scratch_->prefilter. Returns false (and filters
  // nothing) when no predicate is row-local.
  bool BuildScanPrefilter(const JoinOp& op, const RelStore& store,
                          uint32_t begin, uint32_t end,
                          const uint32_t** rows_out, size_t* n_out);

  // Per-Eval anti-probe plan, one entry per rule.negs entry: the negation
  // check stays in code space (ContainsCodes on the store, with bucket
  // prefetching) when the anti-probe target shares db_'s dictionary and the
  // store's columnar shape matches; otherwise it decodes to Values and goes
  // through Database::Contains exactly as before.
  struct NegPlan {
    const RelStore* store = nullptr;
    bool code_ok = false;
  };
  void BuildNegPlan(const RuleBytecode& rule);

  Database* db_;
  const Database* negation_db_;
  const std::vector<uint32_t>* growing_;
  const std::vector<std::pair<uint32_t, uint32_t>>* ranges_;
  EvalStats* stats_;
  InventionTable* invention_;
  ExecCounters* counters_;
  BytecodeScratch* scratch_;
  const std::vector<Value>* pool_;
  std::vector<uint32_t> const_codes_;  // const_id -> code in db_'s dict
  std::vector<std::vector<uint32_t>>* sink_ = nullptr;
  std::vector<NegPlan> neg_plan_;
  std::vector<uint32_t> neg_codes_;  // staged code-space anti-probe keys
  // The current rule's head store, resolved once per Eval. Non-null because
  // the driver pre-creates every growing (head) relation's store
  // (Database::EnsureStores), which also pins it against reallocation.
  RelStore* head_store_ = nullptr;
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_BYTECODE_H_
