#ifndef CALM_DATALOG_PARSER_H_
#define CALM_DATALOG_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "datalog/ast.h"

namespace calm::datalog {

// Parses a Datalog¬ program in conventional syntax:
//
//   % comment (also //)
//   T(x, y)  :- R(x, y), !S(y), x != y.
//   Win(x)   :- Move(x, y), !Win(y).
//   R2(*, x) :- E(x, y).                  % ILOG invention atom
//   .output T, Win                        % mark output relations
//
// Conventions:
//   * Any identifier in an argument position is a variable.
//   * Constants are integers (42) or quoted symbols ("a").
//   * Negated body atoms are written with `!` or `not`.
//   * Inequalities are written `t1 != t2`.
//   * If no `.output` directive appears, the relation named "O" (if any rule
//     defines it) is the output, matching the paper's convention.
//
// Parsing performs only syntactic checks; use Validate / analysis for
// well-formedness (safety, arity consistency, stratifiability).
Result<Program> Parse(std::string_view text);

// Parses or aborts; convenience for tests and statically known programs.
Program ParseOrDie(std::string_view text);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_PARSER_H_
