#include "datalog/stratifier.h"

namespace calm::datalog {

Result<Stratification> Stratify(const Program& program,
                                const ProgramInfo& info) {
  Stratification strat;
  std::vector<RelationDecl> idb = info.idb.relations();
  if (idb.empty()) return strat;

  for (const RelationDecl& r : idb) strat.stratum_of[r.name] = 1;

  // Classic iterative lifting: stratum(to) >= stratum(from) (+1 if negative).
  // If any stratum exceeds |idb|, there is a cycle through negation.
  const uint32_t limit = static_cast<uint32_t>(idb.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ProgramInfo::Edge& e : info.idb_edges) {
      uint32_t need = strat.stratum_of[e.from] + (e.negative ? 1 : 0);
      uint32_t& cur = strat.stratum_of[e.to];
      if (cur < need) {
        cur = need;
        if (cur > limit) {
          return FailedPreconditionError(
              "program is not syntactically stratifiable: dependency cycle "
              "through negation involves '" +
              NameOf(e.to) + "'");
        }
        changed = true;
      }
    }
  }

  for (auto [name, s] : strat.stratum_of) {
    strat.stratum_count = std::max(strat.stratum_count, s);
  }
  strat.rules_per_stratum.assign(strat.stratum_count, {});
  for (size_t i = 0; i < program.rules.size(); ++i) {
    uint32_t s = strat.stratum_of[program.rules[i].head.relation];
    strat.rules_per_stratum[s - 1].push_back(i);
  }
  return strat;
}

bool IsStratifiable(const Program& program, const ProgramInfo& info) {
  return Stratify(program, info).ok();
}

}  // namespace calm::datalog
