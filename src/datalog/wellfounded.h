#ifndef CALM_DATALOG_WELLFOUNDED_H_
#define CALM_DATALOG_WELLFOUNDED_H_

#include <initializer_list>

#include "base/instance.h"
#include "base/status.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/prepared.h"

namespace calm::datalog {

// The three-valued well-founded model of a Datalog¬ program, computed by the
// alternating fixpoint: Gamma(S) is the least fixpoint of the program with
// negated atoms evaluated against the fixed set S; the sequence
// lo := Gamma(hi), hi := Gamma(lo) converges to the true / possible sets.
// For stratifiable programs this coincides with the stratified semantics
// (property-tested).
struct WellFoundedModel {
  Instance definitely;  // true facts (includes the input facts)
  Instance possibly;    // true or undefined facts; superset of `definitely`

  // Facts that are undefined (possibly \ definitely).
  Instance Undefined() const {
    return Instance::Difference(possibly, definitely);
  }
};

// Computes the well-founded model. Works for arbitrary (safe) Datalog¬
// programs, stratifiable or not (e.g. win-move).
Result<WellFoundedModel> EvaluateWellFounded(const Program& program,
                                             const Instance& input,
                                             const EvalOptions& options = {});

// Prepared form: `prepared` must come from PreparedProgram::
// PrepareFixedNegation. The input is the set union of `parts` (optionally
// pre-restricted to `pre_restrict`); the seed database is built once and
// reused across every Gamma call of the alternation instead of re-restricting
// and re-compiling per call.
Result<WellFoundedModel> EvaluateWellFounded(
    const PreparedProgram& prepared,
    std::initializer_list<const Instance*> parts,
    const Schema* pre_restrict = nullptr);

// The "doubled program" transformation (paper's conclusion): given a
// Datalog¬ program P over predicates R, produces a *stratifiable* program
// over duplicated predicates whose stratified evaluation computes the
// alternating fixpoint of P. Each idb predicate R gets an under-approximation
// R_lo and an over-approximation R_hi; the returned program has 2*k strata
// for k alternation steps and is mainly used to cross-validate
// EvaluateWellFounded and to show that connected Datalog under the
// well-founded semantics stays within Mdisjoint. `steps` bounds the number
// of alternation rounds (enough rounds = exact on inputs whose alternation
// converges within them; ConvergedWithin checks this).
struct DoubledProgram {
  Program program;
  // Name of the lo/hi copy of relation `rel` at alternation round `round`.
  static std::string LoName(const std::string& rel, size_t round);
  static std::string HiName(const std::string& rel, size_t round);
};
DoubledProgram BuildDoubledProgram(const Program& program,
                                   const ProgramInfo& info, size_t steps);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_WELLFOUNDED_H_
