#ifndef CALM_DATALOG_RELSTORE_H_
#define CALM_DATALOG_RELSTORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/fact.h"
#include "base/instance.h"

namespace calm::datalog {

namespace detail {

// True when `used` entries exceed ~0.7 load of `table_size`.
inline bool OverLoad(size_t used, size_t table_size) {
  return used * 10 > table_size * 7;
}

// splitmix64 finalizer: raw Values and dense codes are near-sequential, so
// identity hashing would cluster badly under linear probing.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashCodes(const uint32_t* codes, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ n;
  for (size_t i = 0; i < n; ++i) h = Mix64(h ^ codes[i]);
  return h;
}

}  // namespace detail

// Database-wide value dictionary: every value that enters any store of one
// Database is interned here exactly once, to a dense u32 code. Sharing one
// code space across all columns is what lets the bytecode engine run joins
// entirely in code space — a frame slot's code can key any column's probe
// index and compare against any other slot without touching a Value.
//
// The dictionary only ever grows (codes are stable for the lifetime of the
// Database; Reset keeps it), so scratch databases reused across millions of
// checker evaluations re-intern nothing they have seen before.
class ValueDict {
 public:
  static constexpr uint32_t kNoCode = UINT32_MAX;

  // The code of `v`, interning it if new.
  uint32_t Intern(Value v);
  // The code of `v`, or kNoCode when it was never interned.
  uint32_t Find(Value v) const;

  Value ValueOf(uint32_t code) const { return values_[code]; }
  size_t size() const { return values_.size(); }

  // rank[code] positions each code in Value-sorted order: rank[a] < rank[b]
  // iff ValueOf(a) < ValueOf(b). Cached; rebuilt only after the dictionary
  // grew. This is what lets ToInstance sort rows by integer rank keys
  // instead of comparing Tuples.
  const std::vector<uint32_t>& Ranks() const;

  // Drops every code >= `n` (epoch rollback): codes are assigned densely in
  // interning order, so the values interned during an epoch are exactly the
  // tail of `values_`. Their hash-table slots are erased with backward-shift
  // deletion, so surviving codes keep their assignments and stay reachable.
  // Invalidates the ranks cache when it was built above the surviving
  // prefix — otherwise a later regrowth to the same size with different
  // values would pass the rebuild check in Ranks() and sort rows by the
  // previous epoch's value order.
  void TruncateTo(size_t n);

 private:
  std::vector<Value> values_;   // code -> value
  // Open-addressing table: entries are code+1, 0 = empty. Power-of-two
  // size, linear probing, grown at ~0.7 load.
  std::vector<uint32_t> table_;
  mutable std::vector<uint32_t> ranks_;
  mutable size_t ranks_upto_ = 0;  // values_.size() the cache was built at
};

// Evaluation-time storage for one relation, column-major (SoA): one
// dictionary-interned code column per attribute, all columns sharing the
// owning Database's ValueDict. Each column is a flat vector of codes in
// insertion order, which the fixpoint drivers rely on for deterministic
// matching. Row identity (the probe currency of both engines) is the
// insertion index.
//
// Deduplication runs over code rows in a flat open-addressing table, and
// probe indexes are keyed on bound-position masks — a single-column mask
// resolves through a direct array indexed by code (no hashing at all on the
// hottest join probes), while multi-column masks hash the packed code key.
// The dictionary and index shells survive clear(), so scratch reuse across
// fixpoint rounds and evaluations re-interns nothing.
//
// A store's arity is fixed by its first insert. Tuples of a different arity
// (possible only through schema-free Instance round-trips, never through the
// evaluator, which seeds through SchemaAdmits) are kept in a small row-major
// overflow side table: they participate in Contains/size/ForEachTuple but
// are not probe-indexed.
//
// A store inside a Database shares the Database's dictionary (BindDict); a
// standalone store (unit tests) lazily owns a private one.
class RelStore {
 public:
  static constexpr uint32_t kNoCode = ValueDict::kNoCode;

  RelStore() = default;
  RelStore(const RelStore& o);
  RelStore& operator=(const RelStore& o);
  RelStore(RelStore&&) = default;
  RelStore& operator=(RelStore&&) = default;

  // Points this store at a shared dictionary. Only valid while the store is
  // empty (Database binds at store creation) or when `dict` holds the exact
  // code assignments the rows were built with (Database's copy constructor
  // re-points stores at the copied dictionary).
  void BindDict(ValueDict* dict) { dict_ = dict; }

  // Inserts `t` if new; returns whether it was inserted.
  bool Insert(const Tuple& t);

  // Inserts a row given directly as dictionary codes (the bytecode engine's
  // emission path — no Value is touched). `codes` length is `arity`. The
  // fast paths — matching arity, live dedup table, no growth needed — are
  // inline; everything else (first insert, arity mismatch, table growth)
  // takes the out-of-line slow path. Arity 1 and 2 dedup against a packed
  // u64 key set (one cache access per attempt, no row compare); wider rows
  // hash into a row-indexed table compared column-wise.
  bool InsertCodes(const uint32_t* codes, uint32_t arity) {
    if (static_cast<int>(arity) == arity_) {
      if (arity - 1 <= 1 && !dedup64_.empty()) {  // arity 1 or 2
        uint64_t key = PackKey(codes, arity);
        size_t mask = dedup64_.size() - 1;
        size_t h = detail::Mix64(key) & mask;
        while (dedup64_[h] != 0) {
          if (dedup64_[h] == key) return false;
          h = (h + 1) & mask;
        }
        if (!detail::OverLoad(rows_ + 1, dedup64_.size())) {
          cols_[0].codes.push_back(codes[0]);
          if (arity == 2) cols_[1].codes.push_back(codes[1]);
          dedup64_[h] = key;
          ++rows_;
          return true;
        }
      } else if (arity > 2 && !dedup_.empty()) {
        size_t mask = dedup_.size() - 1;
        size_t h = detail::HashCodes(codes, arity) & mask;
        while (dedup_[h] != 0) {
          if (RowEquals(dedup_[h] - 1, codes)) return false;
          h = (h + 1) & mask;
        }
        if (!detail::OverLoad(rows_ + 1, dedup_.size())) {
          for (uint32_t c = 0; c < arity; ++c) {
            cols_[c].codes.push_back(codes[c]);
          }
          dedup_[h] = rows_ + 1;
          ++rows_;
          return true;
        }
      }
    }
    return InsertCodesSlow(codes, arity);
  }

  // Batched code-row insertion, columns given separately (SoA): row j is
  // (col_ptrs[0][j], .., col_ptrs[arity-1][j]). Semantically identical to
  // calling InsertCodes row by row in order — same dedup outcomes, same
  // insertion order — but arity-1/2 batches hash all keys up front
  // (simd::Mix64Batch), prefetch the dedup buckets ahead of resolution, and
  // pre-grow the table once so no rehash lands mid-batch. The bytecode
  // engine's deferred-emission flush and the morsel-merge path live here.
  // Attempt outcomes accumulate into `*inserted` / `*rejected`.
  void InsertBatchCols(const uint32_t* const* col_ptrs, uint32_t arity,
                       size_t n, uint64_t* inserted, uint64_t* rejected);

  bool Contains(const Tuple& t) const;

  // Code-space membership test: `codes` are this store's dictionary codes.
  // Only meaningful when the columnar arity equals `arity` (>= 1) and there
  // are no overflow rows — the negation anti-probe checks those conditions
  // once per rule evaluation and falls back to the Value-space Contains
  // otherwise.
  bool ContainsCodes(const uint32_t* codes, uint32_t arity) const {
    if (arity <= 2) {
      if (dedup64_.empty()) return false;
      const uint64_t key = PackKey(codes, arity);
      const size_t mask = dedup64_.size() - 1;
      size_t h = detail::Mix64(key) & mask;
      while (dedup64_[h] != 0) {
        if (dedup64_[h] == key) return true;
        h = (h + 1) & mask;
      }
      return false;
    }
    if (dedup_.empty()) return false;
    const size_t mask = dedup_.size() - 1;
    size_t h = detail::HashCodes(codes, arity) & mask;
    while (dedup_[h] != 0) {
      if (RowEquals(dedup_[h] - 1, codes)) return true;
      h = (h + 1) & mask;
    }
    return false;
  }

  // Prefetch hint for the dedup bucket ContainsCodes(codes, arity) would
  // probe — issue it a few rows ahead of the anti-probe itself.
  void PrefetchContains(const uint32_t* codes, uint32_t arity) const {
    if (arity <= 2) {
      if (!dedup64_.empty()) {
        __builtin_prefetch(
            &dedup64_[detail::Mix64(PackKey(codes, arity)) &
                      (dedup64_.size() - 1)]);
      }
    } else if (!dedup_.empty()) {
      __builtin_prefetch(
          &dedup_[detail::HashCodes(codes, arity) & (dedup_.size() - 1)]);
    }
  }

  // Number of distinct tuples (main columns + overflow).
  size_t size() const { return rows_ + overflow_.size(); }
  // Columnar rows only (excludes overflow).
  uint32_t row_count() const { return rows_; }
  size_t overflow_count() const { return overflow_.size(); }

  // Arity of the columnar rows; -1 until the first insert.
  int arity() const { return arity_; }

  // Distinct values interned in the dictionary this store writes through
  // (the Database-wide dictionary when bound).
  size_t DictSize() const { return dict_ == nullptr ? 0 : dict_->size(); }

  // Drops all rows but keeps the dictionary, the dedup table, and the probe
  // index shells allocated (delta/scratch reuse across fixpoint rounds and
  // evaluations).
  void clear();

  // Returns indices of rows whose positions in `mask` equal `key` (the
  // values of the masked positions in ascending position order). The index
  // for `mask` is built on first probe and extended incrementally over rows
  // inserted since. Row indices come back in ascending (insertion) order.
  const std::vector<uint32_t>& Probe(uint32_t mask, const Tuple& key);

  // As Probe, with the key already as dictionary codes (ascending
  // masked-column order). The bytecode executor's form.
  const std::vector<uint32_t>& ProbeCodes(uint32_t mask,
                                          const uint32_t* codes);

  // One probe index, exposed as an opaque handle for the prepared-probe
  // path. Single-column masks use `direct` (code -> rows); multi-column
  // masks use the packed-key hash table.
  struct MaskIndex {
    uint32_t mask = 0;
    uint32_t upto = 0;  // rows [0, upto) are indexed
    std::vector<uint32_t> cols;
    std::vector<std::vector<uint32_t>> direct;
    std::vector<uint32_t> table;  // bucket-index+1, 0 = empty
    std::vector<uint32_t> key_arena;  // cols.size() codes per bucket
    std::vector<std::vector<uint32_t>> bucket_rows;
  };

  // Splits ProbeCodes for per-op amortization: PrepareProbe resolves and
  // extends the index once, ProbePrepared then runs one lookup per frame.
  // The handle stays valid until the next insert-triggered reallocation of
  // `indexes_` is impossible — callers must not hold it across PrepareProbe
  // calls for a different mask on the same store.
  const MaskIndex& PrepareProbe(uint32_t mask);
  const std::vector<uint32_t>& ProbePrepared(const MaskIndex& index,
                                             const uint32_t* codes) const {
    const size_t k = index.cols.size();
    if (k == 1) {
      if (codes[0] >= index.direct.size()) return NoMatches();
      return index.direct[codes[0]];
    }
    if (index.table.empty()) return NoMatches();
    size_t tmask = index.table.size() - 1;
    size_t h = detail::HashCodes(codes, k) & tmask;
    while (true) {
      uint32_t e = index.table[h];
      if (e == 0) return NoMatches();
      const uint32_t* bkey = &index.key_arena[(e - 1) * k];
      if (std::equal(bkey, bkey + k, codes)) return index.bucket_rows[e - 1];
      h = (h + 1) & tmask;
    }
  }

  // Prefetch hint for the cache line ProbePrepared(index, codes) reads
  // first — callers batching N probe keys issue these ahead, then resolve.
  void PrefetchPrepared(const MaskIndex& index, const uint32_t* codes) const {
    if (index.cols.size() == 1) {
      if (codes[0] < index.direct.size()) {
        __builtin_prefetch(index.direct.data() + codes[0]);
      }
      return;
    }
    if (index.table.empty()) return;
    __builtin_prefetch(
        index.table.data() +
        (detail::HashCodes(codes, index.cols.size()) &
         (index.table.size() - 1)));
  }

  static Tuple KeyOf(const Tuple& t, uint32_t mask);

  // --- epoch rollback --------------------------------------------------------

  // A snapshot of the store's logical extent. Rows are append-only, so a
  // mark is just counters: rolling back means truncating every structure to
  // the marked sizes (no per-row undo log).
  struct Mark {
    int arity = -1;
    uint32_t rows = 0;
    uint32_t overflow = 0;
    bool has_empty = false;
  };

  Mark MarkNow() const {
    return Mark{arity_, rows_, static_cast<uint32_t>(overflow_.size()),
                has_empty_row_};
  }

  // Restores the store to the state captured by `m`: rows inserted since
  // are removed from the columns, the dedup tables (backward-shift deletion
  // keeps the probe chains intact), and every mask index that indexed them.
  // Requires that rows [0, m.rows) were not mutated since the mark — the
  // append-only invariant every insert path maintains.
  void RollbackTo(const Mark& m);

  // Removes rows [target, row_count()) — the row-level primitive RollbackTo
  // and the incremental evaluator's stratum re-derivation both use. Probe
  // indexes stay built (their tails are popped row by row), dedup entries
  // are erased with backward-shift deletion, and the dictionary is
  // untouched (codes may now be unreferenced; Database-level rollback
  // truncates the dictionary separately).
  void TruncateRows(uint32_t target);

  // --- columnar row access (the engines' inner loops) ---

  // Value at (row, col); row must be < row_count().
  Value At(uint32_t row, uint32_t col) const {
    return dict_->ValueOf(cols_[col].codes[row]);
  }
  uint32_t CodeAt(uint32_t row, uint32_t col) const {
    return cols_[col].codes[row];
  }

  // Raw base pointer of one code column (the batch kernels' form of CodeAt).
  // Invalidated by any insert into this store — callers re-fetch after every
  // batch flush that might target it.
  const uint32_t* ColumnData(uint32_t col) const {
    return cols_[col].codes.data();
  }

  // Materializes columnar row `row` into `out` (cleared first).
  void MaterializeRow(uint32_t row, Tuple* out) const {
    out->clear();
    out->reserve(cols_.size());
    for (const Column& col : cols_) {
      out->push_back(dict_->ValueOf(col.codes[row]));
    }
  }

  // The arity-mismatched overflow rows, in insertion order (the snapshot
  // serializer; everything else reaches them through ForEachTuple).
  const std::vector<Tuple>& OverflowRows() const { return overflow_; }

  // Snapshot restore only: keys an empty store's columns at `arity` exactly
  // as the first insert would, without inserting a row. A no-op once the
  // store is keyed — replayed inserts must already match.
  void RestoreArity(uint32_t arity) {
    if (arity_ < 0) InitColumns(arity);
  }

  // Snapshot restore only: appends `t` to the overflow side table verbatim.
  // Insert would instead re-key an empty store to t's arity; the serializer
  // guarantees `t` mismatches the restored arity and is not a duplicate.
  void RestoreOverflow(Tuple t) { overflow_.push_back(std::move(t)); }

  // Invokes fn(const Tuple&) for every stored tuple: columnar rows in
  // insertion order, then overflow rows.
  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    Tuple scratch;
    for (uint32_t r = 0; r < rows_; ++r) {
      MaterializeRow(r, &scratch);
      fn(scratch);
    }
    for (const Tuple& t : overflow_) fn(t);
  }

 private:
  struct Column {
    std::vector<uint32_t> codes;  // row -> code (shared dictionary)
  };

  static const std::vector<uint32_t>& NoMatches();

  // Arity-1/2 dedup key. +1 keeps 0 free as the empty-slot sentinel; codes
  // are dense dictionary indexes, so UINT32_MAX (kNoCode) is never stored
  // and the increment cannot wrap.
  static uint64_t PackKey(const uint32_t* codes, uint32_t arity) {
    uint64_t k = arity == 2
                     ? (static_cast<uint64_t>(codes[1]) << 32) | codes[0]
                     : codes[0];
    return k + 1;
  }

  ValueDict& dict();
  void InitColumns(size_t arity);
  void GrowDedupTable();
  void Grow64Table();
  size_t RowHash(const uint32_t* codes) const;
  bool RowEquals(uint32_t row, const uint32_t* codes) const {
    for (int c = 0; c < arity_; ++c) {
      if (cols_[c].codes[row] != codes[c]) return false;
    }
    return true;
  }
  bool InsertCodeRow(const uint32_t* codes);
  bool InsertCodesSlow(const uint32_t* codes, uint32_t arity);
  MaskIndex& IndexFor(uint32_t mask);
  void ExtendIndex(MaskIndex& index);

  ValueDict* dict_ = nullptr;          // shared (Database) or owned_.get()
  std::unique_ptr<ValueDict> owned_;   // standalone stores only
  int arity_ = -1;
  uint32_t rows_ = 0;
  bool has_empty_row_ = false;  // arity-0 stores hold at most one row
  std::vector<Column> cols_;
  // Open-addressing dedup tables, power-of-two size, linear probing, grown
  // at ~0.7 load. Arity 1/2 rows dedup against packed keys (dedup64_,
  // entries are PackKey values, 0 = empty); wider rows against row indexes
  // (dedup_, entries are row+1, 0 = empty) compared column-wise.
  std::vector<uint64_t> dedup64_;
  std::vector<uint32_t> dedup_;
  std::vector<MaskIndex> indexes_;  // few masks per store; linear scan
  std::vector<uint32_t> code_scratch_;
  // InsertBatchCols scratch (packed keys and their hashes), kept allocated
  // across batches. Batch insertion is a single-writer operation, so member
  // scratch is safe — morsel lanes never insert, only the serial merge does.
  std::vector<uint64_t> batch_keys_;
  std::vector<uint64_t> batch_hashes_;
  std::vector<Tuple> overflow_;  // arity-mismatched stragglers
};

// The per-relation stores of one evaluation, all interning through one
// shared ValueDict. Relations are kept in a small flat vector (programs
// have a handful of relations); lookups linear-scan with a
// most-recently-used cache. Copyable, so a prepared seed database can be
// reused across the well-founded alternation's Gamma calls (the copy owns a
// deep copy of the dictionary with identical code assignments).
class Database {
 public:
  Database();
  explicit Database(const Instance& instance);
  Database(const Database& o);
  Database& operator=(const Database& o);
  Database(Database&& o) noexcept;
  Database& operator=(Database&& o) noexcept;

  bool Insert(uint32_t rel, const Tuple& t);
  // Code-row insert (bytecode emission path).
  bool InsertCodes(uint32_t rel, const uint32_t* codes, uint32_t arity);
  bool Contains(uint32_t rel, const Tuple& t) const;

  // Pre-creates empty stores for `rels`. The direct-insert evaluator holds
  // RelStore pointers across inserts into the round's head relations; with
  // those stores pre-created, no mid-evaluation insert can reallocate the
  // relation table under them.
  void EnsureStores(const std::vector<uint32_t>& rels);

  // The store for `rel`, or nullptr when no fact of `rel` was inserted.
  RelStore* Store(uint32_t rel);
  const RelStore* Store(uint32_t rel) const { return Find(rel); }

  ValueDict& dict() { return *dict_; }
  const ValueDict& dict() const { return *dict_; }

  // Total tuple count, summed over the stores (relations are few; callers
  // check this per fixpoint round, not per insert — inserts that bypass the
  // Database wrapper and go straight to a store stay accounted for).
  size_t size() const;

  // Empties every store but keeps the relation entries, the dictionary, and
  // allocated tables — the scratch-reuse hook for repeated evaluations.
  // Must not be called while an epoch is open.
  void Reset();

  // --- epochs ----------------------------------------------------------------
  //
  // An epoch marks the current extent of every store and of the dictionary;
  // rolling it back truncates everything inserted since — rows, interned
  // values, stores created during the epoch — in O(inserted-delta), leaving
  // the database byte-for-byte equivalent in behavior to the marked state.
  // Epochs nest (a stack); every path that grows the database is
  // append-only, which is what makes a mark a handful of counters instead
  // of an undo log. The incremental checker path pushes each overlay J as
  // one epoch and pops it after the delta evaluation.

  void BeginEpoch();
  void RollbackEpoch();
  size_t EpochDepth() const { return epochs_.size(); }

  // Invokes fn(relation_id, const RelStore&) for every relation entry —
  // including empty stores — in creation order. Creation order is what the
  // snapshot serializer preserves, so a restored database probes its
  // relation table in the same order as the original.
  template <typename Fn>
  void ForEachStore(Fn&& fn) const {
    for (const auto& [name, store] : rels_) fn(name, store);
  }

  // Materializes the database as an Instance; with `restrict_to`, only facts
  // admitted by that schema (the Instance::Restrict rule) are emitted, so
  // callers that restrict anyway skip the intermediate full instance.
  // Per-relation rows are sorted by dictionary rank (integer keys, no Tuple
  // comparisons) and moved into the Instance in bulk.
  Instance ToInstance(const Schema* restrict_to = nullptr) const;

 private:
  // One open epoch: the sizes everything rolls back to. Stores created
  // after BeginEpoch are a suffix of `rels_` (FindOrCreate appends), so
  // `rel_count` alone identifies them.
  struct EpochFrame {
    size_t dict_size = 0;
    size_t rel_count = 0;
    std::vector<RelStore::Mark> marks;  // parallel to rels_[0, rel_count)
  };

  RelStore* Find(uint32_t rel) const;
  RelStore* FindOrCreate(uint32_t rel);

  std::unique_ptr<ValueDict> dict_;  // heap: address stable across moves
  std::vector<std::pair<uint32_t, RelStore>> rels_;
  std::vector<EpochFrame> epochs_;
  // MRU index into rels_. Atomic (relaxed) because morsel lanes call Find
  // concurrently during a parallel stratum round; the cache is only a hint,
  // so any interleaving of the relaxed loads/stores stays correct.
  mutable std::atomic<size_t> last_{0};
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_RELSTORE_H_
