#ifndef CALM_DATALOG_RELSTORE_H_
#define CALM_DATALOG_RELSTORE_H_

#include <cstdint>
#include <vector>

#include "base/fact.h"
#include "base/instance.h"

namespace calm::datalog {

// Evaluation-time storage for one relation: a tuple vector (insertion order,
// which the fixpoint drivers rely on for deterministic matching) with a flat
// open-addressing dedup table and lazily built, incrementally extended hash
// indexes keyed on bound-position masks. Everything is index-based — no
// per-tuple or per-node heap allocation on the hot path (the old
// unordered_set/std::map representation allocated a node per insert).
class RelStore {
 public:
  RelStore() = default;

  // Inserts `t` if new; returns whether it was inserted.
  bool Insert(const Tuple& t);

  bool Contains(const Tuple& t) const;

  // Tuples in insertion order.
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  // Drops all tuples but keeps the allocated capacity (delta reuse across
  // fixpoint rounds).
  void clear();

  // Returns indices of tuples whose positions in `mask` equal `key` (the
  // values of the masked positions in ascending position order). The index
  // for `mask` is built on first probe and extended incrementally over
  // tuples inserted since.
  const std::vector<uint32_t>& Probe(uint32_t mask, const Tuple& key);

  static Tuple KeyOf(const Tuple& t, uint32_t mask);

 private:
  struct Bucket {
    Tuple key;
    std::vector<uint32_t> rows;
  };
  // One probe index: open-addressing table of bucket-index+1 entries over
  // the distinct keys for this mask.
  struct MaskIndex {
    uint32_t mask = 0;
    uint32_t upto = 0;  // tuples_[0, upto) are indexed
    std::vector<uint32_t> table;
    std::vector<Bucket> buckets;
  };

  static const std::vector<uint32_t>& NoMatches();

  void GrowDedupTable();
  Bucket* FindOrAddBucket(MaskIndex& index, const Tuple& key);
  const Bucket* FindBucket(const MaskIndex& index, const Tuple& key) const;

  std::vector<Tuple> tuples_;
  // Open-addressing dedup table: entries are tuple-index+1, 0 = empty.
  // Power-of-two size, linear probing, grown at ~0.7 load.
  std::vector<uint32_t> dedup_;
  std::vector<MaskIndex> indexes_;  // few masks per store; linear scan
};

// The per-relation stores of one evaluation. Relations are kept in a small
// flat vector (programs have a handful of relations); lookups linear-scan
// with a most-recently-used cache. Copyable, so a prepared seed database can
// be reused across the well-founded alternation's Gamma calls.
class Database {
 public:
  Database() = default;
  explicit Database(const Instance& instance);

  bool Insert(uint32_t rel, const Tuple& t);
  bool Contains(uint32_t rel, const Tuple& t) const;

  // The store for `rel`, or nullptr when no fact of `rel` was inserted.
  RelStore* Store(uint32_t rel);

  size_t size() const { return size_; }

  // Empties every store but keeps the relation entries and their allocated
  // tables — the scratch-reuse hook for repeated evaluations.
  void Reset();

  // Materializes the database as an Instance; with `restrict_to`, only facts
  // admitted by that schema (the Instance::Restrict rule) are emitted, so
  // callers that restrict anyway skip the intermediate full instance.
  Instance ToInstance(const Schema* restrict_to = nullptr) const;

 private:
  RelStore* Find(uint32_t rel) const;

  std::vector<std::pair<uint32_t, RelStore>> rels_;
  size_t size_ = 0;
  mutable size_t last_ = 0;  // MRU index into rels_
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_RELSTORE_H_
