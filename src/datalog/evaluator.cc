#include "datalog/evaluator.h"

#include <atomic>
#include <cstdlib>

#include "datalog/prepared.h"

// One-shot entry points: prepare, run once, discard. Callers that evaluate a
// program repeatedly should hold a PreparedProgram (datalog/prepared.h) —
// DatalogQuery/IlogQuery and the transducers do — so analysis,
// stratification, and rule compilation are paid once instead of per call.

namespace calm::datalog {

namespace {

EvalEngine EnvEngine() {
  const char* env = std::getenv("CALM_ENGINE");
  if (env != nullptr && std::string_view(env) == "tree") {
    return EvalEngine::kTree;
  }
  return EvalEngine::kBytecode;
}

std::atomic<EvalEngine>& GlobalEngine() {
  static std::atomic<EvalEngine> engine{EnvEngine()};
  return engine;
}

IncrementalMode EnvIncremental() {
  const char* env = std::getenv("CALM_INCREMENTAL");
  if (env != nullptr &&
      (std::string_view(env) == "off" || std::string_view(env) == "0")) {
    return IncrementalMode::kOff;
  }
  return IncrementalMode::kOn;
}

std::atomic<IncrementalMode>& GlobalIncremental() {
  static std::atomic<IncrementalMode> mode{EnvIncremental()};
  return mode;
}

int EnvEvalThreads() {
  const char* env = std::getenv("CALM_EVAL_THREADS");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

std::atomic<int>& GlobalEvalThreads() {
  static std::atomic<int> threads{EnvEvalThreads()};
  return threads;
}

}  // namespace

EvalEngine DefaultEvalEngine() {
  return GlobalEngine().load(std::memory_order_relaxed);
}

void SetDefaultEvalEngine(EvalEngine engine) {
  GlobalEngine().store(
      engine == EvalEngine::kDefault ? EnvEngine() : engine,
      std::memory_order_relaxed);
}

Result<EvalEngine> ParseEvalEngine(std::string_view name) {
  if (name == "tree") return EvalEngine::kTree;
  if (name == "bytecode") return EvalEngine::kBytecode;
  return InvalidArgumentError("unknown engine (want tree|bytecode): " +
                              std::string(name));
}

IncrementalMode DefaultIncrementalMode() {
  return GlobalIncremental().load(std::memory_order_relaxed);
}

void SetDefaultIncrementalMode(IncrementalMode mode) {
  GlobalIncremental().store(
      mode == IncrementalMode::kDefault ? EnvIncremental() : mode,
      std::memory_order_relaxed);
}

Result<IncrementalMode> ParseIncrementalMode(std::string_view name) {
  if (name == "on") return IncrementalMode::kOn;
  if (name == "off") return IncrementalMode::kOff;
  return InvalidArgumentError("unknown incremental mode (want on|off): " +
                              std::string(name));
}

int DefaultEvalThreads() {
  return GlobalEvalThreads().load(std::memory_order_relaxed);
}

void SetDefaultEvalThreads(int n) {
  GlobalEvalThreads().store(n > 0 ? n : EnvEvalThreads(),
                            std::memory_order_relaxed);
}

Json EvalStatsToJson(const EvalStats& stats) {
  Json out = Json::Object();
  out.Set("derived_facts", Json::Uint(stats.derived_facts));
  out.Set("fixpoint_rounds", Json::Uint(stats.fixpoint_rounds));
  out.Set("rule_applications", Json::Uint(stats.rule_applications));
  return out;
}

std::string EvalStatsToString(const EvalStats& stats) {
  // Rendered from the JSON form so the two reports share one field list.
  std::string out;
  const Json json = EvalStatsToJson(stats);
  for (const auto& [key, value] : json.members()) {
    if (!out.empty()) out += ' ';
    out += key + "=" + std::to_string(value.uint_value());
  }
  return out;
}

Result<Instance> Evaluate(const Program& program, const Instance& input,
                          const EvalOptions& options, EvalStats* stats) {
  CALM_ASSIGN_OR_RETURN(PreparedProgram prepared,
                        PreparedProgram::Prepare(program, options));
  return prepared.Eval(input, stats);
}

Result<Instance> EvaluateIlog(const Program& program, const Instance& input,
                              const EvalOptions& options, EvalStats* stats,
                              size_t* invented_count) {
  CALM_ASSIGN_OR_RETURN(
      PreparedProgram prepared,
      PreparedProgram::Prepare(program, options, /*allow_invention=*/true));
  return prepared.Eval(input, stats, invented_count);
}

Result<Instance> EvaluateWithFixedNegation(const Program& program,
                                           const Instance& input,
                                           const Instance& neg_reference,
                                           const EvalOptions& options,
                                           EvalStats* stats) {
  CALM_ASSIGN_OR_RETURN(PreparedProgram prepared,
                        PreparedProgram::PrepareFixedNegation(program, options));
  return prepared.EvalFixedNegation(input, neg_reference, stats);
}

}  // namespace calm::datalog
