#include "datalog/evaluator.h"

#include <algorithm>
#include <climits>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace calm::datalog {

namespace {

// ---------------------------------------------------------------------------
// Evaluation-time storage: per-relation tuple vectors with a dedup set and
// lazily built, incrementally extended hash indexes on bound-position masks.
// ---------------------------------------------------------------------------

class RelStore {
 public:
  bool Insert(const Tuple& t) {
    if (!set_.insert(t).second) return false;
    tuples_.push_back(t);
    return true;
  }

  bool Contains(const Tuple& t) const { return set_.count(t) > 0; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  // Returns indices of tuples whose positions in `mask` equal `key` (the
  // values of the masked positions in ascending position order).
  const std::vector<uint32_t>& Probe(uint32_t mask, const Tuple& key) {
    IndexForMask& index = indexes_[mask];
    // Extend the index over tuples added since the last probe of this mask.
    for (uint32_t i = index.upto; i < tuples_.size(); ++i) {
      index.buckets[KeyOf(tuples_[i], mask)].push_back(i);
    }
    index.upto = static_cast<uint32_t>(tuples_.size());
    auto it = index.buckets.find(key);
    if (it == index.buckets.end()) return kNoMatches();
    return it->second;
  }

  static Tuple KeyOf(const Tuple& t, uint32_t mask) {
    Tuple key;
    for (size_t i = 0; i < t.size(); ++i) {
      if (mask & (1u << i)) key.push_back(t[i]);
    }
    return key;
  }

 private:
  struct IndexForMask {
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> buckets;
    uint32_t upto = 0;
  };

  static const std::vector<uint32_t>& kNoMatches() {
    static const std::vector<uint32_t>* kEmpty = new std::vector<uint32_t>();
    return *kEmpty;
  }

  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> set_;
  std::map<uint32_t, IndexForMask> indexes_;
};

class Database {
 public:
  explicit Database(const Instance& instance) {
    instance.ForEachFact([&](uint32_t name, const Tuple& t) {
      rels_[name].Insert(t);
      ++size_;
    });
  }

  bool Insert(uint32_t rel, const Tuple& t) {
    if (rels_[rel].Insert(t)) {
      ++size_;
      return true;
    }
    return false;
  }

  bool Contains(uint32_t rel, const Tuple& t) const {
    auto it = rels_.find(rel);
    return it != rels_.end() && it->second.Contains(t);
  }

  RelStore* Store(uint32_t rel) {
    auto it = rels_.find(rel);
    return it == rels_.end() ? nullptr : &it->second;
  }

  size_t size() const { return size_; }

  Instance ToInstance() const {
    Instance out;
    for (const auto& [name, store] : rels_) {
      for (const Tuple& t : store.tuples()) out.Insert(Fact(name, t));
    }
    return out;
  }

 private:
  std::map<uint32_t, RelStore> rels_;
  size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Rule compilation: variables renamed to dense slots; per positive atom the
// bound/free layout is decided at match time (bindings flow left to right).
// ---------------------------------------------------------------------------

struct CompiledAtom {
  uint32_t relation = 0;
  bool invents = false;  // head-only: leading Skolem invention position
  // Per argument: the variable slot, or -1 for a constant.
  std::vector<int> slots;
  std::vector<Value> constants;  // parallel; meaningful where slot == -1
};

struct CompiledIneq {
  int left_slot = -1;   // -1 => constant
  int right_slot = -1;
  Value left_const;
  Value right_const;
  size_t ready_after = 0;  // pos-atom index after which both sides are bound
};

struct CompiledRule {
  CompiledAtom head;
  std::vector<CompiledAtom> pos;
  std::vector<CompiledAtom> neg;
  std::vector<CompiledIneq> ineqs;
  size_t slot_count = 0;
  bool recursive_in_current_stratum = false;  // set per stratum
};

class RuleCompiler {
 public:
  CompiledRule Compile(const Rule& rule, bool reorder_joins) {
    slots_.clear();
    CompiledRule out;
    std::vector<const Atom*> ordered = OrderAtoms(rule, reorder_joins);
    out.pos.reserve(ordered.size());
    for (const Atom* a : ordered) out.pos.push_back(CompileAtom(*a));
    out.head = CompileAtom(rule.head);
    for (const Atom& a : rule.neg) out.neg.push_back(CompileAtom(a));

    // For each slot, the first pos atom index (1-based "after matching") at
    // which it is bound.
    std::vector<size_t> bound_after(slots_.size(), 0);
    std::vector<bool> seen(slots_.size(), false);
    for (size_t i = 0; i < out.pos.size(); ++i) {
      for (int s : out.pos[i].slots) {
        if (s >= 0 && !seen[s]) {
          seen[s] = true;
          bound_after[s] = i + 1;
        }
      }
    }
    for (const auto& [l, r] : rule.ineqs) {
      CompiledIneq ci;
      size_t ready = 0;
      if (l.is_var()) {
        ci.left_slot = SlotOf(l.var);
        ready = std::max(ready, bound_after[ci.left_slot]);
      } else {
        ci.left_const = l.constant;
      }
      if (r.is_var()) {
        ci.right_slot = SlotOf(r.var);
        ready = std::max(ready, bound_after[ci.right_slot]);
      } else {
        ci.right_const = r.constant;
      }
      ci.ready_after = ready;
      out.ineqs.push_back(ci);
    }
    out.slot_count = slots_.size();
    return out;
  }

 private:
  // Greedy join ordering: repeatedly pick the remaining atom with the most
  // bound argument positions (constants or variables already bound by the
  // chosen prefix); ties broken by fewer new variables, then written order.
  static std::vector<const Atom*> OrderAtoms(const Rule& rule,
                                             bool reorder_joins) {
    std::vector<const Atom*> out;
    out.reserve(rule.pos.size());
    if (!reorder_joins) {
      for (const Atom& a : rule.pos) out.push_back(&a);
      return out;
    }
    std::vector<const Atom*> remaining;
    for (const Atom& a : rule.pos) remaining.push_back(&a);
    std::set<uint32_t> bound;
    while (!remaining.empty()) {
      size_t best = 0;
      int best_bound = -1;
      int best_new = INT_MAX;
      for (size_t i = 0; i < remaining.size(); ++i) {
        int bound_positions = 0;
        std::set<uint32_t> fresh;
        for (const Term& t : remaining[i]->args) {
          if (!t.is_var() || bound.count(t.var) > 0) {
            ++bound_positions;
          } else {
            fresh.insert(t.var);
          }
        }
        int new_vars = static_cast<int>(fresh.size());
        if (bound_positions > best_bound ||
            (bound_positions == best_bound && new_vars < best_new)) {
          best = i;
          best_bound = bound_positions;
          best_new = new_vars;
        }
      }
      const Atom* chosen = remaining[best];
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
      for (const Term& t : chosen->args) {
        if (t.is_var()) bound.insert(t.var);
      }
      out.push_back(chosen);
    }
    return out;
  }

  int SlotOf(uint32_t var) {
    auto [it, inserted] = slots_.emplace(var, static_cast<int>(slots_.size()));
    return it->second;
  }

  CompiledAtom CompileAtom(const Atom& atom) {
    CompiledAtom out;
    out.relation = atom.relation;
    out.invents = atom.invents;
    out.slots.reserve(atom.args.size());
    out.constants.resize(atom.args.size());
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_var()) {
        out.slots.push_back(SlotOf(t.var));
      } else {
        out.slots.push_back(-1);
        out.constants[i] = t.constant;
      }
    }
    return out;
  }

  std::map<uint32_t, int> slots_;
};

// ---------------------------------------------------------------------------
// Rule matching.
// ---------------------------------------------------------------------------

constexpr uint32_t kNoSlot = UINT32_MAX;

// Hash-conses Skolem terms f_R(a1..ak) to invented values, one table per
// evaluation so identical derivations reuse the same value (Section 5.2).
class InventionContext {
 public:
  Value GetOrCreate(uint32_t relation, const Tuple& args) {
    auto [it, inserted] =
        table_.emplace(std::make_pair(relation, args), Value());
    if (inserted) it->second = Value::Invented(next_id_++);
    return it->second;
  }
  size_t size() const { return table_.size(); }

 private:
  std::map<std::pair<uint32_t, Tuple>, Value> table_;
  uint64_t next_id_ = 0;
};

class RuleMatcher {
 public:
  // `negation_db`: database against which negated atoms are tested (the main
  // db under stratified semantics; a fixed reference under the Gamma
  // operator of the well-founded semantics).
  RuleMatcher(Database* db, const Database* negation_db, EvalStats* stats,
              InventionContext* invention = nullptr)
      : db_(db), negation_db_(negation_db), stats_(stats),
        invention_(invention) {}

  // Evaluates `rule`, deriving head facts into `out`. When `delta` is
  // non-null, exactly the atom at `delta_index` ranges over `delta` instead
  // of the full store (semi-naive evaluation).
  void Eval(const CompiledRule& rule, RelStore* delta, size_t delta_index,
            std::vector<std::pair<uint32_t, Tuple>>* out) {
    rule_ = &rule;
    delta_ = delta;
    delta_index_ = delta_index;
    out_ = out;
    binding_.assign(rule.slot_count, Value());
    bound_.assign(rule.slot_count, false);
    Match(0);
  }

 private:
  void Match(size_t atom_index) {
    if (atom_index == rule_->pos.size()) {
      Finish();
      return;
    }
    const CompiledAtom& atom = rule_->pos[atom_index];
    RelStore* source = (delta_ != nullptr && atom_index == delta_index_)
                           ? delta_
                           : db_->Store(atom.relation);
    if (source == nullptr || source->size() == 0) return;

    // Determine bound positions under the current binding.
    uint32_t mask = 0;
    Tuple key;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      if (s < 0) {
        mask |= (1u << i);
        key.push_back(atom.constants[i]);
      } else if (bound_[s]) {
        mask |= (1u << i);
        key.push_back(binding_[s]);
      }
    }

    auto try_tuple = [&](const Tuple& t) {
      // Bind free positions; repeated variables within the atom must agree.
      std::vector<int> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < atom.slots.size() && ok; ++i) {
        int s = atom.slots[i];
        if (s < 0) {
          if (t[i] != atom.constants[i]) ok = false;
        } else if (bound_[s]) {
          if (binding_[s] != t[i]) ok = false;
        } else {
          binding_[s] = t[i];
          bound_[s] = true;
          newly_bound.push_back(s);
        }
      }
      if (ok) ok = IneqsHold(atom_index + 1);
      if (ok) Match(atom_index + 1);
      for (int s : newly_bound) bound_[s] = false;
    };

    if (mask == 0) {
      // Full scan. Iterate by index: the store can grow while we recurse
      // (same-relation derivations are only applied between rounds, so no —
      // but iterate defensively by index anyway).
      const std::vector<Tuple>& tuples = source->tuples();
      size_t n = tuples.size();
      for (size_t i = 0; i < n; ++i) try_tuple(tuples[i]);
    } else {
      const std::vector<uint32_t>& hits = source->Probe(mask, key);
      const std::vector<Tuple>& tuples = source->tuples();
      for (uint32_t i : hits) try_tuple(tuples[i]);
    }
  }

  bool IneqsHold(size_t after) const {
    for (const CompiledIneq& iq : rule_->ineqs) {
      if (iq.ready_after != after) continue;
      Value l = iq.left_slot >= 0 ? binding_[iq.left_slot] : iq.left_const;
      Value r = iq.right_slot >= 0 ? binding_[iq.right_slot] : iq.right_const;
      if (l == r) return false;
    }
    return true;
  }

  void Finish() {
    // Inequalities with no positive variables (ready_after == 0).
    if (!IneqsHold(0)) return;
    // Negated atoms: all variables are bound (safety).
    for (const CompiledAtom& atom : rule_->neg) {
      Tuple t = Instantiate(atom);
      if (negation_db_->Contains(atom.relation, t)) return;
    }
    if (stats_ != nullptr) ++stats_->rule_applications;
    Tuple head = Instantiate(rule_->head);
    if (rule_->head.invents) {
      assert(invention_ != nullptr);
      Value skolem = invention_->GetOrCreate(rule_->head.relation, head);
      head.insert(head.begin(), skolem);
    }
    out_->emplace_back(rule_->head.relation, std::move(head));
  }

  Tuple Instantiate(const CompiledAtom& atom) const {
    Tuple t;
    t.reserve(atom.slots.size());
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      int s = atom.slots[i];
      t.push_back(s >= 0 ? binding_[s] : atom.constants[i]);
    }
    return t;
  }

  Database* db_;
  const Database* negation_db_;
  EvalStats* stats_;
  InventionContext* invention_;

  const CompiledRule* rule_ = nullptr;
  RelStore* delta_ = nullptr;
  size_t delta_index_ = kNoSlot;
  std::vector<std::pair<uint32_t, Tuple>>* out_ = nullptr;
  Tuple binding_;
  std::vector<bool> bound_;
};

// ---------------------------------------------------------------------------
// Fixpoint drivers.
// ---------------------------------------------------------------------------

// Runs the fixpoint of `rules` over `db`. `growing` tells which relations
// may grow during this fixpoint (the heads of `rules`); atoms over growing
// relations are the semi-naive delta positions. `negation_db` is the
// database used for negated atoms (== db under stratified semantics).
Status RunFixpoint(const std::vector<CompiledRule>& rules, Database* db,
                   const Database* negation_db,
                   const std::set<uint32_t>& growing,
                   const EvalOptions& options, EvalStats* stats,
                   InventionContext* invention = nullptr) {
  RuleMatcher matcher(db, negation_db, stats, invention);
  std::vector<std::pair<uint32_t, Tuple>> derived;

  // Round 0: evaluate every rule against the full database.
  for (const CompiledRule& rule : rules) {
    matcher.Eval(rule, nullptr, kNoSlot, &derived);
  }

  std::map<uint32_t, RelStore> delta;
  for (auto& [rel, tuple] : derived) {
    if (db->Insert(rel, tuple)) delta[rel].Insert(tuple);
  }
  if (stats != nullptr) ++stats->fixpoint_rounds;

  if (!options.semi_naive) {
    // Naive: re-run all rules on the full database until no change.
    bool changed = !delta.empty();
    while (changed) {
      if (db->size() > options.max_total_facts) {
        return ResourceExhaustedError("fixpoint exceeded max_total_facts");
      }
      derived.clear();
      for (const CompiledRule& rule : rules) {
        matcher.Eval(rule, nullptr, kNoSlot, &derived);
      }
      changed = false;
      for (auto& [rel, tuple] : derived) {
        if (db->Insert(rel, tuple)) changed = true;
      }
      if (stats != nullptr) ++stats->fixpoint_rounds;
    }
    return Status::Ok();
  }

  // Semi-naive: in each round, for every rule and every positive atom over a
  // growing relation, evaluate with that atom restricted to the delta.
  while (!delta.empty()) {
    if (db->size() > options.max_total_facts) {
      return ResourceExhaustedError("fixpoint exceeded max_total_facts");
    }
    derived.clear();
    for (const CompiledRule& rule : rules) {
      for (size_t i = 0; i < rule.pos.size(); ++i) {
        uint32_t rel = rule.pos[i].relation;
        if (growing.count(rel) == 0) continue;
        auto it = delta.find(rel);
        if (it == delta.end()) continue;
        matcher.Eval(rule, &it->second, i, &derived);
      }
    }
    std::map<uint32_t, RelStore> next_delta;
    for (auto& [rel, tuple] : derived) {
      if (db->Insert(rel, tuple)) next_delta[rel].Insert(tuple);
    }
    delta = std::move(next_delta);
    if (stats != nullptr) ++stats->fixpoint_rounds;
  }
  return Status::Ok();
}

void SeedAdom(const ProgramInfo& info, Instance& input) {
  if (!info.uses_adom) return;
  // Active domain of the input restricted to edb relations other than Adom.
  Schema edb_without_adom;
  for (const RelationDecl& r : info.edb.relations()) {
    if (r.name != AdomRelation()) {
      (void)edb_without_adom.AddRelation(r);
    }
  }
  Instance core = input.Restrict(edb_without_adom);
  for (Value v : core.ActiveDomain()) {
    input.Insert(Fact(AdomRelation(), {v}));
  }
}

size_t CountDerived(const Database& db, size_t input_size) {
  return db.size() - std::min(db.size(), input_size);
}

}  // namespace

namespace {

Result<Instance> EvaluateStratifiedImpl(const Program& program,
                                        const Instance& input,
                                        const EvalOptions& options,
                                        EvalStats* stats, bool allow_invention,
                                        size_t* invented_count) {
  CALM_ASSIGN_OR_RETURN(ProgramInfo info, Analyze(program, allow_invention));
  CALM_ASSIGN_OR_RETURN(Stratification strat, Stratify(program, info));

  Instance working = input.Restrict(info.sch);
  if (options.populate_adom) SeedAdom(info, working);
  size_t input_size = working.size();

  Database db(working);
  InventionContext invention;
  RuleCompiler compiler;
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules.size());
  for (const Rule& r : program.rules) {
    compiled.push_back(compiler.Compile(r, options.reorder_joins));
  }

  for (uint32_t s = 0; s < strat.stratum_count; ++s) {
    std::vector<CompiledRule> stratum_rules;
    std::set<uint32_t> growing;
    for (size_t idx : strat.rules_per_stratum[s]) {
      stratum_rules.push_back(compiled[idx]);
      growing.insert(program.rules[idx].head.relation);
    }
    if (stratum_rules.empty()) continue;
    CALM_RETURN_IF_ERROR(RunFixpoint(stratum_rules, &db, &db, growing,
                                     options, stats, &invention));
  }

  if (stats != nullptr) stats->derived_facts = CountDerived(db, input_size);
  if (invented_count != nullptr) *invented_count = invention.size();
  return db.ToInstance();
}

}  // namespace

Result<Instance> Evaluate(const Program& program, const Instance& input,
                          const EvalOptions& options, EvalStats* stats) {
  return EvaluateStratifiedImpl(program, input, options, stats,
                                /*allow_invention=*/false, nullptr);
}

Result<Instance> EvaluateIlog(const Program& program, const Instance& input,
                              const EvalOptions& options, EvalStats* stats,
                              size_t* invented_count) {
  return EvaluateStratifiedImpl(program, input, options, stats,
                                /*allow_invention=*/true, invented_count);
}

Result<Instance> EvaluateWithFixedNegation(const Program& program,
                                           const Instance& input,
                                           const Instance& neg_reference,
                                           const EvalOptions& options,
                                           EvalStats* stats) {
  CALM_ASSIGN_OR_RETURN(ProgramInfo info, Analyze(program));

  Instance working = input.Restrict(info.sch);
  if (options.populate_adom) SeedAdom(info, working);
  size_t input_size = working.size();

  Database db(working);
  Database neg_db(neg_reference);

  RuleCompiler compiler;
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules.size());
  std::set<uint32_t> growing;
  for (const Rule& r : program.rules) {
    compiled.push_back(compiler.Compile(r, options.reorder_joins));
    growing.insert(r.head.relation);
  }

  CALM_RETURN_IF_ERROR(
      RunFixpoint(compiled, &db, &neg_db, growing, options, stats));

  if (stats != nullptr) stats->derived_facts = CountDerived(db, input_size);
  return db.ToInstance();
}

}  // namespace calm::datalog
