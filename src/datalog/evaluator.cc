#include "datalog/evaluator.h"

#include "datalog/prepared.h"

// One-shot entry points: prepare, run once, discard. Callers that evaluate a
// program repeatedly should hold a PreparedProgram (datalog/prepared.h) —
// DatalogQuery/IlogQuery and the transducers do — so analysis,
// stratification, and rule compilation are paid once instead of per call.

namespace calm::datalog {

Json EvalStatsToJson(const EvalStats& stats) {
  Json out = Json::Object();
  out.Set("derived_facts", Json::Uint(stats.derived_facts));
  out.Set("fixpoint_rounds", Json::Uint(stats.fixpoint_rounds));
  out.Set("rule_applications", Json::Uint(stats.rule_applications));
  return out;
}

std::string EvalStatsToString(const EvalStats& stats) {
  // Rendered from the JSON form so the two reports share one field list.
  std::string out;
  const Json json = EvalStatsToJson(stats);
  for (const auto& [key, value] : json.members()) {
    if (!out.empty()) out += ' ';
    out += key + "=" + std::to_string(value.uint_value());
  }
  return out;
}

Result<Instance> Evaluate(const Program& program, const Instance& input,
                          const EvalOptions& options, EvalStats* stats) {
  CALM_ASSIGN_OR_RETURN(PreparedProgram prepared,
                        PreparedProgram::Prepare(program, options));
  return prepared.Eval(input, stats);
}

Result<Instance> EvaluateIlog(const Program& program, const Instance& input,
                              const EvalOptions& options, EvalStats* stats,
                              size_t* invented_count) {
  CALM_ASSIGN_OR_RETURN(
      PreparedProgram prepared,
      PreparedProgram::Prepare(program, options, /*allow_invention=*/true));
  return prepared.Eval(input, stats, invented_count);
}

Result<Instance> EvaluateWithFixedNegation(const Program& program,
                                           const Instance& input,
                                           const Instance& neg_reference,
                                           const EvalOptions& options,
                                           EvalStats* stats) {
  CALM_ASSIGN_OR_RETURN(PreparedProgram prepared,
                        PreparedProgram::PrepareFixedNegation(program, options));
  return prepared.EvalFixedNegation(input, neg_reference, stats);
}

}  // namespace calm::datalog
