#include "datalog/evaluator.h"

#include "datalog/prepared.h"

// One-shot entry points: prepare, run once, discard. Callers that evaluate a
// program repeatedly should hold a PreparedProgram (datalog/prepared.h) —
// DatalogQuery/IlogQuery and the transducers do — so analysis,
// stratification, and rule compilation are paid once instead of per call.

namespace calm::datalog {

Result<Instance> Evaluate(const Program& program, const Instance& input,
                          const EvalOptions& options, EvalStats* stats) {
  CALM_ASSIGN_OR_RETURN(PreparedProgram prepared,
                        PreparedProgram::Prepare(program, options));
  return prepared.Eval(input, stats);
}

Result<Instance> EvaluateIlog(const Program& program, const Instance& input,
                              const EvalOptions& options, EvalStats* stats,
                              size_t* invented_count) {
  CALM_ASSIGN_OR_RETURN(
      PreparedProgram prepared,
      PreparedProgram::Prepare(program, options, /*allow_invention=*/true));
  return prepared.Eval(input, stats, invented_count);
}

Result<Instance> EvaluateWithFixedNegation(const Program& program,
                                           const Instance& input,
                                           const Instance& neg_reference,
                                           const EvalOptions& options,
                                           EvalStats* stats) {
  CALM_ASSIGN_OR_RETURN(PreparedProgram prepared,
                        PreparedProgram::PrepareFixedNegation(program, options));
  return prepared.EvalFixedNegation(input, neg_reference, stats);
}

}  // namespace calm::datalog
