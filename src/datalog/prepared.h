#ifndef CALM_DATALOG_PREPARED_H_
#define CALM_DATALOG_PREPARED_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <vector>

#include "base/instance.h"
#include "base/schema.h"
#include "base/status.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/bytecode.h"
#include "datalog/compiled.h"
#include "datalog/evaluator.h"
#include "datalog/relstore.h"
#include "datalog/stratifier.h"

namespace calm::datalog {

class IncrementalEval;

// A program compiled for repeated evaluation: analysis, stratification, join
// ordering, and rule compilation run exactly once at Prepare time; each Eval
// is a seed-and-run fixpoint over the compiled form with fresh scratch.
// Instances of this class are immutable after Prepare, so one prepared
// program can be evaluated concurrently from many threads (the parallel
// monotonicity checkers do exactly that).
//
// Result and EvalStats equivalence with the one-shot entry points in
// evaluator.h is pinned by tests/prepared_test.cc.
class PreparedProgram {
 public:
  // Analyzes, stratifies, and compiles `program` (errors exactly when
  // Evaluate/EvaluateIlog would: analysis first, then stratification).
  // `options.reorder_joins` is baked into the compiled form; the remaining
  // options govern every subsequent run.
  static Result<PreparedProgram> Prepare(const Program& program,
                                         const EvalOptions& options = {},
                                         bool allow_invention = false);

  // Analyzes and compiles for the fixed-negation (Gamma) operator: a single
  // fixpoint with every head growing, no stratifiability requirement.
  static Result<PreparedProgram> PrepareFixedNegation(
      const Program& program, const EvalOptions& options = {});

  const ProgramInfo& info() const { return info_; }
  const EvalOptions& options() const { return options_; }
  // The engine this program was compiled for (options().engine resolved
  // against DefaultEvalEngine() at Prepare time).
  EvalEngine engine() const { return engine_; }
  // Whether union re-evaluation may run incrementally (options().incremental
  // resolved against DefaultIncrementalMode() at Prepare time). Never
  // kDefault after Prepare.
  IncrementalMode incremental() const { return incremental_; }

  // Stratified (or ILOG) evaluation; equals Evaluate()/EvaluateIlog() on
  // this program. Only valid on Prepare()-built instances.
  Result<Instance> Eval(const Instance& input, EvalStats* stats = nullptr,
                        size_t* invented_count = nullptr) const;

  // As Eval over the set union of `parts`, without materializing the union.
  // When `pre_restrict` is non-null, facts outside that schema are dropped
  // while seeding — equivalent to restricting each part first, minus the
  // intermediate Instance copies. When `post_restrict` is non-null, only
  // facts it admits are materialized into the result — equivalent to
  // .Restrict(*post_restrict) on the full result, again minus the copy.
  // Runs over thread-local scratch storage, so repeated calls on one thread
  // allocate almost nothing.
  Result<Instance> EvalParts(std::initializer_list<const Instance*> parts,
                             const Schema* pre_restrict,
                             const Schema* post_restrict = nullptr,
                             EvalStats* stats = nullptr,
                             size_t* invented_count = nullptr) const;

  // The Gamma operator: least fixpoint with negated atoms tested against the
  // fixed `neg_reference`. Only valid on PrepareFixedNegation()-built
  // instances; equals EvaluateWithFixedNegation() on this program.
  Result<Instance> EvalFixedNegation(const Instance& input,
                                     const Instance& neg_reference,
                                     EvalStats* stats = nullptr) const;

  // --- Seed/run split (the well-founded alternation reuses one seed) ---

  // Builds the seed database: the union of `parts` restricted to sch(P)
  // (and `pre_restrict`, when given), plus Adom facts when the program
  // reads Adom and options().populate_adom is set.
  Database MakeSeed(std::initializer_list<const Instance*> parts,
                    const Schema* pre_restrict) const;

  // Runs the fixed-negation fixpoint over a seed built by MakeSeed. Takes
  // the seed by value: pass a copy to reuse one seed across Gamma calls.
  Result<Instance> RunFixedNegation(Database db, const Database& neg_db,
                                    EvalStats* stats = nullptr) const;

  // --- Incremental union evaluation (the checker's hot path) ---

  // Materializes the Q(base) fixpoint once into a private database and
  // returns an evaluator whose EvalOverlay computes Q(base ∪ J) for many
  // small J without re-running from scratch (see IncrementalEval). The
  // schema arguments mirror EvalParts' restriction semantics and are copied;
  // this PreparedProgram must outlive the returned evaluator. Always
  // succeeds: configurations the delta machinery cannot serve (tree engine,
  // naive iteration, fixed negation, ILOG invention, or a failed base
  // fixpoint) yield an evaluator whose every overlay transparently falls
  // back to the from-scratch EvalParts path.
  std::unique_ptr<IncrementalEval> BeginIncremental(
      const Instance& base, const Schema* pre_restrict = nullptr,
      const Schema* post_restrict = nullptr) const;

 private:
  friend class IncrementalEval;
  // One stratum of the prepared form; fixed-negation programs have exactly
  // one with every rule in it.
  struct Stratum {
    std::vector<uint32_t> rules;  // indices into compiled_, stratum order
    // Semi-naive delta positions: (rule index into compiled_, pos-atom
    // index) for every atom over a relation that grows in this stratum, in
    // rule-major order — the same evaluation order as the one-shot path.
    std::vector<std::pair<uint32_t, uint32_t>> delta_sites;
    // Head relations of this stratum (sorted, unique): the bytecode
    // driver's row-range deltas snapshot these stores' sizes per round.
    std::vector<uint32_t> growing;
  };

  PreparedProgram() = default;

  void CompileRules(const Program& program);
  Stratum MakeStratum(const Program& program,
                      const std::vector<size_t>& rule_indices) const;
  void SeedInto(Database* db, std::initializer_list<const Instance*> parts,
                const Schema* pre_restrict) const;
  Result<Instance> RunInPlace(Database* db, EvalStats* stats,
                              size_t* invented_count,
                              const Schema* post_restrict) const;

  ProgramInfo info_;
  EvalOptions options_;
  EvalEngine engine_ = EvalEngine::kBytecode;
  IncrementalMode incremental_ = IncrementalMode::kOn;
  bool fixed_negation_ = false;
  std::vector<CompiledRule> compiled_;
  BytecodeProgram bytecode_;  // compiled iff engine_ == kBytecode
  std::vector<Stratum> strata_;
  Schema adom_source_;  // edb(P) minus Adom: where seeded Adom values come from
};

// Delta-driven re-evaluation over one fixed base instance: the Q(base)
// fixpoint stays materialized in a private epoch-versioned database, and
// each EvalOverlay pushes the overlay J as one epoch, feeds its facts
// through the bytecode row-range machinery as external semi-naive deltas,
// runs only the strata the new facts can reach, and rolls the epoch back —
// so checking many small J against one base costs O(|J| + derived delta)
// per check instead of a full fixpoint.
//
// Strata whose negated atoms read a changed relation cannot be continued
// (new facts can retract derivations); they are recomputed from their
// pre-stratum watermark, their base rows are restored before the rollback,
// and the retraction taints every downstream reader. When no stratum needed
// recomputation, the run itself proves Q(base) ⊆ Q(base ∪ J) — the common
// monotone case answers without materializing any output at all.
//
// Output equivalence with EvalParts({&base, &overlay}) is exact: any
// configuration or runtime condition the delta path cannot reproduce
// byte-identically (unsupported options, IDB facts in the overlay, a
// mid-delta resource error) reroutes that overlay through the from-scratch
// path. Pinned by tests/incremental_test.cc and the CI engine-diff leg.
//
// Not thread-safe; create one evaluator per thread (the parallel checker
// sweeps create one per outer I, which lives on a single shard).
class IncrementalEval {
 public:
  // What one EvalOverlay did, beyond its Result status.
  struct Overlay {
    // The run proved Q(base) ⊆ Q(base ∪ overlay) without materializing the
    // result (no stratum recomputed; every store only grew). `out_facts`
    // was not touched: callers doing a retraction check need no merge.
    bool superset_of_base = false;
    // The overlay ran through the from-scratch EvalParts path.
    bool fell_back = false;
  };

  // Evaluates Q(base ∪ overlay). `out_facts`, when non-null, receives the
  // result facts in ascending order — except when the overlay proves
  // supersetness and `materialize` is false, in which case it is left
  // untouched (see Overlay::superset_of_base). The database is always
  // rolled back to the base fixpoint before returning. `stats` (optional)
  // receives delta-relative tallies; EvalStats parity with the from-scratch
  // path is NOT guaranteed, only fact/verdict parity is.
  Result<Overlay> EvalOverlay(const Instance& overlay,
                              std::vector<Fact>* out_facts,
                              bool materialize = false,
                              EvalStats* stats = nullptr);

  // Whether overlays can run incrementally at all; false means every
  // EvalOverlay takes the from-scratch route.
  bool supported() const { return supported_; }

 private:
  friend class PreparedProgram;
  IncrementalEval() = default;

  bool Admitted(uint32_t name, const Tuple& t) const;
  Result<Overlay> Fallback(const Instance& overlay, std::vector<Fact>* out,
                           EvalStats* stats);
  void SaveStratumRows(size_t stratum);
  void RestoreStratumRows(size_t stratum);

  const PreparedProgram* prog_ = nullptr;
  Instance base_;              // fallback seeding (and error replay)
  std::optional<Schema> pre_;  // owned copies of the restriction schemas
  std::optional<Schema> post_;
  Database db_;       // the materialized base fixpoint
  bool supported_ = false;
  Status base_status_;             // base fixpoint outcome
  std::vector<uint32_t> idb_rels_;  // sorted heads across all strata

  // Parallel to prog_->strata_ and each stratum's `growing` list: the
  // growing stores' row counts before (wm_) and after (end_) that stratum's
  // base fixpoint ran.
  std::vector<std::vector<uint32_t>> wm_;
  std::vector<std::vector<uint32_t>> end_;
  // Base rows [wm, end) as flat code vectors, saved lazily the first time a
  // stratum is recomputed (base rows never change, so once is enough) and
  // re-inserted after every overlay that recomputed the stratum — restoring
  // the exact row positions makes the epoch rollback a no-op for them.
  std::vector<std::vector<std::vector<uint32_t>>> saved_;
  std::vector<bool> saved_ready_;
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_PREPARED_H_
