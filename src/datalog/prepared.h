#ifndef CALM_DATALOG_PREPARED_H_
#define CALM_DATALOG_PREPARED_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "base/instance.h"
#include "base/schema.h"
#include "base/status.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/bytecode.h"
#include "datalog/compiled.h"
#include "datalog/evaluator.h"
#include "datalog/relstore.h"
#include "datalog/stratifier.h"

namespace calm::datalog {

// A program compiled for repeated evaluation: analysis, stratification, join
// ordering, and rule compilation run exactly once at Prepare time; each Eval
// is a seed-and-run fixpoint over the compiled form with fresh scratch.
// Instances of this class are immutable after Prepare, so one prepared
// program can be evaluated concurrently from many threads (the parallel
// monotonicity checkers do exactly that).
//
// Result and EvalStats equivalence with the one-shot entry points in
// evaluator.h is pinned by tests/prepared_test.cc.
class PreparedProgram {
 public:
  // Analyzes, stratifies, and compiles `program` (errors exactly when
  // Evaluate/EvaluateIlog would: analysis first, then stratification).
  // `options.reorder_joins` is baked into the compiled form; the remaining
  // options govern every subsequent run.
  static Result<PreparedProgram> Prepare(const Program& program,
                                         const EvalOptions& options = {},
                                         bool allow_invention = false);

  // Analyzes and compiles for the fixed-negation (Gamma) operator: a single
  // fixpoint with every head growing, no stratifiability requirement.
  static Result<PreparedProgram> PrepareFixedNegation(
      const Program& program, const EvalOptions& options = {});

  const ProgramInfo& info() const { return info_; }
  const EvalOptions& options() const { return options_; }
  // The engine this program was compiled for (options().engine resolved
  // against DefaultEvalEngine() at Prepare time).
  EvalEngine engine() const { return engine_; }

  // Stratified (or ILOG) evaluation; equals Evaluate()/EvaluateIlog() on
  // this program. Only valid on Prepare()-built instances.
  Result<Instance> Eval(const Instance& input, EvalStats* stats = nullptr,
                        size_t* invented_count = nullptr) const;

  // As Eval over the set union of `parts`, without materializing the union.
  // When `pre_restrict` is non-null, facts outside that schema are dropped
  // while seeding — equivalent to restricting each part first, minus the
  // intermediate Instance copies. When `post_restrict` is non-null, only
  // facts it admits are materialized into the result — equivalent to
  // .Restrict(*post_restrict) on the full result, again minus the copy.
  // Runs over thread-local scratch storage, so repeated calls on one thread
  // allocate almost nothing.
  Result<Instance> EvalParts(std::initializer_list<const Instance*> parts,
                             const Schema* pre_restrict,
                             const Schema* post_restrict = nullptr,
                             EvalStats* stats = nullptr,
                             size_t* invented_count = nullptr) const;

  // The Gamma operator: least fixpoint with negated atoms tested against the
  // fixed `neg_reference`. Only valid on PrepareFixedNegation()-built
  // instances; equals EvaluateWithFixedNegation() on this program.
  Result<Instance> EvalFixedNegation(const Instance& input,
                                     const Instance& neg_reference,
                                     EvalStats* stats = nullptr) const;

  // --- Seed/run split (the well-founded alternation reuses one seed) ---

  // Builds the seed database: the union of `parts` restricted to sch(P)
  // (and `pre_restrict`, when given), plus Adom facts when the program
  // reads Adom and options().populate_adom is set.
  Database MakeSeed(std::initializer_list<const Instance*> parts,
                    const Schema* pre_restrict) const;

  // Runs the fixed-negation fixpoint over a seed built by MakeSeed. Takes
  // the seed by value: pass a copy to reuse one seed across Gamma calls.
  Result<Instance> RunFixedNegation(Database db, const Database& neg_db,
                                    EvalStats* stats = nullptr) const;

 private:
  // One stratum of the prepared form; fixed-negation programs have exactly
  // one with every rule in it.
  struct Stratum {
    std::vector<uint32_t> rules;  // indices into compiled_, stratum order
    // Semi-naive delta positions: (rule index into compiled_, pos-atom
    // index) for every atom over a relation that grows in this stratum, in
    // rule-major order — the same evaluation order as the one-shot path.
    std::vector<std::pair<uint32_t, uint32_t>> delta_sites;
    // Head relations of this stratum (sorted, unique): the bytecode
    // driver's row-range deltas snapshot these stores' sizes per round.
    std::vector<uint32_t> growing;
  };

  PreparedProgram() = default;

  void CompileRules(const Program& program);
  Stratum MakeStratum(const Program& program,
                      const std::vector<size_t>& rule_indices) const;
  void SeedInto(Database* db, std::initializer_list<const Instance*> parts,
                const Schema* pre_restrict) const;
  Result<Instance> RunInPlace(Database* db, EvalStats* stats,
                              size_t* invented_count,
                              const Schema* post_restrict) const;

  ProgramInfo info_;
  EvalOptions options_;
  EvalEngine engine_ = EvalEngine::kBytecode;
  bool fixed_negation_ = false;
  std::vector<CompiledRule> compiled_;
  BytecodeProgram bytecode_;  // compiled iff engine_ == kBytecode
  std::vector<Stratum> strata_;
  Schema adom_source_;  // edb(P) minus Adom: where seeded Adom values come from
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_PREPARED_H_
