#ifndef CALM_DATALOG_ANALYSIS_H_
#define CALM_DATALOG_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "base/schema.h"
#include "base/status.h"
#include "datalog/ast.h"

namespace calm::datalog {

// Static facts about a program: schemas, idb/edb split, and the predicate
// dependency graph (Section 2 notation: sch(P), idb(P), edb(P)).
struct ProgramInfo {
  Schema sch;  // sch(P): minimal schema the program is over
  Schema idb;  // relations in rule heads
  Schema edb;  // sch(P) \ idb(P)

  // Dependency edges body-relation -> head-relation, restricted to idb
  // sources (the ones that matter for stratification). `negative` edges come
  // from negated body atoms.
  struct Edge {
    uint32_t from = 0;  // body predicate
    uint32_t to = 0;    // head predicate
    bool negative = false;
  };
  std::vector<Edge> idb_edges;

  bool uses_adom = false;  // program reads the Adom convenience relation
};

// The interned id of the "Adom" convenience relation (arity 1). When a
// program uses Adom as an edb relation, the evaluator seeds it with the
// active domain of the input (the paper omits the defining rules).
uint32_t AdomRelation();

// Validates well-formedness and returns ProgramInfo:
//   * consistent arities across all uses of a relation,
//   * nonzero arities,
//   * nonempty pos in every rule,
//   * safety: every variable of a rule occurs in pos,
//   * invention atoms only where `allow_invention`.
Result<ProgramInfo> Analyze(const Program& program,
                            bool allow_invention = false);

// The output schema implied by `program.output_relations` (errors if an
// output relation is not an idb relation of the program).
Result<Schema> OutputSchema(const Program& program, const ProgramInfo& info);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_ANALYSIS_H_
