#ifndef CALM_DATALOG_ILOG_H_
#define CALM_DATALOG_ILOG_H_

#include <set>
#include <string>
#include <utility>

#include "base/query.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/fragment.h"
#include "datalog/prepared.h"

namespace calm::datalog {

// ILOG¬ support (Section 5.2): Datalog¬ where head atoms may be invention
// atoms R(*, u1..uk). Relation names whose rules invent are "invention
// relations"; their first position is the invention position.

// The invention relations of `program` (relations with an inventing head).
// Errors if a relation has both inventing and non-inventing rules.
Result<std::set<uint32_t>> InventionRelations(const Program& program);

// The set of unsafe positions (1-based pairs (relation, position)): the
// smallest set containing (R, 1) for every invention relation R and closed
// under propagation through rules (paper's definition in Section 5.2).
std::set<std::pair<uint32_t, uint32_t>> UnsafePositions(
    const Program& program, const std::set<uint32_t>& invention_relations);

// A program is weakly safe when its output relations contain no unsafe
// position; weakly safe programs never emit invented values (wILOG¬).
bool IsWeaklySafe(const Program& program,
                  const std::set<uint32_t>& invention_relations);

// An ILOG¬ program packaged as a Query. Create validates weak safety (so the
// query's outputs are invention-free) and stratifiability. Divergent
// evaluations surface as ResourceExhausted ("output undefined" in the
// paper).
class IlogQuery : public Query {
 public:
  static Result<IlogQuery> Create(Program program, std::string name,
                                  EvalOptions options = {});
  static IlogQuery FromTextOrDie(std::string_view text, std::string name,
                                 EvalOptions options = {});

  const Schema& input_schema() const override { return input_schema_; }
  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override { return name_; }
  Result<Instance> Eval(const Instance& input) const override;
  // Seeds the prepared program from both instances directly — no
  // materialized union (the checker inner loops call this per (I, J) pair).
  Result<Instance> EvalUnion(const Instance& a,
                             const Instance& b) const override;

  const Program& program() const { return program_; }
  // Fragment of the program viewed as (w)ILOG¬: the same connectivity and
  // negation-placement classification as for Datalog¬ (SP-wILOG,
  // semicon-wILOG¬, ...).
  const FragmentInfo& fragment() const { return fragment_; }

 private:
  IlogQuery() = default;

  Result<Instance> EvalSeeded(std::initializer_list<const Instance*> parts)
      const;

  Program program_;
  // shared_ptr: IlogQuery is copied by value; the prepared form is
  // immutable so copies share it.
  std::shared_ptr<const PreparedProgram> prepared_;
  FragmentInfo fragment_;
  Schema input_schema_;
  Schema output_schema_;
  std::string name_;
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_ILOG_H_
