#ifndef CALM_DATALOG_PROGRAM_H_
#define CALM_DATALOG_PROGRAM_H_

#include <memory>
#include <string>

#include "base/query.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/fragment.h"
#include "datalog/prepared.h"

namespace calm::datalog {

// A Datalog¬ program packaged as a Query (Section 2, "P computes Q when
// Q(I) = P(I)|sigma' "): the input schema is edb(P) minus the Adom
// convenience relation, the output schema is the program's marked output
// relations, and evaluation restricts P(I) to the output schema.
class DatalogQuery : public Query {
 public:
  enum class Semantics {
    kStratified,   // Section 2 semantics; requires stratifiability
    kWellFounded,  // output = definitely-true facts (used for win-move)
  };

  // Validates the program (analysis; stratifiability when kStratified) and
  // builds the query. `name` defaults to the fragment name when empty.
  static Result<DatalogQuery> Create(Program program, std::string name,
                                     Semantics semantics = Semantics::kStratified,
                                     EvalOptions options = {});

  // Create from program text (see parser.h), aborting on invalid programs;
  // for statically known programs in tests/benches/examples.
  static DatalogQuery FromTextOrDie(std::string_view text, std::string name,
                                    Semantics semantics = Semantics::kStratified,
                                    EvalOptions options = {});

  const Schema& input_schema() const override { return input_schema_; }
  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override { return name_; }
  Result<Instance> Eval(const Instance& input) const override;
  // Seeds the prepared program from both instances directly — no
  // materialized union (the checker inner loops call this per (I, J) pair).
  Result<Instance> EvalUnion(const Instance& a,
                             const Instance& b) const override;
  // Under stratified semantics with incremental mode on, returns an
  // evaluator that keeps the Q(i) fixpoint materialized and runs each j as
  // an epoch-scoped insertion delta (prepared.h's IncrementalEval);
  // otherwise the default overlay evaluator. Verdicts are byte-identical
  // either way.
  std::unique_ptr<UnionEvaluator> MakeUnionEvaluator(
      const Instance& i) const override;

  const Program& program() const { return program_; }
  const ProgramInfo& info() const { return prepared_->info(); }
  const FragmentInfo& fragment() const { return fragment_; }
  Semantics semantics() const { return semantics_; }
  // The compile-once form both Eval paths run over.
  const PreparedProgram& prepared() const { return *prepared_; }

 private:
  DatalogQuery() = default;

  Result<Instance> EvalSeeded(std::initializer_list<const Instance*> parts)
      const;

  Program program_;
  // shared_ptr: DatalogQuery is copied freely (FromTextOrDie returns by
  // value); the prepared form is immutable so copies share it.
  std::shared_ptr<const PreparedProgram> prepared_;
  FragmentInfo fragment_;
  Schema input_schema_;
  Schema output_schema_;
  std::string name_;
  Semantics semantics_ = Semantics::kStratified;
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_PROGRAM_H_
