#ifndef CALM_DATALOG_PROGRAM_H_
#define CALM_DATALOG_PROGRAM_H_

#include <memory>
#include <string>

#include "base/query.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/fragment.h"

namespace calm::datalog {

// A Datalog¬ program packaged as a Query (Section 2, "P computes Q when
// Q(I) = P(I)|sigma' "): the input schema is edb(P) minus the Adom
// convenience relation, the output schema is the program's marked output
// relations, and evaluation restricts P(I) to the output schema.
class DatalogQuery : public Query {
 public:
  enum class Semantics {
    kStratified,   // Section 2 semantics; requires stratifiability
    kWellFounded,  // output = definitely-true facts (used for win-move)
  };

  // Validates the program (analysis; stratifiability when kStratified) and
  // builds the query. `name` defaults to the fragment name when empty.
  static Result<DatalogQuery> Create(Program program, std::string name,
                                     Semantics semantics = Semantics::kStratified,
                                     EvalOptions options = {});

  // Create from program text (see parser.h), aborting on invalid programs;
  // for statically known programs in tests/benches/examples.
  static DatalogQuery FromTextOrDie(std::string_view text, std::string name,
                                    Semantics semantics = Semantics::kStratified,
                                    EvalOptions options = {});

  const Schema& input_schema() const override { return input_schema_; }
  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override { return name_; }
  Result<Instance> Eval(const Instance& input) const override;

  const Program& program() const { return program_; }
  const ProgramInfo& info() const { return info_; }
  const FragmentInfo& fragment() const { return fragment_; }
  Semantics semantics() const { return semantics_; }

 private:
  DatalogQuery() = default;

  Program program_;
  ProgramInfo info_;
  FragmentInfo fragment_;
  Schema input_schema_;
  Schema output_schema_;
  std::string name_;
  Semantics semantics_ = Semantics::kStratified;
  EvalOptions options_;
};

}  // namespace calm::datalog

#endif  // CALM_DATALOG_PROGRAM_H_
