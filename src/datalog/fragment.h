#ifndef CALM_DATALOG_FRAGMENT_H_
#define CALM_DATALOG_FRAGMENT_H_

#include <string>

#include "base/status.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"

namespace calm::datalog {

// Syntactic fragment classification (Sections 2 and 5.1).
struct FragmentInfo {
  bool stratifiable = false;
  bool positive = false;          // no negated atoms anywhere
  bool uses_inequalities = false;
  // Negation only over edb(P): the program is semi-positive (SP-Datalog).
  bool semi_positive = false;
  // Every rule is connected (graph+ of each rule is connected).
  bool all_rules_connected = false;
  // con-Datalog¬: stratifiable and every rule connected (rule connectivity
  // does not depend on the chosen stratification).
  bool connected_stratified = false;
  // semicon-Datalog¬: some stratification places every disconnected rule in
  // the last stratum.
  bool semi_connected = false;

  // The most specific fragment name: "Datalog", "Datalog(!=)", "SP-Datalog",
  // "con-Datalog~", "semicon-Datalog~", "Datalog~" or "unstratifiable".
  std::string FragmentName() const;
};

// Whether graph+(rule) is connected: nodes are the variables of positive
// body atoms; edges join variables co-occurring in a positive body atom
// (Section 5.1). Rules whose positive atoms carry <= 1 variable are
// connected.
bool IsConnectedRule(const Rule& rule);

// Classifies `program`. `info` must come from Analyze(program).
FragmentInfo ClassifyFragment(const Program& program, const ProgramInfo& info);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_FRAGMENT_H_
