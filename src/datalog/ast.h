#ifndef CALM_DATALOG_AST_H_
#define CALM_DATALOG_AST_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/fact.h"
#include "base/value.h"

namespace calm::datalog {

// A term: a variable (interned name) or a constant domain value.
struct Term {
  enum class Kind : uint8_t { kVar, kConst };

  Kind kind = Kind::kVar;
  uint32_t var = 0;  // interned variable name, when kVar
  Value constant;    // when kConst

  static Term Var(std::string_view name);
  static Term VarId(uint32_t var_id) {
    Term t;
    t.kind = Kind::kVar;
    t.var = var_id;
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = v;
    return t;
  }

  bool is_var() const { return kind == Kind::kVar; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.kind != b.kind) return false;
    return a.is_var() ? a.var == b.var : a.constant == b.constant;
  }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.is_var() ? a.var < b.var : a.constant < b.constant;
  }
};

// An atom R(t1, ..., tk). In ILOG¬ programs a head atom may additionally be
// an invention atom R(*, t1, ..., tk); `invents` marks the leading `*`
// (Section 5.2). Invention atoms never occur in rule bodies.
struct Atom {
  uint32_t relation = 0;
  std::vector<Term> args;
  bool invents = false;

  Atom() = default;
  Atom(std::string_view relation_name, std::vector<Term> terms);
  Atom(uint32_t relation_id, std::vector<Term> terms)
      : relation(relation_id), args(std::move(terms)) {}

  // Arity as written; for invention atoms this excludes the `*`.
  size_t arity() const { return args.size(); }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.invents == b.invents &&
           a.args == b.args;
  }
};

// A Datalog¬ rule: the quadruple (head, pos, neg, ineq) of Section 2.
// Well-formedness (checked by Validate in analysis.h): pos is non-empty and
// every variable of the rule occurs in pos.
struct Rule {
  Atom head;
  std::vector<Atom> pos;
  std::vector<Atom> neg;
  std::vector<std::pair<Term, Term>> ineqs;

  // All variables occurring anywhere in the rule.
  std::set<uint32_t> Variables() const;
  // Variables occurring in positive body atoms.
  std::set<uint32_t> PositiveVariables() const;

  bool IsPositive() const { return neg.empty(); }
};

// A Datalog¬ program: a set of rules plus the idb relations marked as the
// intended output (the paper's convention is a relation named "O"; the
// parser applies that default when no explicit output is named).
struct Program {
  std::vector<Rule> rules;
  std::set<uint32_t> output_relations;

  bool empty() const { return rules.empty(); }
};

// Pretty-printers (conventional syntax, e.g. "T(x, y) :- R(x, y), !S(y).").
std::string TermToString(const Term& t);
std::string AtomToString(const Atom& a);
std::string RuleToString(const Rule& r);
std::string ProgramToString(const Program& p);

}  // namespace calm::datalog

#endif  // CALM_DATALOG_AST_H_
