#include "workload/graph_gen.h"

#include <set>
#include <utility>

namespace calm::workload {

namespace {
Fact Edge(uint64_t a, uint64_t b) {
  return Fact("E", {Value::FromInt(a), Value::FromInt(b)});
}
}  // namespace

const Schema& GraphSchema() {
  static const Schema* kSchema = new Schema({{"E", 2}});
  return *kSchema;
}

Instance Path(size_t n, uint64_t base) {
  Instance out;
  for (size_t i = 0; i + 1 < n; ++i) out.Insert(Edge(base + i, base + i + 1));
  return out;
}

Instance Cycle(size_t n, uint64_t base) {
  Instance out = Path(n, base);
  if (n >= 2) out.Insert(Edge(base + n - 1, base));
  return out;
}

Instance Clique(size_t n, uint64_t base) {
  Instance out;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) out.Insert(Edge(base + i, base + j));
    }
  }
  return out;
}

Instance Star(size_t spokes, uint64_t base) {
  Instance out;
  for (size_t i = 1; i <= spokes; ++i) out.Insert(Edge(base, base + i));
  return out;
}

Instance RandomGraph(size_t n, double p, uint64_t seed, uint64_t base) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(p);
  Instance out;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && keep(rng)) out.Insert(Edge(base + i, base + j));
    }
  }
  return out;
}

Instance RandomGraphM(size_t n, size_t m, uint64_t seed, uint64_t base) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> pick(0, n - 1);
  std::set<std::pair<uint64_t, uint64_t>> edges;
  size_t cap = n * (n - 1);
  if (m > cap) m = cap;
  while (edges.size() < m) {
    uint64_t a = pick(rng);
    uint64_t b = pick(rng);
    if (a != b) edges.emplace(a, b);
  }
  Instance out;
  for (auto [a, b] : edges) out.Insert(Edge(base + a, base + b));
  return out;
}

Instance DisjointUnion(size_t parts, size_t part_size,
                       Instance (*make)(size_t, uint64_t), uint64_t base) {
  Instance out;
  for (size_t i = 0; i < parts; ++i) {
    out.InsertAll(make(part_size, base + i * (part_size + 1)));
  }
  return out;
}

Instance Bipartite(size_t left, size_t right, uint64_t base) {
  Instance out;
  for (size_t l = 0; l < left; ++l) {
    for (size_t r = 0; r < right; ++r) {
      out.Insert(Edge(base + l, base + left + r));
    }
  }
  return out;
}

Instance Grid(size_t w, size_t h, uint64_t base) {
  Instance out;
  auto id = [&](size_t x, size_t y) { return base + y * w + x; };
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      if (x + 1 < w) out.Insert(Edge(id(x, y), id(x + 1, y)));
      if (y + 1 < h) out.Insert(Edge(id(x, y), id(x, y + 1)));
    }
  }
  return out;
}

Instance LayeredDag(size_t layers, size_t width, size_t out_degree,
                    uint64_t seed, uint64_t base) {
  std::mt19937_64 rng(seed);
  Instance out;
  if (width == 0) return out;
  std::uniform_int_distribution<uint64_t> pick(0, width - 1);
  for (size_t layer = 0; layer + 1 < layers; ++layer) {
    for (size_t v = 0; v < width; ++v) {
      uint64_t from = base + layer * width + v;
      for (size_t d = 0; d < out_degree; ++d) {
        out.Insert(Edge(from, base + (layer + 1) * width + pick(rng)));
      }
    }
  }
  return out;
}

}  // namespace calm::workload
