#include "workload/instance_gen.h"

#include <algorithm>
#include <random>
#include <vector>

namespace calm::workload {

Instance RandomInstance(const Schema& schema, size_t facts, size_t domain_size,
                        uint64_t seed, uint64_t base) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> pick(0, domain_size - 1);
  std::vector<RelationDecl> decls = schema.relations();
  if (decls.empty() || domain_size == 0) return Instance();
  std::uniform_int_distribution<size_t> pick_rel(0, decls.size() - 1);
  Instance out;
  size_t attempts = 0;
  while (out.size() < facts && attempts < facts * 100 + 1000) {
    ++attempts;
    const RelationDecl& decl = decls[pick_rel(rng)];
    Tuple t;
    t.reserve(decl.arity);
    for (uint32_t i = 0; i < decl.arity; ++i) {
      t.push_back(Value::FromInt(base + pick(rng)));
    }
    out.Insert(Fact(decl.name, std::move(t)));
  }
  return out;
}

namespace {

Instance RandomExtension(const Schema& schema, const Instance& i, size_t facts,
                         size_t fresh_count, uint64_t seed,
                         uint64_t fresh_base, bool disjoint) {
  std::mt19937_64 rng(seed);
  std::set<Value> adom_set = i.ActiveDomain();
  std::vector<Value> old_values(adom_set.begin(), adom_set.end());
  std::vector<Value> fresh;
  fresh.reserve(fresh_count);
  for (size_t k = 0; k < fresh_count; ++k) {
    fresh.push_back(Value::FromInt(fresh_base + k));
  }
  std::vector<RelationDecl> decls = schema.relations();
  if (decls.empty() || fresh.empty()) return Instance();
  std::uniform_int_distribution<size_t> pick_rel(0, decls.size() - 1);
  std::uniform_int_distribution<size_t> pick_fresh(0, fresh.size() - 1);

  Instance out;
  size_t attempts = 0;
  while (out.size() < facts && attempts < facts * 100 + 1000) {
    ++attempts;
    const RelationDecl& decl = decls[pick_rel(rng)];
    Tuple t(decl.arity, fresh[pick_fresh(rng)]);
    if (disjoint || old_values.empty()) {
      for (uint32_t p = 0; p < decl.arity; ++p) t[p] = fresh[pick_fresh(rng)];
    } else {
      // Domain distinct: at least one fresh position, others mixed.
      std::uniform_int_distribution<size_t> pick_pos(0, decl.arity - 1);
      size_t fresh_pos = pick_pos(rng);
      std::uniform_int_distribution<size_t> pick_old(0, old_values.size() - 1);
      std::bernoulli_distribution use_old(0.5);
      for (uint32_t p = 0; p < decl.arity; ++p) {
        if (p == fresh_pos || !use_old(rng)) {
          t[p] = fresh[pick_fresh(rng)];
        } else {
          t[p] = old_values[pick_old(rng)];
        }
      }
    }
    out.Insert(Fact(decl.name, std::move(t)));
  }
  return out;
}

}  // namespace

Instance RandomDomainDistinctExtension(const Schema& schema, const Instance& i,
                                       size_t facts, size_t fresh_count,
                                       uint64_t seed, uint64_t fresh_base) {
  return RandomExtension(schema, i, facts, fresh_count, seed, fresh_base,
                         /*disjoint=*/false);
}

Instance RandomDomainDisjointExtension(const Schema& schema, const Instance& i,
                                       size_t facts, size_t fresh_count,
                                       uint64_t seed, uint64_t fresh_base) {
  return RandomExtension(schema, i, facts, fresh_count, seed, fresh_base,
                         /*disjoint=*/true);
}

std::map<Value, Value> RandomPermutation(const Instance& i, uint64_t seed) {
  std::set<Value> adom_set = i.ActiveDomain();
  std::vector<Value> values(adom_set.begin(), adom_set.end());
  std::vector<Value> shuffled = values;
  std::mt19937_64 rng(seed);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  std::map<Value, Value> out;
  for (size_t k = 0; k < values.size(); ++k) out[values[k]] = shuffled[k];
  return out;
}

}  // namespace calm::workload
