#include "workload/fuzzer.h"

#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "datalog/parser.h"
#include "monotonicity/checker.h"
#include "monotonicity/preservation.h"
#include "net/fault.h"
#include "transducer/confluence.h"
#include "transducer/network.h"
#include "transducer/policy.h"
#include "transducer/runner.h"
#include "transducer/schema.h"
#include "transducer/strategies.h"
#include "workload/instance_gen.h"

namespace calm::workload {

using datalog::DatalogQuery;
using monotonicity::Counterexample;
using monotonicity::ExhaustiveOptions;
using monotonicity::Ladder;
using monotonicity::LadderRow;
using monotonicity::MonotonicityClass;

const char* ProgramShapeName(ProgramShape shape) {
  switch (shape) {
    case ProgramShape::kPositive:
      return "positive";
    case ProgramShape::kInequality:
      return "inequality";
    case ProgramShape::kSemiPositive:
      return "semi-positive";
    case ProgramShape::kConnected:
      return "connected";
    case ProgramShape::kSemiConnected:
      return "semi-connected";
    case ProgramShape::kStratified:
      return "stratified";
    case ProgramShape::kWinMove:
      return "win-move";
  }
  return "unknown";
}

ShapeGuarantee GuaranteeFor(ProgramShape shape) {
  switch (shape) {
    case ProgramShape::kPositive:
    case ProgramShape::kInequality:
      return ShapeGuarantee::kMonotone;
    case ProgramShape::kSemiPositive:
      return ShapeGuarantee::kDomainDistinct;
    case ProgramShape::kConnected:
    case ProgramShape::kSemiConnected:
    case ProgramShape::kWinMove:
      return ShapeGuarantee::kDomainDisjoint;
    case ProgramShape::kStratified:
      return ShapeGuarantee::kNone;
  }
  return ShapeGuarantee::kNone;
}

const char* ShapeGuaranteeName(ShapeGuarantee guarantee) {
  switch (guarantee) {
    case ShapeGuarantee::kMonotone:
      return "M";
    case ShapeGuarantee::kDomainDistinct:
      return "Mdistinct";
    case ShapeGuarantee::kDomainDisjoint:
      return "Mdisjoint";
    case ShapeGuarantee::kNone:
      return "none";
  }
  return "none";
}

namespace {

// The fragment name every seed of a shape must classify to — the generator
// forces the distinguishing feature, so this is an exact oracle, not a hope.
const char* ExpectedFragment(ProgramShape shape) {
  switch (shape) {
    case ProgramShape::kPositive:
      return "Datalog";
    case ProgramShape::kInequality:
      return "Datalog(!=)";
    case ProgramShape::kSemiPositive:
      return "SP-Datalog";
    case ProgramShape::kConnected:
      return "con-Datalog~";
    case ProgramShape::kSemiConnected:
      return "semicon-Datalog~";
    case ProgramShape::kStratified:
      return "Datalog~";
    case ProgramShape::kWinMove:
      return "unstratifiable";
  }
  return "?";
}

// splitmix64. Own PRNG: std:: distributions are not cross-stdlib
// deterministic, and corpus seeds must mean the same program everywhere.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }
  size_t Between(size_t lo, size_t hi) { return lo + Below(hi - lo + 1); }
  bool Chance(uint32_t percent) { return Next() % 100 < percent; }
};

uint64_t MixSeed(uint64_t seed, uint64_t k) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (k + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct Rel {
  std::string name;
  size_t arity;
};

// Builds one rule's text while tracking the variables bound by positive
// atoms — the pool head args, negated args, and inequalities draw from, so
// every emitted rule is safe by construction. With `connected`, every atom
// after the first shares a variable with the atoms before it, which makes
// graph+(rule) connected by induction (fresh variables attach through their
// own atom).
class RuleBuilder {
 public:
  RuleBuilder(Rng* rng, bool connected, size_t constants)
      : rng_(rng), connected_(connected), constants_(constants) {}

  // First atom: all-fresh variables (the rule's variable anchor).
  void Anchor(const Rel& rel) {
    std::vector<std::string> args;
    for (size_t j = 0; j < rel.arity; ++j) args.push_back(Fresh());
    body_.push_back(Render(rel.name, args));
  }

  void AddPositive(const Rel& rel) {
    std::vector<std::string> args;
    for (size_t j = 0; j < rel.arity; ++j) {
      if (connected_ && j == 0 && !vars_.empty()) {
        args.push_back(vars_[rng_->Below(vars_.size())]);
      } else if (!vars_.empty() && rng_->Chance(50)) {
        args.push_back(vars_[rng_->Below(vars_.size())]);
      } else if (constants_ > 0 && rng_->Chance(25)) {
        args.push_back(std::to_string(rng_->Below(constants_)));
        used_constant_ = true;
      } else {
        args.push_back(Fresh());
      }
    }
    body_.push_back(Render(rel.name, args));
  }

  // Negated atom with every argument an already-bound variable (safety; and
  // constant-free, which the fragment theorems need — see fuzzer.h).
  void AddNegated(const Rel& rel) {
    std::vector<std::string> args;
    for (size_t j = 0; j < rel.arity; ++j) {
      args.push_back(vars_[rng_->Below(vars_.size())]);
    }
    body_.push_back("!" + Render(rel.name, args));
  }

  // x != y over two distinct bound variables; requires >= 2 variables.
  void AddInequality() {
    size_t a = rng_->Below(vars_.size());
    size_t b = rng_->Below(vars_.size() - 1);
    if (b >= a) ++b;
    body_.push_back(vars_[a] + " != " + vars_[b]);
  }

  size_t var_count() const { return vars_.size(); }
  bool used_constant() const { return used_constant_; }

  std::string Head(const Rel& rel) {
    std::vector<std::string> args;
    for (size_t j = 0; j < rel.arity; ++j) {
      args.push_back(vars_[rng_->Below(vars_.size())]);
    }
    return Render(rel.name, args);
  }

  std::string Rule(const std::string& head) const {
    std::string out = head + " :- ";
    for (size_t a = 0; a < body_.size(); ++a) {
      if (a > 0) out += ", ";
      out += body_[a];
    }
    return out + ".";
  }

 private:
  std::string Fresh() {
    std::string v = "x" + std::to_string(next_var_++);
    vars_.push_back(v);
    return v;
  }
  static std::string Render(const std::string& name,
                            const std::vector<std::string>& args) {
    std::string out = name + "(";
    for (size_t j = 0; j < args.size(); ++j) {
      if (j > 0) out += ", ";
      out += args[j];
    }
    return out + ")";
  }

  Rng* rng_;
  bool connected_;
  size_t constants_;
  bool used_constant_ = false;
  std::vector<std::string> vars_;  // distinct bound variables, in bind order
  std::vector<std::string> body_;
  size_t next_var_ = 0;
};

}  // namespace

GeneratedProgram GenerateProgram(const FuzzerOptions& options) {
  GeneratedProgram out;
  out.shape = options.shape;
  out.seed = options.seed;

  Rng rng(options.seed ^
          (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(options.shape) + 1)));
  const Rel E{"E", 2};
  const Rel F{"F", 1};

  std::string text = std::string("% fuzz shape=") +
                     ProgramShapeName(options.shape) +
                     " seed=" + std::to_string(options.seed) + "\n";
  std::vector<std::string> rules;

  if (options.shape == ProgramShape::kWinMove) {
    // The win-move core keeps the unstratifiable Win <-¬- Win cycle; every
    // variant stays connected and constant-free, so the well-founded query
    // keeps the Mdisjoint guarantee (monochrome-derivation argument).
    out.semantics = DatalogQuery::Semantics::kWellFounded;
    rules.push_back("Win(x0) :- E(x0, x1), !Win(x1).");
    if (rng.Chance(50)) {
      rules.push_back("Win(x0) :- F(x0), E(x0, x1), !Win(x1).");
    }
    rules.push_back("O(x0) :- Win(x0).");
    if (rng.Chance(30)) rules.push_back("O(x0) :- E(x0, x0).");
  } else {
    // The theorem-backed shapes must be constant-free (see the soundness
    // note in fuzzer.h); only the guarantee-free / monotone-anyway shapes
    // may sprinkle constants.
    const bool allow_constants = options.shape == ProgramShape::kPositive ||
                                 options.shape == ProgramShape::kInequality ||
                                 options.shape == ProgramShape::kStratified;
    const size_t constants = allow_constants ? options.constants : 0;
    const bool connected = options.shape == ProgramShape::kConnected ||
                           options.shape == ProgramShape::kSemiConnected;

    size_t strata = rng.Between(1, std::max<size_t>(1, options.max_strata));
    // The con/semicon shapes force an idb negation across strata.
    if (connected) strata = std::max<size_t>(2, strata);

    std::vector<Rel> idb;
    std::vector<Rel> pool = {E, F};
    for (size_t s = 0; s < strata; ++s) {
      Rel ps{"P" + std::to_string(s), rng.Between(1, options.max_arity)};
      RuleBuilder b(&rng, connected, constants);
      b.Anchor(s == 0 ? E : idb[s - 1]);
      size_t extra_atoms = rng.Below(options.max_body_atoms);
      for (size_t a = 0; a < extra_atoms; ++a) {
        b.AddPositive(pool[rng.Below(pool.size())]);
      }
      if (s == 0 && options.shape == ProgramShape::kInequality) {
        b.AddInequality();  // the E anchor guarantees two variables
      }
      if (s == 0 && options.shape == ProgramShape::kSemiPositive) {
        b.AddNegated(rng.Chance(50) ? F : E);  // edb-only negation
      }
      if (s == 1 && connected) {
        b.AddNegated(idb[0]);  // idb negation: not semi-positive
      }
      rules.push_back(b.Rule(b.Head(ps)));
      out.uses_constants |= b.used_constant();
      idb.push_back(ps);
      pool.push_back(ps);
    }

    // Extra defining rules, positive-bodied so they never perturb the
    // fragment the forced features pinned.
    size_t extra_rules = rng.Below(options.max_rules + 1);
    for (size_t r = 0; r < extra_rules; ++r) {
      size_t s = rng.Below(strata);
      RuleBuilder b(&rng, connected, constants);
      b.Anchor(s == 0 || rng.Chance(50) ? E : idb[s - 1]);
      size_t extra_atoms = rng.Below(options.max_body_atoms);
      for (size_t a = 0; a < extra_atoms; ++a) {
        // Only strictly-lower idbs keep the definition hierarchy acyclic.
        size_t limit = 2 + s;
        b.AddPositive(pool[rng.Below(limit)]);
      }
      rules.push_back(b.Rule(b.Head(idb[s])));
      out.uses_constants |= b.used_constant();
    }

    // kStratified forces a disconnected helper that can never sit in the
    // last stratum (O negates it), pinning the plain "Datalog~" name.
    if (options.shape == ProgramShape::kStratified) {
      rules.push_back("D(x0) :- F(x0), E(x1, x2).");
    }

    const Rel O{"O", rng.Between(1, options.max_arity)};
    RuleBuilder b(&rng, connected, constants);
    b.Anchor(idb[strata - 1]);
    size_t extra_atoms = rng.Below(options.max_body_atoms);
    for (size_t a = 0; a < extra_atoms; ++a) {
      b.AddPositive(pool[rng.Below(pool.size())]);
    }
    if (options.shape == ProgramShape::kStratified) b.AddNegated(Rel{"D", 1});
    rules.push_back(b.Rule(b.Head(O)));
    out.uses_constants |= b.used_constant();

    // kSemiConnected adds a deliberately disconnected O rule — legal in the
    // last stratum (nothing negates O), so semicon holds but con fails.
    if (options.shape == ProgramShape::kSemiConnected) {
      std::string head = "O(";
      for (size_t j = 0; j < O.arity; ++j) {
        if (j > 0) head += ", ";
        head += (j % 2 == 0) ? "y0" : "y3";
      }
      head += ")";
      rules.push_back(head + " :- E(y0, y1), E(y2, y3).");
    }
  }

  for (const std::string& rule : rules) text += rule + "\n";
  text += ".output O\n";
  out.text = std::move(text);
  return out;
}

// --- corpus codecs ----------------------------------------------------------

namespace {

void EncodeWitness(const std::optional<Counterexample>& c,
                   durable::ByteWriter* w) {
  w->U8(c.has_value() ? 1 : 0);
  if (!c.has_value()) return;
  durable::EncodeInstance(c->i, w);
  durable::EncodeInstance(c->j, w);
  w->Str(NameOf(c->retracted.relation));
  durable::EncodeTuple(c->retracted.args, w);
}

bool DecodeWitness(durable::ByteReader* r, std::optional<Counterexample>* out) {
  uint8_t present = 0;
  if (!r->U8(&present)) return false;
  if (present == 0) {
    out->reset();
    return true;
  }
  Counterexample c;
  std::string name;
  Tuple args;
  if (!durable::DecodeInstance(r, &c.i) || !durable::DecodeInstance(r, &c.j) ||
      !r->Str(&name) || !durable::DecodeTuple(r, &args)) {
    return false;
  }
  c.retracted = Fact(InternName(name), std::move(args));
  *out = std::move(c);
  return true;
}

}  // namespace

void EncodeCorpusRecord(const CorpusRecord& record, durable::ByteWriter* w) {
  w->U8(kCorpusKindProgram);
  w->U64(record.seed);
  w->U8(static_cast<uint8_t>(record.shape));
  w->U8(record.semantics == DatalogQuery::Semantics::kWellFounded ? 1 : 0);
  w->Str(record.fragment);
  w->Str(record.class_bucket);
  w->Str(record.strategy);
  w->U8(record.conformant ? 1 : 0);
  w->U64(record.bsp_supersteps);
  w->U64(record.stats.derived_facts);
  w->U64(record.stats.fixpoint_rounds);
  w->U64(record.stats.rule_applications);
  w->Str(record.text);
  w->U32(static_cast<uint32_t>(record.ladder.rows.size()));
  for (const LadderRow& row : record.ladder.rows) {
    w->U64(row.i);
    w->U8(static_cast<uint8_t>((row.in_m ? 1 : 0) | (row.in_distinct ? 2 : 0) |
                               (row.in_disjoint ? 4 : 0)));
    EncodeWitness(row.m_witness, w);
    EncodeWitness(row.distinct_witness, w);
    EncodeWitness(row.disjoint_witness, w);
  }
}

bool DecodeCorpusRecord(durable::ByteReader* r, CorpusRecord* out) {
  uint8_t kind = 0, shape = 0, wf = 0, conformant = 0;
  if (!r->U8(&kind) || kind != kCorpusKindProgram) return false;
  if (!r->U64(&out->seed) || !r->U8(&shape) || !r->U8(&wf)) return false;
  if (shape >= kProgramShapeCount) return false;
  out->shape = static_cast<ProgramShape>(shape);
  out->semantics = wf ? DatalogQuery::Semantics::kWellFounded
                      : DatalogQuery::Semantics::kStratified;
  uint64_t derived = 0, rounds = 0, applications = 0;
  if (!r->Str(&out->fragment) || !r->Str(&out->class_bucket) ||
      !r->Str(&out->strategy) || !r->U8(&conformant) ||
      !r->U64(&out->bsp_supersteps) || !r->U64(&derived) || !r->U64(&rounds) ||
      !r->U64(&applications) || !r->Str(&out->text)) {
    return false;
  }
  out->conformant = conformant != 0;
  out->stats.derived_facts = derived;
  out->stats.fixpoint_rounds = rounds;
  out->stats.rule_applications = applications;
  uint32_t rows = 0;
  if (!r->U32(&rows)) return false;
  out->ladder.rows.clear();
  for (uint32_t n = 0; n < rows; ++n) {
    LadderRow row;
    uint64_t i = 0;
    uint8_t bits = 0;
    if (!r->U64(&i) || !r->U8(&bits)) return false;
    row.i = i;
    row.in_m = (bits & 1) != 0;
    row.in_distinct = (bits & 2) != 0;
    row.in_disjoint = (bits & 4) != 0;
    if (!DecodeWitness(r, &row.m_witness) ||
        !DecodeWitness(r, &row.distinct_witness) ||
        !DecodeWitness(r, &row.disjoint_witness)) {
      return false;
    }
    out->ladder.rows.push_back(std::move(row));
  }
  return r->ok();
}

void EncodeDivergenceRecord(const Divergence& divergence,
                            durable::ByteWriter* w) {
  w->U8(kCorpusKindDivergence);
  w->U64(divergence.seed);
  w->Str(divergence.stage);
  w->Str(divergence.detail);
}

bool DecodeDivergenceRecord(durable::ByteReader* r, Divergence* out) {
  uint8_t kind = 0;
  if (!r->U8(&kind) || kind != kCorpusKindDivergence) return false;
  return r->U64(&out->seed) && r->Str(&out->stage) && r->Str(&out->detail);
}

// --- corpus -----------------------------------------------------------------

Status Corpus::Open(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    CALM_RETURN_IF_ERROR(durable::MakeDirs(path.substr(0, slash)));
  }
  std::vector<std::string> replayed;
  CALM_RETURN_IF_ERROR(log_.Open(path, kCorpusTag, &replayed));
  for (const std::string& payload : replayed) {
    if (payload.empty()) return InvalidArgumentError("empty corpus record");
    durable::ByteReader r(payload);
    if (static_cast<uint8_t>(payload[0]) == kCorpusKindProgram) {
      CorpusRecord record;
      if (!DecodeCorpusRecord(&r, &record)) {
        return InvalidArgumentError("corrupt corpus program record in " +
                                    path);
      }
      records_[record.seed] = std::move(record);
    } else {
      Divergence divergence;
      if (!DecodeDivergenceRecord(&r, &divergence)) {
        return InvalidArgumentError("corrupt corpus divergence record in " +
                                    path);
      }
      divergences_.push_back(std::move(divergence));
    }
  }
  return Status::Ok();
}

Status Corpus::Add(const CorpusRecord& record) {
  if (log_.is_open()) {
    durable::ByteWriter w;
    EncodeCorpusRecord(record, &w);
    CALM_RETURN_IF_ERROR(log_.Append(w.data()));
  }
  records_[record.seed] = record;
  return Status::Ok();
}

Status Corpus::AddDivergence(const Divergence& divergence) {
  if (log_.is_open()) {
    durable::ByteWriter w;
    EncodeDivergenceRecord(divergence, &w);
    CALM_RETURN_IF_ERROR(log_.Append(w.data()));
  }
  divergences_.push_back(divergence);
  return Status::Ok();
}

// --- classification ---------------------------------------------------------

namespace {

std::string BucketOf(const Ladder& ladder) {
  bool m = true, distinct = true, disjoint = true;
  for (const LadderRow& row : ladder.rows) {
    m = m && row.in_m;
    distinct = distinct && row.in_distinct;
    disjoint = disjoint && row.in_disjoint;
  }
  if (m) return "M";
  if (distinct) return "Mdistinct";
  if (disjoint) return "Mdisjoint";
  return "beyond-Mdisjoint";
}

// Re-verifies a checker counterexample from first principles: the retracted
// fact really is in Q(I) \ Q(I u J) and J really has the claimed kind.
Status VerifyWitness(const Query& query, const Counterexample& cex,
                     MonotonicityClass cls) {
  CALM_ASSIGN_OR_RETURN(Instance qi, query.Eval(cex.i));
  if (!qi.Contains(cex.retracted)) {
    return InternalError("witness fact not in Q(I): " + cex.ToString());
  }
  CALM_ASSIGN_OR_RETURN(Instance qu, query.EvalUnion(cex.i, cex.j));
  if (qu.Contains(cex.retracted)) {
    return InternalError("witness fact not retracted in Q(I u J): " +
                         cex.ToString());
  }
  std::set<Value> adom_i = cex.i.ActiveDomain();
  if (cls == MonotonicityClass::kDomainDisjoint) {
    for (Value v : cex.j.ActiveDomain()) {
      if (adom_i.count(v) > 0) {
        return InternalError("disjoint witness shares a value with adom(I): " +
                             cex.ToString());
      }
    }
  }
  if (cls == MonotonicityClass::kDomainDistinct) {
    bool ok = true;
    cex.j.ForEachFact([&](uint32_t, const Tuple& t) {
      bool fresh = false;
      for (Value v : t) {
        if (adom_i.count(v) == 0) fresh = true;
      }
      ok = ok && fresh;
    });
    if (!ok) {
      return InternalError("distinct witness has an all-old fact: " +
                           cex.ToString());
    }
  }
  return Status::Ok();
}

bool SameWitness(const std::optional<Counterexample>& a,
                 const std::optional<Counterexample>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->i == b->i && a->j == b->j && a->retracted == b->retracted;
}

std::string FactsToString(const Instance& instance) {
  return instance.ToString();
}

}  // namespace

Result<Classification> ClassifyProgram(const GeneratedProgram& program,
                                       const ClassifyOptions& options) {
  Classification out;
  out.record.seed = program.seed;
  out.record.shape = program.shape;
  out.record.semantics = program.semantics;
  out.record.text = program.text;
  auto diverge = [&](const std::string& stage, std::string detail) {
    out.divergences.push_back(Divergence{program.seed, stage, std::move(detail)});
  };

  // Stage 1: parse + build the query. A generator emitting unparseable or
  // invalid text is itself the bug being reported.
  Result<datalog::Program> parsed = datalog::Parse(program.text);
  if (!parsed.ok()) {
    diverge("parse", parsed.status().ToString());
    return out;
  }
  std::string name = std::string("fuzz-") + ProgramShapeName(program.shape) +
                     "-" + std::to_string(program.seed);
  Result<DatalogQuery> query =
      DatalogQuery::Create(*parsed, name, program.semantics);
  if (!query.ok()) {
    diverge("parse", query.status().ToString());
    return out;
  }

  // Stage 2: the syntactic classifier against the generator's construction.
  out.record.fragment = query->fragment().FragmentName();
  if (out.record.fragment != ExpectedFragment(program.shape)) {
    diverge("fragment", "shape " + std::string(ProgramShapeName(program.shape)) +
                            " classified as " + out.record.fragment +
                            ", expected " + ExpectedFragment(program.shape));
  }

  // Stage 3: the bounded ladder, with coherence cross-checks, witness
  // re-verification, and the fragment theorems as assertions.
  const ShapeGuarantee guarantee = GuaranteeFor(program.shape);
  ExhaustiveOptions base;
  base.domain_size = options.domain_size;
  base.max_facts_i = options.max_facts_i;
  base.fresh_values = options.fresh_values;
  base.threads = options.threads;
  Result<Ladder> ladder = ComputeLadder(*query, options.max_i, base);
  if (!ladder.ok()) {
    diverge("ladder", ladder.status().ToString());
  } else {
    out.record.ladder = *ladder;
    out.record.class_bucket = BucketOf(*ladder);
    bool prev_m = true, prev_distinct = true, prev_disjoint = true;
    for (const LadderRow& row : ladder->rows) {
      // Within a row the J-spaces nest: M's includes Mdistinct's includes
      // Mdisjoint's, so membership propagates left to right.
      if ((row.in_m && !row.in_distinct) ||
          (row.in_distinct && !row.in_disjoint)) {
        diverge("coherence",
                "row i=" + std::to_string(row.i) + " not nested: " +
                    ladder->ToString());
      }
      // Across rows a violation is monotone: row i's J-space sits inside
      // row i+1's, so membership can only be lost going down.
      if ((!prev_m && row.in_m) || (!prev_distinct && row.in_distinct) ||
          (!prev_disjoint && row.in_disjoint)) {
        diverge("coherence", "membership regained at row i=" +
                                 std::to_string(row.i) + ": " +
                                 ladder->ToString());
      }
      prev_m = row.in_m;
      prev_distinct = row.in_distinct;
      prev_disjoint = row.in_disjoint;
      struct {
        const std::optional<Counterexample>* witness;
        MonotonicityClass cls;
      } cells[3] = {
          {&row.m_witness, MonotonicityClass::kMonotone},
          {&row.distinct_witness, MonotonicityClass::kDomainDistinct},
          {&row.disjoint_witness, MonotonicityClass::kDomainDisjoint},
      };
      for (const auto& cell : cells) {
        if (!cell.witness->has_value()) continue;
        Status verified = VerifyWitness(*query, **cell.witness, cell.cls);
        if (!verified.ok()) diverge("ladder", verified.ToString());
      }
    }
    // The fragment theorems, as hard assertions (Prop. 5.1/5.2/5.4/5.6).
    bool in_m = true, in_distinct = true, in_disjoint = true;
    for (const LadderRow& row : ladder->rows) {
      in_m = in_m && row.in_m;
      in_distinct = in_distinct && row.in_distinct;
      in_disjoint = in_disjoint && row.in_disjoint;
    }
    if ((guarantee == ShapeGuarantee::kMonotone && !in_m) ||
        (guarantee == ShapeGuarantee::kDomainDistinct && !in_distinct) ||
        (guarantee == ShapeGuarantee::kDomainDisjoint && !in_disjoint)) {
      diverge("ladder", std::string("fragment theorem violated: shape ") +
                            ProgramShapeName(program.shape) + " promises " +
                            ShapeGuaranteeName(guarantee) + " but ladder says " +
                            out.record.class_bucket + "\n" +
                            ladder->ToString());
    }

    // Stage 4: symmetry differential — the canonicalizer's orbit pruning
    // must not change a single verdict or witness byte.
    if (options.differential) {
      ExhaustiveOptions full = base;
      full.symmetry = SymmetryMode::kOff;
      Result<Ladder> reference = ComputeLadder(*query, options.max_i, full);
      if (!reference.ok()) {
        diverge("differential", reference.status().ToString());
      } else if (reference->rows.size() != ladder->rows.size()) {
        diverge("differential", "row count mismatch");
      } else {
        for (size_t n = 0; n < ladder->rows.size(); ++n) {
          const LadderRow& a = ladder->rows[n];
          const LadderRow& b = reference->rows[n];
          if (a.in_m != b.in_m || a.in_distinct != b.in_distinct ||
              a.in_disjoint != b.in_disjoint ||
              !SameWitness(a.m_witness, b.m_witness) ||
              !SameWitness(a.distinct_witness, b.distinct_witness) ||
              !SameWitness(a.disjoint_witness, b.disjoint_witness)) {
            diverge("differential",
                    "symmetry on/off disagree at row i=" + std::to_string(a.i) +
                        ":\n" + ladder->ToString() + "\nvs\n" +
                        reference->ToString());
          }
        }
      }
    }
  }

  // Stage 5: preservation sweeps (Lemma 3.2: Hinj = M, E = Mdistinct).
  {
    monotonicity::PreservationOptions po;
    po.domain_size = options.domain_size;
    po.max_facts = options.max_facts_i;
    po.threads = options.threads;
    Result<std::optional<monotonicity::PreservationViolation>> e =
        FindPreservationViolation(*query,
                                  monotonicity::PreservationClass::kExtensions,
                                  po);
    if (!e.ok()) {
      diverge("preservation", e.status().ToString());
    } else if (e->has_value()) {
      if (guarantee == ShapeGuarantee::kMonotone ||
          guarantee == ShapeGuarantee::kDomainDistinct) {
        diverge("preservation",
                "E violation for a shape inside Mdistinct = E: " +
                    (*e)->ToString());
      } else {
        // Verify the witness: J is an induced piece of I with a fact in
        // Q(J) \ Q(I).
        const monotonicity::PreservationViolation& v = **e;
        bool subset = true;
        v.j.ForEachFact([&](uint32_t rel, const Tuple& t) {
          subset = subset && v.i.Contains(Fact(rel, t));
        });
        Result<Instance> qj = query->Eval(v.j);
        Result<Instance> qi = query->Eval(v.i);
        if (!subset || !qj.ok() || !qi.ok() ||
            !qj->Contains(v.not_preserved) || qi->Contains(v.not_preserved)) {
          diverge("preservation",
                  "unverifiable E violation: " + v.ToString());
        }
      }
    }
    // Hinj = M holds for *generic* monotone queries only: a body constant
    // pins a domain value, and an injective homomorphism that moves it is a
    // legitimate Hinj counterexample even though the query stays monotone.
    if (guarantee == ShapeGuarantee::kMonotone && !program.uses_constants) {
      Result<std::optional<monotonicity::PreservationViolation>> hinj =
          FindPreservationViolation(
              *query,
              monotonicity::PreservationClass::kInjectiveHomomorphisms, po);
      if (!hinj.ok()) {
        diverge("preservation", hinj.status().ToString());
      } else if (hinj->has_value()) {
        diverge("preservation",
                "Hinj violation for a monotone shape (Hinj = M): " +
                    (*hinj)->ToString());
      }
    }
  }

  // Stage 6: a fixed network-sized input; EvalStats under the stratified
  // engine (the well-founded shapes leave the counters at zero).
  Instance input = RandomInstance(query->input_schema(), options.network_facts,
                                  options.network_domain,
                                  MixSeed(program.seed, 0x1157));
  if (program.semantics == DatalogQuery::Semantics::kStratified) {
    datalog::EvalStats stats;
    Result<Instance> full =
        datalog::Evaluate(query->program(), input, {}, &stats);
    if (!full.ok()) {
      diverge("ladder", "network-input evaluation failed: " +
                            full.status().ToString());
    } else {
      out.record.stats = stats;
    }
  }

  // Stage 7: the coordination-free strategies (Theorems 4.3/4.4/4.5) on a
  // 2-node network — async-fair consistency, one seeded chaos fault plan,
  // and the BSP supersteps, all byte-identical to Q(I).
  if (options.run_strategies && guarantee != ShapeGuarantee::kNone &&
      out.divergences.empty()) {
    using transducer::TransducerNetwork;
    transducer::Network nodes{Value::FromInt(900), Value::FromInt(901)};
    std::unique_ptr<transducer::DistributionPolicy> policy;
    std::unique_ptr<transducer::Transducer> strategy;
    transducer::ModelOptions model = transducer::ModelOptions::PolicyAware();
    switch (guarantee) {
      case ShapeGuarantee::kMonotone:
        out.record.strategy = "broadcast";
        policy = std::make_unique<transducer::HashPolicy>(nodes);
        strategy = transducer::MakeBroadcastTransducer(&*query);
        model = transducer::ModelOptions::Original();
        break;
      case ShapeGuarantee::kDomainDistinct:
        out.record.strategy = "absence";
        policy = std::make_unique<transducer::HashPolicy>(nodes);
        strategy = transducer::MakeAbsenceTransducer(&*query);
        break;
      case ShapeGuarantee::kDomainDisjoint:
        out.record.strategy = "domain-request";
        policy = std::make_unique<transducer::HashDomainGuidedPolicy>(nodes);
        strategy = transducer::MakeDomainRequestTransducer(&*query);
        break;
      case ShapeGuarantee::kNone:
        break;
    }

    Result<Instance> expected = query->Eval(input);
    if (!expected.ok()) {
      diverge("strategy", expected.status().ToString());
      out.record.conformant = out.divergences.empty();
      return out;
    }

    transducer::NetworkFactory make_network =
        [&]() -> Result<std::unique_ptr<TransducerNetwork>> {
      auto network = std::make_unique<TransducerNetwork>(
          nodes, strategy.get(), policy.get(), model);
      CALM_RETURN_IF_ERROR(network->Initialize(input));
      return network;
    };

    // 7a: async fair runs (round-robin + seeded random) must agree with
    // each other and with the centralized evaluation.
    {
      std::unique_ptr<TransducerNetwork> holder;
      auto make_raw = [&]() -> Result<TransducerNetwork*> {
        CALM_ASSIGN_OR_RETURN(holder, make_network());
        return holder.get();
      };
      transducer::ConsistencyOptions co;
      co.random_runs = 2;
      co.seed = program.seed;
      Result<Instance> async_out = RunConsistently(make_raw, co);
      if (!async_out.ok()) {
        diverge("strategy", async_out.status().ToString());
      } else if (*async_out != *expected) {
        diverge("strategy", "async output " + FactsToString(*async_out) +
                                " != Q(I) " + FactsToString(*expected));
      }
    }

    // 7b: one seeded chaos fault plan under round-robin; a divergence is
    // ddmin-shrunk and shipped as a replayable trace.
    {
      net::FaultPlan plan = net::FaultPlan::Random(
          MixSeed(program.seed, 0xFA17), net::FaultProfile::Chaos());
      transducer::RunOptions ro;
      ro.faults = &plan;
      Result<std::unique_ptr<TransducerNetwork>> network = make_network();
      Result<transducer::RunResult> run =
          network.ok() ? RunToQuiescence(**network, ro)
                       : Result<transducer::RunResult>(network.status());
      if (!run.ok()) {
        diverge("fault", run.status().ToString());
      } else if (!run->quiesced || run->output != *expected) {
        transducer::RunOptions shrink_base;
        Result<std::vector<net::FaultEvent>> shrunk = ShrinkDivergence(
            make_network, *expected, shrink_base, plan.log());
        std::vector<net::FaultEvent> events =
            shrunk.ok() ? *shrunk : plan.log();
        // Re-run the minimal script for the final observation + schedule,
        // then ship the whole run as a replayable JSON trace.
        net::FaultPlan scripted = net::FaultPlan::Scripted(events);
        transducer::RunOptions replay;
        replay.faults = &scripted;
        replay.record_choices = true;
        transducer::TraceRecord trace;
        trace.scenario = name;
        trace.policy = policy->name();
        trace.model = model.ToString();
        for (Value node : nodes) trace.nodes.push_back(node.payload());
        input.ForEachFact([&](uint32_t rel, const Tuple& t) {
          trace.input.push_back(Fact(rel, t));
        });
        trace.events = events;
        expected->ForEachFact([&](uint32_t rel, const Tuple& t) {
          trace.expected_output.push_back(Fact(rel, t));
        });
        Result<std::unique_ptr<TransducerNetwork>> net2 = make_network();
        if (net2.ok()) {
          Result<transducer::RunResult> rerun =
              RunToQuiescence(**net2, replay);
          if (rerun.ok()) {
            trace.choices = rerun->choices;
            rerun->output.ForEachFact([&](uint32_t rel, const Tuple& t) {
              trace.observed_output.push_back(Fact(rel, t));
            });
          }
        }
        Result<std::string> json = SerializeTrace(trace);
        diverge("fault", json.ok() ? *json
                                   : "divergence under faults (trace "
                                     "serialization failed: " +
                                         json.status().ToString() + ")");
      }
    }

    // 7c: BSP supersteps — the deterministic bulk-synchronous run must be
    // byte-identical to the async-fair quiescent output for every
    // coordination-free program.
    {
      transducer::RunOptions bsp;
      bsp.semantics = transducer::NetworkSemantics::kBsp;
      Result<std::unique_ptr<TransducerNetwork>> network = make_network();
      Result<transducer::RunResult> run =
          network.ok() ? RunToQuiescence(**network, bsp)
                       : Result<transducer::RunResult>(network.status());
      if (!run.ok()) {
        diverge("bsp", run.status().ToString());
      } else if (!run->quiesced) {
        diverge("bsp", "BSP run did not quiesce");
      } else {
        out.record.bsp_supersteps = run->supersteps;
        if (run->output != *expected) {
          diverge("bsp", "BSP output " + FactsToString(run->output) +
                             " != async/Q(I) " + FactsToString(*expected));
        }
      }
    }
  }

  out.record.conformant = out.divergences.empty();
  return out;
}

// --- survey -----------------------------------------------------------------

namespace {

void WriteWitnessFile(const std::string& dir, const Divergence& divergence,
                      size_t index) {
  std::string path = dir + "/" + divergence.stage + "-" +
                     std::to_string(divergence.seed) + "-" +
                     std::to_string(index) +
                     (divergence.stage == "fault" ? ".json" : ".txt");
  std::ofstream out(path);
  out << divergence.detail << "\n";
}

}  // namespace

Result<SurveyStats> RunSurvey(const SurveyOptions& options) {
  Corpus corpus;
  if (!options.corpus_path.empty()) {
    CALM_RETURN_IF_ERROR(corpus.Open(options.corpus_path));
  }
  if (!options.witness_dir.empty()) {
    CALM_RETURN_IF_ERROR(durable::MakeDirs(options.witness_dir));
  }

  SurveyStats stats;
  for (size_t k = 0; k < options.programs; ++k) {
    uint64_t seed = MixSeed(options.seed, k);
    if (corpus.Contains(seed)) {
      ++stats.skipped;
      continue;
    }
    FuzzerOptions knobs = options.knobs;
    knobs.seed = seed;
    knobs.shape = static_cast<ProgramShape>(k % kProgramShapeCount);
    GeneratedProgram program = GenerateProgram(knobs);
    CALM_ASSIGN_OR_RETURN(Classification classified,
                          ClassifyProgram(program, options.classify));
    ++stats.programs;
    if (!classified.record.strategy.empty()) {
      ++stats.strategy_runs;
      if (classified.record.bsp_supersteps > 0) ++stats.bsp_runs;
    }
    CALM_RETURN_IF_ERROR(corpus.Add(classified.record));
    for (size_t d = 0; d < classified.divergences.size(); ++d) {
      CALM_RETURN_IF_ERROR(corpus.AddDivergence(classified.divergences[d]));
      if (!options.witness_dir.empty()) {
        WriteWitnessFile(options.witness_dir, classified.divergences[d], d);
      }
    }
  }

  // Histogram the *whole* corpus (replayed + new): a survey resumed after a
  // kill reports the same totals an uninterrupted run would.
  for (const auto& [seed, record] : corpus.records()) {
    (void)seed;
    ++stats.fragment_histogram[record.fragment];
    ++stats.class_histogram[record.class_bucket];
  }
  stats.disagreements = corpus.divergences().size();

  if (options.inject_misclassification) {
    // Negative control: an SP-shaped program wearing a "positive" label.
    // The pipeline must catch the lie twice over — the fragment oracle
    // (text is SP-Datalog, not Datalog) and the ladder (I = {F(0)},
    // J = {E(0,0)} retracts O(0), so the promised M membership fails).
    GeneratedProgram lie;
    lie.shape = ProgramShape::kPositive;
    lie.seed = 0xC0FFEEull;
    lie.text =
        "% negative control: SP text mislabeled as positive\n"
        "O(x0) :- F(x0), !E(x0, x0).\n"
        ".output O\n";
    CALM_ASSIGN_OR_RETURN(Classification control,
                          ClassifyProgram(lie, options.classify));
    bool fragment_caught = false, ladder_caught = false;
    for (const Divergence& d : control.divergences) {
      if (d.stage == "fragment") fragment_caught = true;
      if (d.stage == "ladder") ladder_caught = true;
    }
    stats.control_caught = fragment_caught && ladder_caught;
  }
  return stats;
}

}  // namespace calm::workload
