#ifndef CALM_WORKLOAD_INSTANCE_GEN_H_
#define CALM_WORKLOAD_INSTANCE_GEN_H_

#include <cstdint>
#include <map>

#include "base/instance.h"
#include "base/schema.h"

namespace calm::workload {

// Random instance over `schema`: `facts` distinct facts with values drawn
// uniformly from the integer range [base, base + domain_size).
Instance RandomInstance(const Schema& schema, size_t facts, size_t domain_size,
                        uint64_t seed, uint64_t base = 0);

// A random extension J of `i` with `facts` facts that is *domain distinct*
// from `i`: every fact of J contains at least one value outside adom(i).
// Fresh values are drawn from [fresh_base, fresh_base + fresh_count); old
// values are reused from adom(i) when `i` is nonempty.
Instance RandomDomainDistinctExtension(const Schema& schema, const Instance& i,
                                       size_t facts, size_t fresh_count,
                                       uint64_t seed,
                                       uint64_t fresh_base = 1000000);

// A random extension J of `i` with `facts` facts that is *domain disjoint*
// from `i`: adom(J) and adom(i) do not intersect.
Instance RandomDomainDisjointExtension(const Schema& schema, const Instance& i,
                                       size_t facts, size_t fresh_count,
                                       uint64_t seed,
                                       uint64_t fresh_base = 1000000);

// A random permutation of adom(i) (as a value map), for genericity tests.
std::map<Value, Value> RandomPermutation(const Instance& i, uint64_t seed);

}  // namespace calm::workload

#endif  // CALM_WORKLOAD_INSTANCE_GEN_H_
