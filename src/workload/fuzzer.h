#ifndef CALM_WORKLOAD_FUZZER_H_
#define CALM_WORKLOAD_FUZZER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/durable.h"
#include "base/status.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "monotonicity/ladder.h"

// ---------------------------------------------------------------------------
// Program fuzzer (see DESIGN.md, "Program fuzzer and the BSP semantics"): a
// seeded generator of random Datalog¬ programs shaped to land in each of the
// paper's syntactic fragments, a classifier that runs every generated program
// through the checker ladder, the preservation sweeps, and the Theorem
// 4.3/4.4/4.5 coordination-free strategies (async-fair AND bulk-synchronous,
// cross-checked byte-for-byte), and a persisted corpus of classified programs
// on the shared durable record format.
//
// The generator is *constructive*, not rejection-sampling: each ProgramShape
// forces the distinguishing syntactic feature of its fragment (an inequality,
// a negated edb atom, a disconnected last-stratum rule, the win-move cycle),
// so FragmentName() is deterministic per shape for every seed — which turns
// the syntactic classifier itself into an oracle the fuzzer can test.
//
// Soundness note on constants: the fragment theorems (Prop. 5.2/5.4/5.6)
// hold for the *generic* fragments. A constant inside a negated atom breaks
// them — O(x) :- F(x), !E(x, 5) is SP-shaped yet outside Mdistinct, since
// J = {E(1, 5)} is domain-distinct from I = {F(1)} (5 is not in adom(I)) and
// retracts O(1). The generator therefore emits guarantee-carrying shapes
// (SP, connected, semi-connected, win-move) entirely constant-free and only
// sprinkles constants into the guarantee-free shapes.
// ---------------------------------------------------------------------------

namespace calm::workload {

// The shapes the generator can emit, one per rung of the Figure 2 fragment
// column. kProgramShapeCount indexes the round-robin in RunSurvey.
enum class ProgramShape : uint8_t {
  kPositive = 0,   // positive Datalog            -> "Datalog"
  kInequality,     // Datalog(!=)                 -> "Datalog(!=)"
  kSemiPositive,   // SP-Datalog                  -> "SP-Datalog"
  kConnected,      // con-Datalog¬                -> "con-Datalog~"
  kSemiConnected,  // semicon-Datalog¬            -> "semicon-Datalog~"
  kStratified,     // stratified, disconnected ¬  -> "Datalog~"
  kWinMove,        // win-move variants (wf)      -> "unstratifiable"
};
inline constexpr size_t kProgramShapeCount = 7;

// "positive", "inequality", ...
const char* ProgramShapeName(ProgramShape shape);

// The monotonicity-class guarantee the fragment theorems attach to a shape —
// what the classifier *asserts* (a violation is a bug in the generator, the
// checker, or the theorems' reproduction) rather than merely records.
enum class ShapeGuarantee : uint8_t {
  kMonotone,        // Datalog(!=) subset of M (Prop. 5.1)
  kDomainDistinct,  // SP-Datalog subset of Mdistinct (Prop. 5.2)
  kDomainDisjoint,  // (semi)con-Datalog¬, win-move subset of Mdisjoint
  kNone,            // stratified Datalog¬ in general promises nothing
};
ShapeGuarantee GuaranteeFor(ProgramShape shape);
const char* ShapeGuaranteeName(ShapeGuarantee guarantee);

// Generation knobs. All shapes respect the bounds; each shape additionally
// forces the minimum structure its fragment needs (so e.g. max_rules is a
// ceiling on *extra* rules, not on the forced core).
struct FuzzerOptions {
  uint64_t seed = 0;
  ProgramShape shape = ProgramShape::kPositive;
  size_t max_arity = 2;       // idb arity in [1, max_arity]
  size_t max_strata = 2;      // idb predicates P0..P{s-1} feeding O
  size_t max_rules = 3;       // extra rules beyond the forced core
  size_t max_body_atoms = 3;  // positive atoms per rule body
  size_t constants = 2;       // constant pool {0..constants-1}; guarded shapes
                              // ignore this (they are constant-free)
};

struct GeneratedProgram {
  ProgramShape shape = ProgramShape::kPositive;
  uint64_t seed = 0;
  datalog::DatalogQuery::Semantics semantics =
      datalog::DatalogQuery::Semantics::kStratified;
  std::string text;  // parseable program source, ".output O" included
  // True when any rule body carries a constant symbol. Such programs are
  // still monotone but no longer generic, so the classifier skips the
  // Hinj-preservation assertion for them (an injective homomorphism that
  // moves the constant is a legitimate counterexample, not a bug).
  bool uses_constants = false;
};

// Deterministic: same options -> byte-identical text.
GeneratedProgram GenerateProgram(const FuzzerOptions& options);

// One disagreement between two things that must agree: a checker verdict and
// a fragment theorem, two symmetry modes, async and BSP, ... `stage` names
// the cross-check ("fragment", "ladder", "coherence", "differential",
// "preservation", "strategy", "bsp", "fault"); `detail` is human-readable.
struct Divergence {
  uint64_t seed = 0;
  std::string stage;
  std::string detail;
};

// Classification bounds. The defaults keep one program's full ladder +
// sweeps + strategy runs around tens of milliseconds.
struct ClassifyOptions {
  size_t max_i = 2;        // ladder rows
  size_t domain_size = 2;  // checker instance space
  size_t max_facts_i = 2;
  size_t fresh_values = 2;
  // Re-run the ladder with symmetry reduction off and assert byte-identical
  // rows (the fuzzer doubling as a differential harness for the canonicalizer).
  bool differential = true;
  // Run the Theorem 4.3/4.4/4.5 strategy transducers (async + BSP + one
  // seeded fault plan) for guarantee-carrying shapes.
  bool run_strategies = true;
  size_t network_facts = 4;   // random input for the strategy runs
  size_t network_domain = 4;
  size_t threads = 1;  // checker threads (1 keeps per-program cost flat)
};

// Everything the corpus remembers about one classified program.
struct CorpusRecord {
  uint64_t seed = 0;
  ProgramShape shape = ProgramShape::kPositive;
  datalog::DatalogQuery::Semantics semantics =
      datalog::DatalogQuery::Semantics::kStratified;
  std::string text;
  std::string fragment;      // FragmentName() of the parsed program
  std::string class_bucket;  // "M" | "Mdistinct" | "Mdisjoint" |
                             // "beyond-Mdisjoint" (from the ladder)
  std::string strategy;      // "broadcast" | "absence" | "domain-request" | ""
  bool conformant = false;   // no divergence at any stage
  uint64_t bsp_supersteps = 0;  // quiescent BSP run length (0 = no run)
  datalog::EvalStats stats;     // stratified evaluation on the network input
  monotonicity::Ladder ladder;
};

// Byte codecs for the corpus WAL (tag "calm.corpus"). Payloads start with a
// kind byte: 1 = program record, 2 = divergence record.
inline constexpr std::string_view kCorpusTag = "calm.corpus";
inline constexpr uint8_t kCorpusKindProgram = 1;
inline constexpr uint8_t kCorpusKindDivergence = 2;

void EncodeCorpusRecord(const CorpusRecord& record, durable::ByteWriter* w);
bool DecodeCorpusRecord(durable::ByteReader* r, CorpusRecord* out);
void EncodeDivergenceRecord(const Divergence& divergence,
                            durable::ByteWriter* w);
bool DecodeDivergenceRecord(durable::ByteReader* r, Divergence* out);

// The persisted corpus: an append-only WAL of classified programs keyed by
// generator seed. Open replays prior records (repairing a torn tail), so a
// survey killed anywhere resumes without reclassifying: Contains(seed) skips
// finished programs. Append fsyncs before returning (LogWriter discipline).
class Corpus {
 public:
  Status Open(const std::string& path);

  bool Contains(uint64_t seed) const { return records_.count(seed) > 0; }
  const std::map<uint64_t, CorpusRecord>& records() const { return records_; }
  const std::vector<Divergence>& divergences() const { return divergences_; }

  Status Add(const CorpusRecord& record);
  Status AddDivergence(const Divergence& divergence);

 private:
  durable::LogWriter log_;
  std::map<uint64_t, CorpusRecord> records_;
  std::vector<Divergence> divergences_;
};

struct Classification {
  CorpusRecord record;
  std::vector<Divergence> divergences;  // empty iff record.conformant
};

// Runs one generated program through the whole checker ladder: parse +
// fragment oracle, bounded ladder with coherence cross-checks and witness
// re-verification, symmetry differential, preservation sweeps (Lemma 3.2's
// E and Hinj), EvalStats, and — for guarantee-carrying shapes — the matching
// strategy transducer under async-fair schedules, one seeded fault plan, and
// BSP supersteps, asserting all quiescent outputs byte-identical to Q(I).
// Divergences are *collected*, not early-exited: one bad stage still lets
// later stages report.
Result<Classification> ClassifyProgram(const GeneratedProgram& program,
                                       const ClassifyOptions& options);

struct SurveyOptions {
  uint64_t seed = 0;
  size_t programs = 50;
  ClassifyOptions classify;
  FuzzerOptions knobs;  // seed/shape overwritten per program
  std::string corpus_path;  // empty = in-memory only (no resume)
  std::string witness_dir;  // where shrunk divergence traces land (empty = off)
  // Negative control: classify one canned mislabeled program (an SP-shaped
  // text claiming ProgramShape::kPositive) and demand the pipeline catches
  // it. Not persisted to the corpus.
  bool inject_misclassification = false;
};

struct SurveyStats {
  size_t programs = 0;  // classified this run (skipped not included)
  size_t skipped = 0;   // already in the corpus (resume)
  std::map<std::string, size_t> fragment_histogram;  // over the whole corpus
  std::map<std::string, size_t> class_histogram;
  size_t disagreements = 0;  // total divergences in the whole corpus
  size_t strategy_runs = 0;
  size_t bsp_runs = 0;
  bool control_caught = false;  // inject_misclassification only
};

// Generates `programs` programs (seed mixed with the index, shapes
// round-robin), classifies each, persists records + divergences, and
// histograms the *entire* corpus (replayed + new), so resumed surveys report
// the same totals an uninterrupted run would.
Result<SurveyStats> RunSurvey(const SurveyOptions& options);

}  // namespace calm::workload

#endif  // CALM_WORKLOAD_FUZZER_H_
