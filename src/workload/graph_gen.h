#ifndef CALM_WORKLOAD_GRAPH_GEN_H_
#define CALM_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>
#include <random>

#include "base/instance.h"
#include "base/schema.h"

namespace calm::workload {

// Generators for directed graphs over the binary edge relation "E", the
// schema every separating example in the paper is defined over. All
// generators are deterministic given the seed / parameters; vertices are
// integer Values starting at `base`.

// The schema {E/2}.
const Schema& GraphSchema();

// E(i, i+1) for i in [base, base + n - 1): a path on n vertices.
Instance Path(size_t n, uint64_t base = 0);

// A directed cycle on n vertices.
Instance Cycle(size_t n, uint64_t base = 0);

// A complete directed clique (both directions, no self loops) on n vertices.
Instance Clique(size_t n, uint64_t base = 0);

// A star: edges from center `base` to spokes base+1 .. base+spokes.
Instance Star(size_t spokes, uint64_t base = 0);

// Erdos-Renyi: each ordered pair (no self loops) kept with probability p.
Instance RandomGraph(size_t n, double p, uint64_t seed, uint64_t base = 0);

// Random graph with exactly m distinct edges (no self loops).
Instance RandomGraphM(size_t n, size_t m, uint64_t seed, uint64_t base = 0);

// Union of `parts` copies of `make(part_size, base_i)` on pairwise disjoint
// vertex ranges (each component is domain disjoint from the others).
Instance DisjointUnion(size_t parts, size_t part_size,
                       Instance (*make)(size_t, uint64_t), uint64_t base = 0);

// Complete bipartite graph: edges from each of the `left` vertices to each
// of the `right` vertices.
Instance Bipartite(size_t left, size_t right, uint64_t base = 0);

// A w x h grid with edges rightward and downward (a DAG).
Instance Grid(size_t w, size_t h, uint64_t base = 0);

// Random layered DAG: `layers` layers of `width` vertices; each vertex gets
// edges to `out_degree` random vertices of the next layer.
Instance LayeredDag(size_t layers, size_t width, size_t out_degree,
                    uint64_t seed, uint64_t base = 0);

}  // namespace calm::workload

#endif  // CALM_WORKLOAD_GRAPH_GEN_H_
