#ifndef CALM_QUERIES_GRAPH_QUERIES_H_
#define CALM_QUERIES_GRAPH_QUERIES_H_

#include <memory>

#include "base/query.h"

namespace calm::queries {

// Native implementations of every query the paper uses as a witness
// (Theorem 3.1, Example 5.1, and the win-move discussion). All are over the
// binary edge relation E unless noted; all are generic by construction and
// independent of the Datalog engine, so engine-vs-native cross-validation is
// meaningful.

// Transitive closure of E into T (monotone; in Datalog).
std::unique_ptr<Query> MakeTransitiveClosure();

// Q_TC: the *complement* of the transitive closure: O(a, b) for a, b in
// adom(I) with no nonempty path from a to b. In Mdisjoint \ Mdistinct
// (Theorem 3.1(1)).
std::unique_ptr<Query> MakeComplementTransitiveClosure();

// Q^k_clique: outputs the edge relation into O when, ignoring edge
// directions, no clique on k vertices exists; the empty relation otherwise.
// Q^{i+2}_clique is in M^i_distinct \ M^{i+1}_distinct (Theorem 3.1(3)).
std::unique_ptr<Query> MakeCliqueQuery(size_t k);

// Q^k_star: outputs the edge relation into O when no vertex has k distinct
// neighbors (ignoring direction); the empty relation otherwise.
// Q^{i+1}_star is in M^i_disjoint \ M^{i+1}_disjoint (Theorem 3.1(4,6)).
std::unique_ptr<Query> MakeStarQuery(size_t k);

// Q^j_duplicate over binary relations R1..Rj: outputs R1 into O when the
// intersection of all j relations is empty; the empty relation otherwise.
// In M^i_distinct for i < j, but not in M^j_disjoint (Theorem 3.1(7)).
std::unique_ptr<Query> MakeDuplicateQuery(size_t j);

// Outputs all triangles (as O(x, y, z)) on condition that no two domain-
// disjoint triangles exist; otherwise the empty relation. Computable but not
// in Mdisjoint (Theorem 3.1(1), third separation).
std::unique_ptr<Query> MakeTrianglesUnlessTwoDisjoint();

// Win-move over the binary Move relation, under the well-founded semantics:
// O(x) iff position x is won. Non-monotone; in Mdisjoint (Zinn et al.).
// This native version uses retrograde game analysis.
std::unique_ptr<Query> MakeWinMove();

// Simple monotone join E |x| E into O(x, z) (used as an M-class specimen).
std::unique_ptr<Query> MakeTwoHopJoin();

}  // namespace calm::queries

#endif  // CALM_QUERIES_GRAPH_QUERIES_H_
