#include "queries/graph_queries.h"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

namespace calm::queries {

namespace {

Schema GraphSchema() { return Schema({{"E", 2}}); }

// The relation ids every query touches per fact, interned once (the symbol
// table lookup is measurable inside the checker's inner pair loop).
uint32_t RelE() {
  static const uint32_t id = InternName("E");
  return id;
}
uint32_t RelO() {
  static const uint32_t id = InternName("O");
  return id;
}
uint32_t RelT() {
  static const uint32_t id = InternName("T");
  return id;
}

// Directed adjacency lists from the E relation.
std::map<Value, std::vector<Value>> Adjacency(const Instance& in) {
  std::map<Value, std::vector<Value>> adj;
  for (const Tuple& t : in.TuplesOf(RelE())) adj[t[0]].push_back(t[1]);
  return adj;
}

// Undirected neighbor sets (excluding self loops).
std::map<Value, std::set<Value>> UndirectedNeighbors(const Instance& in) {
  std::map<Value, std::set<Value>> nbr;
  for (const Tuple& t : in.TuplesOf(RelE())) {
    if (t[0] != t[1]) {
      nbr[t[0]].insert(t[1]);
      nbr[t[1]].insert(t[0]);
    }
  }
  return nbr;
}

// The transitive closure of E, flat form: `verts` is the sorted vertex set
// (== adom(I) for instances over the graph schema, since every value is an
// E endpoint) and `reach` the sorted pairs (a, b) connected by a nonempty
// directed path. Uses a dense vertex numbering and flat adjacency/seen
// vectors: this runs once per (I, J) pair inside the exhaustive
// monotonicity sweeps, where rb-tree node churn used to dominate the whole
// check.
struct Closure {
  std::vector<Value> verts;
  std::vector<std::pair<Value, Value>> reach;
};

// Returns a thread-local scratch Closure: the checker sweeps call this once
// per (I, J) pair, and the two output vectors were the only allocations on
// that path. Callers consume the result before the next call.
const Closure& ReachableClosure(const Instance& in) {
  static thread_local Closure scratch;
  Closure& c = scratch;
  c.verts.clear();
  c.reach.clear();
  const TupleSet& edges = in.TuplesOf(RelE());
  std::vector<Value>& verts = c.verts;
  verts.reserve(edges.size() * 2);
  for (const Tuple& t : edges) {
    verts.push_back(t[0]);
    verts.push_back(t[1]);
  }
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  size_t n = verts.size();
  auto index_of = [&](Value v) {
    return std::lower_bound(verts.begin(), verts.end(), v) - verts.begin();
  };

  std::vector<std::pair<Value, Value>>& reach = c.reach;
  if (n <= 64) {
    // Bitmask closure: adj[v] is the successor set of v as a 64-bit mask;
    // each start's reachable set is saturated by OR-ing in the successor
    // masks of newly reached vertices. No allocation beyond the output.
    uint64_t adj[64] = {};
    for (const Tuple& t : edges) {
      adj[index_of(t[0])] |= uint64_t{1} << index_of(t[1]);
    }
    for (size_t s = 0; s < n; ++s) {
      uint64_t reached = adj[s];
      uint64_t frontier = reached;
      while (frontier != 0) {
        uint64_t next = 0;
        while (frontier != 0) {
          int v = __builtin_ctzll(frontier);
          frontier &= frontier - 1;
          next |= adj[v];
        }
        frontier = next & ~reached;
        reached |= next;
      }
      // Emitting reached vertices in index order keeps `reach` sorted.
      while (reached != 0) {
        int v = __builtin_ctzll(reached);
        reached &= reached - 1;
        reach.emplace_back(verts[s], verts[v]);
      }
    }
    return c;
  }

  std::vector<std::vector<int>> adj(n);
  for (const Tuple& t : edges) {
    adj[index_of(t[0])].push_back(static_cast<int>(index_of(t[1])));
  }
  std::vector<char> seen(n);
  std::vector<int> stack;
  for (size_t s = 0; s < n; ++s) {
    std::fill(seen.begin(), seen.end(), 0);
    stack.clear();
    for (int w : adj[s]) {
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int w : adj[v]) {
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
    // Emitting reached vertices in index order keeps `reach` sorted.
    for (size_t v = 0; v < n; ++v) {
      if (seen[v]) reach.emplace_back(verts[s], verts[v]);
    }
  }
  return c;
}

// Whether an undirected k-clique exists (backtracking extension search).
bool HasClique(const std::map<Value, std::set<Value>>& nbr, size_t k) {
  if (k <= 1) return k == 1 ? !nbr.empty() : true;
  std::vector<Value> vertices;
  for (const auto& [v, ns] : nbr) vertices.push_back(v);

  std::vector<Value> clique;
  // Extends `clique` using candidates from `from` onward.
  std::function<bool(size_t)> extend = [&](size_t from) -> bool {
    if (clique.size() == k) return true;
    for (size_t i = from; i < vertices.size(); ++i) {
      Value v = vertices[i];
      const std::set<Value>& ns = nbr.at(v);
      if (ns.size() + 1 < k) continue;  // degree too small
      bool adjacent_to_all = std::all_of(
          clique.begin(), clique.end(),
          [&](Value c) { return ns.count(c) > 0; });
      if (!adjacent_to_all) continue;
      clique.push_back(v);
      if (extend(i + 1)) return true;
      clique.pop_back();
    }
    return false;
  };
  return extend(0);
}

// All directed triangles x -> y -> z -> x with pairwise distinct vertices.
std::vector<std::array<Value, 3>> DirectedTriangles(const Instance& in) {
  std::map<Value, std::vector<Value>> adj = Adjacency(in);
  std::set<std::pair<Value, Value>> edges;
  for (const Tuple& t : in.TuplesOf(RelE())) edges.emplace(t[0], t[1]);
  std::vector<std::array<Value, 3>> out;
  for (const auto& [x, outs] : adj) {
    for (Value y : outs) {
      if (y == x) continue;
      auto it = adj.find(y);
      if (it == adj.end()) continue;
      for (Value z : it->second) {
        if (z == x || z == y) continue;
        if (edges.count({z, x}) > 0) out.push_back({x, y, z});
      }
    }
  }
  return out;
}

Instance EdgesAsOutput(const Instance& in) {
  Instance out;
  for (const Tuple& t : in.TuplesOf(RelE())) out.Insert(Fact(RelO(), t));
  return out;
}

}  // namespace

std::unique_ptr<Query> MakeTransitiveClosure() {
  return std::make_unique<NativeQuery>(
      "TC", GraphSchema(), Schema({{"T", 2}}),
      NativeQuery::FactsFn(
          [](const Instance& in, std::vector<Fact>* out) -> Status {
            for (const auto& [a, b] : ReachableClosure(in).reach) {
              out->emplace_back(RelT(), Tuple{a, b});  // reach is sorted
            }
            return Status::Ok();
          }));
}

std::unique_ptr<Query> MakeComplementTransitiveClosure() {
  return std::make_unique<NativeQuery>(
      "Q_TC", GraphSchema(), Schema({{"O", 2}}),
      NativeQuery::FactsFn(
          [](const Instance& in, std::vector<Fact>* out) -> Status {
            const Closure& c = ReachableClosure(in);
            // The adom x adom scan visits pairs in sorted order and `reach`
            // is sorted, so one merge pointer replaces a binary search per
            // pair; emission stays sorted.
            auto it = c.reach.begin();
            const auto end = c.reach.end();
            for (Value a : c.verts) {
              for (Value b : c.verts) {
                if (it != end && it->first == a && it->second == b) {
                  ++it;
                  continue;
                }
                out->emplace_back(RelO(), Tuple{a, b});
              }
            }
            return Status::Ok();
          }));
}

std::unique_ptr<Query> MakeCliqueQuery(size_t k) {
  return std::make_unique<NativeQuery>(
      "Q_clique_" + std::to_string(k), GraphSchema(), Schema({{"O", 2}}),
      [k](const Instance& in) -> Result<Instance> {
        if (HasClique(UndirectedNeighbors(in), k)) return Instance();
        return EdgesAsOutput(in);
      });
}

std::unique_ptr<Query> MakeStarQuery(size_t k) {
  return std::make_unique<NativeQuery>(
      "Q_star_" + std::to_string(k), GraphSchema(), Schema({{"O", 2}}),
      [k](const Instance& in) -> Result<Instance> {
        for (const auto& [center, nbrs] : UndirectedNeighbors(in)) {
          if (nbrs.size() >= k) return Instance();
        }
        return EdgesAsOutput(in);
      });
}

std::unique_ptr<Query> MakeDuplicateQuery(size_t j) {
  Schema input;
  for (size_t r = 1; r <= j; ++r) {
    Status s = input.AddRelation("R" + std::to_string(r), 2);
    (void)s;
  }
  return std::make_unique<NativeQuery>(
      "Q_duplicate_" + std::to_string(j), input, Schema({{"O", 2}}),
      [j](const Instance& in) -> Result<Instance> {
        // Intersection of all R1..Rj.
        const TupleSet& r1 = in.TuplesOf(InternName("R1"));
        std::set<Tuple> inter(r1.begin(), r1.end());
        for (size_t r = 2; r <= j && !inter.empty(); ++r) {
          const TupleSet& next =
              in.TuplesOf(InternName("R" + std::to_string(r)));
          std::set<Tuple> kept;
          for (const Tuple& t : inter) {
            if (next.count(t) > 0) kept.insert(t);
          }
          inter = std::move(kept);
        }
        Instance out;
        if (inter.empty()) {
          for (const Tuple& t : in.TuplesOf(InternName("R1"))) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
}

std::unique_ptr<Query> MakeTrianglesUnlessTwoDisjoint() {
  return std::make_unique<NativeQuery>(
      "Q_triangles_unless_two_disjoint", GraphSchema(), Schema({{"O", 3}}),
      [](const Instance& in) -> Result<Instance> {
        std::vector<std::array<Value, 3>> tris = DirectedTriangles(in);
        for (const auto& a : tris) {
          for (const auto& b : tris) {
            bool disjoint = true;
            for (Value va : a) {
              for (Value vb : b) {
                if (va == vb) disjoint = false;
              }
            }
            if (disjoint) return Instance();  // two disjoint triangles
          }
        }
        Instance out;
        for (const auto& t : tris) out.Insert(Fact("O", {t[0], t[1], t[2]}));
        return out;
      });
}

std::unique_ptr<Query> MakeWinMove() {
  return std::make_unique<NativeQuery>(
      "win-move", Schema({{"Move", 2}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        // Retrograde analysis: lost = every move leads to a won position
        // (vacuously true for sinks); won = some move leads to a lost
        // position. Positions never classified are drawn (undefined in the
        // well-founded model) and are not output.
        std::map<Value, std::vector<Value>> adj;
        std::set<Value> positions;
        for (const Tuple& t : in.TuplesOf(InternName("Move"))) {
          adj[t[0]].push_back(t[1]);
          positions.insert(t[0]);
          positions.insert(t[1]);
        }
        std::set<Value> won;
        std::set<Value> lost;
        bool changed = true;
        while (changed) {
          changed = false;
          for (Value p : positions) {
            if (won.count(p) > 0 || lost.count(p) > 0) continue;
            auto it = adj.find(p);
            bool any_lost = false;
            bool all_won = true;
            if (it != adj.end()) {
              for (Value q : it->second) {
                if (lost.count(q) > 0) any_lost = true;
                if (won.count(q) == 0) all_won = false;
              }
            }
            if (any_lost) {
              won.insert(p);
              changed = true;
            } else if (all_won) {  // includes sinks (no moves)
              lost.insert(p);
              changed = true;
            }
          }
        }
        Instance out;
        for (Value p : won) out.Insert(Fact("O", {p}));
        return out;
      });
}

std::unique_ptr<Query> MakeTwoHopJoin() {
  return std::make_unique<NativeQuery>(
      "two-hop", GraphSchema(), Schema({{"O", 2}}),
      [](const Instance& in) -> Result<Instance> {
        std::map<Value, std::vector<Value>> adj = Adjacency(in);
        Instance out;
        for (const auto& [x, ys] : adj) {
          for (Value y : ys) {
            auto it = adj.find(y);
            if (it == adj.end()) continue;
            for (Value z : it->second) out.Insert(Fact("O", {x, z}));
          }
        }
        return out;
      });
}

}  // namespace calm::queries
