#include "queries/graph_queries.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/evaluator.h"

namespace calm::queries {

namespace {

Schema GraphSchema() { return Schema({{"E", 2}}); }

// The relation ids every query touches per fact, interned once (the symbol
// table lookup is measurable inside the checker's inner pair loop).
uint32_t RelE() {
  static const uint32_t id = InternName("E");
  return id;
}
uint32_t RelO() {
  static const uint32_t id = InternName("O");
  return id;
}
uint32_t RelT() {
  static const uint32_t id = InternName("T");
  return id;
}

// Directed adjacency lists from the E relation.
std::map<Value, std::vector<Value>> Adjacency(const Instance& in) {
  std::map<Value, std::vector<Value>> adj;
  for (const Tuple& t : in.TuplesOf(RelE())) adj[t[0]].push_back(t[1]);
  return adj;
}

// Undirected neighbor sets (excluding self loops).
std::map<Value, std::set<Value>> UndirectedNeighbors(const Instance& in) {
  std::map<Value, std::set<Value>> nbr;
  for (const Tuple& t : in.TuplesOf(RelE())) {
    if (t[0] != t[1]) {
      nbr[t[0]].insert(t[1]);
      nbr[t[1]].insert(t[0]);
    }
  }
  return nbr;
}

// The transitive closure of E, flat form: `verts` is the sorted vertex set
// (== adom(I) for instances over the graph schema, since every value is an
// E endpoint) and `reach` the sorted pairs (a, b) connected by a nonempty
// directed path. Uses a dense vertex numbering and flat adjacency/seen
// vectors: this runs once per (I, J) pair inside the exhaustive
// monotonicity sweeps, where rb-tree node churn used to dominate the whole
// check.
struct Closure {
  std::vector<Value> verts;
  std::vector<std::pair<Value, Value>> reach;
};

// Returns a thread-local scratch Closure: the checker sweeps call this once
// per (I, J) pair, and the two output vectors were the only allocations on
// that path. Callers consume the result before the next call.
const Closure& ReachableClosure(const Instance& in) {
  static thread_local Closure scratch;
  Closure& c = scratch;
  c.verts.clear();
  c.reach.clear();
  const TupleSet& edges = in.TuplesOf(RelE());
  std::vector<Value>& verts = c.verts;
  verts.reserve(edges.size() * 2);
  for (const Tuple& t : edges) {
    verts.push_back(t[0]);
    verts.push_back(t[1]);
  }
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  size_t n = verts.size();
  auto index_of = [&](Value v) {
    return std::lower_bound(verts.begin(), verts.end(), v) - verts.begin();
  };

  std::vector<std::pair<Value, Value>>& reach = c.reach;
  if (n <= 64) {
    // Bitmask closure: adj[v] is the successor set of v as a 64-bit mask;
    // each start's reachable set is saturated by OR-ing in the successor
    // masks of newly reached vertices. No allocation beyond the output.
    uint64_t adj[64] = {};
    for (const Tuple& t : edges) {
      adj[index_of(t[0])] |= uint64_t{1} << index_of(t[1]);
    }
    for (size_t s = 0; s < n; ++s) {
      uint64_t reached = adj[s];
      uint64_t frontier = reached;
      while (frontier != 0) {
        uint64_t next = 0;
        while (frontier != 0) {
          int v = __builtin_ctzll(frontier);
          frontier &= frontier - 1;
          next |= adj[v];
        }
        frontier = next & ~reached;
        reached |= next;
      }
      // Emitting reached vertices in index order keeps `reach` sorted.
      while (reached != 0) {
        int v = __builtin_ctzll(reached);
        reached &= reached - 1;
        reach.emplace_back(verts[s], verts[v]);
      }
    }
    return c;
  }

  std::vector<std::vector<int>> adj(n);
  for (const Tuple& t : edges) {
    adj[index_of(t[0])].push_back(static_cast<int>(index_of(t[1])));
  }
  std::vector<char> seen(n);
  std::vector<int> stack;
  for (size_t s = 0; s < n; ++s) {
    std::fill(seen.begin(), seen.end(), 0);
    stack.clear();
    for (int w : adj[s]) {
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int w : adj[v]) {
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
    // Emitting reached vertices in index order keeps `reach` sorted.
    for (size_t v = 0; v < n; ++v) {
      if (seen[v]) reach.emplace_back(verts[s], verts[v]);
    }
  }
  return c;
}

// Whether an undirected k-clique exists (backtracking extension search).
bool HasClique(const std::map<Value, std::set<Value>>& nbr, size_t k) {
  if (k <= 1) return k == 1 ? !nbr.empty() : true;
  std::vector<Value> vertices;
  for (const auto& [v, ns] : nbr) vertices.push_back(v);

  std::vector<Value> clique;
  // Extends `clique` using candidates from `from` onward.
  std::function<bool(size_t)> extend = [&](size_t from) -> bool {
    if (clique.size() == k) return true;
    for (size_t i = from; i < vertices.size(); ++i) {
      Value v = vertices[i];
      const std::set<Value>& ns = nbr.at(v);
      if (ns.size() + 1 < k) continue;  // degree too small
      bool adjacent_to_all = std::all_of(
          clique.begin(), clique.end(),
          [&](Value c) { return ns.count(c) > 0; });
      if (!adjacent_to_all) continue;
      clique.push_back(v);
      if (extend(i + 1)) return true;
      clique.pop_back();
    }
    return false;
  };
  return extend(0);
}

// All directed triangles x -> y -> z -> x with pairwise distinct vertices.
std::vector<std::array<Value, 3>> DirectedTriangles(const Instance& in) {
  std::map<Value, std::vector<Value>> adj = Adjacency(in);
  std::set<std::pair<Value, Value>> edges;
  for (const Tuple& t : in.TuplesOf(RelE())) edges.emplace(t[0], t[1]);
  std::vector<std::array<Value, 3>> out;
  for (const auto& [x, outs] : adj) {
    for (Value y : outs) {
      if (y == x) continue;
      auto it = adj.find(y);
      if (it == adj.end()) continue;
      for (Value z : it->second) {
        if (z == x || z == y) continue;
        if (edges.count({z, x}) > 0) out.push_back({x, y, z});
      }
    }
  }
  return out;
}

Instance EdgesAsOutput(const Instance& in) {
  Instance out;
  for (const Tuple& t : in.TuplesOf(RelE())) out.Insert(Fact(RelO(), t));
  return out;
}

// Incremental union evaluation for the closure queries TC and Q_TC: the
// base reachability bit matrix is decoded once from base_facts — Q(i) is
// exactly that matrix (or its complement), and the checker hands it to
// every FirstRetracted call, so re-running the base closure here would be
// pure waste. Each J then only merges its endpoints into the vertex set,
// ORs its edges into the adjacency masks, and re-saturates — no Instance
// materialization, no output-fact emission, no merge. First-retraction
// scans the base pairs in their output order directly off the two matrices,
// so the reported fact is byte-identical to the from-scratch sorted merge:
//   Q_TC: first base pair (a, b) with !base_reach(a, b) that became
//         reachable in the union (the query is antitone in reach);
//   TC:   first base pair with base_reach(a, b) missing from the union —
//         always none, since reach only grows, but computed honestly.
// Bases or unions past 64 vertices delegate to the overlay evaluator (the
// checker sweeps run at ≤ ~8 values; the cap is a budget, not a limit).
class ClosureUnionEvaluator : public UnionEvaluator {
 public:
  ClosureUnionEvaluator(const Query& query, const Instance& i, bool complement)
      : query_(query), base_(i), complement_(complement) {
    const TupleSet& edges = i.TuplesOf(RelE());
    for (const Tuple& t : edges) {
      verts_.push_back(t[0]);
      verts_.push_back(t[1]);
    }
    std::sort(verts_.begin(), verts_.end());
    verts_.erase(std::unique(verts_.begin(), verts_.end()), verts_.end());
    if (verts_.size() > 64) return;
    viable_ = true;
    auto index_of = [&](Value v) {
      return std::lower_bound(verts_.begin(), verts_.end(), v) -
             verts_.begin();
    };
    for (const Tuple& t : edges) {
      edges_.emplace_back(static_cast<uint8_t>(index_of(t[0])),
                          static_cast<uint8_t>(index_of(t[1])));
    }
  }

  // Whether the base fit the bitmask budget; a non-viable evaluator should
  // not be used (the factories return nullptr instead).
  bool viable() const { return viable_; }

  Result<std::optional<Fact>> FirstRetracted(
      const Instance& j, const std::vector<Fact>& base_facts) override {
    const TupleSet& jedges = j.TuplesOf(RelE());
    // A J edge incident to no base vertex can never change reachability
    // between base vertices: base vertices have no edges into the fresh
    // component, so every walk from one stays on base edges. Retractions
    // (either query) need a base-pair reach change, so such a J — every J
    // of the domain-disjoint sweeps — is answered without touching the
    // matrices. This is a property of the graphs, not of the bit encoding,
    // so it applies even past the vertex budget.
    bool touches_base = false;
    for (const Tuple& t : jedges) {
      if (std::binary_search(verts_.begin(), verts_.end(), t[0]) ||
          std::binary_search(verts_.begin(), verts_.end(), t[1])) {
        touches_base = true;
        break;
      }
    }
    if (!touches_base) return std::optional<Fact>();

    if (viable_ && reach_.empty() && !verts_.empty()) {
      // Decode the base matrix from Q(i): for TC each fact IS a reach bit;
      // for Q_TC the facts are exactly the cleared bits of verts x verts.
      const uint64_t full =
          verts_.size() == 64 ? ~uint64_t{0}
                              : (uint64_t{1} << verts_.size()) - 1;
      reach_.assign(verts_.size(), complement_ ? full : 0);
      auto index_of = [&](Value v) {
        return std::lower_bound(verts_.begin(), verts_.end(), v) -
               verts_.begin();
      };
      for (const Fact& f : base_facts) {
        const uint64_t bit = uint64_t{1} << index_of(f.args[1]);
        if (complement_) {
          reach_[index_of(f.args[0])] &= ~bit;
        } else {
          reach_[index_of(f.args[0])] |= bit;
        }
      }
    }
    uverts_ = verts_;
    for (const Tuple& t : jedges) {
      uverts_.push_back(t[0]);
      uverts_.push_back(t[1]);
    }
    std::sort(uverts_.begin(), uverts_.end());
    uverts_.erase(std::unique(uverts_.begin(), uverts_.end()), uverts_.end());
    if (!viable_ || uverts_.size() > 64) {
      if (fallback_ == nullptr) {
        fallback_ = MakeOverlayUnionEvaluator(query_, base_);
      }
      return fallback_->FirstRetracted(j, base_facts);
    }

    auto union_index = [&](Value v) {
      return std::lower_bound(uverts_.begin(), uverts_.end(), v) -
             uverts_.begin();
    };
    // Base vertices are a subsequence of the union vertices, in order.
    map_.resize(verts_.size());
    for (size_t b = 0; b < verts_.size(); ++b) {
      map_[b] = static_cast<uint8_t>(union_index(verts_[b]));
    }
    uint64_t uadj[64] = {};
    for (const auto& [a, b] : edges_) {
      uadj[map_[a]] |= uint64_t{1} << map_[b];
    }
    for (const Tuple& t : jedges) {
      uadj[union_index(t[0])] |= uint64_t{1} << union_index(t[1]);
    }

    // Scan base pairs in output order; only rows starting at base vertices
    // can hold a retraction, so only those get saturated.
    for (size_t a = 0; a < verts_.size(); ++a) {
      const uint64_t base_row = reach_[a];
      const uint64_t union_row = Saturate(uadj, map_[a]);
      for (size_t b = 0; b < verts_.size(); ++b) {
        const bool base_reaches = (base_row >> b) & 1;
        const bool union_reaches = (union_row >> map_[b]) & 1;
        if (complement_ ? (!base_reaches && union_reaches)
                        : (base_reaches && !union_reaches)) {
          return std::optional<Fact>(Fact(complement_ ? RelO() : RelT(),
                                          Tuple{verts_[a], verts_[b]}));
        }
      }
    }
    return std::optional<Fact>();
  }

 private:
  // The set of vertices reachable from `s` by a nonempty path, as a mask.
  static uint64_t Saturate(const uint64_t adj[64], size_t s) {
    uint64_t reached = adj[s];
    uint64_t frontier = reached;
    while (frontier != 0) {
      uint64_t next = 0;
      while (frontier != 0) {
        int v = __builtin_ctzll(frontier);
        frontier &= frontier - 1;
        next |= adj[v];
      }
      frontier = next & ~reached;
      reached |= next;
    }
    return reached;
  }

  const Query& query_;
  const Instance& base_;
  const bool complement_;
  bool viable_ = false;
  std::vector<Value> verts_;  // sorted base vertex set
  std::vector<std::pair<uint8_t, uint8_t>> edges_;  // base E, as indexes
  std::vector<uint64_t> reach_;  // base closure rows, parallel to verts_
  std::vector<Value> uverts_;    // per-call scratch: union vertex set
  std::vector<uint8_t> map_;     // per-call scratch: base -> union index
  std::unique_ptr<UnionEvaluator> fallback_;  // overlay route, built lazily
};

// The factory wired onto TC / Q_TC. Declines (falling back to the overlay
// evaluator) when incremental mode is off — the --incremental ablation and
// the parity tests compare exactly these two routes — or when the base
// exceeds the bitmask budget.
NativeQuery::UnionEvalFactory ClosureUnionFactory(bool complement) {
  return [complement](const Query& query, const Instance& i)
             -> std::unique_ptr<UnionEvaluator> {
    if (datalog::DefaultIncrementalMode() != datalog::IncrementalMode::kOn) {
      return nullptr;
    }
    auto ev = std::make_unique<ClosureUnionEvaluator>(query, i, complement);
    if (!ev->viable()) return nullptr;
    return ev;
  };
}

}  // namespace

std::unique_ptr<Query> MakeTransitiveClosure() {
  auto q = std::make_unique<NativeQuery>(
      "TC", GraphSchema(), Schema({{"T", 2}}),
      NativeQuery::FactsFn(
          [](const Instance& in, std::vector<Fact>* out) -> Status {
            for (const auto& [a, b] : ReachableClosure(in).reach) {
              out->emplace_back(RelT(), Tuple{a, b});  // reach is sorted
            }
            return Status::Ok();
          }));
  q->set_union_eval_factory(ClosureUnionFactory(/*complement=*/false));
  return q;
}

std::unique_ptr<Query> MakeComplementTransitiveClosure() {
  auto q = std::make_unique<NativeQuery>(
      "Q_TC", GraphSchema(), Schema({{"O", 2}}),
      NativeQuery::FactsFn(
          [](const Instance& in, std::vector<Fact>* out) -> Status {
            const Closure& c = ReachableClosure(in);
            // The adom x adom scan visits pairs in sorted order and `reach`
            // is sorted, so one merge pointer replaces a binary search per
            // pair; emission stays sorted.
            auto it = c.reach.begin();
            const auto end = c.reach.end();
            for (Value a : c.verts) {
              for (Value b : c.verts) {
                if (it != end && it->first == a && it->second == b) {
                  ++it;
                  continue;
                }
                out->emplace_back(RelO(), Tuple{a, b});
              }
            }
            return Status::Ok();
          }));
  q->set_union_eval_factory(ClosureUnionFactory(/*complement=*/true));
  return q;
}

std::unique_ptr<Query> MakeCliqueQuery(size_t k) {
  return std::make_unique<NativeQuery>(
      "Q_clique_" + std::to_string(k), GraphSchema(), Schema({{"O", 2}}),
      [k](const Instance& in) -> Result<Instance> {
        if (HasClique(UndirectedNeighbors(in), k)) return Instance();
        return EdgesAsOutput(in);
      });
}

std::unique_ptr<Query> MakeStarQuery(size_t k) {
  return std::make_unique<NativeQuery>(
      "Q_star_" + std::to_string(k), GraphSchema(), Schema({{"O", 2}}),
      [k](const Instance& in) -> Result<Instance> {
        for (const auto& [center, nbrs] : UndirectedNeighbors(in)) {
          if (nbrs.size() >= k) return Instance();
        }
        return EdgesAsOutput(in);
      });
}

std::unique_ptr<Query> MakeDuplicateQuery(size_t j) {
  Schema input;
  for (size_t r = 1; r <= j; ++r) {
    Status s = input.AddRelation("R" + std::to_string(r), 2);
    (void)s;
  }
  return std::make_unique<NativeQuery>(
      "Q_duplicate_" + std::to_string(j), input, Schema({{"O", 2}}),
      [j](const Instance& in) -> Result<Instance> {
        // Intersection of all R1..Rj.
        const TupleSet& r1 = in.TuplesOf(InternName("R1"));
        std::set<Tuple> inter(r1.begin(), r1.end());
        for (size_t r = 2; r <= j && !inter.empty(); ++r) {
          const TupleSet& next =
              in.TuplesOf(InternName("R" + std::to_string(r)));
          std::set<Tuple> kept;
          for (const Tuple& t : inter) {
            if (next.count(t) > 0) kept.insert(t);
          }
          inter = std::move(kept);
        }
        Instance out;
        if (inter.empty()) {
          for (const Tuple& t : in.TuplesOf(InternName("R1"))) {
            out.Insert(Fact("O", t));
          }
        }
        return out;
      });
}

std::unique_ptr<Query> MakeTrianglesUnlessTwoDisjoint() {
  return std::make_unique<NativeQuery>(
      "Q_triangles_unless_two_disjoint", GraphSchema(), Schema({{"O", 3}}),
      [](const Instance& in) -> Result<Instance> {
        std::vector<std::array<Value, 3>> tris = DirectedTriangles(in);
        for (const auto& a : tris) {
          for (const auto& b : tris) {
            bool disjoint = true;
            for (Value va : a) {
              for (Value vb : b) {
                if (va == vb) disjoint = false;
              }
            }
            if (disjoint) return Instance();  // two disjoint triangles
          }
        }
        Instance out;
        for (const auto& t : tris) out.Insert(Fact("O", {t[0], t[1], t[2]}));
        return out;
      });
}

std::unique_ptr<Query> MakeWinMove() {
  return std::make_unique<NativeQuery>(
      "win-move", Schema({{"Move", 2}}), Schema({{"O", 1}}),
      [](const Instance& in) -> Result<Instance> {
        // Retrograde analysis: lost = every move leads to a won position
        // (vacuously true for sinks); won = some move leads to a lost
        // position. Positions never classified are drawn (undefined in the
        // well-founded model) and are not output.
        std::map<Value, std::vector<Value>> adj;
        std::set<Value> positions;
        for (const Tuple& t : in.TuplesOf(InternName("Move"))) {
          adj[t[0]].push_back(t[1]);
          positions.insert(t[0]);
          positions.insert(t[1]);
        }
        std::set<Value> won;
        std::set<Value> lost;
        bool changed = true;
        while (changed) {
          changed = false;
          for (Value p : positions) {
            if (won.count(p) > 0 || lost.count(p) > 0) continue;
            auto it = adj.find(p);
            bool any_lost = false;
            bool all_won = true;
            if (it != adj.end()) {
              for (Value q : it->second) {
                if (lost.count(q) > 0) any_lost = true;
                if (won.count(q) == 0) all_won = false;
              }
            }
            if (any_lost) {
              won.insert(p);
              changed = true;
            } else if (all_won) {  // includes sinks (no moves)
              lost.insert(p);
              changed = true;
            }
          }
        }
        Instance out;
        for (Value p : won) out.Insert(Fact("O", {p}));
        return out;
      });
}

std::unique_ptr<Query> MakeTwoHopJoin() {
  return std::make_unique<NativeQuery>(
      "two-hop", GraphSchema(), Schema({{"O", 2}}),
      [](const Instance& in) -> Result<Instance> {
        std::map<Value, std::vector<Value>> adj = Adjacency(in);
        Instance out;
        for (const auto& [x, ys] : adj) {
          for (Value y : ys) {
            auto it = adj.find(y);
            if (it == adj.end()) continue;
            for (Value z : it->second) out.Insert(Fact("O", {x, z}));
          }
        }
        return out;
      });
}

}  // namespace calm::queries
