#include "queries/paper_programs.h"

#include <string>

namespace calm::queries {

using datalog::DatalogQuery;

DatalogQuery TcProgram() {
  return DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y).\n"
      "T(x, z) :- T(x, y), E(y, z).\n"
      ".output T\n",
      "TC-datalog");
}

DatalogQuery ComplementTcProgram() {
  return DatalogQuery::FromTextOrDie(
      "T(x, y) :- E(x, y).\n"
      "T(x, z) :- T(x, y), E(y, z).\n"
      "O(x, y) :- Adom(x), Adom(y), !T(x, y).\n",
      "Q_TC-datalog");
}

DatalogQuery Example51P1() {
  return DatalogQuery::FromTextOrDie(
      "T(x) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.\n"
      "O(x) :- Adom(x), !T(x).\n",
      "P1");
}

DatalogQuery Example51P2() {
  return DatalogQuery::FromTextOrDie(
      "T(x, y, z) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.\n"
      "D(x1) :- T(x1, x2, x3), T(y1, y2, y3), x1 != y1, x1 != y2, x1 != y3, "
      "x2 != y1, x2 != y2, x2 != y3, x3 != y1, x3 != y2, x3 != y3.\n"
      "O(x) :- Adom(x), !D(x).\n",
      "P2");
}

DatalogQuery WinMoveProgram() {
  return DatalogQuery::FromTextOrDie(
      "Win(x) :- Move(x, y), !Win(y).\n"
      ".output Win\n",
      "win-move-datalog", DatalogQuery::Semantics::kWellFounded);
}

DatalogQuery DuplicateProgram(size_t j) {
  // Dup(x, y) holds when (x, y) is in every relation; O copies R1 when no
  // Dup tuple exists. The "no Dup exists" test needs a universally guarded
  // negation; we mark elements participating in a duplicate and emit R1
  // tuples only when the marker relation is empty, via a per-tuple guard.
  std::string text = "Dup(x, y) :- R1(x, y)";
  for (size_t r = 2; r <= j; ++r) {
    text += ", R" + std::to_string(r) + "(x, y)";
  }
  text += ".\n";
  // Some(x) marks every adom value when some duplicate exists.
  text += "Some(z) :- Dup(x, y), Adom(z).\n";
  text += "O(x, y) :- R1(x, y), !Some(x).\n";
  return DatalogQuery::FromTextOrDie(text, "Q_duplicate-datalog");
}

namespace {

std::string VarName(const char* prefix, size_t i) {
  return std::string(prefix) + std::to_string(i);
}

// All-pairs inequalities over prefix1..n (and optionally vs. a fixed var).
std::string PairwiseIneqs(const char* prefix, size_t n) {
  std::string out;
  for (size_t a = 1; a <= n; ++a) {
    for (size_t b = a + 1; b <= n; ++b) {
      out += ", " + VarName(prefix, a) + " != " + VarName(prefix, b);
    }
  }
  return out;
}

}  // namespace

DatalogQuery CliqueProgram(size_t k) {
  // Adj: undirected adjacency (no self loops). Mark(z) holds for every z
  // when a k-clique exists (the disconnected guard rule, as in the paper's
  // Q_duplicate construction); O copies E otherwise.
  std::string text =
      "Adj(x, y) :- E(x, y), x != y.\n"
      "Adj(x, y) :- E(y, x), x != y.\n";
  std::string body = "Mark(z) :- Adom(z)";
  for (size_t a = 1; a <= k; ++a) {
    for (size_t b = a + 1; b <= k; ++b) {
      body += ", Adj(" + VarName("c", a) + ", " + VarName("c", b) + ")";
    }
  }
  body += PairwiseIneqs("c", k);
  text += body + ".\n";
  text += "O(x, y) :- E(x, y), !Mark(x).\n";
  text += "O(x, y) :- E(x, y), !Mark(y).\n";
  return DatalogQuery::FromTextOrDie(text,
                                     "Q_clique_" + std::to_string(k) +
                                         "-datalog");
}

DatalogQuery StarProgram(size_t k) {
  std::string text =
      "Nbr(c, s) :- E(c, s), c != s.\n"
      "Nbr(c, s) :- E(s, c), c != s.\n";
  std::string body = "Mark(z) :- Adom(z)";
  for (size_t a = 1; a <= k; ++a) {
    body += ", Nbr(c, " + VarName("s", a) + ")";
  }
  body += PairwiseIneqs("s", k);
  text += body + ".\n";
  text += "O(x, y) :- E(x, y), !Mark(x).\n";
  text += "O(x, y) :- E(x, y), !Mark(y).\n";
  return DatalogQuery::FromTextOrDie(text,
                                     "Q_star_" + std::to_string(k) +
                                         "-datalog");
}

}  // namespace calm::queries
