#ifndef CALM_QUERIES_PAPER_PROGRAMS_H_
#define CALM_QUERIES_PAPER_PROGRAMS_H_

#include "datalog/program.h"

namespace calm::queries {

// The paper's example programs, verbatim (Sections 3 and 5), as Datalog¬
// queries. Native counterparts live in graph_queries.h; tests cross-validate
// the two implementations.

// Transitive closure (Datalog).
datalog::DatalogQuery TcProgram();

// Q_TC: complement of transitive closure (2-stratum Datalog¬, semicon).
datalog::DatalogQuery ComplementTcProgram();

// Example 5.1, P1: O(x) holds when x is not on a directed triangle
// (con-Datalog¬; not in Mdistinct).
datalog::DatalogQuery Example51P1();

// Example 5.1, P2: O = Adom unless two disjoint triangles exist
// (stratified but NOT semicon; not in Mdisjoint).
datalog::DatalogQuery Example51P2();

// Win-move under the well-founded semantics.
datalog::DatalogQuery WinMoveProgram();

// Q^j_duplicate as a Datalog¬ program over R1..Rj: O = R1 when the global
// intersection of R1..Rj is empty.
datalog::DatalogQuery DuplicateProgram(size_t j);

// Q^k_clique as a Datalog¬ program: O = E when no undirected k-clique
// exists (Theorem 3.1(3)'s witness, "expressed in fragments of Datalog¬").
// Requires k >= 2.
datalog::DatalogQuery CliqueProgram(size_t k);

// Q^k_star as a Datalog¬ program: O = E when no vertex has k distinct
// neighbors ignoring direction (Theorem 3.1(4)'s witness). Requires k >= 1.
datalog::DatalogQuery StarProgram(size_t k);

}  // namespace calm::queries

#endif  // CALM_QUERIES_PAPER_PROGRAMS_H_
