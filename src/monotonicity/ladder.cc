#include "monotonicity/ladder.h"

namespace calm::monotonicity {

size_t Ladder::FirstDistinctViolation() const {
  for (const LadderRow& row : rows) {
    if (!row.in_distinct) return row.i;
  }
  return 0;
}

size_t Ladder::FirstDisjointViolation() const {
  for (const LadderRow& row : rows) {
    if (!row.in_disjoint) return row.i;
  }
  return 0;
}

std::string Ladder::ToString() const {
  std::string out = "  i  M^i  M^i_distinct  M^i_disjoint\n";
  for (const LadderRow& row : rows) {
    out += "  " + std::to_string(row.i) + "  " + (row.in_m ? "yes" : "no ") +
           "  " + (row.in_distinct ? "yes" : "no ") + "           " +
           (row.in_disjoint ? "yes" : "no ") + "\n";
  }
  return out;
}

Result<Ladder> ComputeLadder(const Query& query, size_t max_i,
                             ExhaustiveOptions base) {
  Ladder ladder;
  for (size_t i = 1; i <= max_i; ++i) {
    ExhaustiveOptions o = base;
    o.max_facts_j = i;
    LadderRow row;
    row.i = i;

    CALM_ASSIGN_OR_RETURN(
        row.m_witness, FindViolation(query, MonotonicityClass::kMonotone, o));
    row.in_m = !row.m_witness.has_value();
    CALM_ASSIGN_OR_RETURN(
        row.distinct_witness,
        FindViolation(query, MonotonicityClass::kDomainDistinct, o));
    row.in_distinct = !row.distinct_witness.has_value();
    CALM_ASSIGN_OR_RETURN(
        row.disjoint_witness,
        FindViolation(query, MonotonicityClass::kDomainDisjoint, o));
    row.in_disjoint = !row.disjoint_witness.has_value();

    ladder.rows.push_back(std::move(row));
  }
  return ladder;
}

}  // namespace calm::monotonicity
