#include "monotonicity/ladder.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "base/metrics.h"
#include "base/result_cache.h"
#include "base/thread_pool.h"
#include "base/trace.h"

namespace calm::monotonicity {

size_t Ladder::FirstDistinctViolation() const {
  for (const LadderRow& row : rows) {
    if (!row.in_distinct) return row.i;
  }
  return 0;
}

size_t Ladder::FirstDisjointViolation() const {
  for (const LadderRow& row : rows) {
    if (!row.in_disjoint) return row.i;
  }
  return 0;
}

std::string Ladder::ToString() const {
  std::string out = "  i  M^i  M^i_distinct  M^i_disjoint\n";
  for (const LadderRow& row : rows) {
    out += "  " + std::to_string(row.i) + "  " + (row.in_m ? "yes" : "no ") +
           "  " + (row.in_distinct ? "yes" : "no ") + "           " +
           (row.in_disjoint ? "yes" : "no ") + "\n";
  }
  return out;
}

Result<Ladder> ComputeLadder(const Query& query, size_t max_i,
                             ExhaustiveOptions base) {
  // The ladder is 3 * max_i independent bounded searches (one per row and
  // class); spread the cells across the pool. A FindViolation issued from a
  // pool task runs its own index loop serially (re-entrancy rule in
  // base/thread_pool.h), so cell-level parallelism is the outermost and only
  // fan-out here. Cells land in fixed slots and rows are assembled in order
  // afterwards, keeping the ladder deterministic; the first cell error (in
  // cell order) wins, as in the serial loop.
  const MonotonicityClass kClasses[] = {MonotonicityClass::kMonotone,
                                        MonotonicityClass::kDomainDistinct,
                                        MonotonicityClass::kDomainDisjoint};

  // Resolve the genericity probe once for the whole table (the cells would
  // otherwise each re-probe under kAuto) and, when the reduction is on,
  // share one canonical result cache across every cell: the 3 * max_i cells
  // sweep the identical I space, so Q(I) — and any union already seen in an
  // isomorphic form — is evaluated once instead of once per cell.
  QueryResultCache shared_cache(query);
  if (base.symmetry == SymmetryMode::kAuto) {
    base.symmetry =
        ProbeGenericity(query, base.domain_size,
                        std::min<size_t>(base.max_facts_i, 2)).ok()
            ? SymmetryMode::kForceOn
            : SymmetryMode::kOff;
  }
  if (base.symmetry == SymmetryMode::kForceOn && base.cache == nullptr) {
    base.cache = &shared_cache;
  }

  size_t cells = 3 * max_i;
  std::vector<std::optional<Counterexample>> witnesses(cells);
  std::vector<Status> errors(cells);

  TraceSpan span("ladder.compute");
  span.Arg("max_i", static_cast<int64_t>(max_i));
  span.Arg("cells", static_cast<int64_t>(cells));
  span.Arg("reduced", base.symmetry == SymmetryMode::kForceOn ? 1 : 0);
  Counter* cells_done =
      MetricsEnabled()
          ? &MetricRegistry::Global().GetCounter("calm.ladder.cells_done")
          : nullptr;

  ParallelFor(cells, base.threads, [&](size_t cell) {
    TraceSpan cell_span("ladder.cell");
    cell_span.Arg("row", static_cast<int64_t>(cell / 3 + 1));
    cell_span.Arg("class", static_cast<int64_t>(cell % 3));
    ExhaustiveOptions o = base;
    o.max_facts_j = cell / 3 + 1;
    Result<std::optional<Counterexample>> r =
        FindViolation(query, kClasses[cell % 3], o);
    if (!r.ok()) {
      errors[cell] = r.status();
    } else {
      cell_span.Arg("violated", r->has_value() ? 1 : 0);
      witnesses[cell] = std::move(r.value());
    }
    if (cells_done != nullptr) cells_done->Increment();
  });

  if (span.active() && base.cache != nullptr) {
    const QueryResultCache::Stats cs = base.cache->stats();
    span.Arg("cache_hits", static_cast<int64_t>(cs.hits));
    span.Arg("cache_misses", static_cast<int64_t>(cs.misses));
  }
  if (MetricsEnabled() && base.cache == &shared_cache) {
    const QueryResultCache::Stats cs = shared_cache.stats();
    MetricRegistry& registry = MetricRegistry::Global();
    registry.GetCounter("calm.ladder.shared_cache_hits").Increment(cs.hits);
    registry.GetCounter("calm.ladder.shared_cache_misses")
        .Increment(cs.misses);
  }

  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }

  Ladder ladder;
  for (size_t i = 1; i <= max_i; ++i) {
    LadderRow row;
    row.i = i;
    size_t cell = (i - 1) * 3;
    row.m_witness = std::move(witnesses[cell]);
    row.in_m = !row.m_witness.has_value();
    row.distinct_witness = std::move(witnesses[cell + 1]);
    row.in_distinct = !row.distinct_witness.has_value();
    row.disjoint_witness = std::move(witnesses[cell + 2]);
    row.in_disjoint = !row.disjoint_witness.has_value();
    ladder.rows.push_back(std::move(row));
  }
  return ladder;
}

}  // namespace calm::monotonicity
