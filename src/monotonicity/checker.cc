#include "monotonicity/checker.h"

#include <atomic>
#include <vector>

#include "base/enumerator.h"
#include "base/thread_pool.h"
#include "workload/instance_gen.h"

namespace calm::monotonicity {

const char* MonotonicityClassName(MonotonicityClass cls) {
  switch (cls) {
    case MonotonicityClass::kMonotone:
      return "M";
    case MonotonicityClass::kDomainDistinct:
      return "Mdistinct";
    case MonotonicityClass::kDomainDisjoint:
      return "Mdisjoint";
  }
  return "?";
}

std::string Counterexample::ToString() const {
  return "I = " + i.ToString() + ", J = " + j.ToString() +
         ", retracted output fact: " + FactToString(retracted);
}

Result<std::optional<Counterexample>> PairChecker::Check(const Instance& j) {
  if (!base_ready_) {
    base_ready_ = true;
    base_status_ = query_.EvalFacts(i_, &base_facts_);
    union_ = i_;
  }
  if (!base_status_.ok()) return base_status_;

  // Overlay j onto the persistent copy of i, evaluate, then roll back —
  // set-wise this is exactly Instance::Union(i, j), minus the copy.
  overlay_.clear();
  j.ForEachFact([&](uint32_t name, const Tuple& t) {
    Fact f(name, t);
    if (union_.Insert(f)) overlay_.push_back(std::move(f));
  });
  out_scratch_.clear();
  Status s = query_.EvalFacts(union_, &out_scratch_);
  for (const Fact& f : overlay_) union_.Erase(f);
  if (!s.ok()) return s;

  // Both fact streams are ascending, so a single merge pass finds the first
  // Q(I) fact missing from Q(I ∪ J) — the same fact the old per-fact
  // Contains scan reported, since both walk Q(I) in sorted order.
  auto it = out_scratch_.begin();
  for (const Fact& f : base_facts_) {
    while (it != out_scratch_.end() && *it < f) ++it;
    if (it == out_scratch_.end() || !(*it == f)) {
      return std::optional<Counterexample>(Counterexample{i_, j, f});
    }
  }
  return std::optional<Counterexample>();
}

Result<std::optional<Counterexample>> CheckPair(const Query& query,
                                                const Instance& i,
                                                const Instance& j) {
  return PairChecker(query, i).Check(j);
}

namespace {

// Candidate facts for J given I, per class:
//  * kMonotone:       every fact over adom(I) + fresh values
//  * kDomainDistinct: facts containing at least one fresh value
//  * kDomainDisjoint: facts over fresh values only
std::vector<Fact> CandidateJFacts(const Schema& schema, const Instance& i,
                                  const std::vector<Value>& fresh,
                                  MonotonicityClass cls) {
  std::set<Value> adom_i = i.ActiveDomain();
  std::vector<Value> mixed(adom_i.begin(), adom_i.end());
  mixed.insert(mixed.end(), fresh.begin(), fresh.end());

  std::vector<Fact> all;
  switch (cls) {
    case MonotonicityClass::kMonotone:
      all = AllFactsOver(schema, mixed);
      break;
    case MonotonicityClass::kDomainDistinct: {
      for (Fact& f : AllFactsOver(schema, mixed)) {
        if (FactDomainDistinctFrom(f, adom_i)) all.push_back(std::move(f));
      }
      break;
    }
    case MonotonicityClass::kDomainDisjoint:
      all = AllFactsOver(schema, fresh);
      break;
  }
  // Drop facts already in I (their addition is a no-op).
  std::vector<Fact> out;
  for (Fact& f : all) {
    if (!i.Contains(f)) out.push_back(std::move(f));
  }
  return out;
}

// The first stopping event (error or counterexample) a shard saw for one
// candidate I, in that I's J enumeration order.
struct InstanceOutcome {
  Status error;  // ok() when `cex` carries the event
  std::optional<Counterexample> cex;
};

}  // namespace

Result<std::optional<Counterexample>> FindViolation(
    const Query& query, MonotonicityClass cls,
    const ExhaustiveOptions& options) {
  const Schema& schema = query.input_schema();
  std::vector<Value> domain = IntDomain(options.domain_size);
  std::vector<Value> fresh = IntDomain(options.fresh_values, 1000);

  // Materialize the candidate-I space (small by construction: the paper's
  // separations live at <= 6 values) and partition its indices across the
  // pool. Each index records its first stopping event in a private slot;
  // the winner is the event at the least index, which is exactly what the
  // single-threaded nested loop returns — so verdicts and counterexamples
  // are deterministic and thread-count-independent. `first_stop` is a
  // monotonically decreasing cursor used only to prune work at indices that
  // can no longer win.
  std::vector<Instance> is = AllInstances(schema, domain, options.max_facts_i);
  std::vector<InstanceOutcome> slots(is.size());
  std::atomic<size_t> first_stop{is.size()};

  ParallelFor(is.size(), options.threads, [&](size_t idx) {
    if (first_stop.load(std::memory_order_relaxed) < idx) return;
    const Instance& i = is[idx];
    InstanceOutcome& slot = slots[idx];
    std::vector<Fact> candidates = CandidateJFacts(schema, i, fresh, cls);
    // One checker per outer I: Q(i) is computed once and reused across the
    // whole J enumeration below.
    PairChecker checker(query, i);
    ForEachFactSubset(candidates, options.max_facts_j, [&](const Instance& j) {
      if (first_stop.load(std::memory_order_relaxed) < idx) return false;
      Result<std::optional<Counterexample>> r = checker.Check(j);
      if (!r.ok()) {
        slot.error = r.status();
        return false;
      }
      if (r->has_value()) {
        slot.cex = std::move(r.value());
        return false;
      }
      return true;
    });
    if (!slot.error.ok() || slot.cex.has_value()) {
      size_t cur = first_stop.load(std::memory_order_relaxed);
      while (idx < cur &&
             !first_stop.compare_exchange_weak(cur, idx,
                                               std::memory_order_relaxed)) {
      }
    }
  });

  size_t winner = first_stop.load(std::memory_order_relaxed);
  if (winner < is.size()) {
    InstanceOutcome& slot = slots[winner];
    if (!slot.error.ok()) return slot.error;
    return std::move(slot.cex);
  }
  return std::optional<Counterexample>();
}

Result<std::optional<Counterexample>> FindViolationRandom(
    const Query& query, MonotonicityClass cls, const RandomOptions& options) {
  const Schema& schema = query.input_schema();
  for (size_t trial = 0; trial < options.trials; ++trial) {
    uint64_t seed = options.seed * 1000003 + trial;
    Instance i =
        workload::RandomInstance(schema, options.facts_i, options.domain_size,
                                 seed);
    Instance j;
    switch (cls) {
      case MonotonicityClass::kMonotone:
        // Arbitrary J: another random instance over a slightly larger
        // domain, so it overlaps adom(I) but also brings new values.
        j = workload::RandomInstance(schema, options.facts_j,
                                     options.domain_size + options.fresh_values,
                                     seed + 1);
        break;
      case MonotonicityClass::kDomainDistinct:
        j = workload::RandomDomainDistinctExtension(
            schema, i, options.facts_j, options.fresh_values, seed + 1);
        break;
      case MonotonicityClass::kDomainDisjoint:
        j = workload::RandomDomainDisjointExtension(
            schema, i, options.facts_j, options.fresh_values, seed + 1);
        break;
    }
    Result<std::optional<Counterexample>> r = CheckPair(query, i, j);
    if (!r.ok()) return r.status();
    if (r->has_value()) return r;
  }
  return std::optional<Counterexample>();
}

}  // namespace calm::monotonicity
