#include "monotonicity/checker.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/canonical.h"
#include "base/enumerator.h"
#include "base/metrics.h"
#include "base/result_cache.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "monotonicity/sweep_checkpoint.h"
#include "workload/instance_gen.h"

namespace calm::monotonicity {

const char* MonotonicityClassName(MonotonicityClass cls) {
  switch (cls) {
    case MonotonicityClass::kMonotone:
      return "M";
    case MonotonicityClass::kDomainDistinct:
      return "Mdistinct";
    case MonotonicityClass::kDomainDisjoint:
      return "Mdisjoint";
  }
  return "?";
}

std::string Counterexample::ToString() const {
  return "I = " + i.ToString() + ", J = " + j.ToString() +
         ", retracted output fact: " + FactToString(retracted);
}

Status PairChecker::EvalFactsMaybeCached(const Instance& input,
                                         std::vector<Fact>* out) {
  if (cache_) return cache_->EvalFacts(input, out);
  return query_.EvalFacts(input, out);
}

Result<std::optional<Counterexample>> PairChecker::Check(const Instance& j) {
  if (!base_ready_) {
    base_ready_ = true;
    base_status_ = EvalFactsMaybeCached(i_, &base_facts_);
    if (base_status_.ok()) union_eval_ = query_.MakeUnionEvaluator(i_);
  }
  if (!base_status_.ok()) return base_status_;

  // The union evaluator owns all per-pair state about i — a materialized
  // fixpoint that j continues as an insertion delta (DatalogQuery), a
  // precomputed reachability matrix (the closure queries), or an overlay on
  // a persistent copy of i (the generic default). Every route reports the
  // first base fact missing from Q(i u j) in Q(i)'s iteration order, so the
  // counterexample is identical to evaluating the pair in isolation.
  CALM_ASSIGN_OR_RETURN(std::optional<Fact> missing,
                        union_eval_->FirstRetracted(j, base_facts_));
  if (missing.has_value()) {
    return std::optional<Counterexample>(
        Counterexample{i_, j, *std::move(missing)});
  }
  return std::optional<Counterexample>();
}

Result<std::optional<Counterexample>> CheckPair(const Query& query,
                                                const Instance& i,
                                                const Instance& j) {
  return PairChecker(query, i).Check(j);
}

namespace {

// Candidate facts for J given I, per class:
//  * kMonotone:       every fact over adom(I) + fresh values
//  * kDomainDistinct: facts containing at least one fresh value
//  * kDomainDisjoint: facts over fresh values only
std::vector<Fact> CandidateJFacts(const Schema& schema, const Instance& i,
                                  const std::vector<Value>& fresh,
                                  MonotonicityClass cls) {
  std::set<Value> adom_i = i.ActiveDomain();
  std::vector<Value> mixed(adom_i.begin(), adom_i.end());
  mixed.insert(mixed.end(), fresh.begin(), fresh.end());

  std::vector<Fact> all;
  switch (cls) {
    case MonotonicityClass::kMonotone:
      all = AllFactsOver(schema, mixed);
      break;
    case MonotonicityClass::kDomainDistinct: {
      for (Fact& f : AllFactsOver(schema, mixed)) {
        if (FactDomainDistinctFrom(f, adom_i)) all.push_back(std::move(f));
      }
      break;
    }
    case MonotonicityClass::kDomainDisjoint:
      all = AllFactsOver(schema, fresh);
      break;
  }
  // Drop facts already in I (their addition is a no-op).
  std::vector<Fact> out;
  for (Fact& f : all) {
    if (!i.Contains(f)) out.push_back(std::move(f));
  }
  return out;
}

// The first stopping event (error or counterexample) a shard saw for one
// candidate I, in that I's J enumeration order.
struct InstanceOutcome {
  Status error;  // ok() when `cex` carries the event
  std::optional<Counterexample> cex;
};

// Whether the symmetry reduction applies: forced modes answer directly,
// kAuto runs the sampling genericity probe over a small slice of the sweep
// space (max_facts capped at 2 keeps the probe around a percent of a full
// sweep). Any probe failure — genericity violation or evaluation error —
// means the full sweep runs, which is always sound.
bool ResolveSymmetry(const Query& query, SymmetryMode mode, size_t domain_size,
                     size_t max_facts) {
  switch (mode) {
    case SymmetryMode::kOff:
      return false;
    case SymmetryMode::kForceOn:
      return true;
    case SymmetryMode::kAuto:
      return ProbeGenericity(query, domain_size,
                             std::min<size_t>(max_facts, 2)).ok();
  }
  return false;
}

// The violation-preserving value maps for I's J-space: Aut(I) composed with
// every permutation of the fresh values. Both parts fix I setwise (the
// automorphisms by definition, the fresh part vacuously), so for a generic
// query g(J) violates at I exactly when J does, and every candidate fact
// list is closed under g. Capped defensively — dropping maps only loses
// reduction, never soundness.
std::vector<std::map<Value, Value>> StabilizerValueMaps(
    const Instance& i, const std::vector<Value>& fresh) {
  constexpr size_t kMaxMaps = 512;
  std::vector<std::map<Value, Value>> auts = InstanceAutomorphisms(i);
  std::vector<std::vector<Value>> fresh_perms;
  std::vector<Value> p = fresh;
  do {
    fresh_perms.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));

  std::vector<std::map<Value, Value>> out;
  out.reserve(std::min(kMaxMaps, auts.size() * fresh_perms.size()));
  for (const std::map<Value, Value>& aut : auts) {
    for (const std::vector<Value>& fp : fresh_perms) {
      if (out.size() >= kMaxMaps) return out;
      std::map<Value, Value> m = aut;
      for (size_t t = 0; t < fresh.size(); ++t) m[fresh[t]] = fp[t];
      out.push_back(std::move(m));
    }
  }
  return out;
}

// --- Reduced-sweep plan cache -------------------------------------------
//
// Everything the reduced sweep enumerates — the canonical I representatives,
// each I's J-candidate facts, the stabilizer index permutations, and the
// canonical J-subset stream — depends only on (schema, bounds, class), never
// on the query. Ladder runs and repeated checks re-derive all of it, and the
// derivation (orbit canonicalization, automorphism search, subset DFS) costs
// more than the checks themselves at paper-scale bounds. So the whole
// enumeration is materialized once per key into a plan: per representative
// I, the J stream in enumeration order. Checking walks the plan through a
// PairChecker in the exact order the streaming sweep would have visited, so
// verdicts, counterexamples, and stop points are byte-identical — only the
// enumeration work is amortized, never the checks.
//
// The cache sits behind the same genericity gate as the reduction itself
// (plans are only built when `reduce` holds) and is capped by pair count —
// oversized spaces fall back to the streaming enumeration, which is always
// sound.
struct SweepPlanEntry {
  Instance i;
  std::vector<Instance> js;  // J subsets, enumeration order
};

struct SweepPlan {
  std::vector<SweepPlanEntry> entries;
};

// Σ_{k<=max_facts} C(n, k), saturating at `cap` — an upper bound on the
// J-subset stream length (the canonical stream only drops members).
uint64_t SubsetCountBound(uint64_t n, uint64_t max_facts, uint64_t cap) {
  uint64_t total = 1;  // the empty subset
  uint64_t choose = 1;
  for (uint64_t k = 1; k <= max_facts && k <= n; ++k) {
    choose = choose * (n - k + 1) / k;
    total += choose;
    if (total >= cap) return cap;
  }
  return total;
}

std::shared_ptr<const SweepPlan> GetSweepPlan(const Schema& schema,
                                              MonotonicityClass cls,
                                              const ExhaustiveOptions& options,
                                              const std::vector<Value>& domain,
                                              const std::vector<Value>& fresh) {
  constexpr uint64_t kMaxPlanPairs = 1u << 17;
  std::string key = schema.ToString();
  for (size_t v : {options.domain_size, options.fresh_values,
                   options.max_facts_i, options.max_facts_j,
                   static_cast<size_t>(cls)}) {
    key += '|';
    key += std::to_string(v);
  }

  static std::mutex mu;
  static auto* cache =
      new std::unordered_map<std::string, std::shared_ptr<const SweepPlan>>();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }

  // Build outside the lock: concurrent misses may build duplicate plans, but
  // the plans are identical and the first insert wins.
  auto plan = std::make_shared<SweepPlan>();
  uint64_t pairs = 0;
  for (Instance& i : AllCanonicalInstances(schema, domain,
                                           options.max_facts_i)) {
    SweepPlanEntry entry;
    entry.i = std::move(i);
    std::vector<Fact> candidates =
        CandidateJFacts(schema, entry.i, fresh, cls);
    pairs += SubsetCountBound(candidates.size(), options.max_facts_j,
                              kMaxPlanPairs);
    if (pairs >= kMaxPlanPairs) return nullptr;  // too big to materialize
    ForEachCanonicalFactSubset(
        candidates, options.max_facts_j,
        FactIndexPermutations(candidates, StabilizerValueMaps(entry.i, fresh)),
        [&](const Instance& j) {
          entry.js.push_back(j);
          return true;
        });
    plan->entries.push_back(std::move(entry));
  }

  std::lock_guard<std::mutex> lock(mu);
  return cache->emplace(key, std::move(plan)).first->second;
}

}  // namespace

Result<std::optional<Counterexample>> FindViolation(
    const Query& query, MonotonicityClass cls,
    const ExhaustiveOptions& options) {
  const Schema& schema = query.input_schema();
  std::vector<Value> domain = IntDomain(options.domain_size);
  std::vector<Value> fresh = IntDomain(options.fresh_values, 1000);

  // Materialize the candidate-I space (small by construction: the paper's
  // separations live at <= 6 values) and partition its indices across the
  // pool. Each index records its first stopping event in a private slot;
  // the winner is the event at the least index, which is exactly what the
  // single-threaded nested loop returns — so verdicts and counterexamples
  // are deterministic and thread-count-independent. `first_stop` is a
  // monotonically decreasing cursor used only to prune work at indices that
  // can no longer win.
  // With the symmetry reduction active, the I stream keeps only the
  // enumeration-least member of each isomorphism orbit; because violation
  // existence is orbit-invariant for a generic query, the first violating
  // representative is the first violating instance of the full stream, so
  // the reported counterexample is byte-identical. The same argument filters
  // each I's J-subset space under the stabilizer maps. The cache is only
  // consulted under the same genericity gate.
  bool reduce = ResolveSymmetry(query, options.symmetry, options.domain_size,
                                options.max_facts_i);
  QueryResultCache* cache = reduce ? options.cache : nullptr;
  std::shared_ptr<const SweepPlan> plan =
      reduce ? GetSweepPlan(schema, cls, options, domain, fresh) : nullptr;
  std::vector<Instance> is =
      plan != nullptr ? std::vector<Instance>()
      : reduce ? AllCanonicalInstances(schema, domain, options.max_facts_i)
               : AllInstances(schema, domain, options.max_facts_i);
  const size_t space = plan != nullptr ? plan->entries.size() : is.size();
  std::vector<InstanceOutcome> slots(space);
  std::atomic<size_t> first_stop{space};

  // Durable sweep journal (sweep_checkpoint.h). The file identity encodes
  // the query, kind, class, and every bound, and its Begin record pins
  // `space`, so replayed progress always belongs to this exact sweep.
  std::unique_ptr<SweepCheckpoint> ckpt;
  if (!options.checkpoint_dir.empty()) {
    CALM_ASSIGN_OR_RETURN(
        ckpt, SweepCheckpoint::Open(
                  options.checkpoint_dir,
                  SweepFileId(query.name(), "fv", MonotonicityClassName(cls),
                              options.domain_size, options.fresh_values,
                              options.max_facts_i, options.max_facts_j),
                  space));
    if (ckpt->complete()) {
      // A prior run finished this sweep: its recorded winner is the verdict.
      const uint64_t winner = ckpt->winner();
      if (winner >= space) return std::optional<Counterexample>();
      const SweepStop* stop = ckpt->StopAt(winner);
      if (stop == nullptr) {
        return InternalError("sweep checkpoint: complete without a stop at " +
                             std::to_string(winner));
      }
      if (!stop->has_witness) return stop->error;
      return std::optional<Counterexample>(
          Counterexample{stop->i, stop->j, stop->fact});
    }
    // Seed this run with the recorded stops: they occupy their slots and the
    // least recorded stop prunes everything behind it, exactly as if this
    // run had found them itself.
    for (const auto& [idx, stop] : ckpt->stops()) {
      if (idx >= space) continue;
      if (stop.has_witness) {
        slots[idx].cex = Counterexample{stop.i, stop.j, stop.fact};
      } else {
        slots[idx].error = stop.error;
      }
    }
    if (!ckpt->stops().empty()) {
      first_stop.store(ckpt->stops().begin()->first,
                       std::memory_order_relaxed);
    }
  }
  std::atomic<bool> cancelled{false};
  auto cancel_requested = [&]() {
    if (options.cancel == nullptr ||
        !options.cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    cancelled.store(true, std::memory_order_relaxed);
    return true;
  };

  TraceSpan span("checker.find_violation");
  span.Arg("class", static_cast<int64_t>(cls));
  span.Arg("instances", static_cast<int64_t>(space));
  span.Arg("reduced", reduce ? 1 : 0);
  const bool metrics_on = MetricsEnabled();
  const QueryResultCache::Stats cache_before =
      cache != nullptr ? cache->stats() : QueryResultCache::Stats{};
  // Pair totals feed the span and the progress counters; they are only
  // tallied when somebody is listening (the per-pair add is a sharded
  // relaxed atomic, the per-I flush below is the normal path).
  const bool observing = metrics_on || span.active();
  std::atomic<uint64_t> pairs_total{0};
  Counter* instances_done = nullptr;
  Counter* pairs_done = nullptr;
  Counter* skipped_done = nullptr;
  if (metrics_on) {
    MetricRegistry& registry = MetricRegistry::Global();
    instances_done =
        &registry.GetCounter("calm.checker.instances_examined",
                             {{"class", MonotonicityClassName(cls)}});
    pairs_done = &registry.GetCounter("calm.checker.pairs_checked",
                                      {{"class", MonotonicityClassName(cls)}});
    if (ckpt != nullptr) {
      skipped_done = &registry.GetCounter("calm.durable.sweep_skipped");
    }
  }

  ParallelFor(space, options.threads, [&](size_t idx) {
    if (cancel_requested()) return;
    if (ckpt != nullptr && ckpt->IsRecorded(idx)) {
      // A prior run durably finished this candidate; its outcome (if a stop)
      // was seeded into `slots` above.
      if (skipped_done != nullptr) skipped_done->Increment();
      return;
    }
    if (first_stop.load(std::memory_order_relaxed) < idx) return;
    InstanceOutcome& slot = slots[idx];
    uint64_t pairs_here = 0;
    // A candidate pruned mid-enumeration (a lower index already stopped, or
    // a cancel arrived) was NOT fully examined, so it must not be journaled
    // as Done — the Done record means "every J was checked".
    bool pruned = false;
    if (plan != nullptr) {
      // Plan path: walk the precomputed J stream through one PairChecker —
      // base evaluation stays lazy (an I with no pairs is never evaluated)
      // and the union evaluator's per-I state amortizes across the whole
      // stream; checks, order, and stop points match the streaming path
      // exactly.
      const SweepPlanEntry& entry = plan->entries[idx];
      PairChecker checker(query, entry.i, cache);
      for (const Instance& j : entry.js) {
        if (first_stop.load(std::memory_order_relaxed) < idx ||
            cancel_requested()) {
          pruned = true;
          break;
        }
        ++pairs_here;
        Result<std::optional<Counterexample>> r = checker.Check(j);
        if (!r.ok()) {
          slot.error = r.status();
          break;
        }
        if (r->has_value()) {
          slot.cex = std::move(r.value());
          break;
        }
      }
    } else {
      const Instance& i = is[idx];
      std::vector<Fact> candidates = CandidateJFacts(schema, i, fresh, cls);
      // One checker per outer I: Q(i) is computed once and reused across the
      // whole J enumeration below.
      PairChecker checker(query, i, cache);
      auto visit = [&](const Instance& j) {
        if (first_stop.load(std::memory_order_relaxed) < idx ||
            cancel_requested()) {
          pruned = true;
          return false;
        }
        ++pairs_here;
        Result<std::optional<Counterexample>> r = checker.Check(j);
        if (!r.ok()) {
          slot.error = r.status();
          return false;
        }
        if (r->has_value()) {
          slot.cex = std::move(r.value());
          return false;
        }
        return true;
      };
      if (reduce) {
        ForEachCanonicalFactSubset(
            candidates, options.max_facts_j,
            FactIndexPermutations(candidates, StabilizerValueMaps(i, fresh)),
            visit);
      } else {
        ForEachFactSubset(candidates, options.max_facts_j, visit);
      }
    }
    if (observing) {
      pairs_total.fetch_add(pairs_here, std::memory_order_relaxed);
      if (metrics_on) {
        instances_done->Increment();
        pairs_done->Increment(pairs_here);
      }
    }
    if (!slot.error.ok() || slot.cex.has_value()) {
      if (ckpt != nullptr) {
        // Durable before visible: the stop is journaled before it can prune
        // (and thus silence) higher indices in this run.
        SweepStop stop;
        if (slot.cex.has_value()) {
          stop.has_witness = true;
          stop.i = slot.cex->i;
          stop.j = slot.cex->j;
          stop.fact = slot.cex->retracted;
        } else {
          stop.error = slot.error;
        }
        ckpt->RecordStop(idx, stop);
      }
      size_t cur = first_stop.load(std::memory_order_relaxed);
      while (idx < cur &&
             !first_stop.compare_exchange_weak(cur, idx,
                                               std::memory_order_relaxed)) {
      }
    } else if (ckpt != nullptr && !pruned) {
      ckpt->RecordDone(idx);
    }
  });

  if (span.active()) {
    span.Arg("pairs", static_cast<int64_t>(
                          pairs_total.load(std::memory_order_relaxed)));
  }
  if (cache != nullptr && metrics_on) {
    const QueryResultCache::Stats after = cache->stats();
    MetricRegistry& registry = MetricRegistry::Global();
    registry.GetCounter("calm.checker.cache_hits")
        .Increment(after.hits - cache_before.hits);
    registry.GetCounter("calm.checker.cache_misses")
        .Increment(after.misses - cache_before.misses);
  }

  if (cancelled.load(std::memory_order_relaxed)) {
    // Everything that finished before the cancel is already journaled; a
    // rerun with the same checkpoint_dir picks up from there.
    if (ckpt != nullptr) CALM_RETURN_IF_ERROR(ckpt->io_status());
    return DeadlineExceededError("sweep cancelled");
  }

  size_t winner = first_stop.load(std::memory_order_relaxed);
  if (ckpt != nullptr) {
    // The sweep ran to the end: certify the checkpoint (the winner is final)
    // — but only if every append landed; a WAL with a missing Done record
    // must not claim completeness.
    CALM_RETURN_IF_ERROR(ckpt->io_status());
    ckpt->RecordComplete(winner);
    CALM_RETURN_IF_ERROR(ckpt->io_status());
  }
  if (winner < space) {
    InstanceOutcome& slot = slots[winner];
    if (!slot.error.ok()) return slot.error;
    return std::move(slot.cex);
  }
  return std::optional<Counterexample>();
}

Result<std::optional<Counterexample>> FindViolationRandom(
    const Query& query, MonotonicityClass cls, const RandomOptions& options) {
  const Schema& schema = query.input_schema();
  for (size_t trial = 0; trial < options.trials; ++trial) {
    uint64_t seed = options.seed * 1000003 + trial;
    Instance i =
        workload::RandomInstance(schema, options.facts_i, options.domain_size,
                                 seed);
    Instance j;
    switch (cls) {
      case MonotonicityClass::kMonotone:
        // Arbitrary J: another random instance over a slightly larger
        // domain, so it overlaps adom(I) but also brings new values.
        j = workload::RandomInstance(schema, options.facts_j,
                                     options.domain_size + options.fresh_values,
                                     seed + 1);
        break;
      case MonotonicityClass::kDomainDistinct:
        j = workload::RandomDomainDistinctExtension(
            schema, i, options.facts_j, options.fresh_values, seed + 1);
        break;
      case MonotonicityClass::kDomainDisjoint:
        j = workload::RandomDomainDisjointExtension(
            schema, i, options.facts_j, options.fresh_values, seed + 1);
        break;
    }
    Result<std::optional<Counterexample>> r = CheckPair(query, i, j);
    if (!r.ok()) return r.status();
    if (r->has_value()) return r;
  }
  return std::optional<Counterexample>();
}

}  // namespace calm::monotonicity
