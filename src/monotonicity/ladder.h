#ifndef CALM_MONOTONICITY_LADDER_H_
#define CALM_MONOTONICITY_LADDER_H_

#include <string>
#include <vector>

#include "monotonicity/checker.h"

namespace calm::monotonicity {

// The bounded ladders of Section 3.1: for i = 1..max_i, whether the query
// sits in M^i, M^i_distinct, M^i_disjoint (bounded exhaustive verdicts).
// This is Figure 1 as a data structure — each row either carries a
// counterexample or certifies "no violation in the searched space".
struct LadderRow {
  size_t i = 0;
  bool in_m = false;
  bool in_distinct = false;
  bool in_disjoint = false;
  std::optional<Counterexample> m_witness;
  std::optional<Counterexample> distinct_witness;
  std::optional<Counterexample> disjoint_witness;
};

struct Ladder {
  std::vector<LadderRow> rows;

  // The least i at which the query leaves M^i_distinct (0 = never within
  // the table) — by Theorem 3.1(3) this pins the query's rung.
  size_t FirstDistinctViolation() const;
  size_t FirstDisjointViolation() const;

  // Renders an aligned table ("i  M  M^i_distinct  M^i_disjoint").
  std::string ToString() const;
};

// Computes the ladder for i = 1..max_i. `base` supplies the instance space
// (its max_facts_j is overridden per row by i).
Result<Ladder> ComputeLadder(const Query& query, size_t max_i,
                             ExhaustiveOptions base = {});

}  // namespace calm::monotonicity

#endif  // CALM_MONOTONICITY_LADDER_H_
