#ifndef CALM_MONOTONICITY_CHECKER_H_
#define CALM_MONOTONICITY_CHECKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/instance.h"
#include "base/query.h"
#include "base/status.h"

namespace calm {
class QueryResultCache;
}

namespace calm::monotonicity {

// The monotonicity hierarchy of Section 3.1 (Definition 1):
//   kMonotone        M          : Q(I) <= Q(I u J) for all J
//   kDomainDistinct  Mdistinct  : ... for J domain distinct from I
//   kDomainDisjoint  Mdisjoint  : ... for J domain disjoint from I
enum class MonotonicityClass {
  kMonotone,
  kDomainDistinct,
  kDomainDisjoint,
};

const char* MonotonicityClassName(MonotonicityClass cls);

// A witness that Q is not in the checked class: some output fact of Q(i) is
// missing from Q(i u j), where j is of the class-appropriate kind w.r.t. i.
struct Counterexample {
  Instance i;
  Instance j;
  Fact retracted;  // in Q(i) \ Q(i u j)

  std::string ToString() const;
};

struct ExhaustiveOptions {
  // I ranges over instances with values {0..domain_size-1} and at most
  // max_facts_i facts.
  size_t domain_size = 3;
  size_t max_facts_i = 3;
  // J draws on fresh values {1000..1000+fresh_values-1} (plus adom(I) for
  // the domain-distinct case) and has at most max_facts_j facts. Bounding
  // max_facts_j to i checks the bounded class M^i (Section 3.1).
  size_t fresh_values = 2;
  size_t max_facts_j = 4;
  // Worker threads for the exhaustive search (0 = DefaultThreads(), i.e. the
  // --threads / CALM_THREADS knob; 1 = serial). The candidate-I space is
  // partitioned across the pool and per-shard results are merged in
  // enumeration order, so the verdict and counterexample are identical for
  // every thread count.
  size_t threads = 0;
  // Genericity-aware symmetry reduction (base/canonical.h): sweep one
  // representative per isomorphism orbit of I, and filter each I's J-subset
  // space down to orbit representatives under Aut(I) x Sym(fresh values).
  // kAuto probes genericity first (ProbeGenericity in base/query.h); a query
  // failing the probe — including by evaluation error — falls back to the
  // full sweep. Because the kept representative is always the
  // enumeration-order-least orbit member, verdicts AND counterexamples are
  // byte-identical to the full sweep for generic queries.
  SymmetryMode symmetry = SymmetryMode::kAuto;
  // Optional shared canonical result cache (base/result_cache.h), consulted
  // only while the symmetry reduction is active (its correctness rests on
  // the same genericity assumption). ComputeLadder wires one cache across
  // its 3 * max_i cells; standalone FindViolation calls run uncached unless
  // the caller provides one. Not owned.
  QueryResultCache* cache = nullptr;
  // When non-empty, the sweep journals per-candidate progress into
  // <checkpoint_dir>/<sweep id>.wal (monotonicity/sweep_checkpoint.h) and a
  // rerun with the same query, class, and bounds resumes: recorded indices
  // are skipped and the verdict, witness, and stop point are identical to an
  // uninterrupted run. The directory is created if missing.
  std::string checkpoint_dir;
  // Optional cooperative cancellation (the benches' SIGINT handler sets it).
  // When the flag becomes true the sweep stops starting new candidates and
  // returns kDeadlineExceeded; with a checkpoint_dir, everything finished
  // before the cancel is durable and a rerun continues from there. Not owned.
  const std::atomic<bool>* cancel = nullptr;
};

// Exhaustively searches the bounded space for a violation of `cls`.
// Returns a counterexample, or nullopt when the query satisfies the
// monotonicity condition on every enumerated pair (evidence, not proof).
// For kMonotone, J additionally ranges over facts made purely of old values.
Result<std::optional<Counterexample>> FindViolation(
    const Query& query, MonotonicityClass cls,
    const ExhaustiveOptions& options = {});

struct RandomOptions {
  size_t trials = 100;
  size_t domain_size = 8;
  size_t facts_i = 10;
  size_t facts_j = 4;
  size_t fresh_values = 4;
  uint64_t seed = 0;
};

// Randomized search over larger instances.
Result<std::optional<Counterexample>> FindViolationRandom(
    const Query& query, MonotonicityClass cls, const RandomOptions& options);

// Checks pairs (i, j) sharing a fixed outer i: Q(i) is evaluated once (on
// the first Check) and reused for every j, and the per-pair Q(i u j)
// subset tests go through the query's UnionEvaluator (base/query.h) — the
// engine decides how to reuse its state about i across the J enumeration
// (a materialized fixpoint continued by insertion deltas for DatalogQuery,
// a precomputed reachability matrix for the closure queries, an overlay on
// a persistent copy of i otherwise). Every route reports the byte-identical
// first-retracted fact. The exhaustive searches create one PairChecker per
// candidate I; `i` must outlive the checker.
class PairChecker {
 public:
  // When `cache` is non-null, the base Q(i) evaluation goes through it —
  // isomorphic outer instances anywhere in the sweep (e.g. the 3 * max_i
  // ladder cells re-sweeping the same I space) then share one evaluation.
  // The per-pair Q(i u j) checks always run directly through the union
  // evaluator: unions rarely repeat within a search, so canonicalizing each
  // one costs more than it saves. Callers must only pass a cache under the
  // genericity gate.
  PairChecker(const Query& query, const Instance& i,
              QueryResultCache* cache = nullptr)
      : query_(query), i_(i), cache_(cache) {}

  // Returns a counterexample iff Q(i) is not a subset of Q(i u j) — the
  // retracted fact is the first one in Q(i)'s iteration order, identical to
  // evaluating the pair in isolation. Callers are responsible for j's kind.
  Result<std::optional<Counterexample>> Check(const Instance& j);

 private:
  Status EvalFactsMaybeCached(const Instance& input, std::vector<Fact>* out);

  const Query& query_;
  const Instance& i_;
  QueryResultCache* cache_ = nullptr;
  bool base_ready_ = false;
  Status base_status_;            // Q(i)'s error, replayed on every Check
  std::vector<Fact> base_facts_;  // Q(i) in iteration order
  // Engine-chosen Q(i) <= Q(i u j) tester, built lazily with base_facts_.
  std::unique_ptr<UnionEvaluator> union_eval_;
};

// Checks one specific pair: returns a counterexample iff Q(i) is not a
// subset of Q(i u j). Callers are responsible for j's kind.
Result<std::optional<Counterexample>> CheckPair(const Query& query,
                                                const Instance& i,
                                                const Instance& j);

}  // namespace calm::monotonicity

#endif  // CALM_MONOTONICITY_CHECKER_H_
