#ifndef CALM_MONOTONICITY_PRESERVATION_H_
#define CALM_MONOTONICITY_PRESERVATION_H_

#include <atomic>
#include <optional>
#include <string>

#include "base/instance.h"
#include "base/query.h"
#include "base/status.h"

namespace calm::monotonicity {

// Preservation classes of Section 3.2 (Definition 2): H (preserved under
// homomorphisms), Hinj (injective homomorphisms), E (extensions). Lemma 3.2:
// H ( Hinj = M ( E = Mdistinct. These bounded checkers let the benches
// re-derive the lemma's equalities empirically.
enum class PreservationClass {
  kHomomorphisms,           // H
  kInjectiveHomomorphisms,  // Hinj
  kExtensions,              // E
};

const char* PreservationClassName(PreservationClass cls);

struct PreservationViolation {
  Instance i;
  Instance j;
  Fact not_preserved;  // h(f) missing from Q(J) (or f missing from Q(I) for E)
  std::string ToString() const;
};

struct PreservationOptions {
  // Instances range over {0..domain_size-1} with at most max_facts facts;
  // target instances for homomorphism checks use the same bounds.
  size_t domain_size = 3;
  size_t max_facts = 3;
  // Worker threads (0 = DefaultThreads(), 1 = serial). The source-instance
  // space is partitioned across the pool; results merge in enumeration
  // order, so the violation returned is thread-count-independent.
  size_t threads = 0;
  // Genericity-aware symmetry reduction: sweep only the enumeration-least
  // representative of each source-instance isomorphism orbit (violation
  // existence is orbit-invariant for generic queries, so the first violating
  // representative is the first violating source and the reported violation
  // is byte-identical to the full sweep), and serve the repeated target /
  // subinstance evaluations from a canonical result cache. kAuto probes
  // genericity first; failures fall back to the full sweep.
  SymmetryMode symmetry = SymmetryMode::kAuto;
  // When non-empty, the sweep journals per-source progress into
  // <checkpoint_dir>/<sweep id>.wal (monotonicity/sweep_checkpoint.h); a
  // rerun with the same query, class, and bounds skips recorded sources and
  // returns the identical verdict, witness, and stop point. Created if
  // missing.
  std::string checkpoint_dir;
  // Optional cooperative cancellation; semantics match
  // ExhaustiveOptions::cancel (checker.h). Not owned.
  const std::atomic<bool>* cancel = nullptr;
};

// Exhaustively searches the bounded space for a preservation violation.
// For H / Hinj: some (injective) homomorphism h : I -> J and fact f in Q(I)
// with h(f) not in Q(J). For E: some induced subinstance J of I and fact in
// Q(J) \ Q(I).
Result<std::optional<PreservationViolation>> FindPreservationViolation(
    const Query& query, PreservationClass cls,
    const PreservationOptions& options = {});

}  // namespace calm::monotonicity

#endif  // CALM_MONOTONICITY_PRESERVATION_H_
