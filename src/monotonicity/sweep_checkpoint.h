#ifndef CALM_MONOTONICITY_SWEEP_CHECKPOINT_H_
#define CALM_MONOTONICITY_SWEEP_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

#include "base/durable.h"
#include "base/fact.h"
#include "base/instance.h"
#include "base/status.h"

// ---------------------------------------------------------------------------
// Sweep WAL (see DESIGN.md, "Durability and crash recovery"): journals the
// progress of one exhaustive sweep — FindViolation, a ladder cell, or a
// preservation sweep — onto the shared record format (base/durable.h,
// client tag "calm.sweepwal"), so an interrupted run resumes instead of
// restarting.
//
// The unit of progress is one candidate index of the sweep's materialized
// I space. Per-index outcomes are deterministic (the checkers' existing
// thread-count-independence argument), and the sweep's result is the
// outcome at the LEAST index with a stopping event. So the journal needs
// only: which indices finished without an event (Done), which produced one
// (Stop, with the witness or error inlined), and whether the sweep reached
// its end (Complete, with the winning index). A resumed run skips recorded
// indices, replays recorded stops into its result slots, and computes the
// same least-index winner — the verdict, witness, and stop point are
// provably those of an uninterrupted run.
//
// One WAL file per sweep identity: the file name (SweepFileId) encodes the
// query name, sweep kind, class, and every bound, and the Begin record
// pins the materialized space size — a checkpoint can never be replayed
// into a differently-shaped sweep. Records are appended write+fsync before
// the in-memory result is published, so anything a crashed run reported as
// done is durable.
// ---------------------------------------------------------------------------

namespace calm::monotonicity {

// One recorded stopping event. Both Counterexample (checker.h) and
// PreservationViolation (preservation.h) are (I, J, fact) triples, so the
// WAL stores this shared shape and the sweeps convert at the edges.
struct SweepStop {
  Status error;  // non-OK: the stop was an evaluation error (no witness)
  bool has_witness = false;
  Instance i;
  Instance j;
  Fact fact;
};

class SweepCheckpoint {
 public:
  // Opens (creating `dir` and the file as needed) the WAL for the sweep
  // identified by `sweep_id`, replaying prior progress. `space_size` is
  // journaled on creation and validated on reopen — a mismatch means the
  // checkpoint belongs to a differently-shaped sweep and is an error.
  static Result<std::unique_ptr<SweepCheckpoint>> Open(
      const std::string& dir, const std::string& sweep_id,
      uint64_t space_size);

  // Whether `idx` already has a durable outcome (Done or Stop).
  bool IsRecorded(uint64_t idx) const;
  // The recorded stop at `idx`, or nullptr. Pointers stay valid for the
  // checkpoint's lifetime (Record* never mutates replayed state).
  const SweepStop* StopAt(uint64_t idx) const;
  // Recorded stops in index order (resume seeds its slots from these).
  const std::map<uint64_t, SweepStop>& stops() const { return stops_; }

  bool complete() const { return complete_; }
  // The recorded winning index (space_size when the sweep found nothing);
  // meaningful only when complete().
  uint64_t winner() const { return winner_; }
  // Indices replayed from the file at Open (done + stopped).
  uint64_t recorded_count() const { return recorded_at_open_; }

  // Durable progress appends (thread-safe; each is one write + fsync).
  // Append failures latch into io_status() instead of being returned —
  // a sweep's verdict never depends on WAL health, but FindViolation
  // checks io_status() before certifying the checkpoint as resumable.
  void RecordDone(uint64_t idx);
  void RecordStop(uint64_t idx, const SweepStop& stop);
  void RecordComplete(uint64_t winner);

  // The first append/open failure, or OK.
  Status io_status() const;

 private:
  SweepCheckpoint() = default;

  void AppendLocked(const durable::ByteWriter& w);

  mutable std::mutex mu_;
  durable::LogWriter log_;
  Status io_status_;
  uint64_t space_ = 0;
  std::unordered_set<uint64_t> recorded_;
  std::map<uint64_t, SweepStop> stops_;
  bool complete_ = false;
  uint64_t winner_ = 0;
  uint64_t recorded_at_open_ = 0;
};

// The WAL file stem for one sweep identity:
// "<query>-<kind>-<class>-d<domain>f<fresh>i<max_i>j<max_j>", with
// non-filename characters of the query name replaced by '_'.
std::string SweepFileId(std::string_view query_name, std::string_view kind,
                        std::string_view cls, size_t domain_size,
                        size_t fresh_values, size_t max_facts_i,
                        size_t max_facts_j);

}  // namespace calm::monotonicity

#endif  // CALM_MONOTONICITY_SWEEP_CHECKPOINT_H_
