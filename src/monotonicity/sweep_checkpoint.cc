#include "monotonicity/sweep_checkpoint.h"

#include <cctype>
#include <vector>

#include "base/metrics.h"

namespace calm::monotonicity {

namespace {

constexpr std::string_view kClientTag = "calm.sweepwal";

// Record type tags (u8, first payload byte).
enum RecordType : uint8_t {
  kBegin = 1,     // u64 space_size
  kDone = 2,      // u64 idx
  kStopCex = 3,   // u64 idx, instance i, instance j, str rel, tuple args
  kStopError = 4, // u64 idx, u32 status code, str message
  kComplete = 5,  // u64 winner (space_size = no stop anywhere)
};

Counter& Resumes() {
  static Counter& c =
      MetricRegistry::Global().GetCounter("calm.durable.sweep_resumes");
  return c;
}
Counter& Replayed() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.sweep_indices_replayed");
  return c;
}
Counter& Recorded() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.sweep_indices_recorded");
  return c;
}

Status CorruptRecord(const std::string& what) {
  return InvalidArgumentError("sweep checkpoint: " + what);
}

}  // namespace

std::string SweepFileId(std::string_view query_name, std::string_view kind,
                        std::string_view cls, size_t domain_size,
                        size_t fresh_values, size_t max_facts_i,
                        size_t max_facts_j) {
  std::string id;
  id.reserve(query_name.size() + 32);
  for (char c : query_name) {
    id.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-'
                     ? c
                     : '_');
  }
  id += '-';
  id += kind;
  id += '-';
  id += cls;
  id += "-d" + std::to_string(domain_size) + "f" +
        std::to_string(fresh_values) + "i" + std::to_string(max_facts_i) +
        "j" + std::to_string(max_facts_j);
  return id;
}

Result<std::unique_ptr<SweepCheckpoint>> SweepCheckpoint::Open(
    const std::string& dir, const std::string& sweep_id,
    uint64_t space_size) {
  CALM_RETURN_IF_ERROR(durable::MakeDirs(dir));
  const std::string path = dir + "/" + sweep_id + ".wal";

  std::unique_ptr<SweepCheckpoint> ckpt(new SweepCheckpoint());
  ckpt->space_ = space_size;
  std::vector<std::string> replayed;
  CALM_RETURN_IF_ERROR(ckpt->log_.Open(path, kClientTag, &replayed));

  if (replayed.empty()) {
    durable::ByteWriter w;
    w.U8(kBegin);
    w.U64(space_size);
    CALM_RETURN_IF_ERROR(ckpt->log_.Append(w.data()));
    return ckpt;
  }

  for (size_t n = 0; n < replayed.size(); ++n) {
    durable::ByteReader r(replayed[n]);
    uint8_t type = 0;
    if (!r.U8(&type)) return CorruptRecord("empty record");
    if (n == 0) {
      uint64_t space = 0;
      if (type != kBegin || !r.U64(&space) || !r.AtEnd()) {
        return CorruptRecord("first record is not Begin: " + path);
      }
      if (space != space_size) {
        return CorruptRecord(
            path + " journals a sweep of " + std::to_string(space) +
            " candidates, this sweep has " + std::to_string(space_size));
      }
      continue;
    }
    switch (type) {
      case kDone: {
        uint64_t idx = 0;
        if (!r.U64(&idx) || !r.AtEnd()) return CorruptRecord("bad Done");
        ckpt->recorded_.insert(idx);
        break;
      }
      case kStopCex: {
        uint64_t idx = 0;
        SweepStop stop;
        stop.has_witness = true;
        std::string rel;
        Tuple args;
        if (!r.U64(&idx) || !durable::DecodeInstance(&r, &stop.i) ||
            !durable::DecodeInstance(&r, &stop.j) || !r.Str(&rel) ||
            !durable::DecodeTuple(&r, &args) || !r.AtEnd()) {
          return CorruptRecord("bad Stop witness");
        }
        stop.fact = Fact(InternName(rel), std::move(args));
        ckpt->recorded_.insert(idx);
        ckpt->stops_.emplace(idx, std::move(stop));
        break;
      }
      case kStopError: {
        uint64_t idx = 0;
        uint32_t code = 0;
        std::string message;
        if (!r.U64(&idx) || !r.U32(&code) || !r.Str(&message) || !r.AtEnd()) {
          return CorruptRecord("bad Stop error");
        }
        SweepStop stop;
        stop.error = Status(static_cast<StatusCode>(code), std::move(message));
        ckpt->recorded_.insert(idx);
        ckpt->stops_.emplace(idx, std::move(stop));
        break;
      }
      case kComplete: {
        uint64_t winner = 0;
        if (!r.U64(&winner) || !r.AtEnd()) return CorruptRecord("bad Complete");
        ckpt->complete_ = true;
        ckpt->winner_ = winner;
        break;
      }
      case kBegin:
        return CorruptRecord("duplicate Begin");
      default:
        return CorruptRecord("unknown record type " + std::to_string(type));
    }
  }
  ckpt->recorded_at_open_ = ckpt->recorded_.size();
  if (MetricsEnabled()) {
    Resumes().Increment();
    Replayed().Increment(ckpt->recorded_at_open_);
  }
  return ckpt;
}

bool SweepCheckpoint::IsRecorded(uint64_t idx) const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_.count(idx) != 0;
}

const SweepStop* SweepCheckpoint::StopAt(uint64_t idx) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stops_.find(idx);
  return it == stops_.end() ? nullptr : &it->second;
}

void SweepCheckpoint::AppendLocked(const durable::ByteWriter& w) {
  if (!io_status_.ok()) return;  // latched: stop appending after a failure
  io_status_ = log_.Append(w.data());
  if (io_status_.ok() && MetricsEnabled()) Recorded().Increment();
}

void SweepCheckpoint::RecordDone(uint64_t idx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (recorded_.count(idx) != 0) return;
  durable::ByteWriter w;
  w.U8(kDone);
  w.U64(idx);
  AppendLocked(w);
  if (io_status_.ok()) recorded_.insert(idx);
}

void SweepCheckpoint::RecordStop(uint64_t idx, const SweepStop& stop) {
  std::lock_guard<std::mutex> lock(mu_);
  if (recorded_.count(idx) != 0) return;
  durable::ByteWriter w;
  if (stop.has_witness) {
    w.U8(kStopCex);
    w.U64(idx);
    durable::EncodeInstance(stop.i, &w);
    durable::EncodeInstance(stop.j, &w);
    w.Str(NameOf(stop.fact.relation));
    durable::EncodeTuple(stop.fact.args, &w);
  } else {
    w.U8(kStopError);
    w.U64(idx);
    w.U32(static_cast<uint32_t>(stop.error.code()));
    w.Str(stop.error.message());
  }
  AppendLocked(w);
  if (io_status_.ok()) {
    recorded_.insert(idx);
    stops_.emplace(idx, stop);
  }
}

void SweepCheckpoint::RecordComplete(uint64_t winner) {
  std::lock_guard<std::mutex> lock(mu_);
  if (complete_) return;
  durable::ByteWriter w;
  w.U8(kComplete);
  w.U64(winner);
  AppendLocked(w);
  if (io_status_.ok()) {
    complete_ = true;
    winner_ = winner;
  }
}

Status SweepCheckpoint::io_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_status_;
}

}  // namespace calm::monotonicity
