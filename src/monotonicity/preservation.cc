#include "monotonicity/preservation.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "base/enumerator.h"
#include "base/homomorphism.h"
#include "base/metrics.h"
#include "base/result_cache.h"
#include "base/thread_pool.h"
#include "base/trace.h"
#include "monotonicity/sweep_checkpoint.h"

namespace calm::monotonicity {

const char* PreservationClassName(PreservationClass cls) {
  switch (cls) {
    case PreservationClass::kHomomorphisms:
      return "H";
    case PreservationClass::kInjectiveHomomorphisms:
      return "Hinj";
    case PreservationClass::kExtensions:
      return "E";
  }
  return "?";
}

std::string PreservationViolation::ToString() const {
  return "I = " + i.ToString() + ", J = " + j.ToString() +
         ", fact not preserved: " + FactToString(not_preserved);
}

namespace {

// Checks preservation of Q under (injective) homomorphisms from i to j.
// `out_i` is Q(i), computed once per source by the caller and reused across
// every target j.
Result<std::optional<PreservationViolation>> CheckHomPair(
    const Query& query, const Instance& i, const Instance& out_i,
    const Instance& j, bool injective, QueryResultCache* cache) {
  // Q(j) is re-evaluated for the same j once per source instance; routing it
  // through the canonical cache (when the genericity gate is open) collapses
  // that to one evaluation per target isomorphism class for the whole sweep.
  Result<Instance> out_j = cache ? cache->Eval(j) : query.Eval(j);
  if (!out_j.ok()) return out_j.status();

  std::optional<PreservationViolation> found;
  ForEachHomomorphism(i, j, injective, [&](const std::map<Value, Value>& h) {
    Instance mapped = ApplyValueMap(out_i, h);
    mapped.ForEachFact([&](uint32_t name, const Tuple& t) {
      if (found.has_value()) return;
      Fact f(name, t);
      // Only facts whose values all lie in the domain of h are constrained
      // (Definition 2 maps adom(I); output facts use adom(I) by genericity).
      if (!out_j->Contains(f)) found = PreservationViolation{i, j, f};
    });
    return !found.has_value();
  });
  return found;
}

// Induced subinstance of `i` on the value subset `keep`.
Instance InducedOn(const Instance& i, const std::set<Value>& keep) {
  Instance out;
  i.ForEachFact([&](uint32_t name, const Tuple& t) {
    for (Value v : t) {
      if (keep.count(v) == 0) return;
    }
    out.Insert(Fact(name, t));
  });
  return out;
}

Result<std::optional<PreservationViolation>> CheckExtensions(
    const Query& query, const Instance& i, QueryResultCache* cache) {
  Result<Instance> out_i = cache ? cache->Eval(i) : query.Eval(i);
  if (!out_i.ok()) return out_i.status();

  // Enumerate value subsets of adom(i); each yields an induced subinstance.
  std::set<Value> adom_set = i.ActiveDomain();
  std::vector<Value> adom(adom_set.begin(), adom_set.end());
  size_t n = adom.size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    std::set<Value> keep;
    for (size_t b = 0; b < n; ++b) {
      if (mask & (uint64_t{1} << b)) keep.insert(adom[b]);
    }
    Instance j = InducedOn(i, keep);
    Result<Instance> out_j = cache ? cache->Eval(j) : query.Eval(j);
    if (!out_j.ok()) return out_j.status();
    std::optional<PreservationViolation> found;
    out_j->ForEachFact([&](uint32_t name, const Tuple& t) {
      if (found.has_value()) return;
      Fact f(name, t);
      if (!out_i->Contains(f)) found = PreservationViolation{i, j, f};
    });
    if (found.has_value()) return found;
  }
  return std::optional<PreservationViolation>();
}

// The first stopping event one source instance produced, in that source's
// inner enumeration order.
struct SourceOutcome {
  Status error;  // ok() when `violation` carries the event
  std::optional<PreservationViolation> violation;
};

}  // namespace

Result<std::optional<PreservationViolation>> FindPreservationViolation(
    const Query& query, PreservationClass cls,
    const PreservationOptions& options) {
  const Schema& schema = query.input_schema();
  std::vector<Value> domain = IntDomain(options.domain_size);

  // Under the genericity gate, sweep only the enumeration-least orbit
  // representatives of the source space (see base/enumerator.h for why the
  // reported violation stays byte-identical: the inner target loops are
  // untouched, and the first violating representative is the first violating
  // source) and route the repeated target evaluations through a canonical
  // result cache.
  bool reduce;
  switch (options.symmetry) {
    case SymmetryMode::kOff:
      reduce = false;
      break;
    case SymmetryMode::kForceOn:
      reduce = true;
      break;
    default:
      reduce = ProbeGenericity(query, options.domain_size,
                               std::min<size_t>(options.max_facts, 2)).ok();
      break;
  }
  QueryResultCache shared_cache(query);
  QueryResultCache* cache = reduce ? &shared_cache : nullptr;

  // Partition the source-instance space across the pool; each index checks
  // its targets serially and records the first stopping event in a private
  // slot. The event at the least index wins, matching the single-threaded
  // nested loops exactly (see monotonicity/checker.cc for the pattern).
  std::vector<Instance> sources =
      reduce ? AllCanonicalInstances(schema, domain, options.max_facts)
             : AllInstances(schema, domain, options.max_facts);
  std::vector<SourceOutcome> slots(sources.size());
  std::atomic<size_t> first_stop{sources.size()};

  // Durable sweep journal, same model as FindViolation (checker.cc): one
  // file per sweep identity, Begin pins the source count, recorded sources
  // are skipped on resume and recorded stops are seeded below.
  std::unique_ptr<SweepCheckpoint> ckpt;
  if (!options.checkpoint_dir.empty()) {
    CALM_ASSIGN_OR_RETURN(
        ckpt,
        SweepCheckpoint::Open(
            options.checkpoint_dir,
            SweepFileId(query.name(), "pres", PreservationClassName(cls),
                        options.domain_size, /*fresh_values=*/0,
                        options.max_facts, options.max_facts),
            sources.size()));
    if (ckpt->complete()) {
      const uint64_t winner = ckpt->winner();
      if (winner >= sources.size()) {
        return std::optional<PreservationViolation>();
      }
      const SweepStop* stop = ckpt->StopAt(winner);
      if (stop == nullptr) {
        return InternalError("sweep checkpoint: complete without a stop at " +
                             std::to_string(winner));
      }
      if (!stop->has_witness) return stop->error;
      return std::optional<PreservationViolation>(
          PreservationViolation{stop->i, stop->j, stop->fact});
    }
    for (const auto& [idx, stop] : ckpt->stops()) {
      if (idx >= sources.size()) continue;
      if (stop.has_witness) {
        slots[idx].violation = PreservationViolation{stop.i, stop.j, stop.fact};
      } else {
        slots[idx].error = stop.error;
      }
    }
    if (!ckpt->stops().empty()) {
      first_stop.store(ckpt->stops().begin()->first,
                       std::memory_order_relaxed);
    }
  }
  std::atomic<bool> cancelled{false};
  auto cancel_requested = [&]() {
    if (options.cancel == nullptr ||
        !options.cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    cancelled.store(true, std::memory_order_relaxed);
    return true;
  };

  TraceSpan span("preservation.find_violation");
  span.Arg("class", static_cast<int64_t>(cls));
  span.Arg("sources", static_cast<int64_t>(sources.size()));
  span.Arg("reduced", reduce ? 1 : 0);
  Counter* sources_done =
      MetricsEnabled()
          ? &MetricRegistry::Global().GetCounter(
                "calm.preservation.sources_examined",
                {{"class", PreservationClassName(cls)}})
          : nullptr;
  Counter* skipped_done =
      MetricsEnabled() && ckpt != nullptr
          ? &MetricRegistry::Global().GetCounter("calm.durable.sweep_skipped")
          : nullptr;

  auto record_stop = [&](size_t idx) {
    size_t cur = first_stop.load(std::memory_order_relaxed);
    while (idx < cur &&
           !first_stop.compare_exchange_weak(cur, idx,
                                             std::memory_order_relaxed)) {
    }
  };
  // Journals the source's outcome: a stop (durable before record_stop makes
  // it visible), or Done — but never Done for a source pruned before its
  // target enumeration finished.
  auto journal_outcome = [&](size_t idx, const SourceOutcome& slot,
                             bool pruned) {
    if (ckpt == nullptr) return;
    if (!slot.error.ok() || slot.violation.has_value()) {
      SweepStop stop;
      if (slot.violation.has_value()) {
        stop.has_witness = true;
        stop.i = slot.violation->i;
        stop.j = slot.violation->j;
        stop.fact = slot.violation->not_preserved;
      } else {
        stop.error = slot.error;
      }
      ckpt->RecordStop(idx, stop);
    } else if (!pruned) {
      ckpt->RecordDone(idx);
    }
  };

  if (cls == PreservationClass::kExtensions) {
    ParallelFor(sources.size(), options.threads, [&](size_t idx) {
      if (cancel_requested()) return;
      if (ckpt != nullptr && ckpt->IsRecorded(idx)) {
        if (skipped_done != nullptr) skipped_done->Increment();
        return;
      }
      if (first_stop.load(std::memory_order_relaxed) < idx) return;
      Result<std::optional<PreservationViolation>> r =
          CheckExtensions(query, sources[idx], cache);
      if (!r.ok()) {
        slots[idx].error = r.status();
        journal_outcome(idx, slots[idx], /*pruned=*/false);
        record_stop(idx);
      } else if (r->has_value()) {
        slots[idx].violation = std::move(r.value());
        journal_outcome(idx, slots[idx], /*pruned=*/false);
        record_stop(idx);
      } else {
        journal_outcome(idx, slots[idx], /*pruned=*/false);
      }
      if (sources_done != nullptr) sources_done->Increment();
    });
  } else {
    bool injective = cls == PreservationClass::kInjectiveHomomorphisms;
    // For injective homomorphisms the target needs spare values, so J ranges
    // over a domain twice the size.
    std::vector<Value> domain_j = IntDomain(2 * options.domain_size);
    ParallelFor(sources.size(), options.threads, [&](size_t idx) {
      if (cancel_requested()) return;
      if (ckpt != nullptr && ckpt->IsRecorded(idx)) {
        if (skipped_done != nullptr) skipped_done->Increment();
        return;
      }
      if (first_stop.load(std::memory_order_relaxed) < idx) return;
      const Instance& i = sources[idx];
      SourceOutcome& slot = slots[idx];
      bool pruned = false;
      // Q(i) is evaluated at most once per source (lazily, so an error
      // surfaces at the same point in the enumeration it always did).
      std::optional<Result<Instance>> out_i;
      ForEachInstance(schema, domain_j, options.max_facts,
                      [&](const Instance& j) {
        if (first_stop.load(std::memory_order_relaxed) < idx ||
            cancel_requested()) {
          pruned = true;
          return false;
        }
        if (!out_i.has_value()) out_i = cache ? cache->Eval(i) : query.Eval(i);
        if (!out_i->ok()) {
          slot.error = out_i->status();
          return false;
        }
        Result<std::optional<PreservationViolation>> r =
            CheckHomPair(query, i, out_i->value(), j, injective, cache);
        if (!r.ok()) {
          slot.error = r.status();
          return false;
        }
        if (r->has_value()) {
          slot.violation = std::move(r.value());
          return false;
        }
        return true;
      });
      journal_outcome(idx, slot, pruned);
      if (!slot.error.ok() || slot.violation.has_value()) record_stop(idx);
      if (sources_done != nullptr) sources_done->Increment();
    });
  }

  if (span.active() && cache != nullptr) {
    const QueryResultCache::Stats cs = cache->stats();
    span.Arg("cache_hits", static_cast<int64_t>(cs.hits));
    span.Arg("cache_misses", static_cast<int64_t>(cs.misses));
  }

  if (cancelled.load(std::memory_order_relaxed)) {
    if (ckpt != nullptr) CALM_RETURN_IF_ERROR(ckpt->io_status());
    return DeadlineExceededError("sweep cancelled");
  }

  size_t winner = first_stop.load(std::memory_order_relaxed);
  if (ckpt != nullptr) {
    CALM_RETURN_IF_ERROR(ckpt->io_status());
    ckpt->RecordComplete(winner);
    CALM_RETURN_IF_ERROR(ckpt->io_status());
  }
  if (winner < sources.size()) {
    SourceOutcome& slot = slots[winner];
    if (!slot.error.ok()) return slot.error;
    return std::move(slot.violation);
  }
  return std::optional<PreservationViolation>();
}

}  // namespace calm::monotonicity
