#include "monotonicity/components_property.h"

#include <vector>

#include "base/components.h"
#include "workload/instance_gen.h"

namespace calm::monotonicity {

Result<std::optional<ComponentsViolation>> CheckDistributesOverComponents(
    const Query& query, const Instance& i) {
  Result<Instance> whole = query.Eval(i);
  if (!whole.ok()) return whole.status();

  std::vector<Instance> comps = Components(i);
  Instance united;
  std::vector<std::set<Value>> adoms;
  for (const Instance& c : comps) {
    Result<Instance> part = query.Eval(c);
    if (!part.ok()) return part.status();
    united.InsertAll(part.value());
    adoms.push_back(part->ActiveDomain());
  }

  if (united != whole.value()) {
    Instance only_whole = Instance::Difference(whole.value(), united);
    Instance only_parts = Instance::Difference(united, whole.value());
    return std::optional<ComponentsViolation>(ComponentsViolation{
        i, "Q(I) != union of Q(C): missing from union " +
               only_whole.ToString() + ", extra in union " +
               only_parts.ToString()});
  }
  for (size_t a = 0; a < adoms.size(); ++a) {
    for (size_t b = a + 1; b < adoms.size(); ++b) {
      for (Value v : adoms[a]) {
        if (adoms[b].count(v) > 0) {
          return std::optional<ComponentsViolation>(ComponentsViolation{
              i, "outputs of two components share value " + ValueToString(v)});
        }
      }
    }
  }
  return std::optional<ComponentsViolation>();
}

Result<std::optional<ComponentsViolation>> FindComponentsViolationRandom(
    const Query& query, const ComponentsCheckOptions& options) {
  const Schema& schema = query.input_schema();
  for (size_t trial = 0; trial < options.trials; ++trial) {
    Instance input;
    for (size_t part = 0; part < options.parts; ++part) {
      uint64_t base = part * 1000 + 1;
      Instance piece = workload::RandomInstance(
          schema, options.part_facts, options.part_domain,
          options.seed * 7919 + trial * 31 + part, base);
      input.InsertAll(piece);
    }
    Result<std::optional<ComponentsViolation>> r =
        CheckDistributesOverComponents(query, input);
    if (!r.ok()) return r.status();
    if (r->has_value()) return r;
  }
  return std::optional<ComponentsViolation>();
}

}  // namespace calm::monotonicity
