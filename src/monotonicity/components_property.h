#ifndef CALM_MONOTONICITY_COMPONENTS_PROPERTY_H_
#define CALM_MONOTONICITY_COMPONENTS_PROPERTY_H_

#include <optional>
#include <string>

#include "base/instance.h"
#include "base/query.h"
#include "base/status.h"

namespace calm::monotonicity {

// Definition 5: Q distributes over components when for all I,
// (1) Q(I) = union of Q(C) over components C of I, and
// (2) adom(Q(C)) and adom(Q(C')) are disjoint for distinct components.
// Lemma 5.2: every con-Datalog¬ query distributes over components.

struct ComponentsViolation {
  Instance i;
  std::string reason;  // which condition failed and how
  std::string ToString() const { return "I = " + i.ToString() + ": " + reason; }
};

// Checks Definition 5 on one instance.
Result<std::optional<ComponentsViolation>> CheckDistributesOverComponents(
    const Query& query, const Instance& i);

struct ComponentsCheckOptions {
  size_t trials = 50;
  size_t parts = 3;       // number of domain-disjoint parts per input
  size_t part_facts = 4;  // facts per part
  size_t part_domain = 4;
  uint64_t seed = 0;
};

// Randomized multi-component inputs (disjoint unions of random parts).
Result<std::optional<ComponentsViolation>> FindComponentsViolationRandom(
    const Query& query, const ComponentsCheckOptions& options);

}  // namespace calm::monotonicity

#endif  // CALM_MONOTONICITY_COMPONENTS_PROPERTY_H_
