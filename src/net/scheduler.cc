#include "net/scheduler.h"

namespace calm::net {

Scheduler::Choice RoundRobinScheduler::Next(
    const std::vector<MessageBuffer>& buffers, uint64_t tick) {
  (void)tick;
  Choice c;
  c.node_index = next_node_;
  next_node_ = (next_node_ + 1) % node_count_;
  c.deliveries = buffers[c.node_index].AllIndices();
  return c;
}

RandomScheduler::RandomScheduler(size_t node_count, uint64_t seed,
                                 double deliver_prob, uint64_t max_delay)
    : node_count_(node_count),
      rng_(seed),
      deliver_prob_(deliver_prob),
      max_delay_(max_delay),
      last_active_(node_count, 0) {}

Scheduler::Choice RandomScheduler::Next(
    const std::vector<MessageBuffer>& buffers, uint64_t tick) {
  Choice c;
  // Starvation bound: if some node has not been active for 4 * node_count
  // ticks, activate it; otherwise pick uniformly.
  size_t forced = node_count_;
  for (size_t i = 0; i < node_count_; ++i) {
    if (tick - last_active_[i] > 4 * node_count_ + 4) {
      forced = i;
      break;
    }
  }
  if (forced < node_count_) {
    c.node_index = forced;
  } else {
    std::uniform_int_distribution<size_t> pick(0, node_count_ - 1);
    c.node_index = pick(rng_);
  }
  last_active_[c.node_index] = tick;

  const MessageBuffer& buffer = buffers[c.node_index];
  std::bernoulli_distribution deliver(deliver_prob_);
  uint64_t oldest_allowed = tick > max_delay_ ? tick - max_delay_ : 0;
  for (size_t i = 0; i < buffer.entries().size(); ++i) {
    if (buffer.entries()[i].enqueued_at <= oldest_allowed || deliver(rng_)) {
      c.deliveries.push_back(i);
    }
  }
  return c;
}

Scheduler::Choice AdversarialDelayScheduler::Next(
    const std::vector<MessageBuffer>& buffers, uint64_t tick) {
  Choice c;
  c.node_index = next_node_;
  next_node_ = (next_node_ + 1) % node_count_;
  uint64_t oldest_allowed = tick > max_delay_ ? tick - max_delay_ : 0;
  c.deliveries = buffers[c.node_index].IndicesOlderThan(oldest_allowed);
  return c;
}

}  // namespace calm::net
