#include "net/message_buffer.h"

#include <algorithm>

namespace calm::net {

Instance MessageBuffer::TakeCollapsed(const std::vector<size_t>& indices) {
  Instance delivered;
  // Remove back to front so earlier indices stay valid.
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    size_t i = *it;
    delivered.Insert(std::move(entries_[i].fact));
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
  }
  return delivered;
}

std::vector<size_t> MessageBuffer::AllIndices() const {
  std::vector<size_t> out(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) out[i] = i;
  return out;
}

std::vector<size_t> MessageBuffer::IndicesOlderThan(uint64_t tick) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].enqueued_at <= tick) out.push_back(i);
  }
  return out;
}

Json RunStatsToJson(const RunStats& stats) {
  Json out = Json::Object();
  out.Set("transitions", Json::Uint(stats.transitions));
  out.Set("heartbeats", Json::Uint(stats.heartbeats));
  out.Set("sent", Json::Uint(stats.messages_sent));
  out.Set("delivered", Json::Uint(stats.messages_delivered));
  out.Set("output_facts", Json::Uint(stats.output_facts));
  out.Set("output_complete_at", Json::Uint(stats.output_complete_at));
  return out;
}

std::string RunStatsToString(const RunStats& stats) {
  // Rendered from the JSON form so the two reports share one field list.
  std::string out;
  const Json json = RunStatsToJson(stats);
  for (const auto& [key, value] : json.members()) {
    if (!out.empty()) out += ' ';
    out += key + "=" + std::to_string(value.uint_value());
  }
  return out;
}

}  // namespace calm::net
