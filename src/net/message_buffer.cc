#include "net/message_buffer.h"

#include <algorithm>

namespace calm::net {

Instance MessageBuffer::TakeCollapsed(const std::vector<size_t>& indices) {
  Instance delivered;
  // Remove back to front so earlier indices stay valid.
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    size_t i = *it;
    delivered.Insert(std::move(entries_[i].fact));
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
  }
  return delivered;
}

std::vector<size_t> MessageBuffer::AllIndices() const {
  std::vector<size_t> out(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) out[i] = i;
  return out;
}

std::vector<size_t> MessageBuffer::IndicesOlderThan(uint64_t tick) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].enqueued_at <= tick) out.push_back(i);
  }
  return out;
}

std::string RunStatsToString(const RunStats& stats) {
  return "transitions=" + std::to_string(stats.transitions) +
         " heartbeats=" + std::to_string(stats.heartbeats) +
         " sent=" + std::to_string(stats.messages_sent) +
         " delivered=" + std::to_string(stats.messages_delivered) +
         " output_facts=" + std::to_string(stats.output_facts) +
         " output_complete_at=" + std::to_string(stats.output_complete_at);
}

}  // namespace calm::net
