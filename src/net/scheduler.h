#ifndef CALM_NET_SCHEDULER_H_
#define CALM_NET_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "base/value.h"
#include "net/message_buffer.h"

namespace calm::net {

// Chooses, per transition, the active node and the submultiset of its buffer
// to deliver (the run nondeterminism of Section 4.1.3). Implementations must
// be *fair*: every node active infinitely often, no message postponed
// forever. Simulated runs are finite prefixes, so fairness is realized as
// bounded postponement.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  struct Choice {
    size_t node_index = 0;             // into the network's node list
    std::vector<size_t> deliveries;    // strictly increasing buffer indices
  };

  // `buffers[i]` is node i's buffer; `tick` the global transition counter.
  virtual Choice Next(const std::vector<MessageBuffer>& buffers,
                      uint64_t tick) = 0;
};

// Cycles through nodes, delivering the full buffer each activation. The
// canonical "synchronous-ish" fair schedule.
class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(size_t node_count) : node_count_(node_count) {}
  Choice Next(const std::vector<MessageBuffer>& buffers, uint64_t tick) override;

 private:
  size_t node_count_;
  size_t next_node_ = 0;
};

// Picks a random node and delivers each buffered message with probability
// `deliver_prob`, except that messages older than `max_delay` ticks are
// always delivered (bounded postponement = fairness). Node choice is also
// round-robin-forced every `node_starvation_bound` ticks.
class RandomScheduler : public Scheduler {
 public:
  RandomScheduler(size_t node_count, uint64_t seed, double deliver_prob = 0.5,
                  uint64_t max_delay = 16);
  Choice Next(const std::vector<MessageBuffer>& buffers, uint64_t tick) override;

 private:
  size_t node_count_;
  std::mt19937_64 rng_;
  double deliver_prob_;
  uint64_t max_delay_;
  std::vector<uint64_t> last_active_;
};

// Worst-case-but-fair adversary: cycles nodes round-robin but postpones
// every message until the fairness bound forces its delivery (each message
// sits in the buffer for exactly `max_delay` ticks). Maximizes staleness
// while remaining a legal fair schedule.
class AdversarialDelayScheduler : public Scheduler {
 public:
  AdversarialDelayScheduler(size_t node_count, uint64_t max_delay = 16)
      : node_count_(node_count), max_delay_(max_delay) {}
  Choice Next(const std::vector<MessageBuffer>& buffers, uint64_t tick) override;

 private:
  size_t node_count_;
  uint64_t max_delay_;
  size_t next_node_ = 0;
};

}  // namespace calm::net

#endif  // CALM_NET_SCHEDULER_H_
