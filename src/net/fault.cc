#include "net/fault.h"

#include <algorithm>

#include "base/metrics.h"
#include "base/trace.h"

namespace calm::net {

namespace {

// Every fault-event site also bumps a per-kind counter (when the registry is
// listening) so metrics and the event log can be cross-checked.
void CountFault(FaultEvent::Kind kind) {
  if (!MetricsEnabled()) return;
  MetricRegistry::Global()
      .GetCounter("calm.net.faults", {{"kind", FaultKindName(kind)}})
      .Increment();
}

// Record schema of the on-disk inbox WALs (EnableDurableInboxes): one fact
// per record, relation by name + tuple, on the shared record format.
constexpr std::string_view kInboxTag = "calm.inbox";

void EncodeInboxFact(uint32_t relation, const Tuple& t,
                     durable::ByteWriter* w) {
  w->Str(NameOf(relation));
  durable::EncodeTuple(t, w);
}

bool DecodeInboxFact(std::string_view payload, Fact* out) {
  durable::ByteReader r(payload);
  std::string name;
  Tuple t;
  if (!r.Str(&name) || !durable::DecodeTuple(&r, &t) || !r.AtEnd()) {
    return false;
  }
  *out = Fact(InternName(name), std::move(t));
  return true;
}

Counter& InboxFactsReplayed() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.inbox_facts_replayed");
  return c;
}

}  // namespace

const char* FaultKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kDuplicate:
      return "duplicate";
    case FaultEvent::Kind::kDrop:
      return "drop";
    case FaultEvent::Kind::kReorder:
      return "reorder";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultProfile FaultProfile::Chaos() {
  FaultProfile p;
  p.duplicate_prob = 0.25;
  p.drop_prob = 0.25;
  p.reorder_prob = 0.35;
  p.partition_prob = 0.05;
  p.crash_prob = 0.02;
  return p;
}

FaultProfile FaultProfile::DuplicationOnly(double prob) {
  FaultProfile p = None();
  p.duplicate_prob = prob;
  return p;
}

FaultProfile FaultProfile::DropOnly(double prob) {
  FaultProfile p = None();
  p.drop_prob = prob;
  return p;
}

FaultProfile FaultProfile::None() {
  FaultProfile p;
  p.duplicate_prob = 0;
  p.drop_prob = 0;
  p.reorder_prob = 0;
  p.partition_prob = 0;
  p.crash_prob = 0;
  return p;
}

FaultPlan FaultPlan::Random(uint64_t seed, FaultProfile profile) {
  FaultPlan plan;
  plan.scripted_ = false;
  plan.seed_ = seed;
  plan.profile_ = profile;
  plan.rng_.seed(seed);
  return plan;
}

FaultPlan FaultPlan::Scripted(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.scripted_ = true;
  for (FaultEvent& e : events) {
    switch (e.kind) {
      case FaultEvent::Kind::kDuplicate:
        plan.dup_by_seq_[e.send_seq] = e;
        break;
      case FaultEvent::Kind::kDrop:
        plan.drop_by_seq_[e.send_seq] = e;
        break;
      case FaultEvent::Kind::kReorder:
        plan.reorder_by_seq_[e.send_seq] = e;
        break;
      case FaultEvent::Kind::kPartition:
      case FaultEvent::Kind::kCrash:
        plan.scripted_timed_.push_back(e);
        break;
    }
  }
  std::stable_sort(plan.scripted_timed_.begin(), plan.scripted_timed_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.tick < b.tick;
                   });
  return plan;
}

void FaultPlan::BindNetwork(size_t node_count) {
  node_count_ = node_count;
  send_seq_ = 0;
  held_.clear();
  active_partitions_.clear();
  partitions_opened_ = 0;
  crashes_done_ = 0;
  next_timed_ = 0;
  inbox_.assign(node_count, Instance());
  log_.clear();
  stats_ = FaultStats();
  if (!scripted_) rng_.seed(seed_);  // rebinding restarts the decision stream

  // On-disk inbox WALs: open (or create) one per node and replay whatever a
  // previous process durably consumed back into the in-memory inboxes. A
  // rebind in the SAME process re-reads its own journal, which is idempotent
  // — the inbox is a set and replayed facts simply land again.
  inbox_logs_.clear();
  durable_status_ = Status::Ok();
  if (!durable_dir_.empty() && node_count > 0) {
    durable_status_ = durable::MakeDirs(durable_dir_);
    inbox_logs_.resize(node_count);
    uint64_t replayed_facts = 0;
    for (size_t node = 0; durable_status_.ok() && node < node_count; ++node) {
      const std::string path =
          durable_dir_ + "/inbox-" + std::to_string(node) + ".wal";
      std::vector<std::string> replayed;
      durable_status_ = inbox_logs_[node].Open(path, kInboxTag, &replayed);
      if (!durable_status_.ok()) break;
      for (const std::string& payload : replayed) {
        Fact f;
        if (!DecodeInboxFact(payload, &f)) {
          durable_status_ = InvalidArgumentError("inbox WAL " + path +
                                                 ": malformed fact record");
          break;
        }
        if (inbox_[node].Insert(std::move(f))) ++replayed_facts;
      }
    }
    if (!durable_status_.ok()) inbox_logs_.clear();
    if (MetricsEnabled() && replayed_facts > 0) {
      InboxFactsReplayed().Increment(replayed_facts);
    }
  }
}

uint64_t FaultPlan::PartitionedUntil(size_t sender, size_t receiver) const {
  for (const Partition& p : active_partitions_) {
    if ((p.a == sender && p.b == receiver) ||
        (p.a == receiver && p.b == sender)) {
      return p.until;
    }
  }
  return 0;
}

void FaultPlan::OpenPartition(size_t a, size_t b, uint64_t tick,
                              uint64_t window) {
  active_partitions_.push_back(Partition{a, b, tick + window});
  ++partitions_opened_;
  ++stats_.partitions;
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartition;
  e.tick = tick;
  e.window = window;
  e.node_a = a;
  e.node_b = b;
  log_.push_back(e);
  Trace::Instant("net.fault.partition", {{"tick", static_cast<int64_t>(tick)},
                                         {"node_a", static_cast<int64_t>(a)},
                                         {"node_b", static_cast<int64_t>(b)},
                                         {"window",
                                          static_cast<int64_t>(window)}});
  CountFault(FaultEvent::Kind::kPartition);
}

void FaultPlan::CrashNode(size_t node, uint64_t tick,
                          std::vector<size_t>* crashes) {
  crashes->push_back(node);
  ++crashes_done_;
  ++stats_.crashes;
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCrash;
  e.tick = tick;
  e.node = node;
  log_.push_back(e);
  Trace::Instant("net.fault.crash", {{"tick", static_cast<int64_t>(tick)},
                                     {"node", static_cast<int64_t>(node)}});
  CountFault(FaultEvent::Kind::kCrash);
  // The durable inbox (everything the node ever consumed) is replayed by
  // the network as one atomic recovery delivery — see InboxOf.
}

void FaultPlan::BeginTransition(uint64_t tick,
                                std::vector<Delivery>* deliveries,
                                std::vector<size_t>* crashes) {
  // Release held messages now due, preserving hold order.
  size_t kept = 0;
  for (size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].due <= tick) {
      deliveries->push_back(
          Delivery{held_[i].receiver, std::move(held_[i].fact), false, 0});
    } else {
      if (kept != i) held_[kept] = std::move(held_[i]);
      ++kept;
    }
  }
  held_.resize(kept);

  // Heal expired partitions.
  active_partitions_.erase(
      std::remove_if(active_partitions_.begin(), active_partitions_.end(),
                     [&](const Partition& p) { return p.until <= tick; }),
      active_partitions_.end());

  if (scripted_) {
    while (next_timed_ < scripted_timed_.size() &&
           scripted_timed_[next_timed_].tick <= tick) {
      const FaultEvent& e = scripted_timed_[next_timed_++];
      if (e.kind == FaultEvent::Kind::kCrash) {
        if (e.node < node_count_) CrashNode(e.node, tick, crashes);
      } else if (e.node_a < node_count_ && e.node_b < node_count_) {
        OpenPartition(e.node_a, e.node_b, tick, e.window);
      }
    }
    return;
  }

  // Random mode. Decision order per transition is fixed (crash roll, then
  // partition roll) so a (seed, profile) pair fully determines the run.
  if (node_count_ > 0 && crashes_done_ < profile_.max_crashes &&
      profile_.crash_prob > 0 && tick >= profile_.crash_after) {
    std::bernoulli_distribution roll(profile_.crash_prob);
    if (roll(rng_)) {
      std::uniform_int_distribution<size_t> pick(0, node_count_ - 1);
      CrashNode(pick(rng_), tick, crashes);
    }
  }
  if (node_count_ > 1 && partitions_opened_ < profile_.max_partitions &&
      profile_.partition_prob > 0) {
    std::bernoulli_distribution roll(profile_.partition_prob);
    if (roll(rng_)) {
      std::uniform_int_distribution<size_t> pick_a(0, node_count_ - 1);
      std::uniform_int_distribution<size_t> pick_b(0, node_count_ - 2);
      size_t a = pick_a(rng_);
      size_t b = pick_b(rng_);
      if (b >= a) ++b;
      OpenPartition(a, b, tick, profile_.partition_window);
    }
  }
}

void FaultPlan::OnSend(size_t sender, size_t receiver, const Fact& fact,
                       uint64_t tick, std::vector<Delivery>* deliveries) {
  uint64_t seq = send_seq_++;

  // A partition dominates every per-message fault: the send is held until
  // the heal tick, then delivered unmodified.
  uint64_t until = PartitionedUntil(sender, receiver);
  if (until > 0) {
    held_.push_back(Held{until, receiver, fact});
    ++stats_.partition_holds;
    Trace::Instant("net.fault.partition_hold",
                   {{"send_seq", static_cast<int64_t>(seq)},
                    {"tick", static_cast<int64_t>(tick)},
                    {"receiver", static_cast<int64_t>(receiver)},
                    {"until", static_cast<int64_t>(until)}});
    return;
  }

  // Drop-with-retransmit: the sender's retry queue with bounded backoff.
  // The whole retry chain is decided up front — each attempt drops
  // independently, at most max_drops times — so the final landing tick is
  // known and bounded (fairness).
  size_t attempts = 0;
  uint64_t deliver_at = 0;
  if (scripted_) {
    auto it = drop_by_seq_.find(seq);
    if (it != drop_by_seq_.end()) {
      attempts = it->second.attempts;
      deliver_at = it->second.deliver_at;
    }
  } else if (profile_.drop_prob > 0 && profile_.max_drops > 0) {
    std::bernoulli_distribution drop(profile_.drop_prob);
    while (attempts < profile_.max_drops && drop(rng_)) ++attempts;
    if (attempts > 0) {
      deliver_at = tick + attempts * profile_.retransmit_backoff;
    }
  }
  if (attempts > 0) {
    held_.push_back(Held{deliver_at, receiver, fact});
    stats_.drops += attempts;
    ++stats_.retransmits;
    FaultEvent e;
    e.kind = FaultEvent::Kind::kDrop;
    e.send_seq = seq;
    e.deliver_at = deliver_at;
    e.attempts = attempts;
    log_.push_back(e);
    Trace::Instant("net.fault.drop",
                   {{"send_seq", static_cast<int64_t>(seq)},
                    {"tick", static_cast<int64_t>(tick)},
                    {"attempts", static_cast<int64_t>(attempts)},
                    {"deliver_at", static_cast<int64_t>(deliver_at)}});
    CountFault(FaultEvent::Kind::kDrop);
    return;
  }

  // Duplication: k copies in flight at once.
  size_t copies = 1;
  if (scripted_) {
    auto it = dup_by_seq_.find(seq);
    if (it != dup_by_seq_.end()) copies = std::max<size_t>(it->second.copies, 1);
  } else if (profile_.duplicate_prob > 0 && profile_.max_copies >= 2) {
    std::bernoulli_distribution roll(profile_.duplicate_prob);
    if (roll(rng_)) {
      copies = 2;
      if (profile_.max_copies > 2) {
        std::uniform_int_distribution<size_t> extra(0, profile_.max_copies - 2);
        copies += extra(rng_);
      }
    }
  }
  if (copies > 1) {
    stats_.duplicates += copies - 1;
    FaultEvent e;
    e.kind = FaultEvent::Kind::kDuplicate;
    e.send_seq = seq;
    e.copies = copies;
    log_.push_back(e);
    Trace::Instant("net.fault.duplicate",
                   {{"send_seq", static_cast<int64_t>(seq)},
                    {"tick", static_cast<int64_t>(tick)},
                    {"copies", static_cast<int64_t>(copies)}});
    CountFault(FaultEvent::Kind::kDuplicate);
  }

  // Reordering: insert at an arbitrary position instead of the back.
  bool has_position = false;
  size_t position = 0;
  if (scripted_) {
    auto it = reorder_by_seq_.find(seq);
    if (it != reorder_by_seq_.end()) {
      has_position = true;
      position = it->second.position;
    }
  } else if (profile_.reorder_prob > 0) {
    std::bernoulli_distribution roll(profile_.reorder_prob);
    if (roll(rng_)) {
      std::uniform_int_distribution<size_t> pick(0, profile_.reorder_span);
      has_position = true;
      position = pick(rng_);
    }
  }
  if (has_position) {
    ++stats_.reorders;
    FaultEvent e;
    e.kind = FaultEvent::Kind::kReorder;
    e.send_seq = seq;
    e.position = position;
    log_.push_back(e);
    Trace::Instant("net.fault.reorder",
                   {{"send_seq", static_cast<int64_t>(seq)},
                    {"tick", static_cast<int64_t>(tick)},
                    {"position", static_cast<int64_t>(position)}});
    CountFault(FaultEvent::Kind::kReorder);
  }

  for (size_t c = 0; c < copies; ++c) {
    deliveries->push_back(Delivery{receiver, fact, has_position, position});
  }
}

void FaultPlan::OnDeliver(size_t receiver, const Instance& facts) {
  if (receiver >= inbox_.size()) return;
  Instance& inbox = inbox_[receiver];
  const bool journal = durable_status_.ok() && receiver < inbox_logs_.size() &&
                       inbox_logs_[receiver].is_open();
  facts.ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!inbox.Insert(Fact(name, t))) return;  // already durable
    if (!journal || !durable_status_.ok()) return;
    durable::ByteWriter w;
    EncodeInboxFact(name, t, &w);
    durable_status_ = inbox_logs_[receiver].Append(w.data());
  });
}

}  // namespace calm::net
