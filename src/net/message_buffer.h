#ifndef CALM_NET_MESSAGE_BUFFER_H_
#define CALM_NET_MESSAGE_BUFFER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "base/fact.h"
#include "base/instance.h"
#include "base/json.h"

namespace calm::net {

// A node's incoming message buffer: a *multiset* of facts (Section 4.1.3 —
// the same message can be in flight multiple times). Entries remember the
// tick at which they were enqueued so schedulers can bound delays (fairness
// condition (ii): no message is delayed forever).
class MessageBuffer {
 public:
  struct Entry {
    Fact fact;
    uint64_t enqueued_at = 0;
  };

  void Add(Fact fact, uint64_t tick) {
    entries_.push_back(Entry{std::move(fact), tick});
  }

  // Inserts at `position` (clamped to the end) instead of the back — the
  // reordering fault (net/fault.h). `enqueued_at` keeps the true tick so
  // delay bounds, and hence fairness, survive reordering.
  void InsertAt(size_t position, Fact fact, uint64_t tick) {
    position = std::min(position, entries_.size());
    entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(position),
                    Entry{std::move(fact), tick});
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  // Removes the entries at `indices` (strictly increasing) and returns the
  // delivered submultiset collapsed to a set (the transition's M).
  Instance TakeCollapsed(const std::vector<size_t>& indices);

  // Indices of every entry (deliver-all).
  std::vector<size_t> AllIndices() const;

  // Indices of entries enqueued at or before `tick` (for delay bounding).
  std::vector<size_t> IndicesOlderThan(uint64_t tick) const;

 private:
  std::vector<Entry> entries_;
};

// Statistics of a simulated run.
struct RunStats {
  size_t transitions = 0;
  size_t heartbeats = 0;          // transitions delivering no messages
  size_t messages_sent = 0;       // buffer insertions (fact x recipient)
  size_t messages_delivered = 0;  // buffer removals
  size_t output_facts = 0;
  // Transition index at which the final output fact appeared (0 if none).
  size_t output_complete_at = 0;
};

// The canonical serialization: {"transitions": 12, "heartbeats": 3, ...}.
// Every other rendering of RunStats (the k=v string below, bench --json
// sections) is derived from this object, so the human-readable and the
// machine-readable reports can never drift apart.
Json RunStatsToJson(const RunStats& stats);

// "transitions=12 heartbeats=3 sent=8 delivered=8 output_facts=4 ..." — used
// by error messages (RunOptions::fail_on_budget) and the bench reports.
// Derived from RunStatsToJson by walking its members in order.
std::string RunStatsToString(const RunStats& stats);

}  // namespace calm::net

#endif  // CALM_NET_MESSAGE_BUFFER_H_
