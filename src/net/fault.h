#ifndef CALM_NET_FAULT_H_
#define CALM_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "base/durable.h"
#include "base/fact.h"
#include "base/instance.h"
#include "base/status.h"

namespace calm::net {

// ---------------------------------------------------------------------------
// Fault model (see DESIGN.md, "Fault model & confluence oracle").
//
// A FaultPlan is a channel that sits between StepNode's send path and the
// receivers' MessageBuffers. Per message — driven by a seeded RNG or an
// explicit script — it can
//   * duplicate:            enqueue k copies instead of one;
//   * reorder:              insert at an arbitrary buffer position;
//   * drop-with-retransmit: drop up to max_drops transmissions, the sender
//                           retries with bounded backoff, after which the
//                           message is forced through;
//   * partition-then-heal:  hold every message between a node pair for a
//                           bounded window, releasing all of it at heal time;
// plus, at the node level,
//   * crash-restart:        reset a node's state to the start configuration;
//                           its local input is intact, its in-flight buffer
//                           is preserved, and its durable inbox (every
//                           message it ever consumed) is replayed
//                           *atomically* into the node's next transition —
//                           the write-ahead-log recovery model. Atomicity
//                           matters: replaying through the buffer would let
//                           the scheduler split the inbox into arbitrary
//                           sub-deliveries, which breaks causal order (a
//                           node could see an `ok` without the transfers
//                           that causally preceded it) and makes the
//                           Theorem 4.4 protocol unsound under crashes.
//
// The durable inboxes are in-memory by default (crash-restart is simulated,
// so "durable" only has to survive the simulated crash). EnableDurableInboxes
// additionally journals every consumed fact onto the shared on-disk record
// format (base/durable.h, one WAL per node), so a *process* crash mid-run
// recovers each node's inbox exactly — the same recovery model, one level
// down the stack.
//
// Every fault is fairness-preserving: nothing is lost forever and every
// hold-up is bounded (MaxHoldup), so Section 4.1.3's fair-run requirements
// still hold and quiescence is still reached. Duplication/reordering are
// already inside the paper's run nondeterminism (buffers are multisets and
// the scheduler picks arbitrary submultisets); drop-with-retransmit,
// partitions, and crash-restart are honest extensions.
// ---------------------------------------------------------------------------

// Bounds and probabilities for randomly generated fault plans.
struct FaultProfile {
  double duplicate_prob = 0.15;     // per send occurrence
  size_t max_copies = 3;            // total copies enqueued when duplicating

  double drop_prob = 0.15;          // per transmission attempt
  uint64_t retransmit_backoff = 4;  // ticks between sender retries
  size_t max_drops = 3;             // attempts after which delivery is forced

  double reorder_prob = 0.25;       // insert at a random buffer position
  size_t reorder_span = 8;          // positions drawn from [0, reorder_span]

  double partition_prob = 0.02;     // per transition: open a partition
  uint64_t partition_window = 12;   // ticks until the partition heals
  size_t max_partitions = 2;        // per run

  double crash_prob = 0.01;         // per transition: crash-restart a node
  size_t max_crashes = 1;           // per run
  uint64_t crash_after = 4;         // no crashes before this tick

  // Worst-case extra latency any single send can suffer: the full retry
  // chain, inside a partition window. The fairness property tests assert
  // every message is enqueued within this bound of its original send.
  uint64_t MaxHoldup() const {
    return max_drops * retransmit_backoff + partition_window;
  }

  // Profiles used by tests/benches: everything on, and single-fault slices.
  static FaultProfile Chaos();           // all five faults, elevated rates
  static FaultProfile DuplicationOnly(double prob = 0.5);
  static FaultProfile DropOnly(double prob = 0.5);
  static FaultProfile None();
};

// One fault decision, as applied. A run's decision log() doubles as an
// explicit script: replaying the same scenario with FaultPlan::Scripted(log)
// reproduces the run exactly (no RNG is consulted in scripted mode), and the
// delta-debugging shrinker works by re-running subsets of the log.
struct FaultEvent {
  enum class Kind : uint8_t { kDuplicate, kDrop, kReorder, kPartition, kCrash };
  Kind kind = Kind::kDuplicate;

  // kDuplicate / kDrop / kReorder: which send occurrence. Send occurrences
  // — (fact, receiver) pairs leaving StepNode — are numbered globally from
  // 0 in deterministic order, so a seq identifies one message copy.
  uint64_t send_seq = 0;
  size_t copies = 0;        // kDuplicate: total copies enqueued
  uint64_t deliver_at = 0;  // kDrop: tick the retransmission finally lands
  size_t attempts = 0;      // kDrop: transmissions dropped before that
  size_t position = 0;      // kReorder: buffer insert position (clamped)

  uint64_t tick = 0;    // kPartition / kCrash: transition tick it fires
  uint64_t window = 0;  // kPartition: ticks until heal
  size_t node_a = 0;    // kPartition: the separated pair (indices)
  size_t node_b = 0;
  size_t node = 0;  // kCrash: the restarted node (index)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// "duplicate", "drop", "reorder", "partition", "crash".
const char* FaultKindName(FaultEvent::Kind kind);

struct FaultStats {
  size_t duplicates = 0;       // extra copies enqueued
  size_t drops = 0;            // dropped transmission attempts
  size_t retransmits = 0;      // dropped sends eventually delivered
  size_t reorders = 0;         // out-of-position insertions
  size_t partitions = 0;       // partition windows opened
  size_t partition_holds = 0;  // sends held behind a partition
  size_t crashes = 0;          // node crash-restarts
};

// The fault-injection channel. TransducerNetwork calls the On*/Begin* hooks;
// everything else is observation (log, stats) or construction.
class FaultPlan {
 public:
  // Decisions drawn per send / per transition from a seeded RNG. Two plans
  // with the same seed driven by the same call sequence make identical
  // decisions, so a run is deterministic given (seed, profile).
  static FaultPlan Random(uint64_t seed, FaultProfile profile = {});

  // Replays an explicit decision list (typically a previous run's log()).
  static FaultPlan Scripted(std::vector<FaultEvent> events);

  FaultPlan(FaultPlan&&) = default;
  FaultPlan& operator=(FaultPlan&&) = default;

  // -- hooks called by TransducerNetwork ------------------------------------

  // Resets per-run state; called from TransducerNetwork when the plan is
  // attached and again on Initialize.
  void BindNetwork(size_t node_count);

  // Backs every node's durable inbox with an on-disk WAL: one
  // <dir>/inbox-<node>.wal per node on the shared record format
  // (base/durable.h, client tag "calm.inbox"). Takes effect at the next
  // BindNetwork, which creates `dir` as needed, replays any existing files
  // into the in-memory inboxes (process-crash recovery; torn tails are
  // repaired), and journals each newly consumed fact with one
  // write+fsync'd record. WAL failures never change run behavior — they
  // latch into durable_status() and journaling stops.
  void EnableDurableInboxes(std::string dir) { durable_dir_ = std::move(dir); }

  // The first inbox-WAL open/append failure, or OK. Callers that rely on
  // process-crash recovery check this at the end of a run.
  const Status& durable_status() const { return durable_status_; }

  // A message becoming visible to a receiver, possibly at an explicit
  // buffer position (reordering).
  struct Delivery {
    size_t receiver = 0;
    Fact fact;
    bool has_position = false;
    size_t position = 0;
  };

  // Start of transition `tick`: appends messages now due for (re)delivery
  // and the nodes that crash-restart before this step. A crashed node's
  // durable inbox is NOT appended here — the network fetches it via
  // InboxOf and replays it atomically (see the crash-restart note above).
  void BeginTransition(uint64_t tick, std::vector<Delivery>* deliveries,
                       std::vector<size_t>* crashes);

  // The durable inbox of `node`: every fact it ever consumed. Replayed as
  // one atomic recovery delivery after a crash-restart.
  const Instance& InboxOf(size_t node) const { return inbox_[node]; }

  // One send occurrence sender -> receiver at `tick`. Appends the copies to
  // enqueue *now*; dropped / partitioned sends are held inside the plan and
  // come back through BeginTransition when due.
  void OnSend(size_t sender, size_t receiver, const Fact& fact, uint64_t tick,
              std::vector<Delivery>* deliveries);

  // Node `receiver` consumed `facts` (maintains the durable inbox replayed
  // on crash-restart).
  void OnDeliver(size_t receiver, const Instance& facts);

  // True while dropped/partitioned messages are still held inside the plan;
  // the runner must not declare quiescence before this drains.
  bool HasPendingMessages() const { return !held_.empty(); }

  // Decisions actually applied this run, in application order.
  const std::vector<FaultEvent>& log() const { return log_; }
  const FaultStats& stats() const { return stats_; }
  uint64_t seed() const { return seed_; }
  bool scripted() const { return scripted_; }

 private:
  FaultPlan() = default;

  struct Held {
    uint64_t due = 0;
    size_t receiver = 0;
    Fact fact;
  };
  struct Partition {
    size_t a = 0;
    size_t b = 0;
    uint64_t until = 0;  // first tick at which the pair is reconnected
  };

  // The heal tick of an active partition separating the pair, or 0.
  uint64_t PartitionedUntil(size_t sender, size_t receiver) const;
  void OpenPartition(size_t a, size_t b, uint64_t tick, uint64_t window);
  void CrashNode(size_t node, uint64_t tick, std::vector<size_t>* crashes);

  bool scripted_ = false;
  uint64_t seed_ = 0;
  FaultProfile profile_;
  std::mt19937_64 rng_;

  // Scripted decisions, indexed for O(1) per-send lookup. Partition and
  // crash events fire at the first transition at/after their recorded tick.
  std::map<uint64_t, FaultEvent> dup_by_seq_;
  std::map<uint64_t, FaultEvent> drop_by_seq_;
  std::map<uint64_t, FaultEvent> reorder_by_seq_;
  std::vector<FaultEvent> scripted_timed_;  // partitions + crashes, by tick
  size_t next_timed_ = 0;

  size_t node_count_ = 0;
  uint64_t send_seq_ = 0;
  std::vector<Held> held_;
  std::vector<Partition> active_partitions_;
  size_t partitions_opened_ = 0;
  size_t crashes_done_ = 0;
  std::vector<Instance> inbox_;
  std::vector<FaultEvent> log_;
  FaultStats stats_;

  // On-disk inbox journaling (EnableDurableInboxes). Empty dir = disabled.
  std::string durable_dir_;
  std::vector<durable::LogWriter> inbox_logs_;  // one per node when enabled
  Status durable_status_;
};

}  // namespace calm::net

#endif  // CALM_NET_FAULT_H_
