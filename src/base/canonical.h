#ifndef CALM_BASE_CANONICAL_H_
#define CALM_BASE_CANONICAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/instance.h"

namespace calm {

// Canonical labeling of an instance under value isomorphism. Generic queries
// (Section 2: Q(pi(I)) = pi(Q(I))) cannot distinguish isomorphic instances,
// so a canonical form is both a perfect cache key for query results and the
// basis for sweeping one representative per isomorphism orbit instead of the
// whole bounded space.
//
// The canonical form relabels adom(I) onto the integer values {0..k-1} such
// that the resulting sorted fact list is lexicographically minimal over the
// remaining permutations after iterative partition refinement over value
// occurrence signatures: labels are assigned cell block by cell block in
// signature-rank order (both isomorphism-invariant), and backtracking
// explores the within-cell orderings. Values with different occurrence
// structure cannot swap under any isomorphism, so the restricted minimum is
// still equal across isomorphic instances — which is the property the cache
// keying and orbit reduction need. Proven twin values (transpositions fixing
// I) collapse whole branches exactly.
//
// Complexity is the product of cell-size factorials times |I| log |I| —
// usually a handful of leaves once refinement separates the values; the
// fully symmetric worst case is bounded by the tiny checker adom sizes
// (k <= 8 or so). This is not a general-purpose graph canonizer.
struct CanonicalForm {
  // The relabeled facts, ascending — equal across isomorphic instances.
  std::vector<Fact> facts;
  // A witnessing relabeling: ApplyValueMap(I, to_canonical) has fact list
  // `facts`. Maps adom(I) onto Value::FromInt(0..k-1).
  std::map<Value, Value> to_canonical;
  // |Aut(I)|: how many of the k! relabelings achieve `facts` — equivalently
  // the number of value bijections adom(I) -> adom(I) fixing I setwise.
  uint64_t automorphism_count = 1;
};

CanonicalForm CanonicalizeInstance(const Instance& instance);

// Every value bijection adom(I) -> adom(I) that fixes I setwise, as value
// maps (the identity included). The result has exactly
// CanonicalizeInstance(I).automorphism_count entries, in deterministic
// order. Used to filter J-candidate subsets down to stabilizer-orbit
// representatives in the reduced monotonicity sweeps.
std::vector<std::map<Value, Value>> InstanceAutomorphisms(
    const Instance& instance);

// A compact byte string identifying a canonical fact list (relation ids and
// raw values, length-prefixed). Injective on sorted fact lists, so two
// instances share a key iff they are isomorphic (given both lists came from
// CanonicalizeInstance). Suitable for unordered_map keying.
std::string CanonicalKey(const std::vector<Fact>& facts);

}  // namespace calm

#endif  // CALM_BASE_CANONICAL_H_
