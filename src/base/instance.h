#ifndef CALM_BASE_INSTANCE_H_
#define CALM_BASE_INSTANCE_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/fact.h"
#include "base/schema.h"
#include "base/value.h"

namespace calm {

// The tuples of one relation: a sorted, duplicate-free flat vector with the
// read-side API of std::set<Tuple>. Instances in this codebase are built in
// bulk and read far more than they are mutated, so flat storage wins on both
// sides: bulk builds are appends instead of one tree node allocation per
// fact, and iteration/equality are linear scans over contiguous memory.
// Mutation goes through Instance (insert/erase shift the tail, O(n) worst
// case — fine for the small instances the checkers enumerate).
class TupleSet {
 public:
  using value_type = Tuple;
  using const_iterator = std::vector<Tuple>::const_iterator;
  using iterator = const_iterator;

  const_iterator begin() const { return tuples_.begin(); }
  const_iterator end() const { return tuples_.end(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const_iterator lower_bound(const Tuple& t) const;
  const_iterator find(const Tuple& t) const;
  size_t count(const Tuple& t) const { return find(t) != end() ? 1 : 0; }
  bool contains(const Tuple& t) const { return find(t) != end(); }

  friend bool operator==(const TupleSet& a, const TupleSet& b) {
    return a.tuples_ == b.tuples_;
  }
  friend bool operator!=(const TupleSet& a, const TupleSet& b) {
    return !(a == b);
  }
  friend bool operator<(const TupleSet& a, const TupleSet& b) {
    return a.tuples_ < b.tuples_;
  }

 private:
  friend class Instance;

  // Returns true if `t` was new. General form: binary search + shift.
  bool InsertUnique(const Tuple& t);
  bool InsertUnique(Tuple&& t);
  bool EraseOne(const Tuple& t);

  std::vector<Tuple> tuples_;  // ascending, unique
};

// A database instance: a finite set of facts. Facts are grouped per relation
// in sorted flat containers, so iteration is deterministic. An Instance is
// not bound to a Schema; use Restrict / Admits for schema discipline.
class Instance {
 public:
  Instance() = default;
  Instance(std::initializer_list<Fact> facts);

  // Inserts a fact; returns true if it was new.
  bool Insert(const Fact& fact);
  bool Insert(Fact&& fact);
  // Inserts every fact of `other`; returns the number of new facts.
  size_t InsertAll(const Instance& other);

  // Bulk-inserts tuples into relation `rel`; `sorted` must be ascending
  // (duplicates allowed). O(1) per tuple when the relation is empty or the
  // run extends past its current maximum — for queries that produce their
  // output in sorted order anyway (the evaluation engines and the native
  // graph queries on the checker hot path), the build is a plain append.
  // Returns the number of new facts.
  size_t InsertSorted(uint32_t rel, const std::vector<Tuple>& sorted);
  // Move form: when relation `rel` is empty the buffer is adopted wholesale
  // (no per-tuple copies) — the engines' materialization path.
  size_t InsertSorted(uint32_t rel, std::vector<Tuple>&& sorted);
  // As the move form, for buffers the caller guarantees strictly ascending
  // (no duplicates at all): adoption skips the adjacent-duplicate sweep.
  // Database::ToInstance qualifies — columnar rows are deduplicated at
  // insert and emitted in strict key order.
  size_t InsertSortedUnique(uint32_t rel, std::vector<Tuple>&& sorted);

  // Bulk-inserts facts; `sorted` must be ascending in Fact order (relation
  // id, then tuple — duplicates allowed), so each relation's run inserts
  // like InsertSorted. Returns the number of new facts.
  size_t InsertSortedFacts(const std::vector<Fact>& sorted);

  // Removes a fact; returns true if it was present.
  bool Erase(const Fact& fact);

  bool Contains(const Fact& fact) const;

  // Number of facts |I|.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    relations_.clear();
    size_ = 0;
  }

  // The tuples of relation `name` (empty set if absent).
  const TupleSet& TuplesOf(uint32_t name) const;

  // Relation names with at least one tuple, in deterministic order.
  std::vector<uint32_t> RelationNames() const;

  // All facts in deterministic order.
  std::vector<Fact> AllFacts() const;

  // The active domain adom(I): every value occurring in some fact.
  std::set<Value> ActiveDomain() const;

  // I|sigma: the maximal subset of I over `schema`.
  Instance Restrict(const Schema& schema) const;

  // True if every fact is over `schema`.
  bool IsOver(const Schema& schema) const;

  // Set operations (by fact).
  static Instance Union(const Instance& a, const Instance& b);
  static Instance Difference(const Instance& a, const Instance& b);
  bool IsSubsetOf(const Instance& other) const;

  // Renders "{E(1, 2), S(3)}".
  std::string ToString() const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.size_ == b.size_ && a.relations_ == b.relations_;
  }
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }
  // Lexicographic on the sorted fact sequence; only used for deterministic
  // ordering in containers.
  friend bool operator<(const Instance& a, const Instance& b) {
    return a.relations_ < b.relations_;
  }

  // Invokes fn(relation_name, tuple) for every fact in deterministic order.
  template <typename Fn>
  void ForEachFact(Fn&& fn) const {
    for (const auto& [name, tuples] : relations_) {
      for (const Tuple& t : tuples) fn(name, t);
    }
  }

 private:
  // The entry for `name`, created (empty) if absent. Invariant: entries are
  // sorted by name and never left empty after a public call returns, so
  // equality/ordering can compare the vectors directly.
  TupleSet& SetOf(uint32_t name);
  const TupleSet* FindSet(uint32_t name) const;

  std::vector<std::pair<uint32_t, TupleSet>> relations_;  // sorted by name
  size_t size_ = 0;
};

// Whether fact/instance J is domain distinct / domain disjoint from I
// (Section 3.1): `f` is domain distinct from I when adom(f) \ adom(I) != {};
// domain disjoint when adom(f) and adom(I) are disjoint. An instance J is
// domain distinct (disjoint) from I when every fact of J is.
bool FactDomainDistinctFrom(const Fact& f, const std::set<Value>& adom_i);
bool FactDomainDisjointFrom(const Fact& f, const std::set<Value>& adom_i);
bool IsDomainDistinctFrom(const Instance& j, const Instance& i);
bool IsDomainDisjointFrom(const Instance& j, const Instance& i);

// J is an induced subinstance of I when J = {f in I | adom(f) <= adom(J)}
// (Section 3.2).
bool IsInducedSubinstance(const Instance& j, const Instance& i);

// Applies a value mapping pointwise; values absent from `map` are unchanged.
Instance ApplyValueMap(const Instance& in, const std::map<Value, Value>& map);

}  // namespace calm

#endif  // CALM_BASE_INSTANCE_H_
