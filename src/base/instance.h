#ifndef CALM_BASE_INSTANCE_H_
#define CALM_BASE_INSTANCE_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/fact.h"
#include "base/schema.h"
#include "base/value.h"

namespace calm {

// A database instance: a finite set of facts. Facts are grouped per relation
// in sorted containers, so iteration is deterministic. An Instance is not
// bound to a Schema; use Restrict / Admits for schema discipline.
class Instance {
 public:
  Instance() = default;
  Instance(std::initializer_list<Fact> facts);

  // Inserts a fact; returns true if it was new.
  bool Insert(const Fact& fact);
  bool Insert(Fact&& fact);
  // Inserts every fact of `other`; returns the number of new facts.
  size_t InsertAll(const Instance& other);

  // Bulk-inserts tuples into relation `rel`; `sorted` must be ascending
  // (duplicates allowed). Amortized O(1) per tuple via end-position hints —
  // for queries that produce their output in sorted order anyway (the native
  // graph queries on the checker hot path), this halves the build cost.
  // Returns the number of new facts.
  size_t InsertSorted(uint32_t rel, const std::vector<Tuple>& sorted);

  // Bulk-inserts facts; `sorted` must be ascending in Fact order (relation
  // id, then tuple — duplicates allowed), so each relation's run inserts
  // with end-position hints like InsertSorted. Returns the number of new
  // facts.
  size_t InsertSortedFacts(const std::vector<Fact>& sorted);

  // Removes a fact; returns true if it was present.
  bool Erase(const Fact& fact);

  bool Contains(const Fact& fact) const;

  // Number of facts |I|.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    relations_.clear();
    size_ = 0;
  }

  // The tuples of relation `name` (empty set if absent).
  const std::set<Tuple>& TuplesOf(uint32_t name) const;

  // Relation names with at least one tuple, in deterministic order.
  std::vector<uint32_t> RelationNames() const;

  // All facts in deterministic order.
  std::vector<Fact> AllFacts() const;

  // The active domain adom(I): every value occurring in some fact.
  std::set<Value> ActiveDomain() const;

  // I|sigma: the maximal subset of I over `schema`.
  Instance Restrict(const Schema& schema) const;

  // True if every fact is over `schema`.
  bool IsOver(const Schema& schema) const;

  // Set operations (by fact).
  static Instance Union(const Instance& a, const Instance& b);
  static Instance Difference(const Instance& a, const Instance& b);
  bool IsSubsetOf(const Instance& other) const;

  // Renders "{E(1, 2), S(3)}".
  std::string ToString() const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.size_ == b.size_ && a.relations_ == b.relations_;
  }
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }
  // Lexicographic on the sorted fact sequence; only used for deterministic
  // ordering in containers.
  friend bool operator<(const Instance& a, const Instance& b) {
    return a.relations_ < b.relations_;
  }

  // Invokes fn(relation_name, tuple) for every fact in deterministic order.
  template <typename Fn>
  void ForEachFact(Fn&& fn) const {
    for (const auto& [name, tuples] : relations_) {
      for (const Tuple& t : tuples) fn(name, t);
    }
  }

 private:
  std::map<uint32_t, std::set<Tuple>> relations_;
  size_t size_ = 0;
};

// Whether fact/instance J is domain distinct / domain disjoint from I
// (Section 3.1): `f` is domain distinct from I when adom(f) \ adom(I) != {};
// domain disjoint when adom(f) and adom(I) are disjoint. An instance J is
// domain distinct (disjoint) from I when every fact of J is.
bool FactDomainDistinctFrom(const Fact& f, const std::set<Value>& adom_i);
bool FactDomainDisjointFrom(const Fact& f, const std::set<Value>& adom_i);
bool IsDomainDistinctFrom(const Instance& j, const Instance& i);
bool IsDomainDisjointFrom(const Instance& j, const Instance& i);

// J is an induced subinstance of I when J = {f in I | adom(f) <= adom(J)}
// (Section 3.2).
bool IsInducedSubinstance(const Instance& j, const Instance& i);

// Applies a value mapping pointwise; values absent from `map` are unchanged.
Instance ApplyValueMap(const Instance& in, const std::map<Value, Value>& map);

}  // namespace calm

#endif  // CALM_BASE_INSTANCE_H_
