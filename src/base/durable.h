#ifndef CALM_BASE_DURABLE_H_
#define CALM_BASE_DURABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/fact.h"
#include "base/instance.h"
#include "base/status.h"
#include "base/value.h"

// ---------------------------------------------------------------------------
// Durable record files (see DESIGN.md, "Durability and crash recovery"): the
// one on-disk format every persistent artifact in this repo shares —
// Database snapshots (datalog/snapshot.h), the sweep WAL
// (monotonicity/sweep_checkpoint.h), and the simulator's durable inboxes
// (net/fault.h).
//
// File layout:
//   header  = magic "CALMDUR1" | u32 version | u32 tag_len | tag bytes
//             | u32 crc32c(version..tag)
//   record* = u32 payload_len | u32 crc32c(payload) | payload bytes
//
// The client tag names the record schema ("calm.snapshot", "calm.sweepwal",
// ...) so a reader never replays a foreign file. All integers little-endian.
//
// Two write disciplines, matching the two client shapes:
//   * FileWriter — one-shot atomic publication: records are buffered, then
//     Commit writes <path>.tmp, fsyncs it, renames over <path>, and fsyncs
//     the directory. Readers only ever observe the old file or the complete
//     new one. Snapshots use this.
//   * LogWriter — an append-only WAL: the header is published atomically
//     (same tmp+rename dance), then each Append writes one record and
//     fsyncs. A crash mid-append leaves a torn tail, which replay detects
//     (short or CRC-failing trailing record) and truncates. WALs use this.
//
// Every write/fsync/rename boundary carries a CALM_FAILPOINT site (names in
// failpoint.h's model); the kill-anywhere fuzzer in tests/durability_test.cc
// crashes at each one and asserts recovery is exact.
// ---------------------------------------------------------------------------

namespace calm::durable {

// The record-file format version this build writes and reads.
inline constexpr uint32_t kFormatVersion = 1;

// CRC32C (Castagnoli). Uses the SSE4.2 crc32 instruction when the build
// targets it, a table otherwise; both compute the same iSCSI polynomial.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

// --- byte-level payload encoding -------------------------------------------
//
// Fixed-width little-endian primitives; strings are u32-length-prefixed.
// Payloads are small (records, not bulk columns), so no varint compression.

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Str(std::string_view s);
  void Raw(const void* p, size_t n);

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  void clear() { buf_.clear(); }

 private:
  std::string buf_;
};

// Bounds-checked reads with a sticky failure flag: after the first short
// read every further read fails, so decoders can check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Str(std::string* s);

  bool ok() const { return ok_; }
  // True when every byte was consumed and no read failed — decoders use
  // this as "the payload was exactly one well-formed record".
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- domain codecs ----------------------------------------------------------
//
// Symbol payloads are process-local interned ids (base/value.h), so a Value
// on disk carries the symbol NAME and re-interns on decode; likewise
// relation ids travel as name strings. Integer and invented values carry
// their payloads directly.

void EncodeValue(Value v, ByteWriter* w);
bool DecodeValue(ByteReader* r, Value* out);

void EncodeTuple(const Tuple& t, ByteWriter* w);
bool DecodeTuple(ByteReader* r, Tuple* out);

// An instance as (relation name, tuple count, tuples)* in deterministic
// (ForEachFact) order. Decode inserts into `out` (not cleared first).
void EncodeInstance(const Instance& in, ByteWriter* w);
bool DecodeInstance(ByteReader* r, Instance* out);

// --- record files -----------------------------------------------------------

// One-shot atomic record file. Append buffers records in memory; Commit
// publishes them with the tmp -> fsync -> rename -> dirsync discipline.
// Failpoint sites, in file order: durable.snapshot.write (half the bytes on
// disk — a torn tmp file, invisible to readers), durable.snapshot.fsync
// (all bytes written, not yet synced), durable.snapshot.rename (synced, not
// yet visible), durable.snapshot.dirsync (renamed, directory entry not yet
// synced).
class FileWriter {
 public:
  explicit FileWriter(std::string_view client_tag);

  void Append(std::string_view payload);
  size_t record_count() const { return records_; }
  size_t byte_size() const { return buf_.size(); }

  Status Commit(const std::string& path);

 private:
  std::string buf_;
  size_t records_ = 0;
};

// Append-only write-ahead log. Open replays any existing file (validating
// the header, truncating a torn tail) and positions for appends; a missing
// file is created with an atomically published header. Append writes one
// record and fsyncs before returning — a returned Ok means the record
// survives any later crash. Failpoint sites: durable.wal.append (between
// the two halves of the record bytes — a torn tail), durable.wal.fsync
// (record written, not synced), durable.wal.synced (record durable).
class LogWriter {
 public:
  LogWriter() = default;
  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;
  LogWriter(LogWriter&& o) noexcept;
  LogWriter& operator=(LogWriter&& o) noexcept;

  // Opens `path` for appending. When the file exists its prior record
  // payloads are appended to `*replayed` (may be null to discard).
  Status Open(const std::string& path, std::string_view client_tag,
              std::vector<std::string>* replayed);

  Status Append(std::string_view payload);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

// The payloads of `path`, in file order. A missing file is kNotFound; a
// foreign or version-skewed header is kInvalidArgument. A torn tail — a
// trailing record that is short or fails its CRC — ends the read at the
// last valid record; with `repair_torn_tail` the file is truncated to that
// prefix (and the truncation fsynced) so appends can resume cleanly.
struct ReadResult {
  std::vector<std::string> records;
  bool torn = false;           // trailing garbage was present
  uint64_t valid_bytes = 0;    // file prefix covered by header + records
};
Result<ReadResult> ReadRecordFile(const std::string& path,
                                  std::string_view client_tag,
                                  bool repair_torn_tail);

// mkdir -p: creates every missing component of `dir`. Checkpoint and WAL
// clients call this before opening files in a caller-supplied directory.
Status MakeDirs(const std::string& dir);

}  // namespace calm::durable

#endif  // CALM_BASE_DURABLE_H_
