#ifndef CALM_BASE_FACT_H_
#define CALM_BASE_FACT_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <type_traits>

#include "base/value.h"

namespace calm {

// A tuple of domain values with inline small-tuple storage: up to
// kInlineCapacity values live in-place (no heap allocation), longer tuples
// spill to a heap array. The paper's relations are almost all arity <= 3, so
// the fixpoint engine's hottest containers (tuple vectors, dedup tables,
// probe keys) never touch the allocator per tuple. The comparison / hashing
// contract matches the previous std::vector<Value> representation exactly:
// lexicographic order, element-wise equality — instances therefore iterate
// in the same deterministic order as before.
class Tuple {
 public:
  using value_type = Value;
  using iterator = Value*;
  using const_iterator = const Value*;

  static constexpr uint32_t kInlineCapacity = 4;

  Tuple() : size_(0), capacity_(kInlineCapacity) {}

  Tuple(std::initializer_list<Value> values) : Tuple() {
    reserve(values.size());
    for (Value v : values) data()[size_++] = v;
  }

  Tuple(size_t count, Value fill) : Tuple() {
    reserve(count);
    for (size_t i = 0; i < count; ++i) data()[size_++] = fill;
  }

  template <typename It,
            typename = std::enable_if_t<!std::is_integral_v<It>>>
  Tuple(It first, It last) : Tuple() {
    for (; first != last; ++first) push_back(*first);
  }

  Tuple(const Tuple& o) : Tuple() {
    reserve(o.size_);
    size_ = o.size_;
    std::copy(o.data(), o.data() + o.size_, data());
  }

  Tuple(Tuple&& o) noexcept : size_(o.size_), capacity_(o.capacity_) {
    if (o.is_inline()) {
      std::copy(o.rep_.inline_vals, o.rep_.inline_vals + size_,
                rep_.inline_vals);
    } else {
      rep_.heap = o.rep_.heap;
      o.capacity_ = kInlineCapacity;
    }
    o.size_ = 0;
  }

  Tuple& operator=(const Tuple& o) {
    if (this == &o) return *this;
    size_ = 0;
    reserve(o.size_);
    size_ = o.size_;
    std::copy(o.data(), o.data() + o.size_, data());
    return *this;
  }

  Tuple& operator=(Tuple&& o) noexcept {
    if (this == &o) return *this;
    if (!is_inline()) delete[] rep_.heap;
    size_ = o.size_;
    capacity_ = o.capacity_;
    if (o.is_inline()) {
      capacity_ = kInlineCapacity;
      std::copy(o.rep_.inline_vals, o.rep_.inline_vals + size_,
                rep_.inline_vals);
    } else {
      rep_.heap = o.rep_.heap;
      o.capacity_ = kInlineCapacity;
    }
    o.size_ = 0;
    return *this;
  }

  ~Tuple() {
    if (!is_inline()) delete[] rep_.heap;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_inline() const { return capacity_ == kInlineCapacity; }

  Value* data() { return is_inline() ? rep_.inline_vals : rep_.heap; }
  const Value* data() const {
    return is_inline() ? rep_.inline_vals : rep_.heap;
  }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  Value& operator[](size_t i) { return data()[i]; }
  const Value& operator[](size_t i) const { return data()[i]; }

  void clear() { size_ = 0; }

  void assign(size_t count, Value fill) {
    clear();
    reserve(count);
    for (size_t i = 0; i < count; ++i) data()[size_++] = fill;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(static_cast<uint32_t>(n));
  }

  void push_back(Value v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = v;
  }

  // Inserts `v` at the front, shifting existing values right (used for the
  // Skolem invention position, which is always position 1).
  void prepend(Value v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    Value* d = data();
    for (size_t i = size_; i > 0; --i) d[i] = d[i - 1];
    d[0] = v;
    ++size_;
  }

  void append(const Value* first, const Value* last) {
    reserve(size_ + static_cast<size_t>(last - first));
    Value* d = data() + size_;
    size_ += static_cast<uint32_t>(last - first);
    std::copy(first, last, d);
  }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.size_ == b.size_ &&
           std::equal(a.data(), a.data() + a.size_, b.data());
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return std::lexicographical_compare(a.data(), a.data() + a.size_,
                                        b.data(), b.data() + b.size_);
  }
  friend bool operator>(const Tuple& a, const Tuple& b) { return b < a; }
  friend bool operator<=(const Tuple& a, const Tuple& b) { return !(b < a); }
  friend bool operator>=(const Tuple& a, const Tuple& b) { return !(a < b); }

 private:
  void Grow(uint32_t min_capacity) {
    uint32_t new_capacity = std::max(min_capacity, capacity_ * 2);
    Value* heap = new Value[new_capacity];
    std::copy(data(), data() + size_, heap);
    if (!is_inline()) delete[] rep_.heap;
    rep_.heap = heap;
    capacity_ = new_capacity;
  }

  uint32_t size_;
  uint32_t capacity_;  // == kInlineCapacity iff inline
  union Rep {
    Rep() {}  // values are initialized on write; size_ tracks validity
    Value inline_vals[kInlineCapacity];
    Value* heap;
  } rep_;
};

// Combines `h` into `seed` (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

struct TupleHash {
  size_t operator()(const Tuple& t) const noexcept {
    size_t seed = t.size();
    for (Value v : t) seed = HashCombine(seed, std::hash<Value>{}(v));
    return seed;
  }
};

// A fact R(d1, ..., dk): a relation name (interned id) applied to a tuple.
// Facts order lexicographically by (relation name, tuple), giving instances a
// deterministic iteration order.
struct Fact {
  uint32_t relation = 0;
  Tuple args;

  Fact() = default;
  Fact(uint32_t relation_id, Tuple tuple)
      : relation(relation_id), args(std::move(tuple)) {}
  // Convenience: Fact("E", {a, b}).
  Fact(std::string_view relation_name, Tuple tuple);

  size_t arity() const { return args.size(); }

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.args == b.args;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.args < b.args;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const noexcept {
    return HashCombine(std::hash<uint32_t>{}(f.relation),
                       TupleHash{}(f.args));
  }
};

// Renders "R(1, 2)".
std::string FactToString(const Fact& f);
std::string TupleToString(const Tuple& t);

std::ostream& operator<<(std::ostream& os, const Fact& f);

}  // namespace calm

#endif  // CALM_BASE_FACT_H_
