#ifndef CALM_BASE_FACT_H_
#define CALM_BASE_FACT_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "base/value.h"

namespace calm {

// A tuple of domain values.
using Tuple = std::vector<Value>;

// Combines `h` into `seed` (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

struct TupleHash {
  size_t operator()(const Tuple& t) const noexcept {
    size_t seed = t.size();
    for (Value v : t) seed = HashCombine(seed, std::hash<Value>{}(v));
    return seed;
  }
};

// A fact R(d1, ..., dk): a relation name (interned id) applied to a tuple.
// Facts order lexicographically by (relation name, tuple), giving instances a
// deterministic iteration order.
struct Fact {
  uint32_t relation = 0;
  Tuple args;

  Fact() = default;
  Fact(uint32_t relation_id, Tuple tuple)
      : relation(relation_id), args(std::move(tuple)) {}
  // Convenience: Fact("E", {a, b}).
  Fact(std::string_view relation_name, Tuple tuple);

  size_t arity() const { return args.size(); }

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.args == b.args;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.args < b.args;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const noexcept {
    return HashCombine(std::hash<uint32_t>{}(f.relation),
                       TupleHash{}(f.args));
  }
};

// Renders "R(1, 2)".
std::string FactToString(const Fact& f);
std::string TupleToString(const Tuple& t);

std::ostream& operator<<(std::ostream& os, const Fact& f);

}  // namespace calm

#endif  // CALM_BASE_FACT_H_
