#ifndef CALM_BASE_SCHEMA_H_
#define CALM_BASE_SCHEMA_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/fact.h"
#include "base/status.h"

namespace calm {

// A relation declaration: an interned name and an arity. The paper restricts
// attention to arities >= 1 (no nullary relations, Section 2 / Section 7).
struct RelationDecl {
  uint32_t name = 0;
  uint32_t arity = 0;

  RelationDecl() = default;
  RelationDecl(uint32_t name_id, uint32_t a) : name(name_id), arity(a) {}
  RelationDecl(std::string_view name_str, uint32_t a);

  friend bool operator==(const RelationDecl& a, const RelationDecl& b) {
    return a.name == b.name && a.arity == b.arity;
  }
  friend bool operator<(const RelationDecl& a, const RelationDecl& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.arity < b.arity;
  }
};

// A database schema: a finite set of relation declarations with distinct
// names. Value-semantic and cheap to copy at the scales used here.
class Schema {
 public:
  Schema() = default;
  // Aborts (assert) on duplicate names or zero arity; use AddRelation for a
  // checked build.
  Schema(std::initializer_list<RelationDecl> decls);

  // Adds a relation; errors on duplicate name or zero arity.
  Status AddRelation(const RelationDecl& decl);
  Status AddRelation(std::string_view name, uint32_t arity);

  bool Contains(uint32_t name) const { return arities_.count(name) > 0; }
  bool ContainsName(std::string_view name) const;

  // Arity of `name`; 0 if absent.
  uint32_t ArityOf(uint32_t name) const;

  // Declarations in deterministic (interned-id) order.
  std::vector<RelationDecl> relations() const;

  size_t size() const { return arities_.size(); }
  bool empty() const { return arities_.empty(); }

  // True if every relation of `other` is in *this with the same arity.
  bool Includes(const Schema& other) const;

  // Set union; errors if a shared name has conflicting arities.
  static Result<Schema> Union(const Schema& a, const Schema& b);

  // True if `fact` is over this schema (declared name, matching arity).
  bool Admits(const Fact& fact) const;

  // "{E/2, S/1}".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.arities_ == b.arities_;
  }

 private:
  std::map<uint32_t, uint32_t> arities_;  // name id -> arity
};

}  // namespace calm

#endif  // CALM_BASE_SCHEMA_H_
