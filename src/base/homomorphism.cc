#include "base/homomorphism.h"

#include <set>

namespace calm {

bool IsHomomorphism(const std::map<Value, Value>& map, const Instance& i,
                    const Instance& j) {
  bool ok = true;
  i.ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!ok) return;
    Tuple mapped;
    mapped.reserve(t.size());
    for (Value v : t) {
      auto it = map.find(v);
      if (it == map.end()) {
        ok = false;
        return;
      }
      mapped.push_back(it->second);
    }
    if (!j.Contains(Fact(name, std::move(mapped)))) ok = false;
  });
  return ok;
}

namespace {

// Backtracking assignment of adom(I) values to adom(J) values. Consistency
// is checked only at the leaves; fine at the intended instance sizes.
bool Enumerate(const std::vector<Value>& domain_i,
               const std::vector<Value>& domain_j, size_t index, bool injective,
               std::map<Value, Value>& partial, std::set<Value>& used,
               const Instance& i, const Instance& j,
               const std::function<bool(const std::map<Value, Value>&)>& fn) {
  if (index == domain_i.size()) {
    if (!IsHomomorphism(partial, i, j)) return true;
    return fn(partial);
  }
  for (Value target : domain_j) {
    if (injective && used.count(target) > 0) continue;
    partial[domain_i[index]] = target;
    if (injective) used.insert(target);
    bool keep_going = Enumerate(domain_i, domain_j, index + 1, injective,
                                partial, used, i, j, fn);
    if (injective) used.erase(target);
    partial.erase(domain_i[index]);
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

bool ForEachHomomorphism(
    const Instance& i, const Instance& j, bool injective,
    const std::function<bool(const std::map<Value, Value>&)>& fn) {
  std::set<Value> adom_i_set = i.ActiveDomain();
  std::set<Value> adom_j_set = j.ActiveDomain();
  std::vector<Value> domain_i(adom_i_set.begin(), adom_i_set.end());
  std::vector<Value> domain_j(adom_j_set.begin(), adom_j_set.end());
  if (injective && domain_j.size() < domain_i.size()) return true;
  std::map<Value, Value> partial;
  std::set<Value> used;
  return Enumerate(domain_i, domain_j, 0, injective, partial, used, i, j, fn);
}

bool HomomorphismExists(const Instance& i, const Instance& j, bool injective) {
  bool found = false;
  ForEachHomomorphism(i, j, injective, [&](const std::map<Value, Value>&) {
    found = true;
    return false;  // stop
  });
  return found;
}

}  // namespace calm
