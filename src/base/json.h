#ifndef CALM_BASE_JSON_H_
#define CALM_BASE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace calm {

// A minimal JSON document model for the record/replay trace format
// (transducer/confluence.h) and other tool-facing artifacts. Deliberately
// tiny: objects keep insertion order (so serialized traces diff cleanly),
// integers are kept exact as int64 (seeds and ticks are 64-bit; doubles
// would silently round past 2^53), and parsing is a strict recursive
// descent with no extensions.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t i);
  static Json Uint(uint64_t u) { return Int(static_cast<int64_t>(u)); }
  static Json Double(double d);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const;
  uint64_t uint_value() const { return static_cast<uint64_t>(int_value()); }
  double double_value() const;
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // Array append / object insert (no key de-duplication; callers build
  // fresh documents).
  void Append(Json value);
  void Set(std::string key, Json value);

  // Object lookup: nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  // Typed object accessors returning InvalidArgument with the key name on
  // missing/mistyped members — parse errors in replayed traces must say
  // which field is bad.
  Result<int64_t> GetInt(std::string_view key) const;
  Result<uint64_t> GetUint(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;
  // The array member `key` (InvalidArgument when absent/mistyped).
  Result<const Json*> GetArray(std::string_view key) const;

  // Serializes with 2-space indentation (indent < 0: single line).
  std::string Dump(int indent = 2) const;

  // Strict parse of a complete document (trailing whitespace allowed).
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace calm

#endif  // CALM_BASE_JSON_H_
