#ifndef CALM_BASE_HOMOMORPHISM_H_
#define CALM_BASE_HOMOMORPHISM_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "base/instance.h"

namespace calm {

// A homomorphism from I to J is a mapping h : adom(I) -> adom(J) such that
// R(d...) in I implies R(h(d)...) in J (Section 3.2). These enumerators are
// exponential in |adom(I)| and intended for the small instances used by the
// preservation-class checkers.

// Whether `map` (total on adom(I)) is a homomorphism from `i` to `j`.
bool IsHomomorphism(const std::map<Value, Value>& map, const Instance& i,
                    const Instance& j);

// Invokes `fn` for every (injective, if `injective`) homomorphism from `i`
// to `j`, until fn returns false. Returns false iff enumeration was stopped
// by fn.
bool ForEachHomomorphism(const Instance& i, const Instance& j, bool injective,
                         const std::function<bool(const std::map<Value, Value>&)>& fn);

// Convenience: some homomorphism exists.
bool HomomorphismExists(const Instance& i, const Instance& j, bool injective);

}  // namespace calm

#endif  // CALM_BASE_HOMOMORPHISM_H_
