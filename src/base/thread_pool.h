#ifndef CALM_BASE_THREAD_POOL_H_
#define CALM_BASE_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <memory>

namespace calm {

// A fixed-size thread pool driving the exhaustive enumeration loops of the
// monotonicity / preservation checkers. The pool owns `num_threads - 1`
// worker threads; the thread calling ParallelFor always participates, so a
// pool constructed with 1 thread runs everything inline on the caller.
//
// Determinism contract: ParallelFor makes no ordering promise across
// indices. Callers that need the single-threaded answer (the checkers do —
// "first violation in enumeration order") must record per-index results and
// merge by index afterwards; see monotonicity/checker.cc.
class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (0 workers when num_threads <= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The configured concurrency (workers + the participating caller).
  size_t num_threads() const;

  // Runs fn(i) for every i in [begin, end), distributing contiguous chunks
  // over at most `max_helpers` workers plus the calling thread. Blocks until
  // every index has run (or been abandoned after an exception). The first
  // exception thrown by fn is rethrown on the calling thread; once one is
  // captured, remaining chunks are abandoned.
  //
  // Re-entrant use is safe: a ParallelFor issued from inside a running fn
  // executes serially on the current thread instead of deadlocking on the
  // pool's own workers.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn,
                   size_t max_helpers = static_cast<size_t>(-1));

  // The process-wide pool, created on first use with DefaultThreads()
  // threads and recreated if DefaultThreads() has changed since. Intended to
  // be (re)sized at startup via SetDefaultThreads / CALM_THREADS before the
  // hot loops start; recreation is not safe while another thread is inside
  // ParallelFor.
  static ThreadPool& Global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The process-wide thread count: the last SetDefaultThreads(n > 0) value if
// any, else the CALM_THREADS environment variable, else
// std::thread::hardware_concurrency() (at least 1).
size_t DefaultThreads();

// Overrides DefaultThreads(); n == 0 resets to the environment/hardware
// value. Benches wire their --threads flag here.
void SetDefaultThreads(size_t n);

// Convenience for the checkers: runs fn(i) for i in [0, count) with roughly
// `threads` concurrency (0 means DefaultThreads()). threads <= 1 or
// count <= 1 runs serially inline without touching the pool; otherwise the
// global pool is used, capped at threads - 1 helpers. Exceptions propagate
// as in ThreadPool::ParallelFor.
void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& fn);

}  // namespace calm

#endif  // CALM_BASE_THREAD_POOL_H_
