#include "base/components.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>

namespace calm {

namespace {

// Plain union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Merge(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<Instance> Components(const Instance& instance) {
  std::vector<Fact> facts = instance.AllFacts();
  UnionFind uf(facts.size());

  // Merge facts sharing a domain value: for each value, merge all facts
  // containing it with the first such fact.
  std::map<Value, size_t> first_fact_with;
  for (size_t i = 0; i < facts.size(); ++i) {
    for (Value v : facts[i].args) {
      auto [it, inserted] = first_fact_with.emplace(v, i);
      if (!inserted) uf.Merge(i, it->second);
    }
  }

  std::map<size_t, Instance> by_root;
  for (size_t i = 0; i < facts.size(); ++i) {
    by_root[uf.Find(i)].Insert(facts[i]);
  }

  std::vector<Instance> out;
  out.reserve(by_root.size());
  for (auto& [root, comp] : by_root) out.push_back(std::move(comp));
  // Deterministic order: facts vector is sorted, and map keys are the first
  // (smallest-index) root encountered per component; sort by content anyway.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace calm
