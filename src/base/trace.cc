#include "base/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace calm {

#ifndef CALM_TRACING_DISABLED

namespace trace_internal {

std::atomic<bool> g_enabled{false};

namespace {

std::atomic<size_t> g_capacity{size_t{1} << 20};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The timestamp epoch: exported ts values are relative to the last Reset
// (or process start), keeping them small and diffable.
std::atomic<int64_t> g_epoch_ns{NowNs()};

}  // namespace

// A thread's event buffer. Buffers are owned jointly by the writing thread
// (thread_local shared_ptr) and the global registry, so export works after
// worker threads have exited. The writing thread is the only mutator of
// `events` / `open_stack`; Reset and export must run at quiescent points
// (no spans being recorded), which Trace's contract requires.
struct ThreadBuffer {
  uint32_t slot = 0;  // registration order; the exported tid
  uint32_t next_seq = 1;
  std::vector<Event> events;
  std::vector<uint32_t> open_stack;  // indices into events
  size_t dropped = 0;
};

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    b->slot = static_cast<uint32_t>(registry.buffers.size());
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

uint32_t OpenSpan(const char* name) {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.events.size() >= g_capacity.load(std::memory_order_relaxed)) {
    ++buffer.dropped;
    return kInvalidIndex;
  }
  Event event;
  event.name = name;
  event.depth = static_cast<uint32_t>(buffer.open_stack.size());
  event.id = (uint64_t{buffer.slot} << 32) | buffer.next_seq++;
  event.parent = buffer.open_stack.empty()
                     ? 0
                     : buffer.events[buffer.open_stack.back()].id;
  event.start_ns = NowNs() - g_epoch_ns.load(std::memory_order_relaxed);
  uint32_t index = static_cast<uint32_t>(buffer.events.size());
  buffer.open_stack.push_back(index);
  buffer.events.push_back(event);
  return index;
}

void CloseSpan(uint32_t index) {
  ThreadBuffer& buffer = LocalBuffer();
  if (index >= buffer.events.size()) return;  // Reset raced an open span
  Event& event = buffer.events[index];
  event.dur_ns =
      NowNs() - g_epoch_ns.load(std::memory_order_relaxed) - event.start_ns;
  // Spans close in strict LIFO order per thread (RAII guarantees it).
  if (!buffer.open_stack.empty() && buffer.open_stack.back() == index) {
    buffer.open_stack.pop_back();
  }
}

void SpanArg(uint32_t index, const char* key, int64_t value) {
  ThreadBuffer& buffer = LocalBuffer();
  if (index >= buffer.events.size()) return;  // Reset raced an open span
  Event& event = buffer.events[index];
  if (event.num_args < kMaxArgs) {
    event.args[event.num_args++] = TraceArg{key, value};
  }
}

void AppendInstant(const char* name, std::initializer_list<TraceArg> args) {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.events.size() >= g_capacity.load(std::memory_order_relaxed)) {
    ++buffer.dropped;
    return;
  }
  Event event;
  event.name = name;
  event.instant = true;
  event.depth = static_cast<uint32_t>(buffer.open_stack.size());
  event.id = (uint64_t{buffer.slot} << 32) | buffer.next_seq++;
  event.parent = buffer.open_stack.empty()
                     ? 0
                     : buffer.events[buffer.open_stack.back()].id;
  event.start_ns = NowNs() - g_epoch_ns.load(std::memory_order_relaxed);
  for (const TraceArg& a : args) {
    if (event.num_args < kMaxArgs) event.args[event.num_args++] = a;
  }
  buffer.events.push_back(event);
}

}  // namespace trace_internal

void Trace::SetEnabled(bool enabled) {
  trace_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Trace::SetCapacity(size_t max_events_per_thread) {
  trace_internal::g_capacity.store(max_events_per_thread,
                                   std::memory_order_relaxed);
}

void Trace::Reset() {
  trace_internal::Registry& registry = trace_internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& buffer : registry.buffers) {
    buffer->events.clear();
    buffer->open_stack.clear();
    buffer->next_seq = 1;
    buffer->dropped = 0;
  }
  trace_internal::g_epoch_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

size_t Trace::DroppedCount() {
  trace_internal::Registry& registry = trace_internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& buffer : registry.buffers) total += buffer->dropped;
  return total;
}

size_t Trace::EventCount() {
  trace_internal::Registry& registry = trace_internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& buffer : registry.buffers) total += buffer->events.size();
  return total;
}

size_t Trace::SpanCount(const std::string& name) {
  trace_internal::Registry& registry = trace_internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    for (const trace_internal::Event& e : buffer->events) {
      if (!e.instant && name == e.name) ++total;
    }
  }
  return total;
}

size_t Trace::InstantCount(const std::string& name) {
  trace_internal::Registry& registry = trace_internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    for (const trace_internal::Event& e : buffer->events) {
      if (e.instant && name == e.name) ++total;
    }
  }
  return total;
}

Json Trace::ExportJson() {
  trace_internal::Registry& registry = trace_internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);

  Json events = Json::Array();
  for (const auto& buffer : registry.buffers) {
    for (const trace_internal::Event& e : buffer->events) {
      Json event = Json::Object();
      event.Set("name", Json::Str(e.name));
      event.Set("ph", Json::Str(e.instant ? "i" : "X"));
      event.Set("pid", Json::Int(0));
      event.Set("tid", Json::Int(buffer->slot));
      // Chrome expects microseconds; keep sub-µs precision as a double.
      event.Set("ts", Json::Double(static_cast<double>(e.start_ns) / 1000.0));
      if (e.instant) {
        event.Set("s", Json::Str("t"));  // thread-scoped instant
      } else {
        event.Set("dur", Json::Double(static_cast<double>(e.dur_ns) / 1000.0));
      }
      Json args = Json::Object();
      args.Set("id", Json::Uint(e.id));
      if (e.parent != 0) args.Set("parent", Json::Uint(e.parent));
      for (uint32_t a = 0; a < e.num_args; ++a) {
        args.Set(e.args[a].key, Json::Int(e.args[a].value));
      }
      event.Set("args", std::move(args));
      events.Append(std::move(event));
    }
  }

  Json root = Json::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", Json::Str("ms"));
  return root;
}

#endif  // !CALM_TRACING_DISABLED

Status Trace::WriteChromeTrace(const std::string& path) {
  std::string text = ExportJson().Dump(/*indent=*/-1);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgumentError("cannot write trace to " + path);
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return Status::Ok();
}

}  // namespace calm
