#ifndef CALM_BASE_STATUS_H_
#define CALM_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace calm {

// Error categories used across the library. The library does not use
// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad program text, arity mismatch, ...)
  kFailedPrecondition,// operation not applicable (e.g. unstratifiable program)
  kResourceExhausted, // evaluation diverged past a configured limit
  kDeadlineExceeded,  // a simulated run hit its transition budget
  kInternal,          // invariant violation inside the library
  kNotFound,
};

// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value, modeled after absl::Status.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: some message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors for the common error categories.
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status InternalError(std::string message);
Status NotFoundError(std::string message);

// Holds either a value of type T or an error Status, modeled after
// absl::StatusOr. Accessing value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return SomeStatus;` and `return some_value;` from Result-returning
  // functions.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace calm

// Propagates a non-OK Status from an expression that yields Status.
#define CALM_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::calm::Status calm_status_ = (expr);         \
    if (!calm_status_.ok()) return calm_status_;  \
  } while (false)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// assigns the contained value to `lhs`.
#define CALM_ASSIGN_OR_RETURN(lhs, expr)              \
  auto CALM_CONCAT_(calm_result_, __LINE__) = (expr); \
  if (!CALM_CONCAT_(calm_result_, __LINE__).ok())     \
    return CALM_CONCAT_(calm_result_, __LINE__).status(); \
  lhs = std::move(CALM_CONCAT_(calm_result_, __LINE__)).value()

#define CALM_CONCAT_(a, b) CALM_CONCAT_IMPL_(a, b)
#define CALM_CONCAT_IMPL_(a, b) a##b

#endif  // CALM_BASE_STATUS_H_
