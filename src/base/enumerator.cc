#include "base/enumerator.h"

namespace calm {

std::vector<Fact> AllFactsOver(const Schema& schema,
                               const std::vector<Value>& domain) {
  std::vector<Fact> out;
  if (domain.empty()) return out;
  for (const RelationDecl& decl : schema.relations()) {
    // Odometer over domain^arity.
    std::vector<size_t> idx(decl.arity, 0);
    while (true) {
      Tuple t;
      t.reserve(decl.arity);
      for (size_t i : idx) t.push_back(domain[i]);
      out.emplace_back(decl.name, std::move(t));
      size_t pos = decl.arity;
      while (pos > 0) {
        --pos;
        if (++idx[pos] < domain.size()) break;
        idx[pos] = 0;
        if (pos == 0) goto next_relation;
      }
      if (decl.arity == 0) break;  // unreachable (arity >= 1), defensive
    }
  next_relation:;
  }
  return out;
}

namespace {

bool SubsetsRec(const std::vector<Fact>& facts, size_t start, size_t remaining,
                Instance& current,
                const std::function<bool(const Instance&)>& fn) {
  if (remaining == 0 || start == facts.size()) return true;
  for (size_t i = start; i < facts.size(); ++i) {
    current.Insert(facts[i]);
    if (!fn(current)) {
      current.Erase(facts[i]);
      return false;
    }
    if (!SubsetsRec(facts, i + 1, remaining - 1, current, fn)) {
      current.Erase(facts[i]);
      return false;
    }
    current.Erase(facts[i]);
  }
  return true;
}

}  // namespace

bool ForEachFactSubset(const std::vector<Fact>& facts, size_t max_facts,
                       const std::function<bool(const Instance&)>& fn) {
  Instance current;
  return SubsetsRec(facts, 0, max_facts, current, fn);
}

bool ForEachInstance(const Schema& schema, const std::vector<Value>& domain,
                     size_t max_facts,
                     const std::function<bool(const Instance&)>& fn) {
  Instance empty;
  if (!fn(empty)) return false;
  std::vector<Fact> facts = AllFactsOver(schema, domain);
  return ForEachFactSubset(facts, max_facts, fn);
}

std::vector<Instance> AllFactSubsets(const std::vector<Fact>& facts,
                                     size_t max_facts) {
  std::vector<Instance> out;
  ForEachFactSubset(facts, max_facts, [&](const Instance& inst) {
    out.push_back(inst);
    return true;
  });
  return out;
}

std::vector<Instance> AllInstances(const Schema& schema,
                                   const std::vector<Value>& domain,
                                   size_t max_facts) {
  std::vector<Instance> out;
  ForEachInstance(schema, domain, max_facts, [&](const Instance& inst) {
    out.push_back(inst);
    return true;
  });
  return out;
}

std::vector<Value> IntDomain(size_t n, uint64_t offset) {
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Value::FromInt(offset + i));
  return out;
}

}  // namespace calm
