#include "base/enumerator.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>

namespace calm {

std::vector<Fact> AllFactsOver(const Schema& schema,
                               const std::vector<Value>& domain) {
  std::vector<Fact> out;
  if (domain.empty()) return out;
  for (const RelationDecl& decl : schema.relations()) {
    // Odometer over domain^arity.
    std::vector<size_t> idx(decl.arity, 0);
    while (true) {
      Tuple t;
      t.reserve(decl.arity);
      for (size_t i : idx) t.push_back(domain[i]);
      out.emplace_back(decl.name, std::move(t));
      size_t pos = decl.arity;
      while (pos > 0) {
        --pos;
        if (++idx[pos] < domain.size()) break;
        idx[pos] = 0;
        if (pos == 0) goto next_relation;
      }
      if (decl.arity == 0) break;  // unreachable (arity >= 1), defensive
    }
  next_relation:;
  }
  return out;
}

namespace {

bool SubsetsRec(const std::vector<Fact>& facts, size_t start, size_t remaining,
                Instance& current,
                const std::function<bool(const Instance&)>& fn) {
  if (remaining == 0 || start == facts.size()) return true;
  for (size_t i = start; i < facts.size(); ++i) {
    current.Insert(facts[i]);
    if (!fn(current)) {
      current.Erase(facts[i]);
      return false;
    }
    if (!SubsetsRec(facts, i + 1, remaining - 1, current, fn)) {
      current.Erase(facts[i]);
      return false;
    }
    current.Erase(facts[i]);
  }
  return true;
}

}  // namespace

bool ForEachFactSubset(const std::vector<Fact>& facts, size_t max_facts,
                       const std::function<bool(const Instance&)>& fn) {
  Instance current;
  return SubsetsRec(facts, 0, max_facts, current, fn);
}

bool ForEachInstance(const Schema& schema, const std::vector<Value>& domain,
                     size_t max_facts,
                     const std::function<bool(const Instance&)>& fn) {
  Instance empty;
  if (!fn(empty)) return false;
  std::vector<Fact> facts = AllFactsOver(schema, domain);
  return ForEachFactSubset(facts, max_facts, fn);
}

std::vector<Instance> AllFactSubsets(const std::vector<Fact>& facts,
                                     size_t max_facts) {
  std::vector<Instance> out;
  ForEachFactSubset(facts, max_facts, [&](const Instance& inst) {
    out.push_back(inst);
    return true;
  });
  return out;
}

std::vector<Instance> AllInstances(const Schema& schema,
                                   const std::vector<Value>& domain,
                                   size_t max_facts) {
  std::vector<Instance> out;
  ForEachInstance(schema, domain, max_facts, [&](const Instance& inst) {
    out.push_back(inst);
    return true;
  });
  return out;
}

std::vector<Value> IntDomain(size_t n, uint64_t offset) {
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Value::FromInt(offset + i));
  return out;
}

namespace {

// Shared state for the orbit-representative instance DFS: the fact universe
// with an index lookup, and arrangement tables (ordered k-subsets of domain
// indices, i.e. all injective maps from a k-value adom into the domain)
// built lazily per adom size.
struct CanonicalInstanceSpace {
  std::vector<Fact> facts;
  std::unordered_map<Fact, uint32_t, FactHash> index;
  const std::vector<Value>& domain;
  std::vector<std::vector<std::vector<uint32_t>>> arrangements_by_k;

  explicit CanonicalInstanceSpace(const Schema& schema,
                                  const std::vector<Value>& dom)
      : facts(AllFactsOver(schema, dom)), domain(dom) {
    index.reserve(facts.size());
    for (uint32_t i = 0; i < facts.size(); ++i) index.emplace(facts[i], i);
    arrangements_by_k.resize(domain.size() + 1);
  }

  const std::vector<std::vector<uint32_t>>& Arrangements(size_t k) {
    std::vector<std::vector<uint32_t>>& table = arrangements_by_k[k];
    if (!table.empty() || k == 0) return table;
    std::vector<uint32_t> pick;
    std::vector<bool> used(domain.size(), false);
    std::function<void()> rec = [&]() {
      if (pick.size() == k) {
        table.push_back(pick);
        return;
      }
      for (uint32_t d = 0; d < domain.size(); ++d) {
        if (used[d]) continue;
        used[d] = true;
        pick.push_back(d);
        rec();
        pick.pop_back();
        used[d] = false;
      }
    };
    rec();
    return table;
  }

  // Returns the orbit size of `current` inside the bounded space when its
  // sorted fact-index list `cur_idx` is least over every injective
  // relabeling of its adom into the domain, 0 otherwise. The least-index
  // test is what makes the kept representative the enumeration-order-least
  // orbit member (same-size subsets enumerate in index-list lex order).
  uint64_t CanonicalOrbit(const Instance& current,
                          const std::vector<uint32_t>& cur_idx) {
    std::set<Value> adom_set = current.ActiveDomain();
    std::vector<Value> adom(adom_set.begin(), adom_set.end());
    size_t k = adom.size();
    if (k == 0) return 1;
    const std::vector<std::vector<uint32_t>>& arr = Arrangements(k);
    uint64_t fixed = 0;
    std::vector<uint32_t> mapped;
    mapped.reserve(cur_idx.size());
    for (const std::vector<uint32_t>& t : arr) {
      mapped.clear();
      uint32_t min_idx = UINT32_MAX;
      for (uint32_t fi : cur_idx) {
        const Fact& f = facts[fi];
        Tuple tt;
        tt.reserve(f.arity());
        for (Value v : f.args) {
          size_t pos = static_cast<size_t>(
              std::lower_bound(adom.begin(), adom.end(), v) - adom.begin());
          tt.push_back(domain[t[pos]]);
        }
        uint32_t mi = index.find(Fact(f.relation, std::move(tt)))->second;
        // A mapped fact below the least current index decides immediately.
        if (mi < cur_idx[0]) return 0;
        min_idx = std::min(min_idx, mi);
        mapped.push_back(mi);
      }
      if (min_idx > cur_idx[0]) continue;  // strictly above; not smaller
      std::sort(mapped.begin(), mapped.end());
      if (std::lexicographical_compare(mapped.begin(), mapped.end(),
                                       cur_idx.begin(), cur_idx.end())) {
        return 0;
      }
      if (mapped == cur_idx) ++fixed;
    }
    return static_cast<uint64_t>(arr.size()) / fixed;
  }

  bool Rec(size_t start, size_t remaining, Instance& current,
           std::vector<uint32_t>& cur_idx,
           const std::function<bool(const Instance&, uint64_t)>& fn) {
    if (remaining == 0 || start == facts.size()) return true;
    for (size_t i = start; i < facts.size(); ++i) {
      current.Insert(facts[i]);
      cur_idx.push_back(static_cast<uint32_t>(i));
      uint64_t orbit = CanonicalOrbit(current, cur_idx);
      // A non-least node only extends to non-least nodes (extensions append
      // indices above the current maximum on both sides of the comparison),
      // so the whole subtree prunes.
      if (orbit > 0) {
        if (!fn(current, orbit) ||
            !Rec(i + 1, remaining - 1, current, cur_idx, fn)) {
          cur_idx.pop_back();
          current.Erase(facts[i]);
          return false;
        }
      }
      cur_idx.pop_back();
      current.Erase(facts[i]);
    }
    return true;
  }
};

}  // namespace

bool ForEachCanonicalInstance(
    const Schema& schema, const std::vector<Value>& domain, size_t max_facts,
    const std::function<bool(const Instance&, uint64_t)>& fn) {
  Instance empty;
  if (!fn(empty, 1)) return false;
  CanonicalInstanceSpace space(schema, domain);
  Instance current;
  std::vector<uint32_t> cur_idx;
  return space.Rec(0, max_facts, current, cur_idx, fn);
}

std::vector<Instance> AllCanonicalInstances(
    const Schema& schema, const std::vector<Value>& domain, size_t max_facts,
    std::vector<uint64_t>* orbit_sizes) {
  std::vector<Instance> out;
  ForEachCanonicalInstance(schema, domain, max_facts,
                           [&](const Instance& inst, uint64_t orbit) {
                             out.push_back(inst);
                             if (orbit_sizes) orbit_sizes->push_back(orbit);
                             return true;
                           });
  return out;
}

std::vector<std::vector<uint32_t>> FactIndexPermutations(
    const std::vector<Fact>& facts,
    const std::vector<std::map<Value, Value>>& value_maps) {
  std::unordered_map<Fact, uint32_t, FactHash> index;
  index.reserve(facts.size());
  for (uint32_t i = 0; i < facts.size(); ++i) index.emplace(facts[i], i);

  std::set<std::vector<uint32_t>> seen;
  std::vector<std::vector<uint32_t>> out;
  for (const std::map<Value, Value>& m : value_maps) {
    std::vector<uint32_t> perm(facts.size());
    bool closed = true;
    bool identity = true;
    for (uint32_t i = 0; i < facts.size() && closed; ++i) {
      Tuple t;
      t.reserve(facts[i].arity());
      for (Value v : facts[i].args) {
        auto it = m.find(v);
        t.push_back(it == m.end() ? v : it->second);
      }
      auto it = index.find(Fact(facts[i].relation, std::move(t)));
      if (it == index.end()) {
        closed = false;
        break;
      }
      perm[i] = it->second;
      identity = identity && perm[i] == i;
    }
    if (!closed || identity) continue;
    if (seen.insert(perm).second) out.push_back(std::move(perm));
  }
  return out;
}

namespace {

bool CanonicalSubsetsRec(
    const std::vector<Fact>& facts, size_t start, size_t remaining,
    Instance& current, std::vector<uint32_t>& cur_idx,
    const std::vector<std::vector<uint32_t>>& index_perms,
    const std::function<bool(const Instance&)>& fn) {
  if (remaining == 0 || start == facts.size()) return true;
  std::vector<uint32_t> mapped;
  for (size_t i = start; i < facts.size(); ++i) {
    current.Insert(facts[i]);
    cur_idx.push_back(static_cast<uint32_t>(i));
    bool least = true;
    for (const std::vector<uint32_t>& perm : index_perms) {
      mapped.clear();
      for (uint32_t fi : cur_idx) mapped.push_back(perm[fi]);
      std::sort(mapped.begin(), mapped.end());
      if (std::lexicographical_compare(mapped.begin(), mapped.end(),
                                       cur_idx.begin(), cur_idx.end())) {
        least = false;
        break;
      }
    }
    if (least) {
      if (!fn(current) ||
          !CanonicalSubsetsRec(facts, i + 1, remaining - 1, current, cur_idx,
                               index_perms, fn)) {
        cur_idx.pop_back();
        current.Erase(facts[i]);
        return false;
      }
    }
    cur_idx.pop_back();
    current.Erase(facts[i]);
  }
  return true;
}

}  // namespace

bool ForEachCanonicalFactSubset(
    const std::vector<Fact>& facts, size_t max_facts,
    const std::vector<std::vector<uint32_t>>& index_perms,
    const std::function<bool(const Instance&)>& fn) {
  if (index_perms.empty()) return ForEachFactSubset(facts, max_facts, fn);
  Instance current;
  std::vector<uint32_t> cur_idx;
  return CanonicalSubsetsRec(facts, 0, max_facts, current, cur_idx,
                             index_perms, fn);
}

}  // namespace calm
