#include "base/failpoint.h"

#ifndef CALM_FAILPOINTS_DISABLED

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace calm::failpoint {

namespace detail {

std::atomic<bool> g_active{false};

namespace {

// All slow-path state behind one mutex: arming and counting are test/fuzzer
// operations, and a hit only reaches the mutex while the framework is active.
struct State {
  std::mutex mu;
  bool counting = false;
  std::string armed_site;   // empty = nothing armed
  uint64_t armed_hit = 0;   // 1-based occurrence that crashes
  std::map<std::string, uint64_t> counts;
};

State& GetState() {
  static State* state = new State();
  return *state;
}

// CALM_FAILPOINT=site:hit — one env read at process start, so any binary can
// be crashed at a chosen boundary without code changes.
struct EnvArm {
  EnvArm() {
    const char* spec = std::getenv("CALM_FAILPOINT");
    if (spec == nullptr || *spec == '\0') return;
    std::string s(spec);
    size_t colon = s.rfind(':');
    uint64_t hit = 1;
    std::string site = s;
    if (colon != std::string::npos) {
      site = s.substr(0, colon);
      char* end = nullptr;
      unsigned long long n = std::strtoull(s.c_str() + colon + 1, &end, 10);
      if (end != nullptr && *end == '\0' && n > 0) {
        hit = n;
      } else {
        std::fprintf(stderr,
                     "CALM_FAILPOINT: malformed hit count in %s "
                     "(want site:positive-integer)\n",
                     spec);
        std::exit(2);
      }
    }
    Arm(site, hit);
  }
};
EnvArm g_env_arm;

}  // namespace

void Hit(const char* site) {
  State& state = GetState();
  std::unique_lock<std::mutex> lock(state.mu);
  if (!state.counting && state.armed_site.empty()) return;  // raced a Disarm
  uint64_t count = ++state.counts[site];
  if (!state.armed_site.empty() && state.armed_site == site &&
      count == state.armed_hit) {
    // The crash model is a power cut: no atexit handlers, no stream flushes,
    // no destructors — anything not yet durable is lost. The one fprintf is
    // unbuffered (stderr) and purely diagnostic.
    std::fprintf(stderr, "failpoint fired: %s (hit %llu)\n", site,
                 static_cast<unsigned long long>(count));
    _exit(kCrashExitCode);
  }
}

}  // namespace detail

void Arm(const std::string& site, uint64_t hit) {
  detail::State& state = detail::GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed_site = site;
  state.armed_hit = hit == 0 ? 1 : hit;
  state.counts.clear();
  detail::g_active.store(true, std::memory_order_relaxed);
}

void Disarm() {
  detail::State& state = detail::GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.armed_site.clear();
  state.armed_hit = 0;
  detail::g_active.store(state.counting, std::memory_order_relaxed);
}

void SetCounting(bool on) {
  detail::State& state = detail::GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.counting = on;
  state.counts.clear();
  detail::g_active.store(on || !state.armed_site.empty(),
                         std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> HitCounts() {
  detail::State& state = detail::GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, uint64_t>> out(state.counts.begin(),
                                                    state.counts.end());
  return out;
}

}  // namespace calm::failpoint

#endif  // CALM_FAILPOINTS_DISABLED
