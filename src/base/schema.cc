#include "base/schema.h"

#include <cassert>

#include "base/value.h"

namespace calm {

RelationDecl::RelationDecl(std::string_view name_str, uint32_t a)
    : name(InternName(name_str)), arity(a) {}

Schema::Schema(std::initializer_list<RelationDecl> decls) {
  for (const RelationDecl& d : decls) {
    Status s = AddRelation(d);
    assert(s.ok());
    (void)s;
  }
}

Status Schema::AddRelation(const RelationDecl& decl) {
  if (decl.arity == 0) {
    return InvalidArgumentError("nullary relation '" + NameOf(decl.name) +
                                "' not allowed (paper assumes arity >= 1)");
  }
  auto [it, inserted] = arities_.emplace(decl.name, decl.arity);
  if (!inserted && it->second != decl.arity) {
    return InvalidArgumentError("conflicting arity for relation '" +
                                NameOf(decl.name) + "'");
  }
  return Status::Ok();
}

Status Schema::AddRelation(std::string_view name, uint32_t arity) {
  return AddRelation(RelationDecl(name, arity));
}

bool Schema::ContainsName(std::string_view name) const {
  uint32_t id = GlobalSymbols().Find(name);
  return id != UINT32_MAX && Contains(id);
}

uint32_t Schema::ArityOf(uint32_t name) const {
  auto it = arities_.find(name);
  return it == arities_.end() ? 0 : it->second;
}

std::vector<RelationDecl> Schema::relations() const {
  std::vector<RelationDecl> out;
  out.reserve(arities_.size());
  for (auto [name, arity] : arities_) out.emplace_back(name, arity);
  return out;
}

bool Schema::Includes(const Schema& other) const {
  for (auto [name, arity] : other.arities_) {
    auto it = arities_.find(name);
    if (it == arities_.end() || it->second != arity) return false;
  }
  return true;
}

Result<Schema> Schema::Union(const Schema& a, const Schema& b) {
  Schema out = a;
  for (auto [name, arity] : b.arities_) {
    CALM_RETURN_IF_ERROR(out.AddRelation(RelationDecl(name, arity)));
  }
  return out;
}

bool Schema::Admits(const Fact& fact) const {
  auto it = arities_.find(fact.relation);
  return it != arities_.end() && it->second == fact.args.size();
}

std::string Schema::ToString() const {
  std::string out = "{";
  bool first = true;
  for (auto [name, arity] : arities_) {
    if (!first) out += ", ";
    first = false;
    out += NameOf(name) + "/" + std::to_string(arity);
  }
  out += "}";
  return out;
}

}  // namespace calm
