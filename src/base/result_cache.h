#ifndef CALM_BASE_RESULT_CACHE_H_
#define CALM_BASE_RESULT_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/instance.h"
#include "base/query.h"
#include "base/status.h"

namespace calm {

// A thread-safe, sharded cache of query results keyed by the canonical form
// of the input (base/canonical.h). For a generic query, Q(pi(I)) = pi(Q(I)),
// so one evaluation per isomorphism class suffices: results are stored in
// canonical labels and mapped back through the inverse of the witnessing
// permutation on every hit. ComputeLadder shares one cache across its
// 3 * max_i cells, which otherwise each re-evaluate the identical I space.
//
// Correctness depends on genericity — callers must gate usage behind
// ProbeGenericity (base/query.h) or explicit opt-in, exactly like the
// reduced sweeps. Queries with invented output values (ILOG) get unstable
// ids across evaluations anyway; the probe rejects those.
//
// Thread safety: fully thread-safe; entries are guarded by one of kShards
// mutexes chosen by the key hash, so parallel sweep workers rarely contend.
class QueryResultCache {
 public:
  explicit QueryResultCache(const Query& query) : query_(query) {}
  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  const Query& query() const { return query_; }

  // Evaluates Q(input), serving isomorphic repeats from the cache. Appends
  // the facts of Q(input) to `out` in ascending Fact order — identical to
  // Query::EvalFacts. Evaluation errors are cached and replayed too, so an
  // error surfaces at the same enumeration point on every code path.
  Status EvalFacts(const Instance& input, std::vector<Fact>* out);

  // As EvalFacts, but materializing the result (Query::Eval contract).
  Result<Instance> Eval(const Instance& input);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  Stats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

 private:
  struct Entry {
    Status status;                      // replayed verbatim when not ok()
    std::vector<Fact> canonical_facts;  // Q(I) in canonical labels, ascending
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry> map;  // guarded by mu
  };
  static constexpr size_t kShards = 16;

  Shard& ShardOf(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) & (kShards - 1)];
  }

  const Query& query_;
  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace calm

#endif  // CALM_BASE_RESULT_CACHE_H_
