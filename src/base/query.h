#ifndef CALM_BASE_QUERY_H_
#define CALM_BASE_QUERY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/instance.h"
#include "base/schema.h"
#include "base/status.h"

namespace calm {

// Repeated Q(i) ⊆ Q(i ∪ j) checks against one fixed i — the monotonicity
// checkers' inner loop, which enumerates many small j per outer i. An
// evaluator may keep arbitrary state about i across calls (a materialized
// fixpoint, a precomputed closure); the query and `i` it was built over
// must outlive it. Obtained from Query::MakeUnionEvaluator; not thread-safe.
class UnionEvaluator {
 public:
  virtual ~UnionEvaluator() = default;

  // Returns the first fact of `base_facts` missing from Q(i ∪ j), or
  // nullopt when every one is present. `base_facts` must be Q(i) in
  // ascending fact order (Query::EvalFacts' order) for the i this evaluator
  // was built over — the returned fact is then identical to the one a
  // from-scratch evaluation and sorted merge would report.
  virtual Result<std::optional<Fact>> FirstRetracted(
      const Instance& j, const std::vector<Fact>& base_facts) = 0;
};

// A query: a generic mapping from instances over an input schema to
// instances over an output schema (Section 2). Implementations must be
// generic (commute with permutations of dom); GenericityProbe below
// property-tests this.
class Query {
 public:
  virtual ~Query() = default;

  virtual const Schema& input_schema() const = 0;
  virtual const Schema& output_schema() const = 0;

  // Evaluates the query. `input` facts outside the input schema are ignored
  // (callers should restrict first if that matters). Errors indicate
  // evaluation failure (e.g. divergence limits), never "empty result".
  virtual Result<Instance> Eval(const Instance& input) const = 0;

  // Evaluates the query on a ∪ b without requiring the caller to materialize
  // the union. Semantically identical to Eval(Instance::Union(a, b)); engines
  // that can seed from two instances directly (DatalogQuery, IlogQuery)
  // override this to skip the union copy, which the checker inner loops call
  // once per enumerated (I, J) pair.
  virtual Result<Instance> EvalUnion(const Instance& a,
                                     const Instance& b) const {
    return Eval(Instance::Union(a, b));
  }

  // Appends Q(input)'s facts to `out` in ascending Fact order (the same
  // deterministic order Instance::ForEachFact yields). Semantically identical
  // to materializing Eval's result and listing its facts; queries that can
  // produce the sorted fact stream directly (NativeQuery with a FactsFn)
  // override this to skip building the output Instance — the checker's inner
  // pair loop only needs a sorted-subset test, not a set.
  virtual Status EvalFacts(const Instance& input,
                           std::vector<Fact>* out) const {
    Result<Instance> r = Eval(input);
    if (!r.ok()) return r.status();
    r->ForEachFact(
        [&](uint32_t name, const Tuple& t) { out->emplace_back(name, t); });
    return Status::Ok();
  }

  // Creates an evaluator for repeated Q(i) ⊆ Q(i ∪ j) checks against one
  // fixed i (see UnionEvaluator). The default maintains i ∪ j as an overlay
  // on a persistent copy of i — j's facts inserted before an EvalFacts, a
  // sorted merge against base_facts, the overlay erased after — so no
  // per-pair Instance::Union copy is made. Engines that can do better
  // override this: DatalogQuery reuses a materialized fixpoint and runs j
  // as an insertion delta; the native closure queries merge j into a
  // precomputed reachability matrix. Every implementation returns the
  // byte-identical first-retracted fact; only the work per check differs.
  // `i` (and this query) must outlive the returned evaluator.
  virtual std::unique_ptr<UnionEvaluator> MakeUnionEvaluator(
      const Instance& i) const;

  // A short human-readable identifier used in reports.
  virtual std::string name() const = 0;
};

// The overlay-based evaluator behind Query::MakeUnionEvaluator's default,
// exposed so engine-specific evaluators have a fallback route for inputs
// they cannot serve (e.g. the closure evaluator past its vertex budget).
std::unique_ptr<UnionEvaluator> MakeOverlayUnionEvaluator(const Query& query,
                                                          const Instance& i);

// Wraps a C++ function as a Query. The function receives the input restricted
// to the input schema.
class NativeQuery : public Query {
 public:
  using EvalFn = std::function<Result<Instance>(const Instance&)>;
  // Appends the output facts in ascending Fact order (see Query::EvalFacts).
  using FactsFn = std::function<Status(const Instance&, std::vector<Fact>*)>;

  NativeQuery(std::string name, Schema input, Schema output, EvalFn fn)
      : name_(std::move(name)),
        input_(std::move(input)),
        output_(std::move(output)),
        fn_(std::move(fn)) {}

  NativeQuery(std::string name, Schema input, Schema output, FactsFn fn)
      : name_(std::move(name)),
        input_(std::move(input)),
        output_(std::move(output)),
        facts_fn_(std::move(fn)) {}

  const Schema& input_schema() const override { return input_; }
  const Schema& output_schema() const override { return output_; }
  std::string name() const override { return name_; }

  Result<Instance> Eval(const Instance& input) const override {
    // The checker loops always pass inputs already over the schema; skip the
    // full-instance Restrict copy then.
    const Instance* src = &input;
    Instance restricted;
    if (!input.IsOver(input_)) {
      restricted = input.Restrict(input_);
      src = &restricted;
    }
    if (fn_) return fn_(*src);
    std::vector<Fact> facts;
    Status s = facts_fn_(*src, &facts);
    if (!s.ok()) return s;
    Instance out;
    out.InsertSortedFacts(facts);
    return out;
  }

  Status EvalFacts(const Instance& input,
                   std::vector<Fact>* out) const override {
    if (!facts_fn_) return Query::EvalFacts(input, out);
    if (input.IsOver(input_)) return facts_fn_(input, out);
    return facts_fn_(input.Restrict(input_), out);
  }

  // Builds a query-specific UnionEvaluator for `i`, or returns nullptr to
  // decline (the default overlay evaluator is used then). Lets native
  // queries ship incremental union evaluation (graph_queries.cc wires a
  // closure-matrix evaluator onto TC and Q_TC) without subclassing.
  using UnionEvalFactory = std::function<std::unique_ptr<UnionEvaluator>(
      const Query&, const Instance&)>;
  void set_union_eval_factory(UnionEvalFactory factory) {
    union_eval_factory_ = std::move(factory);
  }

  std::unique_ptr<UnionEvaluator> MakeUnionEvaluator(
      const Instance& i) const override {
    if (union_eval_factory_) {
      std::unique_ptr<UnionEvaluator> ev = union_eval_factory_(*this, i);
      if (ev != nullptr) return ev;
    }
    return MakeOverlayUnionEvaluator(*this, i);
  }

 private:
  std::string name_;
  Schema input_;
  Schema output_;
  EvalFn fn_;        // exactly one of fn_ / facts_fn_ is set
  FactsFn facts_fn_;
  UnionEvalFactory union_eval_factory_;
};

// Checks Q(pi(I)) == pi(Q(I)) for the given permutation `pi` of adom(I)
// (extended with identity elsewhere). Returns OK, or an error describing the
// genericity violation / evaluation failure.
Status CheckGenericity(const Query& query, const Instance& input,
                       const std::map<Value, Value>& pi);

// How the exhaustive checkers use the genericity-based symmetry reduction
// (orbit-representative sweeps + canonical result cache).
//   kAuto:    run ProbeGenericity first; reduce only when the probe passes.
//   kForceOn: reduce unconditionally (caller vouches for genericity).
//   kOff:     always run the full sweep (and no result cache).
enum class SymmetryMode {
  kAuto,
  kForceOn,
  kOff,
};

// Samples CheckGenericity over the bounded instance space the exhaustive
// checkers sweep: up to `samples` stride-spaced instances over
// {0..domain_size-1} with at most max_facts facts, each tested against a
// fixed family of permutations (a shift into a high value range, a shift
// into the checkers' fresh-value range {1000..}, the domain reversal, and
// the (0,1) transposition). Returns OK when every probe commutes; the first
// violation (or evaluation error) otherwise. A passing probe is evidence,
// not proof — exactly the epistemic status of the bounded sweeps it guards.
Status ProbeGenericity(const Query& query, size_t domain_size,
                       size_t max_facts, size_t samples = 12);

}  // namespace calm

#endif  // CALM_BASE_QUERY_H_
