#ifndef CALM_BASE_QUERY_H_
#define CALM_BASE_QUERY_H_

#include <functional>
#include <memory>
#include <string>

#include "base/instance.h"
#include "base/schema.h"
#include "base/status.h"

namespace calm {

// A query: a generic mapping from instances over an input schema to
// instances over an output schema (Section 2). Implementations must be
// generic (commute with permutations of dom); GenericityProbe below
// property-tests this.
class Query {
 public:
  virtual ~Query() = default;

  virtual const Schema& input_schema() const = 0;
  virtual const Schema& output_schema() const = 0;

  // Evaluates the query. `input` facts outside the input schema are ignored
  // (callers should restrict first if that matters). Errors indicate
  // evaluation failure (e.g. divergence limits), never "empty result".
  virtual Result<Instance> Eval(const Instance& input) const = 0;

  // A short human-readable identifier used in reports.
  virtual std::string name() const = 0;
};

// Wraps a C++ function as a Query. The function receives the input restricted
// to the input schema.
class NativeQuery : public Query {
 public:
  using EvalFn = std::function<Result<Instance>(const Instance&)>;

  NativeQuery(std::string name, Schema input, Schema output, EvalFn fn)
      : name_(std::move(name)),
        input_(std::move(input)),
        output_(std::move(output)),
        fn_(std::move(fn)) {}

  const Schema& input_schema() const override { return input_; }
  const Schema& output_schema() const override { return output_; }
  std::string name() const override { return name_; }

  Result<Instance> Eval(const Instance& input) const override {
    return fn_(input.Restrict(input_));
  }

 private:
  std::string name_;
  Schema input_;
  Schema output_;
  EvalFn fn_;
};

// Checks Q(pi(I)) == pi(Q(I)) for the given permutation `pi` of adom(I)
// (extended with identity elsewhere). Returns OK, or an error describing the
// genericity violation / evaluation failure.
Status CheckGenericity(const Query& query, const Instance& input,
                       const std::map<Value, Value>& pi);

}  // namespace calm

#endif  // CALM_BASE_QUERY_H_
