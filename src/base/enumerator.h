#ifndef CALM_BASE_ENUMERATOR_H_
#define CALM_BASE_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "base/instance.h"
#include "base/schema.h"

namespace calm {

// Exhaustive enumeration helpers used by the bounded monotonicity /
// preservation checkers. All are exponential by nature; callers choose tiny
// domains (the paper's separations are all witnessed at <= 6 values).

// Every fact over `schema` whose values come from `domain`, in deterministic
// order. Size = sum over relations of |domain|^arity.
std::vector<Fact> AllFactsOver(const Schema& schema,
                               const std::vector<Value>& domain);

// Invokes `fn` for every instance over `schema` with values from `domain`
// and at most `max_facts` facts (including the empty instance). Stops early
// when fn returns false. Returns false iff stopped.
bool ForEachInstance(const Schema& schema, const std::vector<Value>& domain,
                     size_t max_facts,
                     const std::function<bool(const Instance&)>& fn);

// Invokes `fn` for every nonempty subset of `facts` of size at most
// `max_facts`. Stops early when fn returns false. Returns false iff stopped.
bool ForEachFactSubset(const std::vector<Fact>& facts, size_t max_facts,
                       const std::function<bool(const Instance&)>& fn);

// Materialized instance streams: the same spaces as the ForEach* callbacks
// above, but as indexed vectors in the identical deterministic order. The
// parallel checkers partition these indices across the thread pool and merge
// per-shard results back in index order, which is what keeps the parallel
// verdicts byte-identical to the single-threaded ones.
std::vector<Instance> AllInstances(const Schema& schema,
                                   const std::vector<Value>& domain,
                                   size_t max_facts);
std::vector<Instance> AllFactSubsets(const std::vector<Fact>& facts,
                                     size_t max_facts);

// The integer domain {0, 1, ..., n-1} as Values.
std::vector<Value> IntDomain(size_t n, uint64_t offset = 0);

// Orbit-representative streams for the genericity-aware reduced sweeps
// (base/canonical.h). Two instances over `domain` are isomorphic when an
// injective value map sends one fact set onto the other; a generic query
// treats the whole orbit alike, so sweeping one member per orbit suffices.
//
// The representative chosen for every orbit is its enumeration-order-least
// member in the ForEachInstance stream above. That choice is what keeps
// reduced-sweep counterexamples byte-identical to the full sweep: the first
// representative with a violation IS the first violating instance overall
// (violation existence is orbit-invariant), so the reduced sweep stops on
// the very same instance, no witness remapping required. Non-least subsets
// only extend to non-least subsets, so whole DFS subtrees prune.
//
// Invokes fn(instance, orbit_size) for every representative, where
// orbit_size counts the orbit's members inside the bounded space (empty
// instance included, orbit 1). Stops early when fn returns false; returns
// false iff stopped.
bool ForEachCanonicalInstance(
    const Schema& schema, const std::vector<Value>& domain, size_t max_facts,
    const std::function<bool(const Instance&, uint64_t)>& fn);

// Materialized orbit representatives, in the deterministic order above —
// the same vector-stream shape AllInstances feeds to the thread-pool
// sharding. When `orbit_sizes` is non-null it receives one count per
// representative; the counts sum to |AllInstances(...)|.
std::vector<Instance> AllCanonicalInstances(
    const Schema& schema, const std::vector<Value>& domain, size_t max_facts,
    std::vector<uint64_t>* orbit_sizes = nullptr);

// The permutations `value_maps` induce on the index space of `facts`: entry
// p satisfies facts[p[i]] == value_map(facts[i]). Maps that do not permute
// `facts` setwise are dropped (dropping only loses reduction, never
// soundness), as are the identity and duplicates. Used to build the
// stabilizer filter for the J-space below: for the monotonicity checkers
// the maps are Aut(I) x Sym(fresh values), under which every candidate
// fact list is closed.
std::vector<std::vector<uint32_t>> FactIndexPermutations(
    const std::vector<Fact>& facts,
    const std::vector<std::map<Value, Value>>& value_maps);

// ForEachFactSubset restricted to subsets that are lexicographically least
// in their orbit under `index_perms` (as ascending index lists — i.e. the
// enumeration-order-least orbit member, the same representative convention
// as ForEachCanonicalInstance). Sound for any set of violation-preserving
// permutations, group closure not required: the first violating subset is
// the least of its orbit, hence kept, as are all its DFS ancestors.
bool ForEachCanonicalFactSubset(
    const std::vector<Fact>& facts, size_t max_facts,
    const std::vector<std::vector<uint32_t>>& index_perms,
    const std::function<bool(const Instance&)>& fn);

}  // namespace calm

#endif  // CALM_BASE_ENUMERATOR_H_
