#ifndef CALM_BASE_ENUMERATOR_H_
#define CALM_BASE_ENUMERATOR_H_

#include <functional>
#include <vector>

#include "base/instance.h"
#include "base/schema.h"

namespace calm {

// Exhaustive enumeration helpers used by the bounded monotonicity /
// preservation checkers. All are exponential by nature; callers choose tiny
// domains (the paper's separations are all witnessed at <= 6 values).

// Every fact over `schema` whose values come from `domain`, in deterministic
// order. Size = sum over relations of |domain|^arity.
std::vector<Fact> AllFactsOver(const Schema& schema,
                               const std::vector<Value>& domain);

// Invokes `fn` for every instance over `schema` with values from `domain`
// and at most `max_facts` facts (including the empty instance). Stops early
// when fn returns false. Returns false iff stopped.
bool ForEachInstance(const Schema& schema, const std::vector<Value>& domain,
                     size_t max_facts,
                     const std::function<bool(const Instance&)>& fn);

// Invokes `fn` for every nonempty subset of `facts` of size at most
// `max_facts`. Stops early when fn returns false. Returns false iff stopped.
bool ForEachFactSubset(const std::vector<Fact>& facts, size_t max_facts,
                       const std::function<bool(const Instance&)>& fn);

// Materialized instance streams: the same spaces as the ForEach* callbacks
// above, but as indexed vectors in the identical deterministic order. The
// parallel checkers partition these indices across the thread pool and merge
// per-shard results back in index order, which is what keeps the parallel
// verdicts byte-identical to the single-threaded ones.
std::vector<Instance> AllInstances(const Schema& schema,
                                   const std::vector<Value>& domain,
                                   size_t max_facts);
std::vector<Instance> AllFactSubsets(const std::vector<Fact>& facts,
                                     size_t max_facts);

// The integer domain {0, 1, ..., n-1} as Values.
std::vector<Value> IntDomain(size_t n, uint64_t offset = 0);

}  // namespace calm

#endif  // CALM_BASE_ENUMERATOR_H_
