#include "base/result_cache.h"

#include <algorithm>
#include <map>
#include <utility>

#include "base/canonical.h"

namespace calm {

Status QueryResultCache::EvalFacts(const Instance& input,
                                   std::vector<Fact>* out) {
  CanonicalForm form = CanonicalizeInstance(input);
  std::string key = CanonicalKey(form.facts);
  Shard& shard = ShardOf(key);

  bool hit = false;
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hit = true;
      entry = it->second;  // copied out so the lock is not held during mapping
    }
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (!entry.status.ok()) return entry.status;
    // Map the canonical result back through the inverse of this input's
    // witnessing permutation. Values outside the canonical label range
    // (possible only for non-generic queries, which the probe gate rejects)
    // pass through unchanged.
    std::map<Value, Value> from_canonical;
    for (const auto& [value, label] : form.to_canonical) {
      from_canonical[label] = value;
    }
    size_t first = out->size();
    for (const Fact& f : entry.canonical_facts) {
      Tuple t;
      t.reserve(f.arity());
      for (Value v : f.args) {
        auto it = from_canonical.find(v);
        t.push_back(it == from_canonical.end() ? v : it->second);
      }
      out->emplace_back(f.relation, std::move(t));
    }
    std::sort(out->begin() + first, out->end());
    return Status::Ok();
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Fact> raw;
  Status s = query_.EvalFacts(input, &raw);
  Entry fresh;
  fresh.status = s;
  if (s.ok()) {
    fresh.canonical_facts.reserve(raw.size());
    for (const Fact& f : raw) {
      Tuple t;
      t.reserve(f.arity());
      for (Value v : f.args) {
        auto it = form.to_canonical.find(v);
        t.push_back(it == form.to_canonical.end() ? v : it->second);
      }
      fresh.canonical_facts.emplace_back(f.relation, std::move(t));
    }
    std::sort(fresh.canonical_facts.begin(), fresh.canonical_facts.end());
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(std::move(key), std::move(fresh));
  }
  if (!s.ok()) return s;
  out->insert(out->end(), raw.begin(), raw.end());
  return Status::Ok();
}

Result<Instance> QueryResultCache::Eval(const Instance& input) {
  std::vector<Fact> facts;
  Status s = EvalFacts(input, &facts);
  if (!s.ok()) return s;
  Instance out;
  out.InsertSortedFacts(facts);
  return out;
}

}  // namespace calm
