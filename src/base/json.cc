#include "base/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace calm {

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}
Json Json::Int(int64_t i) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = i;
  return j;
}
Json Json::Double(double d) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = d;
  return j;
}
Json Json::Str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}
Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}
Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

int64_t Json::int_value() const {
  return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_;
}
double Json::double_value() const {
  return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
}

void Json::Append(Json value) { items_.push_back(std::move(value)); }
void Json::Set(std::string key, Json value) {
  members_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {
Status MissingField(std::string_view key, const char* want) {
  return InvalidArgumentError("JSON object is missing " + std::string(want) +
                              " member '" + std::string(key) + "'");
}
}  // namespace

Result<int64_t> Json::GetInt(std::string_view key) const {
  const Json* j = Find(key);
  if (j == nullptr || !j->is_number()) return MissingField(key, "an integer");
  return j->int_value();
}
Result<uint64_t> Json::GetUint(std::string_view key) const {
  CALM_ASSIGN_OR_RETURN(int64_t i, GetInt(key));
  return static_cast<uint64_t>(i);
}
Result<double> Json::GetDouble(std::string_view key) const {
  const Json* j = Find(key);
  if (j == nullptr || !j->is_number()) return MissingField(key, "a number");
  return j->double_value();
}
Result<std::string> Json::GetString(std::string_view key) const {
  const Json* j = Find(key);
  if (j == nullptr || !j->is_string()) return MissingField(key, "a string");
  return j->string_value();
}
Result<bool> Json::GetBool(std::string_view key) const {
  const Json* j = Find(key);
  if (j == nullptr || !j->is_bool()) return MissingField(key, "a boolean");
  return j->bool_value();
}
Result<const Json*> Json::GetArray(std::string_view key) const {
  const Json* j = Find(key);
  if (j == nullptr || !j->is_array()) return MissingField(key, "an array");
  return j;
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

namespace {
void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NewlineIndent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}
}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      *out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      *out += buf;
      break;
    }
    case Kind::kString:
      EscapeTo(string_, out);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        NewlineIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      NewlineIndent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        NewlineIndent(out, indent, depth + 1);
        EscapeTo(members_[i].first, out);
        *out += indent < 0 ? ":" : ": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      NewlineIndent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    CALM_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      CALM_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    if (ConsumeWord("null")) return Json::Null();
    return ParseNumber();
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("malformed number");
    if (!is_double) {
      int64_t value = 0;
      auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return Json::Int(value);
      }
      // Out-of-range for int64 (e.g. huge unsigned): fall through to double.
    }
    double d = std::strtod(std::string(token).c_str(), nullptr);
    if (std::isnan(d)) return Error("malformed number");
    return Json::Double(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            out.push_back(e);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("malformed \\u escape");
              }
            }
            // Traces are ASCII; keep only the low byte for control escapes.
            out.push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    Json out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      CALM_ASSIGN_OR_RETURN(Json value, ParseValue());
      out.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<Json> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    Json out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      CALM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      CALM_ASSIGN_OR_RETURN(Json value, ParseValue());
      out.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace calm
