#include "base/fact.h"

namespace calm {

Fact::Fact(std::string_view relation_name, Tuple tuple)
    : relation(InternName(relation_name)), args(std::move(tuple)) {}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += ValueToString(t[i]);
  }
  out += ")";
  return out;
}

std::string FactToString(const Fact& f) {
  return NameOf(f.relation) + TupleToString(f.args);
}

std::ostream& operator<<(std::ostream& os, const Fact& f) {
  return os << FactToString(f);
}

}  // namespace calm
