#include "base/canonical.h"

#include <algorithm>
#include <cstdint>
#include <functional>

namespace calm {

namespace {

// Shared precomputation: the sorted active domain, the sorted fact list, a
// per-fact argument-index view (fact arg -> index into `vals`), the refined
// occurrence-signature cells, and the twin-class partition.
struct LabelingContext {
  std::vector<Value> vals;   // sorted adom(I)
  std::vector<Fact> facts;   // I's facts, ascending
  // arg_idx[fi][p]: index into vals of facts[fi].args[p].
  std::vector<std::vector<uint32_t>> arg_idx;
  // cell[vi]: refined signature cell of vals[vi]. Values in different cells
  // have provably different occurrence structure, so no isomorphism maps
  // one onto the other.
  std::vector<size_t> cell;
  // Twin classes: vi ~ wj iff the transposition (vals[vi] vals[wj]) fixes I
  // setwise. This is an equivalence (transpositions conjugate inside
  // Aut(I)), refined by `cell`.
  std::vector<std::vector<size_t>> twin_class;
  std::vector<size_t> class_of;  // vals index -> twin_class index
};

size_t IndexOf(const std::vector<Value>& vals, Value v) {
  return static_cast<size_t>(
      std::lower_bound(vals.begin(), vals.end(), v) - vals.begin());
}

// Assigns cell ids by the lexicographic rank of each value's signature.
// Signatures are isomorphism-invariant, so isomorphic instances induce the
// same cell structure on corresponding values.
std::vector<size_t> RankSignatures(
    const std::vector<std::vector<uint64_t>>& sig) {
  std::vector<std::vector<uint64_t>> sorted = sig;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<size_t> cell(sig.size());
  for (size_t vi = 0; vi < sig.size(); ++vi) {
    cell[vi] = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), sig[vi]) -
        sorted.begin());
  }
  return cell;
}

// Iterative partition refinement over value occurrence signatures. Round 0
// groups values by their multiset of (relation, position) occurrences; each
// later round extends the signature with the current cells of every
// co-occurring argument, until the cell count stops growing.
std::vector<size_t> RefineCells(const LabelingContext& ctx) {
  size_t k = ctx.vals.size();
  std::vector<std::vector<uint64_t>> sig(k);
  for (size_t fi = 0; fi < ctx.facts.size(); ++fi) {
    const Fact& f = ctx.facts[fi];
    for (size_t p = 0; p < f.arity(); ++p) {
      sig[ctx.arg_idx[fi][p]].push_back((uint64_t{f.relation} << 16) |
                                        static_cast<uint64_t>(p));
    }
  }
  for (auto& s : sig) std::sort(s.begin(), s.end());
  std::vector<size_t> cell = RankSignatures(sig);

  size_t ncells = 1 + *std::max_element(cell.begin(), cell.end());
  while (ncells < k) {
    // occ[vi]: one token vector per occurrence of vals[vi] — the relation,
    // the position, and the current cells of the whole argument tuple.
    std::vector<std::vector<std::vector<uint64_t>>> occ(k);
    for (size_t fi = 0; fi < ctx.facts.size(); ++fi) {
      const Fact& f = ctx.facts[fi];
      std::vector<uint64_t> arg_cells(f.arity());
      for (size_t p = 0; p < f.arity(); ++p) {
        arg_cells[p] = cell[ctx.arg_idx[fi][p]];
      }
      for (size_t p = 0; p < f.arity(); ++p) {
        std::vector<uint64_t> token;
        token.reserve(2 + f.arity());
        token.push_back(f.relation);
        token.push_back(p);
        token.insert(token.end(), arg_cells.begin(), arg_cells.end());
        occ[ctx.arg_idx[fi][p]].push_back(std::move(token));
      }
    }
    std::vector<std::vector<uint64_t>> refined(k);
    for (size_t vi = 0; vi < k; ++vi) {
      std::sort(occ[vi].begin(), occ[vi].end());
      refined[vi].push_back(cell[vi]);  // keep the refinement monotone
      for (const std::vector<uint64_t>& token : occ[vi]) {
        refined[vi].push_back(token.size());  // self-delimiting
        refined[vi].insert(refined[vi].end(), token.begin(), token.end());
      }
    }
    std::vector<size_t> next = RankSignatures(refined);
    size_t next_ncells = 1 + *std::max_element(next.begin(), next.end());
    if (next_ncells == ncells) break;
    cell = std::move(next);
    ncells = next_ncells;
  }
  return cell;
}

// The fact list of I with vals[u] and vals[w] swapped, compared against the
// original: true iff the transposition is an automorphism.
bool TranspositionFixes(const LabelingContext& ctx, size_t u, size_t w) {
  std::vector<Fact> mapped;
  mapped.reserve(ctx.facts.size());
  for (size_t fi = 0; fi < ctx.facts.size(); ++fi) {
    const Fact& f = ctx.facts[fi];
    Tuple t;
    t.reserve(f.arity());
    for (size_t p = 0; p < f.arity(); ++p) {
      size_t vi = ctx.arg_idx[fi][p];
      if (vi == u) vi = w;
      else if (vi == w) vi = u;
      t.push_back(ctx.vals[vi]);
    }
    mapped.emplace_back(f.relation, std::move(t));
  }
  std::sort(mapped.begin(), mapped.end());
  return mapped == ctx.facts;
}

LabelingContext BuildContext(const Instance& instance) {
  LabelingContext ctx;
  std::set<Value> adom = instance.ActiveDomain();
  ctx.vals.assign(adom.begin(), adom.end());
  ctx.facts = instance.AllFacts();
  ctx.arg_idx.reserve(ctx.facts.size());
  for (const Fact& f : ctx.facts) {
    std::vector<uint32_t> idx;
    idx.reserve(f.arity());
    for (Value v : f.args) {
      idx.push_back(static_cast<uint32_t>(IndexOf(ctx.vals, v)));
    }
    ctx.arg_idx.push_back(std::move(idx));
  }
  if (ctx.vals.empty()) return ctx;
  ctx.cell = RefineCells(ctx);

  ctx.class_of.assign(ctx.vals.size(), SIZE_MAX);
  for (size_t vi = 0; vi < ctx.vals.size(); ++vi) {
    if (ctx.class_of[vi] != SIZE_MAX) continue;
    size_t c = ctx.twin_class.size();
    ctx.twin_class.push_back({vi});
    ctx.class_of[vi] = c;
    for (size_t wj = vi + 1; wj < ctx.vals.size(); ++wj) {
      if (ctx.class_of[wj] != SIZE_MAX || ctx.cell[wj] != ctx.cell[vi]) {
        continue;
      }
      if (TranspositionFixes(ctx, vi, wj)) {
        ctx.twin_class[c].push_back(wj);
        ctx.class_of[wj] = c;
      }
    }
  }
  return ctx;
}

// Backtracking over the refinement-compatible label assignments: labels are
// handed out cell block by cell block (cells in signature-rank order, an
// isomorphism-invariant order), and at depth d we choose which value of the
// current cell receives label d. Restricting to cell-compatible assignments
// keeps the choice canonical while shrinking the search from k! leaves to
// the product of cell-size factorials — refinement is what makes the
// labeling affordable on the checker hot paths. Branches through distinct
// members of one twin class are related by an automorphism, so only the
// least unassigned member of each class is explored and the leaf
// multiplicity is carried in `multiplier` (automorphisms preserve cells, so
// the achieving-assignment count is still exactly |Aut(I)|).
struct LabelSearch {
  const LabelingContext& ctx;
  std::vector<size_t> label_cell;  // depth -> cell whose block holds label d
  std::vector<uint32_t> label;     // vals index -> label
  std::vector<bool> assigned;
  std::vector<Fact> best;
  std::vector<uint32_t> best_label;
  uint64_t best_count = 0;
  bool have_best = false;

  explicit LabelSearch(const LabelingContext& c)
      : ctx(c),
        label(c.vals.size(), 0),
        assigned(c.vals.size(), false) {
    size_t ncells = 1 + *std::max_element(ctx.cell.begin(), ctx.cell.end());
    std::vector<size_t> cell_size(ncells, 0);
    for (size_t vi = 0; vi < ctx.vals.size(); ++vi) ++cell_size[ctx.cell[vi]];
    for (size_t c = 0; c < ncells; ++c) {
      label_cell.insert(label_cell.end(), cell_size[c], c);
    }
  }

  std::vector<Fact> RelabelSorted() const {
    std::vector<Fact> out;
    out.reserve(ctx.facts.size());
    for (size_t fi = 0; fi < ctx.facts.size(); ++fi) {
      const Fact& f = ctx.facts[fi];
      Tuple t;
      t.reserve(f.arity());
      for (size_t p = 0; p < f.arity(); ++p) {
        t.push_back(Value::FromInt(label[ctx.arg_idx[fi][p]]));
      }
      out.emplace_back(f.relation, std::move(t));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void Run(size_t depth, uint64_t multiplier) {
    if (depth == ctx.vals.size()) {
      std::vector<Fact> leaf = RelabelSorted();
      if (!have_best || leaf < best) {
        best = std::move(leaf);
        best_label = label;
        best_count = multiplier;
        have_best = true;
      } else if (leaf == best) {
        best_count += multiplier;
      }
      return;
    }
    size_t want_cell = label_cell[depth];
    std::vector<bool> class_tried(ctx.twin_class.size(), false);
    for (size_t vi = 0; vi < ctx.vals.size(); ++vi) {
      if (assigned[vi] || ctx.cell[vi] != want_cell) continue;
      size_t c = ctx.class_of[vi];
      if (class_tried[c]) continue;
      class_tried[c] = true;
      uint64_t unassigned_twins = 0;
      for (size_t member : ctx.twin_class[c]) {
        if (!assigned[member]) ++unassigned_twins;
      }
      assigned[vi] = true;
      label[vi] = static_cast<uint32_t>(depth);
      Run(depth + 1, multiplier * unassigned_twins);
      assigned[vi] = false;
    }
  }
};

}  // namespace

CanonicalForm CanonicalizeInstance(const Instance& instance) {
  CanonicalForm form;
  LabelingContext ctx = BuildContext(instance);
  if (ctx.vals.empty()) return form;

  LabelSearch search(ctx);
  search.Run(0, 1);
  form.facts = std::move(search.best);
  form.automorphism_count = search.best_count;
  for (size_t vi = 0; vi < ctx.vals.size(); ++vi) {
    form.to_canonical[ctx.vals[vi]] = Value::FromInt(search.best_label[vi]);
  }
  return form;
}

std::vector<std::map<Value, Value>> InstanceAutomorphisms(
    const Instance& instance) {
  LabelingContext ctx = BuildContext(instance);
  std::vector<std::map<Value, Value>> out;
  if (ctx.vals.empty()) {
    out.push_back({});
    return out;
  }

  // Backtrack over within-cell bijections (automorphisms preserve the
  // refined cells); test setwise fixing at the leaves.
  size_t k = ctx.vals.size();
  std::vector<size_t> image(k, SIZE_MAX);  // vals index -> vals index
  std::vector<bool> used(k, false);
  auto leaf_fixes = [&]() {
    std::vector<Fact> mapped;
    mapped.reserve(ctx.facts.size());
    for (size_t fi = 0; fi < ctx.facts.size(); ++fi) {
      const Fact& f = ctx.facts[fi];
      Tuple t;
      t.reserve(f.arity());
      for (size_t p = 0; p < f.arity(); ++p) {
        t.push_back(ctx.vals[image[ctx.arg_idx[fi][p]]]);
      }
      mapped.emplace_back(f.relation, std::move(t));
    }
    std::sort(mapped.begin(), mapped.end());
    return mapped == ctx.facts;
  };
  std::function<void(size_t)> rec = [&](size_t vi) {
    if (vi == k) {
      if (!leaf_fixes()) return;
      std::map<Value, Value> m;
      for (size_t u = 0; u < k; ++u) m[ctx.vals[u]] = ctx.vals[image[u]];
      out.push_back(std::move(m));
      return;
    }
    for (size_t wj = 0; wj < k; ++wj) {
      if (used[wj] || ctx.cell[wj] != ctx.cell[vi]) continue;
      used[wj] = true;
      image[vi] = wj;
      rec(vi + 1);
      used[wj] = false;
    }
  };
  rec(0);
  return out;
}

std::string CanonicalKey(const std::vector<Fact>& facts) {
  std::string key;
  key.reserve(facts.size() * 16);
  auto put32 = [&key](uint32_t x) {
    key.append(reinterpret_cast<const char*>(&x), sizeof(x));
  };
  auto put64 = [&key](uint64_t x) {
    key.append(reinterpret_cast<const char*>(&x), sizeof(x));
  };
  for (const Fact& f : facts) {
    put32(f.relation);
    put32(static_cast<uint32_t>(f.arity()));
    for (Value v : f.args) put64(v.raw());
  }
  return key;
}

}  // namespace calm
