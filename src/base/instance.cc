#include "base/instance.h"

#include <algorithm>

namespace calm {

namespace {
const std::set<Tuple>& EmptyTupleSet() {
  static const std::set<Tuple>* kEmpty = new std::set<Tuple>();
  return *kEmpty;
}
}  // namespace

Instance::Instance(std::initializer_list<Fact> facts) {
  for (const Fact& f : facts) Insert(f);
}

bool Instance::Insert(const Fact& fact) {
  auto [it, inserted] = relations_[fact.relation].insert(fact.args);
  if (inserted) ++size_;
  return inserted;
}

bool Instance::Insert(Fact&& fact) {
  auto [it, inserted] =
      relations_[fact.relation].insert(std::move(fact.args));
  if (inserted) ++size_;
  return inserted;
}

size_t Instance::InsertSorted(uint32_t rel, const std::vector<Tuple>& sorted) {
  if (sorted.empty()) return 0;  // never leave an empty relation entry behind
  std::set<Tuple>& tuples = relations_[rel];
  size_t before = tuples.size();
  for (const Tuple& t : sorted) tuples.emplace_hint(tuples.end(), t);
  size_t added = tuples.size() - before;
  size_ += added;
  return added;
}

size_t Instance::InsertSortedFacts(const std::vector<Fact>& sorted) {
  size_t added = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    uint32_t rel = sorted[i].relation;
    std::set<Tuple>& tuples = relations_[rel];
    size_t before = tuples.size();
    while (i < sorted.size() && sorted[i].relation == rel) {
      tuples.emplace_hint(tuples.end(), sorted[i].args);
      ++i;
    }
    added += tuples.size() - before;
  }
  size_ += added;
  return added;
}

size_t Instance::InsertAll(const Instance& other) {
  size_t added = 0;
  for (const auto& [name, tuples] : other.relations_) {
    std::set<Tuple>& mine = relations_[name];
    for (const Tuple& t : tuples) {
      if (mine.insert(t).second) ++added;
    }
  }
  size_ += added;
  return added;
}

bool Instance::Erase(const Fact& fact) {
  auto it = relations_.find(fact.relation);
  if (it == relations_.end()) return false;
  if (it->second.erase(fact.args) == 0) return false;
  --size_;
  if (it->second.empty()) relations_.erase(it);
  return true;
}

bool Instance::Contains(const Fact& fact) const {
  auto it = relations_.find(fact.relation);
  return it != relations_.end() && it->second.count(fact.args) > 0;
}

const std::set<Tuple>& Instance::TuplesOf(uint32_t name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return EmptyTupleSet();
  return it->second;
}

std::vector<uint32_t> Instance::RelationNames() const {
  std::vector<uint32_t> out;
  out.reserve(relations_.size());
  for (const auto& [name, tuples] : relations_) {
    if (!tuples.empty()) out.push_back(name);
  }
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(size_);
  ForEachFact([&](uint32_t name, const Tuple& t) { out.emplace_back(name, t); });
  return out;
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> out;
  ForEachFact([&](uint32_t, const Tuple& t) {
    for (Value v : t) out.insert(v);
  });
  return out;
}

Instance Instance::Restrict(const Schema& schema) const {
  Instance out;
  for (const auto& [name, tuples] : relations_) {
    uint32_t arity = schema.ArityOf(name);
    if (arity == 0) continue;
    for (const Tuple& t : tuples) {
      if (t.size() == arity) out.Insert(Fact(name, t));
    }
  }
  return out;
}

bool Instance::IsOver(const Schema& schema) const {
  for (const auto& [name, tuples] : relations_) {
    uint32_t arity = schema.ArityOf(name);
    if (arity == 0 && !tuples.empty()) return false;
    for (const Tuple& t : tuples) {
      if (t.size() != arity) return false;
    }
  }
  return true;
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  Instance out = a;
  out.InsertAll(b);
  return out;
}

Instance Instance::Difference(const Instance& a, const Instance& b) {
  Instance out;
  a.ForEachFact([&](uint32_t name, const Tuple& t) {
    Fact f(name, t);
    if (!b.Contains(f)) out.Insert(std::move(f));
  });
  return out;
}

bool Instance::IsSubsetOf(const Instance& other) const {
  if (size_ > other.size_) return false;
  for (const auto& [name, tuples] : relations_) {
    const std::set<Tuple>& theirs = other.TuplesOf(name);
    for (const Tuple& t : tuples) {
      if (theirs.count(t) == 0) return false;
    }
  }
  return true;
}

std::string Instance::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!first) out += ", ";
    first = false;
    out += FactToString(Fact(name, t));
  });
  out += "}";
  return out;
}

bool FactDomainDistinctFrom(const Fact& f, const std::set<Value>& adom_i) {
  for (Value v : f.args) {
    if (adom_i.count(v) == 0) return true;  // contains a new element
  }
  return false;
}

bool FactDomainDisjointFrom(const Fact& f, const std::set<Value>& adom_i) {
  for (Value v : f.args) {
    if (adom_i.count(v) > 0) return false;
  }
  return true;
}

bool IsDomainDistinctFrom(const Instance& j, const Instance& i) {
  std::set<Value> adom_i = i.ActiveDomain();
  bool ok = true;
  j.ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!FactDomainDistinctFrom(Fact(name, t), adom_i)) ok = false;
  });
  return ok;
}

bool IsDomainDisjointFrom(const Instance& j, const Instance& i) {
  std::set<Value> adom_i = i.ActiveDomain();
  bool ok = true;
  j.ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!FactDomainDisjointFrom(Fact(name, t), adom_i)) ok = false;
  });
  return ok;
}

bool IsInducedSubinstance(const Instance& j, const Instance& i) {
  if (!j.IsSubsetOf(i)) return false;
  std::set<Value> adom_j = j.ActiveDomain();
  bool induced = true;
  i.ForEachFact([&](uint32_t name, const Tuple& t) {
    bool within = std::all_of(t.begin(), t.end(),
                              [&](Value v) { return adom_j.count(v) > 0; });
    if (within && !j.Contains(Fact(name, t))) induced = false;
  });
  return induced;
}

Instance ApplyValueMap(const Instance& in, const std::map<Value, Value>& map) {
  Instance out;
  in.ForEachFact([&](uint32_t name, const Tuple& t) {
    Tuple mapped = t;
    for (Value& v : mapped) {
      auto it = map.find(v);
      if (it != map.end()) v = it->second;
    }
    out.Insert(Fact(name, std::move(mapped)));
  });
  return out;
}

}  // namespace calm
