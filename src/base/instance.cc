#include "base/instance.h"

#include <algorithm>

namespace calm {

namespace {
const TupleSet& EmptyTuples() {
  static const TupleSet* kEmpty = new TupleSet();
  return *kEmpty;
}
}  // namespace

TupleSet::const_iterator TupleSet::lower_bound(const Tuple& t) const {
  return std::lower_bound(tuples_.begin(), tuples_.end(), t);
}

TupleSet::const_iterator TupleSet::find(const Tuple& t) const {
  const_iterator it = lower_bound(t);
  if (it != tuples_.end() && *it == t) return it;
  return tuples_.end();
}

bool TupleSet::InsertUnique(const Tuple& t) {
  if (tuples_.empty() || tuples_.back() < t) {
    tuples_.push_back(t);
    return true;
  }
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, t);
  return true;
}

bool TupleSet::InsertUnique(Tuple&& t) {
  if (tuples_.empty() || tuples_.back() < t) {
    tuples_.push_back(std::move(t));
    return true;
  }
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, std::move(t));
  return true;
}

bool TupleSet::EraseOne(const Tuple& t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || !(*it == t)) return false;
  tuples_.erase(it);
  return true;
}

TupleSet& Instance::SetOf(uint32_t name) {
  auto it = std::lower_bound(
      relations_.begin(), relations_.end(), name,
      [](const auto& entry, uint32_t n) { return entry.first < n; });
  if (it != relations_.end() && it->first == name) return it->second;
  it = relations_.insert(it, {name, TupleSet()});
  return it->second;
}

const TupleSet* Instance::FindSet(uint32_t name) const {
  auto it = std::lower_bound(
      relations_.begin(), relations_.end(), name,
      [](const auto& entry, uint32_t n) { return entry.first < n; });
  if (it != relations_.end() && it->first == name) return &it->second;
  return nullptr;
}

Instance::Instance(std::initializer_list<Fact> facts) {
  for (const Fact& f : facts) Insert(f);
}

bool Instance::Insert(const Fact& fact) {
  TupleSet& tuples = SetOf(fact.relation);
  bool inserted = tuples.InsertUnique(fact.args);
  if (inserted) ++size_;
  return inserted;
}

bool Instance::Insert(Fact&& fact) {
  TupleSet& tuples = SetOf(fact.relation);
  bool inserted = tuples.InsertUnique(std::move(fact.args));
  if (inserted) ++size_;
  return inserted;
}

size_t Instance::InsertSorted(uint32_t rel, const std::vector<Tuple>& sorted) {
  if (sorted.empty()) return 0;  // never leave an empty relation entry behind
  TupleSet& tuples = SetOf(rel);
  std::vector<Tuple>& vec = tuples.tuples_;
  size_t before = vec.size();
  if (vec.empty() || vec.back() < sorted.front()) {
    // Pure append: the common bulk-build case (fresh relation, or a sorted
    // run extending past the current maximum). Skip adjacent duplicates.
    vec.reserve(before + sorted.size());
    for (const Tuple& t : sorted) {
      if (!vec.empty() && !(vec.back() < t)) continue;
      vec.push_back(t);
    }
  } else {
    for (const Tuple& t : sorted) tuples.InsertUnique(t);
  }
  size_t added = vec.size() - before;
  size_ += added;
  return added;
}

size_t Instance::InsertSorted(uint32_t rel, std::vector<Tuple>&& sorted) {
  if (sorted.empty()) return 0;  // never leave an empty relation entry behind
  TupleSet& tuples = SetOf(rel);
  if (!tuples.tuples_.empty()) return InsertSorted(rel, sorted);
  tuples.tuples_ = std::move(sorted);
  std::vector<Tuple>& vec = tuples.tuples_;
  vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
  size_ += vec.size();
  return vec.size();
}

size_t Instance::InsertSortedUnique(uint32_t rel, std::vector<Tuple>&& sorted) {
  if (sorted.empty()) return 0;  // never leave an empty relation entry behind
  TupleSet& tuples = SetOf(rel);
  if (!tuples.tuples_.empty()) return InsertSorted(rel, sorted);
  tuples.tuples_ = std::move(sorted);
  size_ += tuples.tuples_.size();
  return tuples.tuples_.size();
}

size_t Instance::InsertSortedFacts(const std::vector<Fact>& sorted) {
  size_t added = 0;
  size_t i = 0;
  std::vector<Tuple> run;
  while (i < sorted.size()) {
    uint32_t rel = sorted[i].relation;
    run.clear();
    while (i < sorted.size() && sorted[i].relation == rel) {
      run.push_back(sorted[i].args);
      ++i;
    }
    added += InsertSorted(rel, run);
  }
  return added;
}

size_t Instance::InsertAll(const Instance& other) {
  size_t added = 0;
  for (const auto& [name, tuples] : other.relations_) {
    added += InsertSorted(name, tuples.tuples_);
  }
  return added;
}

bool Instance::Erase(const Fact& fact) {
  auto it = std::lower_bound(
      relations_.begin(), relations_.end(), fact.relation,
      [](const auto& entry, uint32_t n) { return entry.first < n; });
  if (it == relations_.end() || it->first != fact.relation) return false;
  if (!it->second.EraseOne(fact.args)) return false;
  --size_;
  if (it->second.empty()) relations_.erase(it);
  return true;
}

bool Instance::Contains(const Fact& fact) const {
  const TupleSet* tuples = FindSet(fact.relation);
  return tuples != nullptr && tuples->contains(fact.args);
}

const TupleSet& Instance::TuplesOf(uint32_t name) const {
  const TupleSet* tuples = FindSet(name);
  return tuples != nullptr ? *tuples : EmptyTuples();
}

std::vector<uint32_t> Instance::RelationNames() const {
  std::vector<uint32_t> out;
  out.reserve(relations_.size());
  for (const auto& [name, tuples] : relations_) {
    if (!tuples.empty()) out.push_back(name);
  }
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(size_);
  ForEachFact([&](uint32_t name, const Tuple& t) { out.emplace_back(name, t); });
  return out;
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> out;
  ForEachFact([&](uint32_t, const Tuple& t) {
    for (Value v : t) out.insert(v);
  });
  return out;
}

Instance Instance::Restrict(const Schema& schema) const {
  Instance out;
  for (const auto& [name, tuples] : relations_) {
    uint32_t arity = schema.ArityOf(name);
    if (arity == 0) continue;
    for (const Tuple& t : tuples) {
      if (t.size() == arity) out.Insert(Fact(name, t));
    }
  }
  return out;
}

bool Instance::IsOver(const Schema& schema) const {
  for (const auto& [name, tuples] : relations_) {
    uint32_t arity = schema.ArityOf(name);
    if (arity == 0 && !tuples.empty()) return false;
    for (const Tuple& t : tuples) {
      if (t.size() != arity) return false;
    }
  }
  return true;
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  Instance out = a;
  out.InsertAll(b);
  return out;
}

Instance Instance::Difference(const Instance& a, const Instance& b) {
  Instance out;
  a.ForEachFact([&](uint32_t name, const Tuple& t) {
    Fact f(name, t);
    if (!b.Contains(f)) out.Insert(std::move(f));
  });
  return out;
}

bool Instance::IsSubsetOf(const Instance& other) const {
  if (size_ > other.size_) return false;
  for (const auto& [name, tuples] : relations_) {
    const TupleSet& theirs = other.TuplesOf(name);
    for (const Tuple& t : tuples) {
      if (!theirs.contains(t)) return false;
    }
  }
  return true;
}

std::string Instance::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!first) out += ", ";
    first = false;
    out += FactToString(Fact(name, t));
  });
  out += "}";
  return out;
}

bool FactDomainDistinctFrom(const Fact& f, const std::set<Value>& adom_i) {
  for (Value v : f.args) {
    if (adom_i.count(v) == 0) return true;  // contains a new element
  }
  return false;
}

bool FactDomainDisjointFrom(const Fact& f, const std::set<Value>& adom_i) {
  for (Value v : f.args) {
    if (adom_i.count(v) > 0) return false;
  }
  return true;
}

bool IsDomainDistinctFrom(const Instance& j, const Instance& i) {
  std::set<Value> adom_i = i.ActiveDomain();
  bool ok = true;
  j.ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!FactDomainDistinctFrom(Fact(name, t), adom_i)) ok = false;
  });
  return ok;
}

bool IsDomainDisjointFrom(const Instance& j, const Instance& i) {
  std::set<Value> adom_i = i.ActiveDomain();
  bool ok = true;
  j.ForEachFact([&](uint32_t name, const Tuple& t) {
    if (!FactDomainDisjointFrom(Fact(name, t), adom_i)) ok = false;
  });
  return ok;
}

bool IsInducedSubinstance(const Instance& j, const Instance& i) {
  if (!j.IsSubsetOf(i)) return false;
  std::set<Value> adom_j = j.ActiveDomain();
  bool induced = true;
  i.ForEachFact([&](uint32_t name, const Tuple& t) {
    bool within = std::all_of(t.begin(), t.end(),
                              [&](Value v) { return adom_j.count(v) > 0; });
    if (within && !j.Contains(Fact(name, t))) induced = false;
  });
  return induced;
}

Instance ApplyValueMap(const Instance& in, const std::map<Value, Value>& map) {
  Instance out;
  in.ForEachFact([&](uint32_t name, const Tuple& t) {
    Tuple mapped = t;
    for (Value& v : mapped) {
      auto it = map.find(v);
      if (it != map.end()) v = it->second;
    }
    out.Insert(Fact(name, std::move(mapped)));
  });
  return out;
}

}  // namespace calm
