#include "base/durable.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "base/failpoint.h"
#include "base/metrics.h"

namespace calm::durable {

namespace {

constexpr char kMagic[8] = {'C', 'A', 'L', 'M', 'D', 'U', 'R', '1'};
constexpr size_t kRecordPrefix = 8;  // u32 len + u32 crc

// Flush-point counters for the whole durable layer (DESIGN.md,
// "Observability" — references cached in function-local statics, one
// relaxed load per event when metrics are off).
Counter& BytesWritten() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.bytes_written");
  return c;
}
Counter& RecordsWritten() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.records_written");
  return c;
}
Counter& RecordsReplayed() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.records_replayed");
  return c;
}
Counter& TornTruncations() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.torn_truncations");
  return c;
}
Counter& Commits() {
  static Counter& c = MetricRegistry::Global().GetCounter(
      "calm.durable.commits");
  return c;
}

Status ErrnoError(const std::string& op, const std::string& path) {
  return InternalError(op + " " + path + ": " + std::strerror(errno));
}

// write(2) until done; short writes and EINTR are retried.
Status WriteAll(int fd, const char* p, size_t n, const std::string& path) {
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return ErrnoError("open", path);
  }
  out->clear();
  char buf[1 << 16];
  while (true) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoError("read", path);
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return Status::Ok();
}

// fsync the directory containing `path` so a just-renamed entry survives a
// crash (rename alone only makes it durable once the dir inode is synced).
Status SyncDirOf(const std::string& path, const char* failpoint_site) {
  const size_t slash = path.rfind('/');
  std::string dir;
  if (slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("open dir", dir);
  CALM_FAILPOINT(failpoint_site);
  if (::fsync(fd) != 0) {
    Status s = ErrnoError("fsync dir", dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::Ok();
}

// The shared atomic-publication discipline: <path>.tmp, fsync, rename,
// dirsync, with one failpoint site before each boundary. The site names are
// string literals owned by the caller.
Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       const char* site_write, const char* site_fsync,
                       const char* site_rename, const char* site_dirsync) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("open", tmp);
  // Two half-writes with a site between them: crashing there leaves a torn
  // tmp file — never visible under `path`, reaped by the next commit.
  const size_t split = bytes.size() / 2;
  Status s = WriteAll(fd, bytes.data(), split, tmp);
  if (s.ok()) {
    CALM_FAILPOINT(site_write);
    s = WriteAll(fd, bytes.data() + split, bytes.size() - split, tmp);
  }
  if (s.ok()) {
    CALM_FAILPOINT(site_fsync);
    if (::fsync(fd) != 0) s = ErrnoError("fsync", tmp);
  }
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  CALM_FAILPOINT(site_rename);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status r = ErrnoError("rename", tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return r;
  }
  CALM_RETURN_IF_ERROR(SyncDirOf(path, site_dirsync));
  if (MetricsEnabled()) BytesWritten().Increment(bytes.size());
  return Status::Ok();
}

std::string BuildHeader(std::string_view client_tag) {
  ByteWriter w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kFormatVersion);
  w.Str(client_tag);
  w.U32(Crc32c(w.data().data() + sizeof(kMagic),
               w.data().size() - sizeof(kMagic)));
  return w.Take();
}

void AppendRecord(std::string* buf, std::string_view payload) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32c(payload.data(), payload.size()));
  buf->append(w.data());
  buf->append(payload);
}

// Validates the header of `contents` against `client_tag`. On success
// returns the header length; wrong magic / version / tag / checksum is
// kInvalidArgument (headers are published atomically, so a damaged one is a
// foreign or hand-truncated file, not a crash artifact).
Result<size_t> ParseHeader(std::string_view contents,
                           std::string_view client_tag,
                           const std::string& path) {
  if (contents.size() < sizeof(kMagic) ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("not a durable record file: " + path);
  }
  ByteReader r(contents.substr(sizeof(kMagic)));
  uint32_t version = 0;
  std::string tag;
  uint32_t crc = 0;
  if (!r.U32(&version) || !r.Str(&tag) || !r.U32(&crc)) {
    return InvalidArgumentError("truncated header: " + path);
  }
  const size_t body = sizeof(uint32_t) * 2 + tag.size();
  if (crc != Crc32c(contents.data() + sizeof(kMagic), body)) {
    return InvalidArgumentError("header checksum mismatch: " + path);
  }
  if (version != kFormatVersion) {
    return InvalidArgumentError("unsupported record-file version " +
                                std::to_string(version) + ": " + path);
  }
  if (tag != client_tag) {
    return InvalidArgumentError("record file " + path + " belongs to '" +
                                tag + "', expected '" +
                                std::string(client_tag) + "'");
  }
  return sizeof(kMagic) + body + sizeof(uint32_t);
}

}  // namespace

// --- CRC32C ------------------------------------------------------------------

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
#if defined(__SSE4_2__)
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc = static_cast<uint32_t>(__builtin_ia32_crc32di(crc, v));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p);
    ++p;
    --n;
  }
#else
  static const std::array<uint32_t, 256>& table = *[] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      (*t)[i] = c;
    }
    return t;
  }();
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
#endif
  return ~crc;
}

// --- byte encoding -----------------------------------------------------------

void ByteWriter::U32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  buf_.append(b, 4);
}

void ByteWriter::U64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  buf_.append(b, 8);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::Raw(const void* p, size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

bool ByteReader::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::U8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= uint32_t{static_cast<uint8_t>(p[i])} << (8 * i);
  *v = r;
  return true;
}

bool ByteReader::U64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r |= uint64_t{static_cast<uint8_t>(p[i])} << (8 * i);
  *v = r;
  return true;
}

bool ByteReader::Str(std::string* s) {
  uint32_t n = 0;
  if (!U32(&n)) return false;
  const char* p;
  if (!Take(n, &p)) return false;
  s->assign(p, n);
  return true;
}

// --- domain codecs -----------------------------------------------------------

void EncodeValue(Value v, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(v.kind()));
  if (v.is_symbol()) {
    w->Str(NameOf(static_cast<uint32_t>(v.payload())));
  } else {
    w->U64(v.payload());
  }
}

bool DecodeValue(ByteReader* r, Value* out) {
  uint8_t kind = 0;
  if (!r->U8(&kind)) return false;
  switch (static_cast<Value::Kind>(kind)) {
    case Value::Kind::kInt: {
      uint64_t p = 0;
      if (!r->U64(&p)) return false;
      *out = Value::FromInt(p);
      return true;
    }
    case Value::Kind::kSymbol: {
      std::string name;
      if (!r->Str(&name)) return false;
      *out = Sym(name);
      return true;
    }
    case Value::Kind::kInvented: {
      uint64_t p = 0;
      if (!r->U64(&p)) return false;
      *out = Value::Invented(p);
      return true;
    }
  }
  return false;
}

void EncodeTuple(const Tuple& t, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(t.size()));
  for (Value v : t) EncodeValue(v, w);
}

bool DecodeTuple(ByteReader* r, Tuple* out) {
  uint32_t n = 0;
  if (!r->U32(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    if (!DecodeValue(r, &v)) return false;
    out->push_back(v);
  }
  return true;
}

void EncodeInstance(const Instance& in, ByteWriter* w) {
  const std::vector<uint32_t> rels = in.RelationNames();
  w->U32(static_cast<uint32_t>(rels.size()));
  for (uint32_t rel : rels) {
    const TupleSet& tuples = in.TuplesOf(rel);
    w->Str(NameOf(rel));
    w->U32(static_cast<uint32_t>(tuples.size()));
    for (const Tuple& t : tuples) EncodeTuple(t, w);
  }
}

bool DecodeInstance(ByteReader* r, Instance* out) {
  uint32_t nrels = 0;
  if (!r->U32(&nrels)) return false;
  std::string name;
  Tuple t;
  for (uint32_t i = 0; i < nrels; ++i) {
    uint32_t count = 0;
    if (!r->Str(&name) || !r->U32(&count)) return false;
    const uint32_t rel = InternName(name);
    for (uint32_t j = 0; j < count; ++j) {
      if (!DecodeTuple(r, &t)) return false;
      out->Insert(Fact(rel, t));
    }
  }
  return true;
}

// --- FileWriter --------------------------------------------------------------

FileWriter::FileWriter(std::string_view client_tag)
    : buf_(BuildHeader(client_tag)) {}

void FileWriter::Append(std::string_view payload) {
  AppendRecord(&buf_, payload);
  ++records_;
}

Status FileWriter::Commit(const std::string& path) {
  CALM_RETURN_IF_ERROR(WriteFileAtomic(
      path, buf_, "durable.snapshot.write", "durable.snapshot.fsync",
      "durable.snapshot.rename", "durable.snapshot.dirsync"));
  if (MetricsEnabled()) {
    RecordsWritten().Increment(records_);
    Commits().Increment();
  }
  return Status::Ok();
}

// --- LogWriter ---------------------------------------------------------------

LogWriter::~LogWriter() { Close(); }

LogWriter::LogWriter(LogWriter&& o) noexcept
    : fd_(o.fd_), path_(std::move(o.path_)) {
  o.fd_ = -1;
}

LogWriter& LogWriter::operator=(LogWriter&& o) noexcept {
  if (this == &o) return *this;
  Close();
  fd_ = o.fd_;
  path_ = std::move(o.path_);
  o.fd_ = -1;
  return *this;
}

void LogWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status LogWriter::Open(const std::string& path, std::string_view client_tag,
                       std::vector<std::string>* replayed) {
  Close();
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno != ENOENT) return ErrnoError("stat", path);
    // New log: publish the header atomically, so no reader (or crashed
    // re-open) ever sees a file with a partial header.
    CALM_RETURN_IF_ERROR(WriteFileAtomic(
        path, BuildHeader(client_tag), "durable.wal.create.write",
        "durable.wal.create.fsync", "durable.wal.create.rename",
        "durable.wal.create.dirsync"));
  } else {
    Result<ReadResult> prior =
        ReadRecordFile(path, client_tag, /*repair_torn_tail=*/true);
    if (!prior.ok()) return prior.status();
    if (replayed != nullptr) {
      for (std::string& rec : prior->records) {
        replayed->push_back(std::move(rec));
      }
    }
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) return ErrnoError("open", path);
  path_ = path;
  return Status::Ok();
}

Status LogWriter::Append(std::string_view payload) {
  if (fd_ < 0) return FailedPreconditionError("log is not open");
  std::string rec;
  rec.reserve(kRecordPrefix + payload.size());
  AppendRecord(&rec, payload);
  // Two half-writes around the torn-tail site: a crash there leaves a
  // partial record, exactly what replay's CRC check truncates.
  const size_t split = rec.size() / 2;
  CALM_RETURN_IF_ERROR(WriteAll(fd_, rec.data(), split, path_));
  CALM_FAILPOINT("durable.wal.append");
  CALM_RETURN_IF_ERROR(
      WriteAll(fd_, rec.data() + split, rec.size() - split, path_));
  CALM_FAILPOINT("durable.wal.fsync");
  if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
  CALM_FAILPOINT("durable.wal.synced");
  if (MetricsEnabled()) {
    BytesWritten().Increment(rec.size());
    RecordsWritten().Increment();
  }
  return Status::Ok();
}

// --- ReadRecordFile ----------------------------------------------------------

Result<ReadResult> ReadRecordFile(const std::string& path,
                                  std::string_view client_tag,
                                  bool repair_torn_tail) {
  std::string contents;
  CALM_RETURN_IF_ERROR(ReadWholeFile(path, &contents));
  CALM_ASSIGN_OR_RETURN(size_t offset, ParseHeader(contents, client_tag, path));

  ReadResult out;
  while (offset < contents.size()) {
    const size_t remaining = contents.size() - offset;
    if (remaining < kRecordPrefix) {
      out.torn = true;
      break;
    }
    ByteReader prefix(std::string_view(contents).substr(offset, kRecordPrefix));
    uint32_t len = 0, crc = 0;
    prefix.U32(&len);
    prefix.U32(&crc);
    if (len > remaining - kRecordPrefix) {
      out.torn = true;
      break;
    }
    const char* payload = contents.data() + offset + kRecordPrefix;
    if (crc != Crc32c(payload, len)) {
      out.torn = true;
      break;
    }
    out.records.emplace_back(payload, len);
    offset += kRecordPrefix + len;
  }
  out.valid_bytes = offset;

  if (out.torn && repair_torn_tail) {
    int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoError("open", path);
    if (::ftruncate(fd, static_cast<off_t>(out.valid_bytes)) != 0) {
      Status s = ErrnoError("ftruncate", path);
      ::close(fd);
      return s;
    }
    CALM_FAILPOINT("durable.wal.truncate");
    if (::fsync(fd) != 0) {
      Status s = ErrnoError("fsync", path);
      ::close(fd);
      return s;
    }
    ::close(fd);
    if (MetricsEnabled()) TornTruncations().Increment();
  }
  if (MetricsEnabled()) RecordsReplayed().Increment(out.records.size());
  return out;
}

Status MakeDirs(const std::string& dir) {
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    std::string prefix = dir.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoError("mkdir", prefix);
    }
  }
  return Status::Ok();
}

}  // namespace calm::durable
