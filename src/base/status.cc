#include "base/status.h"

namespace calm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

}  // namespace calm
