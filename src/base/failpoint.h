#ifndef CALM_BASE_FAILPOINT_H_
#define CALM_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

// ---------------------------------------------------------------------------
// Failpoints (see DESIGN.md, "Durability and crash recovery"): named crash
// sites compiled into the durability layer's write/fsync/rename boundaries.
// A site is one CALM_FAILPOINT("name") statement; executing it while the
// site is armed terminates the process immediately (_exit, no atexit, no
// flushes) — the honest model of a power cut or SIGKILL at that boundary.
//
// The kill-anywhere recovery fuzzer (tests/durability_test.cc) drives them
// in two phases: a counting pass runs the workload crash-free and records
// how often each site executes, then for every (site, k) pair a forked child
// arms the site at its k-th hit, runs the same workload, dies there, and the
// parent recovers and compares against the crash-free oracle.
//
// Arming channels:
//   * programmatic — failpoint::Arm("durable.fsync", 3) (tests, after fork);
//   * environment  — CALM_FAILPOINT=durable.fsync:3 read at process start,
//     so any bench binary can be crashed at a chosen boundary without code
//     changes (the CI kill-and-resume leg uses this).
//
// Cost model: compiled in (default), every site costs one relaxed atomic
// load and a predictable branch; CMake -DCALM_FAILPOINTS=OFF defines
// CALM_FAILPOINTS_DISABLED and every site collapses to an empty statement.
// ---------------------------------------------------------------------------

namespace calm::failpoint {

// The exit code a fired failpoint terminates with; the fuzzer's parent
// process distinguishes an injected crash from a genuine failure by it.
inline constexpr int kCrashExitCode = 42;

// Whether failpoint sites are compiled into this build (CALM_FAILPOINTS).
constexpr bool FailpointsCompiledIn() {
#ifdef CALM_FAILPOINTS_DISABLED
  return false;
#else
  return true;
#endif
}

#ifndef CALM_FAILPOINTS_DISABLED

namespace detail {

// True while any site is armed or counting is on; the one relaxed load every
// site pays when the framework is idle.
extern std::atomic<bool> g_active;
inline bool Active() { return g_active.load(std::memory_order_relaxed); }

// The out-of-line slow path: counts the hit and crashes when it is the
// armed site's armed occurrence.
void Hit(const char* site);

}  // namespace detail

// Arms `site`: its `hit`-th execution (1-based) after this call terminates
// the process with kCrashExitCode. At most one site is armed at a time;
// re-arming replaces the previous site. Arming resets the hit counters.
void Arm(const std::string& site, uint64_t hit);

// Disarms the armed site (counting mode, if on, stays on).
void Disarm();

// Counting mode: sites record how often they execute instead of crashing
// (the fuzzer's oracle pass). Enabling resets the counters.
void SetCounting(bool on);

// The (site, executions) pairs observed since the last Arm/SetCounting
// reset, in site-name order. Only populated while counting or armed.
std::vector<std::pair<std::string, uint64_t>> HitCounts();

// A site statement. `site` must be a string literal (the registry stores
// the pointer until first hit).
#define CALM_FAILPOINT(site)                                        \
  do {                                                              \
    if (::calm::failpoint::detail::Active()) {                      \
      ::calm::failpoint::detail::Hit(site);                         \
    }                                                               \
  } while (false)

#else  // CALM_FAILPOINTS_DISABLED

inline void Arm(const std::string&, uint64_t) {}
inline void Disarm() {}
inline void SetCounting(bool) {}
inline std::vector<std::pair<std::string, uint64_t>> HitCounts() {
  return {};
}

#define CALM_FAILPOINT(site) \
  do {                       \
  } while (false)

#endif  // CALM_FAILPOINTS_DISABLED

}  // namespace calm::failpoint

#endif  // CALM_BASE_FAILPOINT_H_
