#ifndef CALM_BASE_VALUE_H_
#define CALM_BASE_VALUE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

namespace calm {

// A domain value. The paper assumes an infinite domain `dom`; we model it as
// tagged 64-bit identifiers. Three kinds exist:
//   * integer values (the common case in generated workloads),
//   * interned symbols (named constants from parsed programs / facts),
//   * invented values (Skolem terms created by ILOG evaluation).
// Values are totally ordered and hashable so instances can be kept in
// deterministic sorted containers. The order is internal (by tag then id) and
// carries no semantic meaning; queries must be generic (Section 2).
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kSymbol = 1, kInvented = 2 };

  // A default-constructed Value is the integer 0.
  Value() : raw_(0) {}

  static Value FromInt(uint64_t i) { return Value(Make(Kind::kInt, i)); }
  static Value Symbol(uint32_t symbol_id) {
    return Value(Make(Kind::kSymbol, symbol_id));
  }
  static Value Invented(uint64_t id) { return Value(Make(Kind::kInvented, id)); }

  Kind kind() const { return static_cast<Kind>(raw_ >> 62); }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_symbol() const { return kind() == Kind::kSymbol; }
  bool is_invented() const { return kind() == Kind::kInvented; }

  // Payload: the integer, symbol id, or invented id depending on kind().
  uint64_t payload() const { return raw_ & kPayloadMask; }
  uint64_t raw() const { return raw_; }

  friend bool operator==(Value a, Value b) { return a.raw_ == b.raw_; }
  friend bool operator!=(Value a, Value b) { return a.raw_ != b.raw_; }
  friend bool operator<(Value a, Value b) { return a.raw_ < b.raw_; }
  friend bool operator>(Value a, Value b) { return a.raw_ > b.raw_; }
  friend bool operator<=(Value a, Value b) { return a.raw_ <= b.raw_; }
  friend bool operator>=(Value a, Value b) { return a.raw_ >= b.raw_; }

 private:
  static constexpr uint64_t kPayloadMask = (uint64_t{1} << 62) - 1;
  static uint64_t Make(Kind kind, uint64_t payload) {
    return (static_cast<uint64_t>(kind) << 62) | (payload & kPayloadMask);
  }
  explicit Value(uint64_t raw) : raw_(raw) {}

  uint64_t raw_;
};

// Interns strings to dense 32-bit ids. Used for named constants and relation
// names.
//
// Thread safety: fully thread-safe. The parallel checkers evaluate queries
// concurrently on the pool (base/thread_pool.h), and query evaluation interns
// through the process-wide instance below, so:
//   * Intern/Find take one of kShards mutexes chosen by the name's hash, so
//     unrelated names rarely contend; appending a genuinely new name also
//     takes a global append mutex (rare after warm-up).
//   * NameOf/size are lock-free: names live in immutable fixed-size blocks
//     that are published with release stores and never move, so an id
//     obtained through any synchronized channel (the shard map, a pool
//     barrier, ...) reads its name without touching a lock.
// Capacity: kMaxBlocks * kBlockSize (~4M) distinct symbols; Intern aborts
// beyond that.
class SymbolTable {
 public:
  SymbolTable() = default;
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `name`, interning it if new.
  uint32_t Intern(std::string_view name);

  // Returns the name for a previously interned id. The reference stays valid
  // across later Intern calls (block storage never reallocates). Lock-free.
  const std::string& NameOf(uint32_t id) const {
    return blocks_[id >> kBlockBits].load(std::memory_order_acquire)
                  [id & (kBlockSize - 1)];
  }

  // Returns the id of `name` if interned, or UINT32_MAX otherwise.
  uint32_t Find(std::string_view name) const;

  // The number of interned symbols; every id < size() is readable.
  size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  // Heterogeneous hashing so string_view lookups avoid a std::string copy.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
        map;  // guarded by mu
  };

  static constexpr size_t kShards = 16;  // power of two
  static constexpr size_t kBlockBits = 10;
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;
  static constexpr size_t kMaxBlocks = 4096;

  Shard& ShardOf(std::string_view name) const {
    return shards_[StringHash{}(name) & (kShards - 1)];
  }

  mutable std::array<Shard, kShards> shards_;
  std::mutex append_mu_;  // serializes id allocation + block publication
  std::atomic<uint32_t> count_{0};
  // blocks_[b] is null or an array of kBlockSize strings; slots < count_ are
  // immutable once published by the release store on count_.
  std::array<std::atomic<std::string*>, kMaxBlocks> blocks_{};
};

// The process-wide interner. Relation names and symbolic constants share it;
// identity of both is "interned id", so equal names always compare equal.
SymbolTable& GlobalSymbols();

// Shorthand: the symbolic Value named `name` (interned on first use).
Value Sym(std::string_view name);

// Shorthand: the interned id for relation name `name`.
uint32_t InternName(std::string_view name);

// The name for an id interned via InternName/Sym.
const std::string& NameOf(uint32_t id);

// Renders a value. Symbols are rendered through `symbols` when provided,
// defaulting to the global table. Invented values render as "&<id>".
std::string ValueToString(Value v, const SymbolTable* symbols = nullptr);

std::ostream& operator<<(std::ostream& os, Value v);

}  // namespace calm

template <>
struct std::hash<calm::Value> {
  size_t operator()(calm::Value v) const noexcept {
    return std::hash<uint64_t>{}(v.raw());
  }
};

#endif  // CALM_BASE_VALUE_H_
