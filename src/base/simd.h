#ifndef CALM_BASE_SIMD_H_
#define CALM_BASE_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

// Portable SIMD kernels for the bytecode engine's hot loops: selection
// filters over code columns (equality / inequality, column-vs-column and
// column-vs-constant), gather-based column materialization, and batched
// splitmix64 hashing for the dedup/probe tables.
//
// Every kernel produces output byte-identical to its scalar loop — the
// vector paths differ only in how many rows they look at per iteration
// (compares produce a lane bitmask; set bits are converted back to row
// indices in ascending order). The engine differential harness pins this by
// running the same corpus at every dispatch level.
//
// Dispatch is two-layered:
//   * compile time: CALM_SIMD=OFF (-DCALM_SIMD_DISABLED=1) compiles the
//     vector bodies out entirely; only the scalar loops remain.
//   * run time: DetectLevel() picks the widest ISA the CPU supports (AVX2,
//     then SSE2 on x86-64; NEON on aarch64; scalar otherwise). The
//     CALM_SIMD_LEVEL environment variable (scalar|sse2|avx2|neon|auto)
//     clamps it — the CI smoke leg forces `scalar` to pin the fallback —
//     and SetLevel() is the in-process test hook.
//
// The AVX2 bodies carry __attribute__((target("avx2"))), so this header
// compiles in a baseline -march TU and the AVX2 code is only reachable
// through the runtime dispatch check.

#if !defined(CALM_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CALM_SIMD_X86 1
#include <immintrin.h>
#elif !defined(CALM_SIMD_DISABLED) && defined(__ARM_NEON)
#define CALM_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace calm::simd {

enum class Level : uint8_t { kScalar = 0, kSSE2 = 1, kAVX2 = 2, kNEON = 3 };

inline const char* LevelName(Level level) {
  switch (level) {
    case Level::kSSE2:
      return "sse2";
    case Level::kAVX2:
      return "avx2";
    case Level::kNEON:
      return "neon";
    default:
      return "scalar";
  }
}

// Whether the vector bodies were compiled in at all (CALM_SIMD=ON and a
// supported architecture).
inline constexpr bool CompiledIn() {
#if defined(CALM_SIMD_X86) || defined(CALM_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

// The widest level this CPU can run (ignores overrides).
inline Level DetectLevel() {
#if defined(CALM_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? Level::kAVX2 : Level::kSSE2;
#elif defined(CALM_SIMD_NEON)
  return Level::kNEON;
#else
  return Level::kScalar;
#endif
}

namespace detail {

// A requested level clamped to what this build/CPU can actually run.
inline Level Clamp(Level want) {
  Level have = DetectLevel();
#if defined(CALM_SIMD_X86)
  if (want == Level::kNEON) return have;
  return static_cast<uint8_t>(want) <= static_cast<uint8_t>(have) ? want
                                                                  : have;
#else
  return want == have ? want : Level::kScalar;
#endif
}

inline Level InitialLevel() {
  const char* env = std::getenv("CALM_SIMD_LEVEL");
  if (env != nullptr) {
    std::string_view v(env);
    if (v == "scalar" || v == "off") return Level::kScalar;
    if (v == "sse2") return Clamp(Level::kSSE2);
    if (v == "avx2") return Clamp(Level::kAVX2);
    if (v == "neon") return Clamp(Level::kNEON);
  }
  return DetectLevel();
}

inline std::atomic<Level>& GlobalLevel() {
  static std::atomic<Level> level{InitialLevel()};
  return level;
}

}  // namespace detail

// The dispatch level every kernel below runs at.
inline Level ActiveLevel() {
  return detail::GlobalLevel().load(std::memory_order_relaxed);
}

// Overrides the dispatch level (test hook; clamped to what the build/CPU
// supports, so requesting AVX2 on an SSE2-only machine degrades safely).
inline void SetLevel(Level level) {
  detail::GlobalLevel().store(detail::Clamp(level),
                              std::memory_order_relaxed);
}

// --- scalar reference bodies ----------------------------------------------
//
// These are the semantics; the vector paths must match them bit for bit.

namespace detail {

inline size_t FilterEqScalar(const uint32_t* a, const uint32_t* b,
                             uint32_t begin, uint32_t end, uint32_t* out) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    if (a[r] == b[r]) out[n++] = r;
  }
  return n;
}

inline size_t FilterNeScalar(const uint32_t* a, const uint32_t* b,
                             uint32_t begin, uint32_t end, uint32_t* out) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    if (a[r] != b[r]) out[n++] = r;
  }
  return n;
}

inline size_t FilterEqConstScalar(const uint32_t* a, uint32_t begin,
                                  uint32_t end, uint32_t v, uint32_t* out) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    if (a[r] == v) out[n++] = r;
  }
  return n;
}

inline size_t FilterNeConstScalar(const uint32_t* a, uint32_t begin,
                                  uint32_t end, uint32_t v, uint32_t* out) {
  size_t n = 0;
  for (uint32_t r = begin; r < end; ++r) {
    if (a[r] != v) out[n++] = r;
  }
  return n;
}

inline size_t RefineEqScalar(const uint32_t* a, const uint32_t* b,
                             const uint32_t* rows, size_t n, uint32_t* out) {
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = rows[i];
    if (a[r] == b[r]) out[m++] = r;
  }
  return m;
}

inline size_t RefineNeScalar(const uint32_t* a, const uint32_t* b,
                             const uint32_t* rows, size_t n, uint32_t* out) {
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = rows[i];
    if (a[r] != b[r]) out[m++] = r;
  }
  return m;
}

inline size_t RefineNeConstScalar(const uint32_t* a, const uint32_t* rows,
                                  size_t n, uint32_t v, uint32_t* out) {
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = rows[i];
    if (a[r] != v) out[m++] = r;
  }
  return m;
}

inline void GatherScalar(const uint32_t* base, const uint32_t* idx, size_t n,
                         uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = base[idx[i]];
}

// splitmix64 finalizer (must match datalog::detail::Mix64).
inline uint64_t Mix64One(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline void Mix64Scalar(const uint64_t* keys, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = Mix64One(keys[i]);
}

#if defined(CALM_SIMD_X86)

// Turns an 8-lane compare bitmask into ascending row indices appended at
// `out`. Rows are emitted lowest lane first, so the output order equals the
// scalar loop's.
inline size_t EmitMask8(uint32_t mask, uint32_t row0, uint32_t* out) {
  size_t n = 0;
  while (mask != 0) {
    unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
    out[n++] = row0 + lane;
    mask &= mask - 1;
  }
  return n;
}

// -- SSE2 (x86-64 baseline, no target attribute needed) --

inline size_t FilterCmpSse2(const uint32_t* a, const uint32_t* b,
                            uint32_t begin, uint32_t end, uint32_t* out,
                            bool want_equal) {
  size_t n = 0;
  uint32_t r = begin;
  for (; r + 4 <= end; r += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + r));
    uint32_t m = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb))));
    if (!want_equal) m = ~m & 0xF;
    n += EmitMask8(m, r, out + n);
  }
  for (; r < end; ++r) {
    if ((a[r] == b[r]) == want_equal) out[n++] = r;
  }
  return n;
}

inline size_t FilterCmpConstSse2(const uint32_t* a, uint32_t begin,
                                 uint32_t end, uint32_t v, uint32_t* out,
                                 bool want_equal) {
  size_t n = 0;
  uint32_t r = begin;
  const __m128i vv = _mm_set1_epi32(static_cast<int>(v));
  for (; r + 4 <= end; r += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r));
    uint32_t m = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vv))));
    if (!want_equal) m = ~m & 0xF;
    n += EmitMask8(m, r, out + n);
  }
  for (; r < end; ++r) {
    if ((a[r] == v) == want_equal) out[n++] = r;
  }
  return n;
}

// -- AVX2 (runtime-dispatched; compiled with a target attribute) --

__attribute__((target("avx2"))) inline size_t FilterCmpAvx2(
    const uint32_t* a, const uint32_t* b, uint32_t begin, uint32_t end,
    uint32_t* out, bool want_equal) {
  size_t n = 0;
  uint32_t r = begin;
  for (; r + 8 <= end; r += 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + r));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + r));
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb))));
    if (!want_equal) m = ~m & 0xFF;
    n += EmitMask8(m, r, out + n);
  }
  for (; r < end; ++r) {
    if ((a[r] == b[r]) == want_equal) out[n++] = r;
  }
  return n;
}

__attribute__((target("avx2"))) inline size_t FilterCmpConstAvx2(
    const uint32_t* a, uint32_t begin, uint32_t end, uint32_t v,
    uint32_t* out, bool want_equal) {
  size_t n = 0;
  uint32_t r = begin;
  const __m256i vv = _mm256_set1_epi32(static_cast<int>(v));
  for (; r + 8 <= end; r += 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + r));
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vv))));
    if (!want_equal) m = ~m & 0xFF;
    n += EmitMask8(m, r, out + n);
  }
  for (; r < end; ++r) {
    if ((a[r] == v) == want_equal) out[n++] = r;
  }
  return n;
}

__attribute__((target("avx2"))) inline size_t RefineCmpAvx2(
    const uint32_t* a, const uint32_t* b, const uint32_t* rows, size_t n,
    uint32_t* out, bool want_equal) {
  size_t m = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i vr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    __m256i va = _mm256_i32gather_epi32(reinterpret_cast<const int*>(a), vr, 4);
    __m256i vb = _mm256_i32gather_epi32(reinterpret_cast<const int*>(b), vr, 4);
    uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb))));
    if (!want_equal) mask = ~mask & 0xFF;
    while (mask != 0) {
      unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out[m++] = rows[i + lane];
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    uint32_t r = rows[i];
    if ((a[r] == b[r]) == want_equal) out[m++] = r;
  }
  return m;
}

__attribute__((target("avx2"))) inline size_t RefineNeConstAvx2(
    const uint32_t* a, const uint32_t* rows, size_t n, uint32_t v,
    uint32_t* out) {
  size_t m = 0;
  size_t i = 0;
  const __m256i vv = _mm256_set1_epi32(static_cast<int>(v));
  for (; i + 8 <= n; i += 8) {
    __m256i vr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    __m256i va = _mm256_i32gather_epi32(reinterpret_cast<const int*>(a), vr, 4);
    uint32_t mask = ~static_cast<uint32_t>(_mm256_movemask_ps(
                        _mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vv)))) &
                    0xFF;
    while (mask != 0) {
      unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out[m++] = rows[i + lane];
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    uint32_t r = rows[i];
    if (a[r] != v) out[m++] = r;
  }
  return m;
}

__attribute__((target("avx2"))) inline void GatherAvx2(const uint32_t* base,
                                                       const uint32_t* idx,
                                                       size_t n,
                                                       uint32_t* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    __m256i v =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), vi, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = base[idx[i]];
}

// 4-lane 64x64->64 multiply from 32x32 partial products (AVX2 has no
// 64-bit multiply). Free function rather than a lambda: GCC does not
// propagate the enclosing function's target attribute into lambda bodies.
__attribute__((target("avx2"))) inline __m256i Mul64x4Avx2(__m256i x,
                                                           __m256i y) {
  __m256i lo = _mm256_mul_epu32(x, y);
  __m256i xh = _mm256_srli_epi64(x, 32);
  __m256i yh = _mm256_srli_epi64(y, 32);
  __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(xh, y), _mm256_mul_epu32(x, yh));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline void Mix64Avx2(const uint64_t* keys,
                                                      size_t n,
                                                      uint64_t* out) {
  const __m256i c0 = _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL);
  const __m256i m1 = _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL);
  const __m256i m2 = _mm256_set1_epi64x(0x94d049bb133111ebULL);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = _mm256_add_epi64(x, c0);
    x = Mul64x4Avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), m1);
    x = Mul64x4Avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), m2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  for (; i < n; ++i) out[i] = Mix64One(keys[i]);
}

#elif defined(CALM_SIMD_NEON)

inline size_t EmitMask4(uint32_t mask, uint32_t row0, uint32_t* out) {
  size_t n = 0;
  while (mask != 0) {
    unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
    out[n++] = row0 + lane;
    mask &= mask - 1;
  }
  return n;
}

inline uint32_t NeonCmpEqMask(uint32x4_t a, uint32x4_t b) {
  uint32x4_t eq = vceqq_u32(a, b);
  // Lane i contributes bit i.
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  return vaddvq_u32(vandq_u32(eq, bits));
}

inline size_t FilterCmpNeon(const uint32_t* a, const uint32_t* b,
                            uint32_t begin, uint32_t end, uint32_t* out,
                            bool want_equal) {
  size_t n = 0;
  uint32_t r = begin;
  for (; r + 4 <= end; r += 4) {
    uint32_t m = NeonCmpEqMask(vld1q_u32(a + r), vld1q_u32(b + r));
    if (!want_equal) m = ~m & 0xF;
    n += EmitMask4(m, r, out + n);
  }
  for (; r < end; ++r) {
    if ((a[r] == b[r]) == want_equal) out[n++] = r;
  }
  return n;
}

inline size_t FilterCmpConstNeon(const uint32_t* a, uint32_t begin,
                                 uint32_t end, uint32_t v, uint32_t* out,
                                 bool want_equal) {
  size_t n = 0;
  uint32_t r = begin;
  const uint32x4_t vv = vdupq_n_u32(v);
  for (; r + 4 <= end; r += 4) {
    uint32_t m = NeonCmpEqMask(vld1q_u32(a + r), vv);
    if (!want_equal) m = ~m & 0xF;
    n += EmitMask4(m, r, out + n);
  }
  for (; r < end; ++r) {
    if ((a[r] == v) == want_equal) out[n++] = r;
  }
  return n;
}

#endif

}  // namespace detail

// --- public kernels --------------------------------------------------------

// Appends to `out` every row r in [begin, end) with a[r] == b[r], ascending.
// `out` must have room for end - begin entries. Returns the count.
inline size_t FilterEq(const uint32_t* a, const uint32_t* b, uint32_t begin,
                       uint32_t end, uint32_t* out) {
#if defined(CALM_SIMD_X86)
  Level l = ActiveLevel();
  if (l == Level::kAVX2)
    return detail::FilterCmpAvx2(a, b, begin, end, out, true);
  if (l == Level::kSSE2)
    return detail::FilterCmpSse2(a, b, begin, end, out, true);
#elif defined(CALM_SIMD_NEON)
  if (ActiveLevel() == Level::kNEON)
    return detail::FilterCmpNeon(a, b, begin, end, out, true);
#endif
  return detail::FilterEqScalar(a, b, begin, end, out);
}

// As FilterEq with a[r] != b[r].
inline size_t FilterNe(const uint32_t* a, const uint32_t* b, uint32_t begin,
                       uint32_t end, uint32_t* out) {
#if defined(CALM_SIMD_X86)
  Level l = ActiveLevel();
  if (l == Level::kAVX2)
    return detail::FilterCmpAvx2(a, b, begin, end, out, false);
  if (l == Level::kSSE2)
    return detail::FilterCmpSse2(a, b, begin, end, out, false);
#elif defined(CALM_SIMD_NEON)
  if (ActiveLevel() == Level::kNEON)
    return detail::FilterCmpNeon(a, b, begin, end, out, false);
#endif
  return detail::FilterNeScalar(a, b, begin, end, out);
}

// Rows r in [begin, end) with a[r] == v, ascending.
inline size_t FilterEqConst(const uint32_t* a, uint32_t begin, uint32_t end,
                            uint32_t v, uint32_t* out) {
#if defined(CALM_SIMD_X86)
  Level l = ActiveLevel();
  if (l == Level::kAVX2)
    return detail::FilterCmpConstAvx2(a, begin, end, v, out, true);
  if (l == Level::kSSE2)
    return detail::FilterCmpConstSse2(a, begin, end, v, out, true);
#elif defined(CALM_SIMD_NEON)
  if (ActiveLevel() == Level::kNEON)
    return detail::FilterCmpConstNeon(a, begin, end, v, out, true);
#endif
  return detail::FilterEqConstScalar(a, begin, end, v, out);
}

// Rows r in [begin, end) with a[r] != v, ascending.
inline size_t FilterNeConst(const uint32_t* a, uint32_t begin, uint32_t end,
                            uint32_t v, uint32_t* out) {
#if defined(CALM_SIMD_X86)
  Level l = ActiveLevel();
  if (l == Level::kAVX2)
    return detail::FilterCmpConstAvx2(a, begin, end, v, out, false);
  if (l == Level::kSSE2)
    return detail::FilterCmpConstSse2(a, begin, end, v, out, false);
#elif defined(CALM_SIMD_NEON)
  if (ActiveLevel() == Level::kNEON)
    return detail::FilterCmpConstNeon(a, begin, end, v, out, false);
#endif
  return detail::FilterNeConstScalar(a, begin, end, v, out);
}

// Keeps the rows of `rows` (ascending row indices) with a[r] == b[r].
// `out` may alias `rows` (compaction is left to right).
inline size_t RefineEq(const uint32_t* a, const uint32_t* b,
                       const uint32_t* rows, size_t n, uint32_t* out) {
#if defined(CALM_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2)
    return detail::RefineCmpAvx2(a, b, rows, n, out, true);
#endif
  return detail::RefineEqScalar(a, b, rows, n, out);
}

// Keeps the rows with a[r] != b[r]. `out` may alias `rows`.
inline size_t RefineNe(const uint32_t* a, const uint32_t* b,
                       const uint32_t* rows, size_t n, uint32_t* out) {
#if defined(CALM_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2)
    return detail::RefineCmpAvx2(a, b, rows, n, out, false);
#endif
  return detail::RefineNeScalar(a, b, rows, n, out);
}

// Keeps the rows with a[r] != v. `out` may alias `rows`.
inline size_t RefineNeConst(const uint32_t* a, const uint32_t* rows, size_t n,
                            uint32_t v, uint32_t* out) {
#if defined(CALM_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2)
    return detail::RefineNeConstAvx2(a, rows, n, v, out);
#endif
  return detail::RefineNeConstScalar(a, rows, n, v, out);
}

// out[i] = base[idx[i]] — code-column materialization for probe-hit rows.
inline void Gather(const uint32_t* base, const uint32_t* idx, size_t n,
                   uint32_t* out) {
#if defined(CALM_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2) {
    detail::GatherAvx2(base, idx, n, out);
    return;
  }
#endif
  detail::GatherScalar(base, idx, n, out);
}

// out[i] = splitmix64(keys[i]) — the batched form of the dedup/probe hash.
inline void Mix64Batch(const uint64_t* keys, size_t n, uint64_t* out) {
#if defined(CALM_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2) {
    detail::Mix64Avx2(keys, n, out);
    return;
  }
#endif
  detail::Mix64Scalar(keys, n, out);
}

}  // namespace calm::simd

#endif  // CALM_BASE_SIMD_H_
