#include "base/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace calm {

namespace {

// Set while a thread (worker or caller) is executing ParallelFor work, so
// re-entrant ParallelFor calls degrade to a serial loop instead of waiting
// on workers that may themselves be waiting.
thread_local bool t_inside_parallel_for = false;

void SerialFor(size_t begin, size_t end,
               const std::function<void(size_t)>& fn) {
  for (size_t i = begin; i < end; ++i) fn(i);
}

}  // namespace

struct ThreadPool::Impl {
  size_t num_threads;
  std::vector<std::thread> workers;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> tasks;  // guarded by mu
  bool stop = false;                        // guarded by mu

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || !tasks.empty(); });
        if (stop && tasks.empty()) return;
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads) : impl_(new Impl) {
  impl_->num_threads = num_threads == 0 ? 1 : num_threads;
  size_t workers = impl_->num_threads - 1;
  impl_->workers.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

size_t ThreadPool::num_threads() const { return impl_->num_threads; }

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             size_t max_helpers) {
  if (begin >= end) return;
  size_t range = end - begin;
  size_t helpers = impl_->workers.size();
  if (helpers > max_helpers) helpers = max_helpers;
  if (helpers > range - 1) helpers = range - 1;
  if (helpers == 0 || t_inside_parallel_for) {
    bool saved = t_inside_parallel_for;
    t_inside_parallel_for = true;
    try {
      SerialFor(begin, end, fn);
    } catch (...) {
      t_inside_parallel_for = saved;
      throw;
    }
    t_inside_parallel_for = saved;
    return;
  }

  // Shared job state: dynamic chunks off an atomic cursor, first exception
  // wins, outstanding counts participating threads still inside Run().
  struct Job {
    std::atomic<size_t> next;
    size_t end;
    size_t chunk;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t outstanding;            // guarded by mu
    std::exception_ptr exception;  // guarded by mu
    std::atomic<bool> cancelled{false};

    void Run() {
      t_inside_parallel_for = true;
      for (;;) {
        size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= end || cancelled.load(std::memory_order_relaxed)) break;
        size_t hi = lo + chunk < end ? lo + chunk : end;
        try {
          for (size_t i = lo; i < hi; ++i) (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!exception) exception = std::current_exception();
          cancelled.store(true, std::memory_order_relaxed);
          break;
        }
      }
      t_inside_parallel_for = false;
      std::lock_guard<std::mutex> lock(mu);
      if (--outstanding == 0) done_cv.notify_all();
    }
  };

  auto job = std::make_shared<Job>();
  job->next.store(begin, std::memory_order_relaxed);
  job->end = end;
  // Small chunks for load balance; the checkers' per-index work is lumpy
  // (candidate spaces shrink as the early-exit cursor advances).
  job->chunk = range / ((helpers + 1) * 8);
  if (job->chunk == 0) job->chunk = 1;
  job->fn = &fn;
  job->outstanding = helpers + 1;

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (size_t i = 0; i < helpers; ++i) {
      impl_->tasks.emplace_back([job] { job->Run(); });
    }
  }
  impl_->cv.notify_all();

  job->Run();  // the caller participates

  std::unique_lock<std::mutex> lock(job->mu);
  job->done_cv.wait(lock, [&] { return job->outstanding == 0; });
  if (job->exception) std::rethrow_exception(job->exception);
}

namespace {

std::atomic<size_t> g_thread_override{0};

size_t EnvThreads() {
  static size_t cached = [] {
    const char* env = std::getenv("CALM_THREADS");
    if (env != nullptr) {
      char* parse_end = nullptr;
      unsigned long n = std::strtoul(env, &parse_end, 10);
      if (parse_end != env && *parse_end == '\0' && n > 0) {
        return static_cast<size_t>(n);
      }
    }
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<size_t>(hw == 0 ? 1 : hw);
  }();
  return cached;
}

}  // namespace

size_t DefaultThreads() {
  size_t n = g_thread_override.load(std::memory_order_relaxed);
  return n != 0 ? n : EnvThreads();
}

void SetDefaultThreads(size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

ThreadPool& ThreadPool::Global() {
  static std::mutex* mu = new std::mutex;
  static std::unique_ptr<ThreadPool>* pool = new std::unique_ptr<ThreadPool>;
  size_t want = DefaultThreads();
  std::lock_guard<std::mutex> lock(*mu);
  if (!*pool || (*pool)->num_threads() != want) {
    pool->reset();  // join the old workers before spawning replacements
    *pool = std::make_unique<ThreadPool>(want);
  }
  return **pool;
}

void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& fn) {
  if (threads == 0) threads = DefaultThreads();
  if (threads <= 1 || count <= 1 || t_inside_parallel_for) {
    bool saved = t_inside_parallel_for;
    t_inside_parallel_for = true;
    try {
      SerialFor(0, count, fn);
    } catch (...) {
      t_inside_parallel_for = saved;
      throw;
    }
    t_inside_parallel_for = saved;
    return;
  }
  ThreadPool::Global().ParallelFor(0, count, fn, threads - 1);
}

}  // namespace calm
