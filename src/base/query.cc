#include "base/query.h"

namespace calm {

Status CheckGenericity(const Query& query, const Instance& input,
                       const std::map<Value, Value>& pi) {
  Result<Instance> direct = query.Eval(input);
  if (!direct.ok()) return direct.status();
  Result<Instance> permuted = query.Eval(ApplyValueMap(input, pi));
  if (!permuted.ok()) return permuted.status();
  Instance expected = ApplyValueMap(direct.value(), pi);
  if (expected != permuted.value()) {
    return InternalError("genericity violated for query '" + query.name() +
                         "' on input " + input.ToString() + ": Q(pi(I)) = " +
                         permuted.value().ToString() + " but pi(Q(I)) = " +
                         expected.ToString());
  }
  return Status::Ok();
}

}  // namespace calm
