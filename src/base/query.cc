#include "base/query.h"

#include <algorithm>
#include <map>
#include <vector>

#include "base/enumerator.h"

namespace calm {

namespace {

// The default union evaluator: i ∪ j is maintained as an overlay on a
// persistent copy of i — j's facts are inserted before the evaluation and
// erased after, so no per-pair Instance::Union copy is ever made. The union
// evaluation deliberately bypasses any result cache: canonicalizing every
// (i, j) pair costs more than a direct evaluation at the tiny bounds the
// sweeps run at, and unions rarely repeat within one search anyway.
class OverlayUnionEvaluator : public UnionEvaluator {
 public:
  OverlayUnionEvaluator(const Query& query, const Instance& i)
      : query_(query), union_(i) {}

  Result<std::optional<Fact>> FirstRetracted(
      const Instance& j, const std::vector<Fact>& base_facts) override {
    overlay_.clear();
    j.ForEachFact([&](uint32_t name, const Tuple& t) {
      Fact f(name, t);
      if (union_.Insert(f)) overlay_.push_back(std::move(f));
    });
    out_.clear();
    Status s = query_.EvalFacts(union_, &out_);
    for (const Fact& f : overlay_) union_.Erase(f);
    if (!s.ok()) return s;

    // Both fact streams are ascending, so a single merge pass finds the
    // first base fact missing from Q(i ∪ j).
    auto it = out_.begin();
    for (const Fact& f : base_facts) {
      while (it != out_.end() && *it < f) ++it;
      if (it == out_.end() || !(*it == f)) return std::optional<Fact>(f);
    }
    return std::optional<Fact>();
  }

 private:
  const Query& query_;
  Instance union_;             // == i between calls
  std::vector<Fact> overlay_;  // j's facts newly added to union_
  std::vector<Fact> out_;      // Q(i ∪ j), reused across calls
};

}  // namespace

std::unique_ptr<UnionEvaluator> MakeOverlayUnionEvaluator(const Query& query,
                                                          const Instance& i) {
  return std::make_unique<OverlayUnionEvaluator>(query, i);
}

std::unique_ptr<UnionEvaluator> Query::MakeUnionEvaluator(
    const Instance& i) const {
  return MakeOverlayUnionEvaluator(*this, i);
}

Status CheckGenericity(const Query& query, const Instance& input,
                       const std::map<Value, Value>& pi) {
  Result<Instance> direct = query.Eval(input);
  if (!direct.ok()) return direct.status();
  Result<Instance> permuted = query.Eval(ApplyValueMap(input, pi));
  if (!permuted.ok()) return permuted.status();
  Instance expected = ApplyValueMap(direct.value(), pi);
  if (expected != permuted.value()) {
    return InternalError("genericity violated for query '" + query.name() +
                         "' on input " + input.ToString() + ": Q(pi(I)) = " +
                         permuted.value().ToString() + " but pi(Q(I)) = " +
                         expected.ToString());
  }
  return Status::Ok();
}

Status ProbeGenericity(const Query& query, size_t domain_size,
                       size_t max_facts, size_t samples) {
  std::vector<Value> domain = IntDomain(domain_size);

  // A fixed family of permutations of {0..n-1}, extended with the identity
  // elsewhere. The two shifts move the probed values out of the small-int
  // range entirely — one far away, one onto the checkers' fresh-value range
  // {1000..} that the reduced J-sweeps permute — so value-specific behavior
  // anywhere the sweeps touch is exercised, not just relabelings within
  // {0..n-1}.
  std::vector<std::map<Value, Value>> perms;
  {
    std::map<Value, Value> shift_high, shift_fresh, reverse, swap01;
    for (size_t i = 0; i < domain_size; ++i) {
      shift_high[domain[i]] = Value::FromInt((uint64_t{1} << 20) + i);
      shift_fresh[domain[i]] = Value::FromInt(1000 + i);
      reverse[domain[i]] = domain[domain_size - 1 - i];
    }
    perms.push_back(std::move(shift_high));
    perms.push_back(std::move(shift_fresh));
    if (domain_size >= 2) {
      perms.push_back(std::move(reverse));
      swap01[domain[0]] = domain[1];
      swap01[domain[1]] = domain[0];
      perms.push_back(std::move(swap01));
    }
  }

  std::vector<Instance> space =
      AllInstances(query.input_schema(), domain, max_facts);
  if (space.empty() || samples == 0) return Status::Ok();
  size_t take = std::min(samples, space.size());
  size_t stride = space.size() / take;
  for (size_t s = 0; s < take; ++s) {
    const Instance& probe = space[s * stride];
    for (const std::map<Value, Value>& pi : perms) {
      Status st = CheckGenericity(query, probe, pi);
      if (!st.ok()) return st;
    }
  }
  return Status::Ok();
}

}  // namespace calm
