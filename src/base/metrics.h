#ifndef CALM_BASE_METRICS_H_
#define CALM_BASE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/json.h"

namespace calm {

// ---------------------------------------------------------------------------
// Metrics registry (see DESIGN.md, "Observability"): labeled counter / gauge
// / histogram families with a JSON snapshot. The hot paths of the engine
// (the semi-naive fixpoint, the exhaustive sweeps, the network simulator)
// accumulate into plain locals and flush here at natural boundaries — once
// per fixpoint, per candidate instance, per transition — so instrumentation
// stays well under the <3% overhead budget and can never perturb verdicts.
//
// Thread safety: series lookup takes one registry mutex (callers cache the
// returned reference; series live for the registry's lifetime, so a cached
// reference is valid forever). Counter increments are lock-free sharded
// atomics — concurrent writers land on different cache lines — and reads
// sum the shards, so totals are exact once writers quiesce.
// ---------------------------------------------------------------------------

// A monotonically increasing counter. Increment is wait-free and contention
// -avoiding: each thread writes the shard picked by its thread-local index.
class Counter {
 public:
  static constexpr size_t kShards = 16;  // power of two

  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  // Threads are assigned shards round-robin on first use, so a pool of up to
  // kShards workers never shares a shard (beyond that, increments stay
  // correct — fetch_add — just occasionally contended).
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

// A point-in-time signed value (progress, sizes). Low-rate by design: a
// single atomic, updated at flush points rather than in inner loops.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// A histogram over uint64 observations with fixed power-of-two bucket
// boundaries: le 1, 2, 4, ..., 2^(kBuckets-2), +inf. Observe is a couple of
// relaxed atomic adds; like Gauge it is meant for flush points (per-eval
// delta sizes, per-run transition counts), not per-tuple inner loops.
class Histogram {
 public:
  static constexpr size_t kBuckets = 24;  // last bucket is +inf

  void Observe(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  // The inclusive upper bound of `bucket` (UINT64_MAX for the last).
  static uint64_t BucketBound(size_t bucket);
  static size_t BucketOf(uint64_t value);

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Sorted (key, value) label pairs identifying one series within a family.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// The process-wide registry. Families are keyed by name per metric kind;
// series within a family by their label set. Lookups are mutex-guarded maps
// — instrumentation sites cache the returned reference (often in a function
// -local static) so the steady state is pure atomic arithmetic.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  Counter& GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge& GetGauge(std::string_view name, MetricLabels labels = {});
  Histogram& GetHistogram(std::string_view name, MetricLabels labels = {});

  // A deterministic snapshot (families and series in sorted order):
  //   {"counters": [{"name": ..., "labels": {...}, "value": N}, ...],
  //    "gauges":   [...],
  //    "histograms": [{"name": ..., "labels": {...}, "count": N, "sum": N,
  //                    "buckets": [{"le": 1, "count": n}, ...]}, ...]}
  // Values are read with relaxed loads; take the snapshot at a quiescent
  // point for exact totals.
  Json Snapshot() const;

  // Zeroes every registered series (registrations and cached references
  // stay valid). Tests and repeated bench sections use this.
  void ResetValues();

 private:
  using SeriesKey = std::pair<std::string, MetricLabels>;

  template <typename T>
  T& GetSeries(std::map<SeriesKey, std::unique_ptr<T>>* family,
               std::string_view name, MetricLabels labels);

  mutable std::mutex mu_;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<Histogram>> histograms_;
};

// Runtime switch for the engine's metric flush points. Off by default: the
// bench --metrics_out flag and the tests turn it on. When off, the
// instrumented code pays one relaxed load per flush site and nothing else.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

}  // namespace calm

#endif  // CALM_BASE_METRICS_H_
