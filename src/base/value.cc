#include "base/value.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace calm {

SymbolTable::~SymbolTable() {
  for (std::atomic<std::string*>& block : blocks_) {
    delete[] block.load(std::memory_order_relaxed);
  }
}

uint32_t SymbolTable::Intern(std::string_view name) {
  Shard& shard = ShardOf(name);
  std::lock_guard<std::mutex> shard_lock(shard.mu);
  auto it = shard.map.find(name);
  if (it != shard.map.end()) return it->second;

  // New name: allocate the next id under the append mutex (shard -> append
  // is the only lock order, so no deadlock), publish the string, then make
  // it findable in this shard. Concurrent Intern calls for the same name
  // serialize on the shard mutex, so an id is allocated exactly once.
  std::lock_guard<std::mutex> append_lock(append_mu_);
  uint32_t id = count_.load(std::memory_order_relaxed);
  size_t block_idx = id >> kBlockBits;
  if (block_idx >= kMaxBlocks) {
    std::fprintf(stderr, "SymbolTable: capacity exceeded (%zu symbols)\n",
                 kMaxBlocks * kBlockSize);
    std::abort();
  }
  std::string* block = blocks_[block_idx].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kBlockSize];
    blocks_[block_idx].store(block, std::memory_order_release);
  }
  block[id & (kBlockSize - 1)] = std::string(name);
  count_.store(id + 1, std::memory_order_release);
  shard.map.emplace(std::string(name), id);
  return id;
}

uint32_t SymbolTable::Find(std::string_view name) const {
  Shard& shard = ShardOf(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(name);
  if (it == shard.map.end()) return UINT32_MAX;
  return it->second;
}

SymbolTable& GlobalSymbols() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

Value Sym(std::string_view name) {
  return Value::Symbol(GlobalSymbols().Intern(name));
}

uint32_t InternName(std::string_view name) {
  return GlobalSymbols().Intern(name);
}

const std::string& NameOf(uint32_t id) { return GlobalSymbols().NameOf(id); }

std::string ValueToString(Value v, const SymbolTable* symbols) {
  if (symbols == nullptr) symbols = &GlobalSymbols();
  switch (v.kind()) {
    case Value::Kind::kInt:
      return std::to_string(v.payload());
    case Value::Kind::kSymbol:
      if (v.payload() < symbols->size()) {
        return symbols->NameOf(static_cast<uint32_t>(v.payload()));
      }
      return "sym#" + std::to_string(v.payload());
    case Value::Kind::kInvented:
      return "&" + std::to_string(v.payload());
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Value v) {
  return os << ValueToString(v);
}

}  // namespace calm
