#include "base/value.h"

#include <cstdint>

namespace calm {

uint32_t SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

uint32_t SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return UINT32_MAX;
  return it->second;
}

SymbolTable& GlobalSymbols() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

Value Sym(std::string_view name) {
  return Value::Symbol(GlobalSymbols().Intern(name));
}

uint32_t InternName(std::string_view name) {
  return GlobalSymbols().Intern(name);
}

const std::string& NameOf(uint32_t id) { return GlobalSymbols().NameOf(id); }

std::string ValueToString(Value v, const SymbolTable* symbols) {
  if (symbols == nullptr) symbols = &GlobalSymbols();
  switch (v.kind()) {
    case Value::Kind::kInt:
      return std::to_string(v.payload());
    case Value::Kind::kSymbol:
      if (v.payload() < symbols->size()) {
        return symbols->NameOf(static_cast<uint32_t>(v.payload()));
      }
      return "sym#" + std::to_string(v.payload());
    case Value::Kind::kInvented:
      return "&" + std::to_string(v.payload());
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Value v) {
  return os << ValueToString(v);
}

}  // namespace calm
