#ifndef CALM_BASE_COMPONENTS_H_
#define CALM_BASE_COMPONENTS_H_

#include <vector>

#include "base/instance.h"

namespace calm {

// Computes co(I), the components of I (Definition 5 context, Section 5.1):
// J is a component of I when J is a minimal nonempty subset of I with
// adom(J) disjoint from adom(I \ J). Equivalently, the facts of I grouped by
// connected components of the "shares a value" graph on facts.
// Returned in deterministic order (by each component's smallest fact).
std::vector<Instance> Components(const Instance& instance);

}  // namespace calm

#endif  // CALM_BASE_COMPONENTS_H_
