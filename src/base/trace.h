#ifndef CALM_BASE_TRACE_H_
#define CALM_BASE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "base/json.h"
#include "base/status.h"

// ---------------------------------------------------------------------------
// Span tracing (see DESIGN.md, "Observability"): RAII scopes recorded into
// thread-local buffers with deterministic ids, exported as Chrome
// trace_event JSON (chrome://tracing / Perfetto loads the file directly).
//
// Cost model, in increasing order of spend:
//   * compiled out      — CMake -DCALM_TRACING=OFF defines
//                         CALM_TRACING_DISABLED; every macro and class below
//                         collapses to an empty inline body, so the traced
//                         build is byte-for-byte free of tracing work.
//   * compiled in, off  — the default. Each span site costs one relaxed
//                         atomic load and a branch (measured <3% on the
//                         hottest sweep benches; see DESIGN.md).
//   * enabled           — appends one fixed-size event record per span to a
//                         thread-local vector; no locks, no I/O until export.
//
// Determinism: a span's id is (thread slot << 32) | per-thread sequence, and
// events are appended in open order, so two runs of the same single-threaded
// code produce identical ids, parents, and nesting depths — timestamps are
// the only nondeterministic field. Instrumentation only observes: enabling
// tracing cannot change any engine verdict (pinned by tests/trace_test.cc).
// ---------------------------------------------------------------------------

namespace calm {

// One integer-valued span/instant argument. Keys must be string literals
// (the buffer stores the pointer, not a copy).
struct TraceArg {
  const char* key;
  int64_t value;
};

// Whether the tracing layer is compiled into this build (CALM_TRACING).
constexpr bool TracingCompiledIn() {
#ifdef CALM_TRACING_DISABLED
  return false;
#else
  return true;
#endif
}

#ifndef CALM_TRACING_DISABLED

namespace trace_internal {

inline constexpr size_t kMaxArgs = 6;
inline constexpr uint32_t kInvalidIndex = UINT32_MAX;

struct Event {
  const char* name = nullptr;
  bool instant = false;
  uint32_t depth = 0;
  uint64_t id = 0;      // (thread slot << 32) | per-thread sequence
  uint64_t parent = 0;  // enclosing span id, 0 at top level
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint32_t num_args = 0;
  TraceArg args[kMaxArgs];
};

extern std::atomic<bool> g_enabled;

// Spans are addressed by index into the calling thread's buffer (the buffer
// vector reallocates as children append, so pointers would dangle).
uint32_t OpenSpan(const char* name);  // kInvalidIndex when the buffer is full
void CloseSpan(uint32_t index);
void SpanArg(uint32_t index, const char* key, int64_t value);
void AppendInstant(const char* name, std::initializer_list<TraceArg> args);

}  // namespace trace_internal

inline bool TracingEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

// Global control and export surface for the trace buffers.
class Trace {
 public:
  static void SetEnabled(bool enabled);

  // Clears every thread's buffer, restarts sequences, and re-stamps the
  // timestamp epoch. Call at a quiescent point (no spans open).
  static void Reset();

  // Per-thread buffers are capped (default 1<<20 events each); events past
  // the cap are dropped newest-first so recorded parents stay consistent.
  static void SetCapacity(size_t max_events_per_thread);
  static size_t DroppedCount();

  // Total recorded events across all threads.
  static size_t EventCount();
  // Recorded complete spans with this name (tests and bench cross-checks).
  static size_t SpanCount(const std::string& name);
  // Recorded instant events with this name (fault-event cross-checks).
  static size_t InstantCount(const std::string& name);

  // The Chrome trace_event document: {"traceEvents": [...]} with one "X"
  // (complete) event per span and one "i" (instant) event per instant,
  // timestamps in microseconds. Deterministic order: by thread slot, then
  // record order.
  static Json ExportJson();
  static Status WriteChromeTrace(const std::string& path);

  // An instant event on the calling thread (fault injections, cache events).
  static void Instant(const char* name,
                      std::initializer_list<TraceArg> args = {}) {
    if (!TracingEnabled()) return;
    trace_internal::AppendInstant(name, args);
  }
};

// RAII span: records an event on construction (when tracing is enabled) and
// stamps its duration on destruction. Args attach to the open span.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) index_ = trace_internal::OpenSpan(name);
  }
  TraceSpan(const char* name, std::initializer_list<TraceArg> args)
      : TraceSpan(name) {
    for (const TraceArg& a : args) Arg(a.key, a.value);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (index_ != trace_internal::kInvalidIndex) {
      trace_internal::CloseSpan(index_);
    }
  }

  // Attaches key=value to the span (up to kMaxArgs; extras are dropped).
  void Arg(const char* key, int64_t value) {
    if (index_ != trace_internal::kInvalidIndex) {
      trace_internal::SpanArg(index_, key, value);
    }
  }

  bool active() const { return index_ != trace_internal::kInvalidIndex; }

 private:
  uint32_t index_ = trace_internal::kInvalidIndex;
};

#else  // CALM_TRACING_DISABLED: everything below is a compile-time no-op.

inline constexpr bool TracingEnabled() { return false; }

class Trace {
 public:
  static void SetEnabled(bool) {}
  static void Reset() {}
  static void SetCapacity(size_t) {}
  static size_t DroppedCount() { return 0; }
  static size_t EventCount() { return 0; }
  static size_t SpanCount(const std::string&) { return 0; }
  static size_t InstantCount(const std::string&) { return 0; }
  static Json ExportJson() {
    Json root = Json::Object();
    root.Set("traceEvents", Json::Array());
    return root;
  }
  static Status WriteChromeTrace(const std::string&);
  static void Instant(const char*, std::initializer_list<TraceArg> = {}) {}
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const char*, std::initializer_list<TraceArg>) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void Arg(const char*, int64_t) {}
  bool active() const { return false; }
};

#endif  // CALM_TRACING_DISABLED

}  // namespace calm

#endif  // CALM_BASE_TRACE_H_
