#include "base/metrics.h"

#include <algorithm>
#include <bit>

namespace calm {

namespace {

std::atomic<bool> g_metrics_enabled{false};
std::atomic<size_t> g_next_shard{0};

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

size_t Counter::ShardIndex() {
  thread_local const size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

uint64_t Histogram::BucketBound(size_t bucket) {
  if (bucket >= kBuckets - 1) return UINT64_MAX;
  return uint64_t{1} << bucket;
}

size_t Histogram::BucketOf(uint64_t value) {
  // Least bucket whose inclusive bound covers `value`: 0..1 -> 0, 2 -> 1,
  // 3..4 -> 2, ... Everything past the largest finite bound lands in +inf.
  if (value <= 1) return 0;
  size_t b = static_cast<size_t>(std::bit_width(value - 1));
  return b < kBuckets - 1 ? b : kBuckets - 1;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

template <typename T>
T& MetricRegistry::GetSeries(std::map<SeriesKey, std::unique_ptr<T>>* family,
                             std::string_view name, MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  SeriesKey key{std::string(name), std::move(labels)};
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<T>& slot = (*family)[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<T>();
  return *slot;
}

Counter& MetricRegistry::GetCounter(std::string_view name,
                                    MetricLabels labels) {
  return GetSeries(&counters_, name, std::move(labels));
}

Gauge& MetricRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  return GetSeries(&gauges_, name, std::move(labels));
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        MetricLabels labels) {
  return GetSeries(&histograms_, name, std::move(labels));
}

namespace {

Json LabelsToJson(const MetricLabels& labels) {
  Json obj = Json::Object();
  for (const auto& [k, v] : labels) obj.Set(k, Json::Str(v));
  return obj;
}

}  // namespace

Json MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json root = Json::Object();

  Json counters = Json::Array();
  for (const auto& [key, counter] : counters_) {
    Json series = Json::Object();
    series.Set("name", Json::Str(key.first));
    series.Set("labels", LabelsToJson(key.second));
    series.Set("value", Json::Uint(counter->Value()));
    counters.Append(std::move(series));
  }
  root.Set("counters", std::move(counters));

  Json gauges = Json::Array();
  for (const auto& [key, gauge] : gauges_) {
    Json series = Json::Object();
    series.Set("name", Json::Str(key.first));
    series.Set("labels", LabelsToJson(key.second));
    series.Set("value", Json::Int(gauge->Value()));
    gauges.Append(std::move(series));
  }
  root.Set("gauges", std::move(gauges));

  Json histograms = Json::Array();
  for (const auto& [key, histogram] : histograms_) {
    Json series = Json::Object();
    series.Set("name", Json::Str(key.first));
    series.Set("labels", LabelsToJson(key.second));
    series.Set("count", Json::Uint(histogram->Count()));
    series.Set("sum", Json::Uint(histogram->Sum()));
    Json buckets = Json::Array();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t n = histogram->BucketCount(b);
      if (n == 0) continue;  // sparse: empty buckets carry no information
      Json bucket = Json::Object();
      uint64_t bound = Histogram::BucketBound(b);
      bucket.Set("le", bound == UINT64_MAX ? Json::Str("inf")
                                           : Json::Uint(bound));
      bucket.Set("count", Json::Uint(n));
      buckets.Append(std::move(bucket));
    }
    series.Set("buckets", std::move(buckets));
    histograms.Append(std::move(series));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

void MetricRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->Reset();
  for (auto& [key, g] : gauges_) g->Reset();
  for (auto& [key, h] : histograms_) h->Reset();
}

}  // namespace calm
