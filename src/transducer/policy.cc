#include "transducer/policy.h"

namespace calm::transducer {

std::map<Value, Instance> Distribute(const DistributionPolicy& policy,
                                     const Network& network,
                                     const Instance& input) {
  std::map<Value, Instance> out;
  for (Value node : network) out[node];  // every node gets a (maybe empty) slot
  input.ForEachFact([&](uint32_t name, const Tuple& t) {
    Fact f(name, t);
    for (Value node : policy.NodesFor(f)) out[node].Insert(f);
  });
  return out;
}

namespace {
// Intern-order-independent fact hash. FactHash{} hashes the interned
// relation id, which depends on the order relations were first named in
// *this process* — fine inside one run, but a distribution policy must
// place facts identically across processes, or a recorded divergence trace
// replayed in a fresh binary silently redistributes the input and stops
// being deterministic. Hash the relation's name and the symbol names
// instead; integer payloads are stable as-is.
size_t StableValueHash(Value v) {
  if (v.is_symbol()) return std::hash<std::string>{}(NameOf(v.payload()));
  return std::hash<uint64_t>{}(v.payload());
}

size_t HashFact(const Fact& f, uint64_t salt) {
  size_t h = std::hash<std::string>{}(NameOf(f.relation));
  for (Value v : f.args) h = HashCombine(h, StableValueHash(v));
  return HashCombine(h, std::hash<uint64_t>{}(salt));
}
}  // namespace

std::set<Value> HashPolicy::NodesFor(const Fact& fact) const {
  return {network_[HashFact(fact, salt_) % network_.size()]};
}

std::set<Value> AttributeHashPolicy::NodesFor(const Fact& fact) const {
  Value v = fact.args[position_ % fact.args.size()];
  size_t h = HashCombine(std::hash<Value>{}(v), std::hash<uint64_t>{}(salt_));
  return {network_[h % network_.size()]};
}

std::set<Value> HashDomainGuidedPolicy::NodesForValue(Value value) const {
  size_t h =
      HashCombine(std::hash<Value>{}(value), std::hash<uint64_t>{}(salt_));
  return {network_[h % network_.size()]};
}

std::set<Value> HashDomainGuidedPolicy::NodesFor(const Fact& fact) const {
  std::set<Value> out;
  for (Value v : fact.args) {
    for (Value n : NodesForValue(v)) out.insert(n);
  }
  return out;
}

std::set<Value> MapDomainGuidedPolicy::NodesForValue(Value value) const {
  auto it = alpha_.find(value);
  if (it != alpha_.end()) return it->second;
  return {fallback_};
}

std::set<Value> MapDomainGuidedPolicy::NodesFor(const Fact& fact) const {
  std::set<Value> out;
  for (Value v : fact.args) {
    for (Value n : NodesForValue(v)) out.insert(n);
  }
  return out;
}

}  // namespace calm::transducer
