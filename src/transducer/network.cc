#include "transducer/network.h"

#include <algorithm>

#include "base/metrics.h"
#include "base/trace.h"

namespace calm::transducer {

const char* NetworkSemanticsName(NetworkSemantics semantics) {
  switch (semantics) {
    case NetworkSemantics::kAsync:
      return "async";
    case NetworkSemantics::kBsp:
      return "bsp";
  }
  return "unknown";
}

TransducerNetwork::TransducerNetwork(Network nodes,
                                     const Transducer* transducer,
                                     const DistributionPolicy* policy,
                                     ModelOptions model)
    : nodes_(std::move(nodes)),
      transducer_(transducer),
      policy_(policy),
      model_(model) {}

Status TransducerNetwork::Initialize(const Instance& input) {
  if (nodes_.empty()) return InvalidArgumentError("network has no nodes");
  CALM_RETURN_IF_ERROR(transducer_->schema().Validate(model_));
  if (!input.IsOver(transducer_->schema().in)) {
    return InvalidArgumentError("input is not over the transducer's Yin");
  }
  local_inputs_ = Distribute(*policy_, nodes_, input);
  states_.clear();
  for (Value n : nodes_) states_[n];
  buffers_.assign(nodes_.size(), net::MessageBuffer());
  staged_.assign(nodes_.size(), {});
  recovery_.assign(nodes_.size(), Instance());
  stats_ = net::RunStats();
  last_step_changed_ = false;
  tick_ = 0;
  if (faults_ != nullptr) faults_->BindNetwork(nodes_.size());
  return Status::Ok();
}

void TransducerNetwork::set_fault_plan(net::FaultPlan* faults) {
  faults_ = faults;
  if (faults_ != nullptr) faults_->BindNetwork(nodes_.size());
}

void TransducerNetwork::Inject(const net::FaultPlan::Delivery& delivery) {
  net::MessageBuffer& buffer = buffers_[delivery.receiver];
  if (delivery.has_position) {
    buffer.InsertAt(delivery.position, delivery.fact, tick_);
  } else {
    buffer.Add(delivery.fact, tick_);
  }
  ++stats_.messages_sent;
}

size_t TransducerNetwork::IndexOf(Value node) const {
  auto it = std::find(nodes_.begin(), nodes_.end(), node);
  return static_cast<size_t>(it - nodes_.begin());
}

const Instance& TransducerNetwork::local_input(Value node) const {
  return local_inputs_.at(node);
}
const Instance& TransducerNetwork::state(Value node) const {
  return states_.at(node);
}
const net::MessageBuffer& TransducerNetwork::buffer(Value node) const {
  return buffers_[IndexOf(node)];
}
net::MessageBuffer& TransducerNetwork::mutable_buffer(Value node) {
  return buffers_[IndexOf(node)];
}

Result<Instance> TransducerNetwork::SystemFactsFor(
    Value node, const Instance& delivered) const {
  size_t index = IndexOf(node);
  if (index >= nodes_.size()) return InvalidArgumentError("unknown node");

  // J = H(x) + s(x) + M; A = N + adom(J), or {x} + adom(J) without All.
  Instance j = local_inputs_.at(node);
  j.InsertAll(states_.at(node));
  j.InsertAll(delivered);
  std::set<Value> a = j.ActiveDomain();
  if (model_.expose_all) {
    for (Value n : nodes_) a.insert(n);
  } else {
    a.insert(node);
  }

  Instance s;
  if (model_.expose_id) s.Insert(Fact(IdRelation(), {node}));
  if (model_.expose_all) {
    for (Value n : nodes_) s.Insert(Fact(AllRelation(), {n}));
  }
  if (model_.policy_aware) {
    for (Value v : a) s.Insert(Fact(MyAdomRelation(), {v}));
    // policy_R(a1..ak) for every tuple over A that this node is responsible
    // for ("safe" access to the distribution policy).
    std::vector<Value> avec(a.begin(), a.end());
    for (const RelationDecl& r : transducer_->schema().in.relations()) {
      uint32_t policy_rel = PolicyRelationId(r.name);
      std::vector<size_t> idx(r.arity, 0);
      if (avec.empty()) continue;
      while (true) {
        Tuple t;
        t.reserve(r.arity);
        for (size_t i : idx) t.push_back(avec[i]);
        Fact candidate(r.name, t);
        std::set<Value> owners = policy_->NodesFor(candidate);
        if (owners.count(node) > 0) s.Insert(Fact(policy_rel, std::move(t)));
        size_t pos = r.arity;
        bool done = false;
        while (pos > 0) {
          --pos;
          if (++idx[pos] < avec.size()) break;
          idx[pos] = 0;
          if (pos == 0) done = true;
        }
        if (done) break;
      }
    }
  }
  return s;
}

Status TransducerNetwork::StepNode(Value node,
                                   const std::vector<size_t>& delivery_indices) {
  size_t index = IndexOf(node);
  if (index >= nodes_.size()) return InvalidArgumentError("unknown node");
  if (semantics_ == NetworkSemantics::kBsp && faults_ != nullptr) {
    return InvalidArgumentError(
        "BSP semantics model a perfect network; detach the fault plan");
  }

  ++tick_;
  TraceSpan span("net.step");
  span.Arg("node", static_cast<int64_t>(index));
  span.Arg("tick", static_cast<int64_t>(tick_));
  // Fault channel first: crash-restarts and messages due for (re)delivery
  // land before the step observes its buffer. Redeliveries only append, so
  // delivery indices chosen by the scheduler before this call stay valid.
  bool external_change = false;
  if (faults_ != nullptr) {
    std::vector<net::FaultPlan::Delivery> due;
    std::vector<size_t> crashes;
    faults_->BeginTransition(tick_, &due, &crashes);
    for (size_t crashed : crashes) {
      if (crashed >= nodes_.size()) {
        return InvalidArgumentError("fault plan crashed unknown node index " +
                                    std::to_string(crashed));
      }
      // Crash-restart: state back to the start configuration. The local
      // input is re-delivered by construction (local_inputs_ is intact) and
      // the in-flight buffer is preserved. The durable inbox is staged for
      // one *atomic* recovery delivery at the node's next transition —
      // routing it through the buffer would let the scheduler split it,
      // breaking causal order between the replayed facts.
      states_.at(nodes_[crashed]).clear();
      recovery_[crashed].InsertAll(faults_->InboxOf(crashed));
      external_change = true;
    }
    for (const net::FaultPlan::Delivery& d : due) {
      if (d.receiver >= nodes_.size()) {
        return InvalidArgumentError(
            "fault plan redelivered to unknown node index " +
            std::to_string(d.receiver));
      }
      Inject(d);
      external_change = true;
    }
  }

  // Reject malformed delivery choices (a buggy scheduler or fault plan)
  // before they reach MessageBuffer::TakeCollapsed, which assumes them.
  const std::vector<net::MessageBuffer::Entry>& entries =
      buffers_[index].entries();
  for (size_t i = 0; i < delivery_indices.size(); ++i) {
    if (delivery_indices[i] >= entries.size()) {
      return InvalidArgumentError(
          "delivery index " + std::to_string(delivery_indices[i]) +
          " out of range for node buffer of size " +
          std::to_string(entries.size()));
    }
    if (i > 0 && delivery_indices[i] <= delivery_indices[i - 1]) {
      return InvalidArgumentError(
          "delivery indices not strictly increasing: index " +
          std::to_string(delivery_indices[i]) + " follows " +
          std::to_string(delivery_indices[i - 1]));
    }
  }

  Instance delivered = buffers_[index].TakeCollapsed(delivery_indices);
  stats_.messages_delivered += delivery_indices.size();
  if (faults_ != nullptr && !recovery_[index].empty()) {
    // Atomic write-ahead-log replay: everything the node consumed before
    // its crash arrives as one delivery, preserving causal order.
    delivered.InsertAll(recovery_[index]);
    recovery_[index].clear();
    external_change = true;
  }
  if (faults_ != nullptr && !delivered.empty()) {
    faults_->OnDeliver(index, delivered);
  }

  CALM_ASSIGN_OR_RETURN(Instance system, SystemFactsFor(node, delivered));

  StepInput in{local_inputs_.at(node), states_.at(node), delivered, system};
  CALM_ASSIGN_OR_RETURN(StepOutput out, transducer_->Step(in));

  const TransducerSchema& schema = transducer_->schema();
  if (!out.output.IsOver(schema.out) || !out.insertions.IsOver(schema.mem) ||
      !out.deletions.IsOver(schema.mem) || !out.sends.IsOver(schema.msg)) {
    return InternalError("transducer '" + transducer_->name() +
                         "' produced facts outside its target schemas");
  }

  Instance& state = states_.at(node);
  Instance old_state = state;

  // Output facts accumulate and are never retracted.
  state.InsertAll(out.output);
  // Memory: add ins \ del, remove del \ ins.
  Instance add = Instance::Difference(out.insertions, out.deletions);
  Instance remove = Instance::Difference(out.deletions, out.insertions);
  state.InsertAll(add);
  remove.ForEachFact(
      [&](uint32_t name, const Tuple& t) { state.Erase(Fact(name, t)); });

  // Sends go to every other node's buffer (multiset union), through the
  // fault channel when one is attached. A held (dropped / partitioned) send
  // produces no immediate insertion; it reappears via BeginTransition.
  // Under kBsp sends are staged instead: they reach the buffers only at the
  // superstep barrier, so superstep k's sends deliver exactly at k + 1.
  size_t fanout = 0;
  std::vector<net::FaultPlan::Delivery> deliveries;
  out.sends.ForEachFact([&](uint32_t name, const Tuple& t) {
    for (size_t y = 0; y < nodes_.size(); ++y) {
      if (y == index) continue;
      if (semantics_ == NetworkSemantics::kBsp) {
        staged_[y].push_back(Fact(name, t));
        ++stats_.messages_sent;
        ++fanout;
      } else if (faults_ != nullptr) {
        deliveries.clear();
        faults_->OnSend(index, y, Fact(name, t), tick_, &deliveries);
        for (const net::FaultPlan::Delivery& d : deliveries) {
          Inject(d);
          ++fanout;
        }
      } else {
        buffers_[y].Add(Fact(name, t), tick_);
        ++stats_.messages_sent;
        ++fanout;
      }
    }
  });

  ++stats_.transitions;
  if (delivery_indices.empty()) ++stats_.heartbeats;
  last_step_changed_ = (state != old_state) || fanout > 0 || external_change;

  size_t out_size = GlobalOutput().size();
  if (out_size > stats_.output_facts) {
    stats_.output_facts = out_size;
    stats_.output_complete_at = stats_.transitions;
  }

  if (span.active()) {
    span.Arg("delivered", static_cast<int64_t>(delivery_indices.size()));
    span.Arg("sent", static_cast<int64_t>(fanout));
    span.Arg("changed", last_step_changed_ ? 1 : 0);
  }
  if (MetricsEnabled()) {
    MetricRegistry& registry = MetricRegistry::Global();
    static Counter& transitions = registry.GetCounter("calm.net.transitions");
    static Counter& delivered_count =
        registry.GetCounter("calm.net.messages_delivered");
    static Counter& sent_count = registry.GetCounter("calm.net.messages_sent");
    static Counter& heartbeats = registry.GetCounter("calm.net.heartbeats");
    transitions.Increment();
    delivered_count.Increment(delivery_indices.size());
    sent_count.Increment(fanout);
    if (delivery_indices.empty()) heartbeats.Increment();
    registry
        .GetCounter("calm.net.node_transitions",
                    {{"node", std::to_string(index)}})
        .Increment();
  }
  return Status::Ok();
}

Instance TransducerNetwork::GlobalOutput() const {
  Instance out;
  for (const auto& [node, state] : states_) {
    out.InsertAll(state.Restrict(transducer_->schema().out));
  }
  return out;
}

bool TransducerNetwork::BuffersEmpty() const {
  for (const net::MessageBuffer& b : buffers_) {
    if (!b.empty()) return false;
  }
  return true;
}

void TransducerNetwork::BspBarrier() {
  for (size_t y = 0; y < staged_.size(); ++y) {
    for (Fact& fact : staged_[y]) {
      buffers_[y].Add(std::move(fact), tick_);
    }
    staged_[y].clear();
  }
}

size_t TransducerNetwork::StagedCount() const {
  size_t n = 0;
  for (const std::vector<Fact>& s : staged_) n += s.size();
  return n;
}

bool TransducerNetwork::Idle() const {
  if (!BuffersEmpty()) return false;
  if (faults_ != nullptr && faults_->HasPendingMessages()) return false;
  if (StagedCount() > 0) return false;
  for (const Instance& pending : recovery_) {
    if (!pending.empty()) return false;
  }
  return true;
}

}  // namespace calm::transducer
