#ifndef CALM_TRANSDUCER_STRATEGIES_H_
#define CALM_TRANSDUCER_STRATEGIES_H_

#include <memory>

#include "base/query.h"
#include "transducer/transducer.h"

namespace calm::transducer {

// The three generic evaluation strategies of Section 4.2 / 4.3, each
// parameterized by a query of the matching monotonicity class. All are
// honest relational transducers: every piece of persistent state lives in
// mem relations, messages are sent at most once (tracked by mem markers) so
// runs quiesce, and outputs are produced exactly when the class-specific
// readiness condition holds.
//
//   * Broadcast (M): every node broadcasts its local input facts and outputs
//     Q(everything seen so far) — correct for monotone Q; needs no policy
//     relations, so it works in the original model of [13].
//
//   * Absence (Mdistinct): additionally broadcasts *non-facts* — absences of
//     potential facts the node is responsible for under the policy — and
//     outputs Q(collected facts) whenever MyAdom is "complete": every
//     potential fact over MyAdom is either known present or known absent
//     (proof of Theorem 4.3).
//
//   * Domain-request (Mdisjoint): broadcasts the active domain; for each
//     known value it is not responsible for, runs the request / transfer /
//     ack / OK protocol with the responsible nodes, and outputs Q(collected
//     facts) whenever every known value is either owned or OK'd (proof of
//     Theorem 4.4). Requires a domain-guided policy.
//
// The query must outlive the transducer. Its output schema must be disjoint
// from its input schema (all the paper's queries are).
std::unique_ptr<Transducer> MakeBroadcastTransducer(const Query* query);
std::unique_ptr<Transducer> MakeAbsenceTransducer(const Query* query);
std::unique_ptr<Transducer> MakeDomainRequestTransducer(const Query* query);

// A deliberately *coordinating* transducer — the confluence oracle's
// negative control. Every node casts its local P-facts once (msg cast/1) and
// commits, exactly once, to the minimum value among the casts in the first
// delivery that contains any (out First/1): a race on arrival order. Fair
// schedules that split the casts across deliveries elect different winners,
// so the network does not compute a deterministic query; under fault
// injection even the otherwise-confluent round-robin schedule diverges
// (e.g. one dropped-and-retransmitted cast changes a node's first-seen set),
// which is precisely the "divergence under faults" class of separating
// witness. Input schema {P/1}, works in the original model of [13].
std::unique_ptr<Transducer> MakeRacyElectionTransducer();

}  // namespace calm::transducer

#endif  // CALM_TRANSDUCER_STRATEGIES_H_
